"""Execution-engine tests: predecode cache, sessions, and the
equivalence property between the predecoded and legacy decode paths."""

import pytest

from repro.assembler.assembler import Assembler
from repro.assembler.linker import Linker
from repro.core.targets import TARGET_GOLDEN, TARGET_RTL
from repro.core.workloads import (
    make_datapath_environment,
    make_nvm_environment,
    make_timer_environment,
    make_uart_environment,
)
from repro.isa.decodecache import (
    BASE_CYCLES,
    DecodeCache,
    decode_cache_for,
)
from repro.isa.instructions import Opcode
from repro.platforms import ExecutionSession, GoldenModel, RtlSim, RunStatus
from repro.soc.derivatives import SC88A, SC88B
from repro.soc.device import PASS_MAGIC

MEMORY_MAP = SC88A.memory_map()


def link_source(source: str):
    obj = Assembler().assemble_source(source, "t.asm")
    return Linker(
        text_base=MEMORY_MAP.text_base, data_base=MEMORY_MAP.data_base
    ).link([obj])


def rom_region():
    rom = MEMORY_MAP.rom
    return rom.base, rom.base + rom.size


class TestDecodeCache:
    def test_lazy_then_memoised(self):
        image = link_source("_main:\n    ADD d1, d2, d3\n    HALT\n")
        base, end = rom_region()
        cache = DecodeCache(image, base, end)
        assert len(cache) == 0
        entry = cache.get(image.entry)
        assert entry is not None
        assert entry.op is Opcode.ADD
        assert entry.fields == {"r1": 1, "r2": 2, "r3": 3}
        assert entry.base_cycles == BASE_CYCLES[int(Opcode.ADD)]
        assert cache.get(image.entry) is entry
        assert len(cache) == 1

    def test_two_word_instruction_carries_literal(self):
        image = link_source("_main:\n    LOAD d4, 0x12345678\n    HALT\n")
        base, end = rom_region()
        cache = DecodeCache(image, base, end, wait_states=1)
        entry = cache.get(image.entry)
        assert entry.op is Opcode.LOAD_D
        assert entry.literal == 0x12345678
        assert entry.size_bytes == 8
        # Two fetched words at one ROM wait state each.
        assert entry.fetch_waits == 2

    def test_out_of_region_address_misses(self):
        image = link_source("_main:\n    HALT\n")
        base, end = rom_region()
        cache = DecodeCache(image, base, end)
        assert cache.get(MEMORY_MAP.ram.base) is None
        assert cache.get(image.entry + 1) is None  # misaligned

    def test_predecode_all_covers_program(self):
        image = link_source(
            "_main:\n    ADD d1, d2, d3\n    SUB d1, d2, d3\n    HALT\n"
        )
        base, end = rom_region()
        cache = DecodeCache(image, base, end)
        assert cache.predecode_all() >= 3

    def test_registry_shares_by_digest(self):
        source = "_main:\n    HALT\n"
        first = link_source(source)
        second = link_source(source)
        base, end = rom_region()
        assert first is not second
        assert first.digest() == second.digest()
        assert decode_cache_for(first, base, end) is decode_cache_for(
            second, base, end
        )
        # Different wait states (cycle-accurate platforms) get their own.
        assert decode_cache_for(first, base, end) is not decode_cache_for(
            first, base, end, wait_states=1
        )


def _strip(result):
    """The comparable engine-visible outcome of a run."""
    return (
        result.status,
        result.signature,
        result.result_word,
        result.instructions,
        result.cycles,
        result.uart_output,
        result.done_pin,
        result.pass_pin,
        None
        if result.trace is None
        else [(t.pc, t.opcode, t.mnemonic, t.cycles) for t in result.trace],
    )


ENVIRONMENT_FACTORIES = [
    lambda: make_nvm_environment(2),
    lambda: make_uart_environment(1),
    lambda: make_timer_environment(),
    lambda: make_datapath_environment(1),
]


class TestEngineEquivalence:
    """The predecoded engine must retire identical (signature, cycles,
    trace) to the legacy per-step decode path — the property the whole
    tentpole hangs on."""

    @pytest.mark.parametrize("make_env", ENVIRONMENT_FACTORIES)
    @pytest.mark.parametrize(
        "tgt, platform_cls",
        [(TARGET_GOLDEN, GoldenModel), (TARGET_RTL, RtlSim)],
        ids=["golden", "rtl"],
    )
    @pytest.mark.parametrize("derivative", [SC88A, SC88B], ids=lambda d: d.name)
    def test_predecoded_matches_legacy(
        self, make_env, tgt, platform_cls, derivative
    ):
        env = make_env()
        for cell_name in env.cells:
            image = env.build_image(cell_name, derivative, tgt).image
            fast = ExecutionSession(
                platform_cls(), derivative, use_decode_cache=True
            ).run(image)
            legacy = ExecutionSession(
                platform_cls(), derivative, use_decode_cache=False
            ).run(image)
            assert _strip(fast) == _strip(legacy), cell_name
            assert fast.status is RunStatus.PASS

    def test_fast_path_actually_used(self):
        env = make_nvm_environment(1)
        image = env.build_image(
            "TEST_NVM_PAGE_001", SC88A, TARGET_GOLDEN
        ).image
        session = ExecutionSession(GoldenModel(), SC88A)
        session.run(image)
        cache = session.cpu.decode_cache
        assert cache is not None
        assert cache.hits > 0


RAM_EXECUTION_SOURCE = f"""\
_main:
    JMP ram_code
.SECTION data
ram_code:
    LOAD d0, {PASS_MAGIC:#x}
    HALT
"""


class TestRamExecutionFallback:
    def test_code_in_ram_runs_via_legacy_path(self):
        image = link_source(RAM_EXECUTION_SOURCE)
        session = ExecutionSession(GoldenModel(), SC88A)
        result = session.run(image)
        assert result.status is RunStatus.PASS
        # The RAM instructions must not be served by the ROM cache.
        assert len(session.cpu.decode_cache) <= 1  # just the JMP

    def test_self_modifying_ram_code_sees_new_bytes(self):
        # The program patches the RAM instruction it is about to run:
        # a LOAD of FAIL-ish 0 is overwritten with `LOAD d0, PASS_MAGIC`'s
        # literal word before execution reaches it.
        source = f"""\
_main:
    LOAD d1, {PASS_MAGIC:#x}
    STORE [patch_me + 4], d1    ;; rewrite the literal word in RAM
    JMP ram_code
.SECTION data
ram_code:
patch_me:
    LOAD d0, 0
    HALT
"""
        image = link_source(source)
        result = GoldenModel().run(image, SC88A)
        assert result.signature == PASS_MAGIC
        assert result.status is RunStatus.PASS


class TestExecutionSessionReuse:
    def test_many_runs_one_device(self):
        env = make_nvm_environment(2)
        session = ExecutionSession(GoldenModel(), SC88A)
        fresh = GoldenModel()
        for cell_name in env.cells:
            image = env.build_image(cell_name, SC88A, TARGET_GOLDEN).image
            reused = session.run(image)
            baseline = fresh.run(image, SC88A)
            assert _strip(reused) == _strip(baseline)
        assert session.runs_completed == 2

    def test_state_isolation_between_runs(self):
        # A failing image then a passing one: the second run must not
        # inherit RAM, ROM, peripheral or register state from the first.
        fail_image = link_source("_main:\n    LOAD d0, 0\n    HALT\n")
        pass_env = make_uart_environment(1)
        pass_image = pass_env.build_image(
            "TEST_UART_LOOP_001", SC88A, TARGET_GOLDEN
        ).image
        session = ExecutionSession(GoldenModel(), SC88A)
        first = session.run(fail_image)
        assert first.status is RunStatus.FAIL
        second = session.run(pass_image)
        assert second.status is RunStatus.PASS
        assert _strip(second) == _strip(
            GoldenModel().run(pass_image, SC88A)
        )

    def test_cycle_accurate_session_matches_fresh_platform(self):
        env = make_nvm_environment(1)
        image = env.build_image(
            "TEST_NVM_PAGE_001", SC88A, TARGET_RTL
        ).image
        session = ExecutionSession(RtlSim(), SC88A)
        assert _strip(session.run(image)) == _strip(
            RtlSim().run(image, SC88A)
        )
