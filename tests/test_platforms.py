"""Tests for the six execution platforms."""

import pytest

from repro.assembler.assembler import Assembler
from repro.assembler.linker import Linker
from repro.isa.instructions import Opcode
from repro.platforms import (
    Accelerator,
    Bondout,
    GateLevelSim,
    GoldenModel,
    NetlistFault,
    PLATFORM_CLASSES,
    ProductSilicon,
    RtlSim,
    RunStatus,
    all_platforms,
    make_platform,
)
from repro.soc.derivatives import SC88A
from repro.soc.device import FAIL_MAGIC, PASS_MAGIC


def build_image(body: str, derivative=SC88A):
    memory_map = derivative.memory_map()
    asm = Assembler()
    obj = asm.assemble_source(f"_main:\n{body}", "t.asm")
    return Linker(
        text_base=memory_map.text_base, data_base=memory_map.data_base
    ).link([obj])


def reporting_body(magic: int, pins: int) -> str:
    memory_map = SC88A.memory_map()
    register_map = SC88A.register_map()
    return (
        f"    LOAD d0, {magic:#x}\n"
        f"    STORE [{memory_map.result_address:#x}], d0\n"
        "    LOAD d1, 3\n"
        f"    STORE [{register_map.register_address('GPIO.GPIO_DIR'):#x}], d1\n"
        f"    LOAD d1, {pins}\n"
        f"    STORE [{register_map.register_address('GPIO.GPIO_OUT'):#x}], d1\n"
        "    HALT\n"
    )


PASS_IMAGE = build_image(reporting_body(PASS_MAGIC, 0b11))
FAIL_IMAGE = build_image(reporting_body(FAIL_MAGIC, 0b01))


class TestRegistry:
    def test_six_platforms(self):
        assert len(PLATFORM_CLASSES) == 6
        assert set(PLATFORM_CLASSES) == {
            "golden", "rtl", "gatelevel", "accelerator", "bondout", "silicon",
        }

    def test_make_platform(self):
        assert isinstance(make_platform("golden"), GoldenModel)
        with pytest.raises(KeyError, match="available"):
            make_platform("fpga")

    def test_all_platforms_golden_first(self):
        fleet = all_platforms()
        assert isinstance(fleet[0], GoldenModel)
        assert len(fleet) == 6


class TestVerdicts:
    @pytest.mark.parametrize("name", sorted(PLATFORM_CLASSES))
    def test_pass_verdict_on_every_platform(self, name):
        result = make_platform(name).run(PASS_IMAGE, SC88A)
        assert result.status is RunStatus.PASS, name

    @pytest.mark.parametrize("name", sorted(PLATFORM_CLASSES))
    def test_fail_verdict_on_every_platform(self, name):
        result = make_platform(name).run(FAIL_IMAGE, SC88A)
        assert result.status is RunStatus.FAIL, name

    def test_timeout(self):
        image = build_image("loop:\n    JMP loop\n")
        result = GoldenModel().run(image, SC88A, max_instructions=100)
        assert result.status is RunStatus.TIMEOUT

    def test_fault_on_unhandled_trap(self):
        image = build_image("    TRAP 9\n    HALT\n")
        result = GoldenModel().run(image, SC88A)
        assert result.status is RunStatus.FAULT
        assert "unhandled trap" in result.fault_reason

    def test_watchdog_status(self):
        register_map = SC88A.register_map()
        wdt_ctrl = register_map.register_address("WDT.WDT_CTRL")
        image = build_image(
            f"    LOAD d1, 1 | (50 << 8)\n"
            f"    STORE [{wdt_ctrl:#x}], d1\n"
            "loop:\n    JMP loop\n"
        )
        result = GoldenModel().run(image, SC88A)
        assert result.status is RunStatus.WATCHDOG

    def test_silicon_no_data_without_pins(self):
        image = build_image(f"    LOAD d0, {PASS_MAGIC:#x}\n    HALT\n")
        result = ProductSilicon().run(image, SC88A)
        assert result.status is RunStatus.NO_DATA
        # ... while the golden model still sees the register signature.
        assert GoldenModel().run(image, SC88A).status is RunStatus.PASS


class TestVisibility:
    def test_golden_sees_everything(self):
        result = GoldenModel().run(PASS_IMAGE, SC88A)
        assert result.signature == PASS_MAGIC
        assert result.result_word == PASS_MAGIC
        assert result.registers["d0"] == PASS_MAGIC
        assert result.trace is not None

    def test_accelerator_hides_registers(self):
        result = Accelerator().run(PASS_IMAGE, SC88A)
        assert result.signature is None
        assert result.registers is None
        assert result.result_word == PASS_MAGIC

    def test_silicon_pins_only(self):
        result = ProductSilicon().run(PASS_IMAGE, SC88A)
        assert result.signature is None
        assert result.result_word is None
        assert (result.done_pin, result.pass_pin) == (1, 1)

    def test_bondout_debug_port(self):
        result = Bondout().run(PASS_IMAGE, SC88A)
        assert result.registers is not None
        assert result.trace is None


class TestTimingModels:
    def test_rtl_charges_wait_states(self):
        golden = GoldenModel().run(PASS_IMAGE, SC88A)
        rtl = RtlSim().run(PASS_IMAGE, SC88A)
        assert rtl.instructions == golden.instructions
        assert rtl.cycles > golden.cycles

    def test_relative_speed_ordering(self):
        # golden > accelerator > rtl > gatelevel in simulation speed.
        assert GoldenModel.relative_speed > RtlSim.relative_speed
        assert RtlSim.relative_speed > GateLevelSim.relative_speed


class TestFaultInjection:
    def test_clean_gatelevel_matches_golden(self):
        clean = GateLevelSim().run(PASS_IMAGE, SC88A)
        assert clean.status is RunStatus.PASS

    def test_fault_changes_behaviour(self):
        image = build_image(
            "    LOAD d1, 0\n"
            "    INSERT d1, d1, 3, 0, 5\n"
            "    CMPI d1, 3\n"
            "    JZ good\n"
            + reporting_body(FAIL_MAGIC, 0b01)
            + "good:\n"
            + reporting_body(PASS_MAGIC, 0b11)
        )
        fault = NetlistFault(
            opcode=int(Opcode.INSERT), xor_mask=0x4, description="bad bit 2"
        )
        assert GateLevelSim().run(image, SC88A).status is RunStatus.PASS
        assert (
            GateLevelSim(fault=fault).run(image, SC88A).status
            is RunStatus.FAIL
        )

    def test_fault_limited_to_opcode(self):
        fault = NetlistFault(opcode=int(Opcode.MUL), xor_mask=0xFF)
        result = GateLevelSim(fault=fault).run(PASS_IMAGE, SC88A)
        assert result.status is RunStatus.PASS  # no MUL in the image


class TestRunResult:
    def test_verdict_key_is_status_only(self):
        golden = GoldenModel().run(PASS_IMAGE, SC88A)
        silicon = ProductSilicon().run(PASS_IMAGE, SC88A)
        assert golden.verdict_key() == silicon.verdict_key()

    def test_passed_helper(self):
        assert GoldenModel().run(PASS_IMAGE, SC88A).passed
        assert not GoldenModel().run(FAIL_IMAGE, SC88A).passed

    def test_last_soc_inspectable(self):
        platform = GoldenModel()
        platform.run(PASS_IMAGE, SC88A)
        assert platform.last_soc is not None
        assert platform.last_soc.result_word() == PASS_MAGIC

    def test_bus_trace_recording(self):
        platform = GoldenModel()
        platform.record_bus_trace = True
        platform.run(PASS_IMAGE, SC88A)
        assert platform.last_bus_trace
        kinds = {access.kind for access in platform.last_bus_trace}
        assert kinds == {"read", "write"}
