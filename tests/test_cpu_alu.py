"""Execution-semantics tests for ALU, move and bit-field instructions.

Each test assembles a small program, runs it on a bare CPU + RAM/ROM bus
and checks architectural state — the golden model's ground truth.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.assembler.assembler import Assembler
from repro.assembler.linker import Linker
from repro.platforms.cpu import CpuCore
from repro.soc.bus import Bus, Memory

RAM_BASE = 0x1000_0000
TEXT_BASE = 0x0000_0200


def run_program(body: str, max_steps: int = 10_000) -> CpuCore:
    """Assemble *body* under ``_main:``, execute until HALT."""
    asm = Assembler()
    obj = asm.assemble_source(f"_main:\n{body}\n    HALT\n", "prog.asm")
    image = Linker(text_base=TEXT_BASE, data_base=RAM_BASE).link([obj])
    bus = Bus()
    rom = Memory(0x8_0000, read_only=True)
    ram = Memory(0x1_0000)
    bus.attach("rom", 0, 0x8_0000, rom)
    bus.attach("ram", RAM_BASE, 0x1_0000, ram)
    for segment in image.segments:
        if segment.base >= RAM_BASE:
            ram.load(segment.base - RAM_BASE, segment.data)
        else:
            rom.load(segment.base, segment.data)
    cpu = CpuCore(bus)
    cpu.reset(image.entry, RAM_BASE + 0xF000)
    for _ in range(max_steps):
        if cpu.halted:
            break
        cpu.step()
    assert cpu.halted, "program did not halt"
    return cpu


def d(cpu: CpuCore, index: int) -> int:
    return cpu.regs.data[index]


class TestMoves:
    def test_load_immediate(self):
        cpu = run_program("    LOAD d5, 0xDEADBEEF")
        assert d(cpu, 5) == 0xDEADBEEF

    def test_movi_sign_extends(self):
        cpu = run_program("    MOVI d1, -2")
        assert d(cpu, 1) == 0xFFFF_FFFE

    def test_movhi(self):
        cpu = run_program("    MOVHI d1, 0x1234")
        assert d(cpu, 1) == 0x1234_0000

    def test_mov_between_banks(self):
        cpu = run_program(
            "    LOAD d1, 77\n    MOV a3, d1\n    MOV d2, a3\n"
        )
        assert d(cpu, 2) == 77
        assert cpu.regs.address[3] == 77


class TestArithmetic:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("ADD", 2, 3, 5),
            ("SUB", 10, 4, 6),
            ("AND", 0xFF, 0x0F, 0x0F),
            ("OR", 0xF0, 0x0F, 0xFF),
            ("XOR", 0xFF, 0x0F, 0xF0),
            ("MUL", 7, 6, 42),
            ("DIVU", 20, 6, 3),
        ],
    )
    def test_rrr_ops(self, op, a, b, expected):
        cpu = run_program(
            f"    LOAD d1, {a}\n    LOAD d2, {b}\n    {op} d3, d1, d2\n"
        )
        assert d(cpu, 3) == expected

    def test_add_wraps_and_sets_carry(self):
        cpu = run_program(
            "    LOAD d1, 0xFFFFFFFF\n    LOAD d2, 1\n    ADD d3, d1, d2\n"
        )
        assert d(cpu, 3) == 0
        assert cpu.regs.psw.carry and cpu.regs.psw.zero

    def test_addi_negative(self):
        cpu = run_program("    LOAD d1, 10\n    ADDI d2, d1, -3\n")
        assert d(cpu, 2) == 7

    def test_not_neg(self):
        cpu = run_program(
            "    LOAD d1, 5\n    NOT d2, d1\n    NEG d3, d1\n"
        )
        assert d(cpu, 2) == ~5 & 0xFFFF_FFFF
        assert d(cpu, 3) == (-5) & 0xFFFF_FFFF

    def test_shift_immediate(self):
        cpu = run_program(
            "    LOAD d1, 0x80000001\n"
            "    SHLI d2, d1, 1\n"
            "    SHRI d3, d1, 1\n"
            "    SARI d4, d1, 1\n"
        )
        assert d(cpu, 2) == 0x0000_0002
        assert d(cpu, 3) == 0x4000_0000
        assert d(cpu, 4) == 0xC000_0000

    def test_shift_by_register(self):
        cpu = run_program(
            "    LOAD d1, 1\n    LOAD d2, 8\n    SHL d3, d1, d2\n"
        )
        assert d(cpu, 3) == 256

    def test_cmp_sets_flags_without_write(self):
        cpu = run_program(
            "    LOAD d1, 5\n    LOAD d2, 5\n    CMP d1, d2\n"
        )
        assert cpu.regs.psw.zero
        assert d(cpu, 1) == 5

    @given(a=st.integers(0, 2**32 - 1), b=st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_add_matches_python(self, a, b):
        cpu = run_program(
            f"    LOAD d1, {a:#x}\n    LOAD d2, {b:#x}\n    ADD d3, d1, d2\n"
        )
        assert d(cpu, 3) == (a + b) & 0xFFFF_FFFF

    @given(a=st.integers(0, 2**32 - 1), b=st.integers(1, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_divu_matches_python(self, a, b):
        cpu = run_program(
            f"    LOAD d1, {a:#x}\n    LOAD d2, {b:#x}\n    DIVU d3, d1, d2\n"
        )
        assert d(cpu, 3) == a // b


class TestBitFields:
    def test_insert_paper_example(self):
        # Figure 6: insert page 8 into a 5-bit field at position 0.
        cpu = run_program(
            "    LOAD d14, 0\n    INSERT d14, d14, 8, 0, 5\n"
        )
        assert d(cpu, 14) == 8

    def test_insert_preserves_other_bits(self):
        cpu = run_program(
            "    LOAD d1, 0xFFFFFFFF\n    INSERT d2, d1, 0, 8, 4\n"
        )
        assert d(cpu, 2) == 0xFFFF_F0FF

    def test_insert_masks_oversized_value(self):
        cpu = run_program(
            "    LOAD d1, 0\n    INSERT d2, d1, 0xFF, 0, 4\n"
        )
        assert d(cpu, 2) == 0x0F

    def test_insertr(self):
        cpu = run_program(
            "    LOAD d1, 0\n    LOAD d3, 5\n"
            "    INSERTR d2, d1, d3, 4, 3\n"
        )
        assert d(cpu, 2) == 5 << 4

    def test_extru_extrs(self):
        cpu = run_program(
            "    LOAD d1, 0xF0\n"
            "    EXTRU d2, d1, 4, 4\n"
            "    EXTRS d3, d1, 4, 4\n"
        )
        assert d(cpu, 2) == 0xF
        assert d(cpu, 3) == 0xFFFF_FFFF  # sign-extended

    def test_setb_clrb_tglb(self):
        cpu = run_program(
            "    LOAD d1, 0\n    SETB d1, 3\n    SETB d1, 5\n"
            "    CLRB d1, 3\n    TGLB d1, 0\n"
        )
        assert d(cpu, 1) == (1 << 5) | 1

    def test_tstb_sets_zero_on_clear_bit(self):
        cpu = run_program(
            "    LOAD d1, 2\n    TSTB d1, 0\n"
            "    JZ was_clear\n    LOAD d2, 0\n    HALT\n"
            "was_clear:\n    LOAD d2, 1\n"
        )
        assert d(cpu, 2) == 1

    @given(
        base=st.integers(0, 2**32 - 1),
        value=st.integers(0, 2**32 - 1),
        pos=st.integers(0, 31),
        width=st.integers(1, 32),
    )
    @settings(max_examples=40, deadline=None)
    def test_insert_extract_round_trip(self, base, value, pos, width):
        """INSERT then EXTRU recovers the (masked) inserted value —
        the invariant Figure 6's methodology rests on."""
        if pos + width > 32:
            width = 32 - pos
            if width == 0:
                return
        cpu = run_program(
            f"    LOAD d1, {base:#x}\n"
            f"    INSERT d2, d1, {value:#x}, {pos}, {width}\n"
            f"    EXTRU d3, d2, {pos}, {width}\n"
        )
        mask = (1 << width) - 1
        assert d(cpu, 3) == value & mask


class TestMemoryInstructions:
    def test_word_store_load_round_trip(self):
        cpu = run_program(
            f"    LOAD a4, {RAM_BASE:#x}\n"
            "    LOAD d1, 0xCAFEBABE\n"
            "    ST.W [a4], d1\n"
            "    LD.W d2, [a4]\n"
        )
        assert d(cpu, 2) == 0xCAFEBABE

    def test_byte_and_half_zero_extend(self):
        cpu = run_program(
            f"    LOAD a4, {RAM_BASE:#x}\n"
            "    LOAD d1, 0xFFFF89AB\n"
            "    ST.W [a4], d1\n"
            "    LD.B d2, [a4]\n"
            "    LD.H d3, [a4]\n"
        )
        assert d(cpu, 2) == 0xAB
        assert d(cpu, 3) == 0x89AB

    def test_store_byte_masks(self):
        cpu = run_program(
            f"    LOAD a4, {RAM_BASE:#x}\n"
            "    LOAD d1, 0xFFFFFFFF\n"
            "    ST.W [a4], d1\n"
            "    LOAD d2, 0\n"
            "    ST.B [a4], d2\n"
            "    LD.W d3, [a4]\n"
        )
        assert d(cpu, 3) == 0xFFFF_FF00

    def test_absolute_store_load(self):
        address = RAM_BASE + 0x40
        cpu = run_program(
            "    LOAD d1, 1234\n"
            f"    STORE [{address:#x}], d1\n"
            f"    LOAD d2, [{address:#x}]\n"
        )
        assert d(cpu, 2) == 1234

    def test_offset_addressing(self):
        cpu = run_program(
            f"    LOAD a4, {RAM_BASE + 8:#x}\n"
            "    LOAD d1, 7\n"
            "    ST.W [a4 + 4], d1\n"
            f"    LOAD a5, {RAM_BASE + 12:#x}\n"
            "    LD.W d2, [a5]\n"
            "    LD.W d3, [a4 - 8]\n"
        )
        assert d(cpu, 2) == 7
        assert d(cpu, 3) == 0  # untouched RAM reads zero
