"""Tests for listing rendering and disassembly."""

from repro.assembler.assembler import Assembler
from repro.assembler.listing import (
    disassemble_range,
    disassemble_word,
    instruction_length,
    render_listing,
)
from repro.isa.encoding import Format, encode_word
from repro.isa.instructions import Opcode


class TestDisassembleWord:
    def test_nop(self):
        word = encode_word(Format.NONE, int(Opcode.NOP))
        assert disassemble_word(word) == "NOP"

    def test_rr_operands(self):
        word = encode_word(Format.RR, int(Opcode.MOV_DD), r1=1, r2=2)
        assert disassemble_word(word) == "MOV d1, d2"

    def test_load_with_literal(self):
        word = encode_word(Format.ABS, int(Opcode.LOAD_D), r1=14)
        text = disassemble_word(word, literal=0x1234)
        assert text == "LOAD d14, 0x00001234"

    def test_store_absolute_brackets(self):
        word = encode_word(Format.ABS, int(Opcode.STABS_D), r1=3)
        text = disassemble_word(word, literal=0xF0001000)
        assert text == "STORE [0xf0001000], d3"

    def test_memory_operand(self):
        word = encode_word(
            Format.MEM, int(Opcode.LD_W), r1=2, r2=4, imm16=8
        )
        assert disassemble_word(word) == "LD.W d2, [a4+0x8]"

    def test_insert_shows_pos_width(self):
        word = encode_word(
            Format.BIT, int(Opcode.INSERT), r1=14, r2=14, pos=0, width=5
        )
        text = disassemble_word(word, literal=8)
        assert text == "INSERT d14, d14, 0x00000008, 0, 5"

    def test_illegal_opcode_becomes_word(self):
        assert disassemble_word(0xFF00_0000).startswith(".WORD")


class TestRangeDisassembly:
    def test_round_trip_through_assembler(self):
        asm = Assembler()
        obj = asm.assemble_source(
            "_main:\n"
            "    LOAD d14, 0\n"
            "    INSERT d14, d14, 8, 0, 5\n"
            "    HALT\n",
            "u.asm",
        )
        section = obj.section("text")
        words = [
            section.read_word(offset)
            for offset in range(0, section.size, 4)
        ]
        lines = disassemble_range(words, base=0x100)
        assert len(lines) == 3
        assert "LOAD d14" in lines[0]
        assert "INSERT d14, d14" in lines[1]
        assert lines[2].endswith("HALT")
        assert lines[0].startswith("00000100:")

    def test_instruction_length(self):
        halt = encode_word(Format.NONE, int(Opcode.HALT))
        load = encode_word(Format.ABS, int(Opcode.LOAD_D), r1=0)
        assert instruction_length(halt) == 1
        assert instruction_length(load) == 2
        assert instruction_length(0xFF00_0000) == 1


class TestListingRendering:
    def test_listing_has_sources_and_offsets(self):
        asm = Assembler()
        unit = asm.assemble_source  # noqa: F841 - keep assembler alive
        from repro.assembler.assembler import _Unit

        unit_obj = _Unit(asm, "u.asm")
        unit_obj.stream.push_text("u.asm", "_main:\n    LOAD d0, 5\n    HALT\n")
        unit_obj.run()
        text = render_listing(unit_obj.listing, title="u.asm")
        assert "; listing: u.asm" in text
        assert "LOAD d0, 5" in text
        assert "; section text" in text
        assert "00000000" in text
