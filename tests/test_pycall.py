"""Tests for the Python-callable base-function library (§2 vision)."""

import pytest

from repro.core.pycall import BaseFunctionLibrary
from repro.core.workloads import make_nvm_environment
from repro.soc.derivatives import SC88A, SC88B, SC88D
from repro.soc.device import PASS_MAGIC


@pytest.fixture(scope="module")
def library():
    return BaseFunctionLibrary(make_nvm_environment(1), SC88A)


class TestIntrospection:
    def test_functions_listed_base_first(self, library):
        names = library.functions()
        assert names[0].startswith("Base_")
        assert "Base_NVM_Program_Page" in names
        assert "ES_Get_Version" in names

    def test_unknown_function_raises(self, library):
        with pytest.raises(KeyError, match="Base_Nonexistent"):
            library.call("Base_Nonexistent")


class TestCallingBaseFunctions:
    def test_nvm_program_page_from_python(self, library):
        outcome = library.call("Base_NVM_Program_Page", d4=9)
        assert outcome["d2"] == 0  # success code
        assert ("prog", 9) in outcome.soc.nvm.operation_log

    def test_nvm_erase_page_from_python(self, library):
        outcome = library.call("Base_NVM_Erase_Page", d4=3)
        assert outcome["d2"] == 0
        assert outcome.soc.nvm.page_bytes(3) == b"\xff" * 128

    def test_select_page_updates_field(self, library):
        outcome = library.call("Base_Select_Page", d4=21)
        ctrl_address = outcome.soc.register_map.register_address(
            "NVM.NVM_CTRL"
        )
        assert outcome.soc.bus.peek_word(ctrl_address) & 0x1F == 21

    def test_wdt_service_counts(self, library):
        outcome = library.call("Base_WDT_Service")
        assert outcome.soc.wdt.services == 1

    def test_report_pass_halts_with_signature(self, library):
        outcome = library.call("Base_Report_Pass")
        assert outcome.halted
        assert outcome["d0"] == PASS_MAGIC
        assert outcome.soc.pass_pin() == 1

    def test_setup_preloads_memory(self, library):
        scratch = SC88A.memory_map().result_address + 16
        outcome = library.call(
            "Base_Checksum",
            a4=scratch,
            d4=2,
            setup={scratch: 0xAAAA0000, scratch + 4: 0x0000BBBB},
        )
        assert outcome["d2"] == 0xAAAA0000 ^ 0x0000BBBB


class TestDerivativeTransparency:
    def test_same_python_call_on_v2_firmware(self):
        """The Python caller is as derivative-agnostic as the tests:
        the sc88d firmware rewrite is invisible through the wrapper."""
        for derivative in (SC88A, SC88D):
            library = BaseFunctionLibrary(
                make_nvm_environment(1, derivatives=[derivative]),
                derivative,
            )
            outcome = library.call("Base_Get_ES_Version")
            assert outcome["d2"] == derivative.es_version

    def test_wide_derivative_page(self):
        library = BaseFunctionLibrary(
            make_nvm_environment(1, derivatives=[SC88B]), SC88B
        )
        outcome = library.call("Base_NVM_Program_Page", d4=48)
        assert outcome["d2"] == 0
        assert ("prog", 48) in outcome.soc.nvm.operation_log


class TestComposition:
    def test_python_orchestrated_scenario(self, library):
        """A miniature higher-level testbench: stage data, program two
        pages, verify via another call — all without writing a test
        cell."""
        program_first = library.call("Base_NVM_Program_Page", d4=5)
        program_second = library.call("Base_NVM_Program_Page", d4=6)
        assert program_first["d2"] == 0 and program_second["d2"] == 0

    def test_bad_register_name_rejected(self, library):
        with pytest.raises(ValueError, match="not a register"):
            library.call("Base_WDT_Service", q7=1)
