"""Unit tests for the serving layer: scenario packs, the write-ahead
journal, the warm session pool and the transport-independent
:class:`RegressionService` core."""

from __future__ import annotations

import asyncio
import json
import time

import pytest

from repro.core.faults import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    SITE_JOURNAL_WRITE,
    SITE_POOL_LEASE,
    SITE_SERVICE_ACCEPT,
    FaultInjector,
)
from repro.core.system_env import make_default_system
from repro.core.targets import TARGET_GOLDEN, TARGET_RTL
from repro.core.workspace import write_system_environment
from repro.service import (
    JobJournal,
    JournalError,
    PackError,
    RegressionService,
    ServiceError,
    ServiceUnavailable,
    WarmSessionPool,
    pack_to_dict,
    parse_pack,
    resolve_pack,
)
from repro.soc.derivatives import SC88A


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    """A tiny on-disk workspace: one NVM test cell, no UART module."""
    system = make_default_system(nvm_tests=1, uart_tests=0)
    return write_system_environment(
        system, tmp_path_factory.mktemp("serve-ws") / "ws"
    )


def smoke_pack(**overrides) -> dict:
    pack = {
        "schema": 1,
        "name": "smoke",
        "modules": ["NVM"],
        "targets": ["golden"],
        "executor": "serial",
    }
    pack.update(overrides)
    return pack


async def collect(stream) -> list[dict]:
    return [event async for event in stream]


# --------------------------------------------------------------------------
# protocol
# --------------------------------------------------------------------------

class TestScenarioPack:
    def test_roundtrip(self):
        pack = parse_pack(
            smoke_pack(cells=["TEST_NVM_PAGE_001"], deadline=30.0, jobs=2)
        )
        assert pack.name == "smoke"
        assert pack.modules == ("NVM",)
        assert pack.cells == ("TEST_NVM_PAGE_001",)
        assert pack.deadline == 30.0
        assert parse_pack(pack_to_dict(pack)) == pack

    def test_defaults(self):
        pack = parse_pack({"schema": 1, "name": "n"})
        assert pack.modules is None
        assert pack.targets is None
        assert pack.executor == "serial"
        assert pack.retries == 2

    @pytest.mark.parametrize(
        "mutation",
        [
            {"schema": 2},
            {"schema": None},
            {"name": ""},
            {"name": 7},
            {"executor": "rocket"},
            {"jobs": 0},
            {"jobs": True},
            {"retries": -1},
            {"deadline": 0},
            {"deadline": -1.0},
            {"run_timeout": "fast"},
            {"max_instructions": 0},
            {"modules": []},
            {"modules": [""]},
            {"cells": "TEST_NVM_PAGE_001"},
            {"surprise": 1},
        ],
    )
    def test_rejects_malformed(self, mutation):
        with pytest.raises(PackError):
            parse_pack(smoke_pack(**mutation))

    def test_rejects_non_object(self):
        with pytest.raises(PackError):
            parse_pack(["not", "a", "pack"])

    def test_resolve(self, workspace):
        pack = parse_pack(smoke_pack())
        environments, derivative, targets = resolve_pack(pack, workspace)
        assert derivative is SC88A
        assert [t.name for t in targets] == ["golden"]
        assert list(environments) == ["NVM"]

    def test_resolve_cell_filter(self, workspace):
        pack = parse_pack(
            smoke_pack(modules=None, cells=["TEST_NVM_PAGE_001"])
        )
        environments, _deriv, _targets = resolve_pack(pack, workspace)
        cells = [
            name for env in environments.values() for name in env.cells
        ]
        assert cells == ["TEST_NVM_PAGE_001"]

    @pytest.mark.parametrize(
        "mutation, message",
        [
            ({"derivative": "sc99z"}, "unknown derivative"),
            ({"targets": ["warp-drive"]}, "unknown target"),
            ({"modules": ["GPU"]}, "unknown module"),
            ({"cells": ["TEST_NOPE_001"]}, "unknown test cell"),
        ],
    )
    def test_resolve_unknown_names(self, workspace, mutation, message):
        pack = parse_pack(smoke_pack(**mutation))
        with pytest.raises(PackError, match=message):
            resolve_pack(pack, workspace)

    def test_env_cache_reuses_warm_environment(self, workspace):
        pack = parse_pack(smoke_pack())
        cache: dict = {}
        first, _, _ = resolve_pack(pack, workspace, env_cache=cache)
        second, _, _ = resolve_pack(pack, workspace, env_cache=cache)
        # Same instance: the memoised build artifacts ride along.
        assert second["NVM"] is first["NVM"]

    def test_env_cache_invalidates_on_edit(self, workspace):
        pack = parse_pack(smoke_pack())
        cache: dict = {}
        first, _, _ = resolve_pack(pack, workspace, env_cache=cache)
        cell_file = workspace / "NVM" / "TEST_NVM_PAGE_001" / "test.asm"
        cell_file.write_text(cell_file.read_text() + "\n; edited\n")
        try:
            second, _, _ = resolve_pack(pack, workspace, env_cache=cache)
            # Edited sources must never serve a stale environment.
            assert second["NVM"] is not first["NVM"]
        finally:
            cell_file.write_text(
                cell_file.read_text().replace("\n; edited\n", "")
            )

    def test_cell_filter_does_not_mutate_cached_env(self, workspace):
        cache: dict = {}
        full_pack = parse_pack(smoke_pack())
        filtered_pack = parse_pack(
            smoke_pack(cells=["TEST_NVM_PAGE_001"])
        )
        resolve_pack(full_pack, workspace, env_cache=cache)
        resolve_pack(filtered_pack, workspace, env_cache=cache)
        # The cached environment still sees every cell.
        full_again, _, _ = resolve_pack(
            full_pack, workspace, env_cache=cache
        )
        assert "TEST_NVM_PAGE_001" in full_again["NVM"].cells


# --------------------------------------------------------------------------
# journal
# --------------------------------------------------------------------------

class TestJobJournal:
    def test_accept_settle_roundtrip(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.accept("job-1", {"name": "a"})
        journal.accept("job-2", {"name": "b"})
        assert [job for job, _ in journal.pending_jobs()] == ["job-1", "job-2"]
        assert journal.settle("job-1", "completed", {"clean": True})
        assert [job for job, _ in journal.pending_jobs()] == ["job-2"]
        journal.close()

    def test_replay_after_crash(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.accept("job-1", {"name": "a"})
        journal.settle("job-1", "completed", {})
        journal.accept("job-2", {"name": "b"})
        # Crash: no settle for job-2, no close(), just abandon the
        # handle the way kill -9 would.
        reborn = JobJournal(tmp_path)
        assert reborn.pending_jobs() == [("job-2", {"name": "b"})]
        assert reborn.replayed_jobs == 1
        assert reborn.corrupt_records == 0
        reborn.close()

    def test_corrupt_record_counted_not_trusted(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.accept("job-1", {"name": "a"})
        journal.accept("job-2", {"name": "b"})
        journal.close()
        segment = next(tmp_path.glob("journal-*.ndjson"))
        lines = segment.read_bytes().splitlines(keepends=True)
        # Tear the first record mid-payload (its newline survives).
        segment.write_bytes(
            lines[0][: len(lines[0]) // 2] + b"\n" + lines[1]
        )
        reborn = JobJournal(tmp_path)
        assert reborn.corrupt_records == 1
        assert [job for job, _ in reborn.pending_jobs()] == ["job-2"]
        reborn.close()

    def test_compaction_bounds_segments(self, tmp_path):
        journal = JobJournal(tmp_path, segment_records=4, fsync=False)
        for index in range(10):
            journal.accept(f"job-{index}", {"name": str(index)})
            journal.settle(f"job-{index}", "completed", {})
        journal.accept("job-last", {"name": "pending"})
        journal.close()
        segments = sorted(tmp_path.glob("journal-*.ndjson"))
        assert len(segments) == 1
        assert journal.compactions >= 2
        reborn = JobJournal(tmp_path)
        assert [job for job, _ in reborn.pending_jobs()] == ["job-last"]
        reborn.close()

    def test_injected_write_fault_refuses_accept(self, tmp_path):
        plan = FaultPlan(
            specs=[FaultSpec(site=SITE_JOURNAL_WRITE, action="raise")]
        )
        journal = JobJournal(tmp_path, injector=FaultInjector(plan))
        with pytest.raises(JournalError):
            journal.accept("job-1", {"name": "a"})
        # The refused job is not pending: it was never acknowledged.
        assert journal.pending_jobs() == []
        journal.close()

    def test_injected_corruption_detected_on_replay(self, tmp_path):
        plan = FaultPlan(
            seed=7,
            specs=[FaultSpec(site=SITE_JOURNAL_WRITE, action="corrupt")],
        )
        journal = JobJournal(tmp_path, injector=FaultInjector(plan))
        journal.accept("job-1", {"name": "a"})
        journal.close()
        reborn = JobJournal(tmp_path)
        # The torn accept is an *explicit* loss report, never silence.
        assert reborn.corrupt_records == 1
        assert reborn.pending_jobs() == []
        reborn.close()

    def test_settle_failure_returns_false(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.accept("job-1", {"name": "a"})
        journal.close()
        assert journal.settle("job-1", "completed", {}) is False

    def test_accept_filling_segment_survives_crash(self, tmp_path):
        # Regression: when an accept record fills the segment, the
        # triggered compaction must include that accept in the
        # rewritten segment — compacting before the pending set was
        # updated silently dropped the just-acknowledged job.
        journal = JobJournal(tmp_path, segment_records=2, fsync=False)
        journal.accept("job-1", {"name": "a"})
        journal.accept("job-2", {"name": "b"})  # fills → compacts
        assert journal.compactions >= 2  # boot compaction + this one
        # Crash: abandon the handle the way kill -9 would.
        reborn = JobJournal(tmp_path)
        assert [job for job, _ in reborn.pending_jobs()] == [
            "job-1",
            "job-2",
        ]
        reborn.close()

    def test_settle_filling_segment_not_replayed(self, tmp_path):
        # Mirror regression: a settle-triggered compaction must not
        # re-persist the settling job as pending (dropping the settle
        # record caused spurious replay of completed jobs).
        journal = JobJournal(tmp_path, segment_records=2, fsync=False)
        journal.accept("job-1", {"name": "a"})
        assert journal.settle("job-1", "completed", {})  # fills → compacts
        reborn = JobJournal(tmp_path)
        assert reborn.pending_jobs() == []
        reborn.close()

    def test_compaction_failure_tolerated(self, tmp_path):
        # The append itself is durable; a failed compaction must not
        # escape accept()/settle() as a raw exception (the daemon maps
        # JournalError → 503; anything else reads as a 500 while the
        # record is already on disk).
        journal = JobJournal(tmp_path, segment_records=2, fsync=False)

        def boom():
            raise OSError("disk full")

        journal._compact = boom
        journal.accept("job-1", {"name": "a"})
        journal.accept("job-2", {"name": "b"})  # fills → compaction fails
        assert journal.settle("job-1", "completed", {})  # fails again
        stats = journal.stats()
        assert stats["compaction_failures"] == 2
        assert [job for job, _ in journal.pending_jobs()] == ["job-2"]
        journal.close()


# --------------------------------------------------------------------------
# pool
# --------------------------------------------------------------------------

class TestWarmSessionPool:
    def test_warm_reuse(self):
        pool = WarmSessionPool()
        first = pool.lease(TARGET_GOLDEN, SC88A)
        pool.release(first)
        second = pool.lease(TARGET_GOLDEN, SC88A)
        assert second is first
        assert pool.stats()["warm_hits"] == 1
        assert pool.stats()["cold_builds"] == 1
        pool.close()

    def test_keys_separate_targets(self):
        pool = WarmSessionPool()
        golden = pool.lease(TARGET_GOLDEN, SC88A)
        pool.release(golden)
        rtl = pool.lease(TARGET_RTL, SC88A)
        assert rtl is not golden
        assert pool.stats()["cold_builds"] == 2
        pool.close()

    def test_unhealthy_release_discards(self):
        pool = WarmSessionPool()
        session = pool.lease(TARGET_GOLDEN, SC88A)
        pool.release(session, healthy=False)
        assert pool.stats()["idle"] == 0
        assert pool.lease(TARGET_GOLDEN, SC88A) is not session
        pool.close()

    def test_poisoned_session_never_rejoins(self):
        pool = WarmSessionPool()
        session = pool.lease(TARGET_GOLDEN, SC88A)
        session.poisoned = True
        pool.release(session)  # vouched healthy, but the session knows
        assert pool.stats()["idle"] == 0
        assert pool.stats()["recycled"] == 1
        pool.close()

    def test_lru_eviction_bounds_idle(self):
        pool = WarmSessionPool(max_idle=2)
        sessions = [pool.lease(TARGET_GOLDEN, SC88A) for _ in range(3)]
        for session in sessions:
            pool.release(session)
        stats = pool.stats()
        assert stats["idle"] == 2
        assert stats["evicted"] == 1
        # The evicted one is the oldest return: sessions[0].
        assert pool.lease(TARGET_GOLDEN, SC88A) is sessions[2]
        pool.close()

    def test_sweep_recycles_wedged_sessions(self):
        pool = WarmSessionPool()
        healthy = pool.lease(TARGET_GOLDEN, SC88A)
        broken = pool.lease(TARGET_GOLDEN, SC88A)
        pool.release(healthy)
        pool.release(broken)
        broken.poisoned = True  # wedged while idle
        assert pool.sweep() == 1
        assert pool.stats()["idle"] == 1
        assert pool.lease(TARGET_GOLDEN, SC88A) is healthy
        pool.close()

    def test_sweep_enforces_idle_bound(self):
        # Regression: survivors re-added by sweep() (plus any session
        # released concurrently while the candidates were detached)
        # must not push the pool past max_idle.
        pool = WarmSessionPool(max_idle=2)
        first = pool.lease(TARGET_GOLDEN, SC88A)
        second = pool.lease(TARGET_GOLDEN, SC88A)
        third = pool.lease(TARGET_GOLDEN, SC88A)
        pool.release(first)
        pool.release(second)
        # Simulate a release racing the sweep: while the candidates
        # are detached, the first health check returns `third`.
        original_check = type(first).health_check

        def check_and_release():
            del first.health_check  # one-shot shadow
            pool.release(third)
            return original_check(first)

        first.health_check = check_and_release
        pool.sweep()
        stats = pool.stats()
        assert stats["idle"] == 2
        assert stats["evicted"] == 1
        pool.close()

    def test_lease_chaos_counts_and_propagates(self):
        plan = FaultPlan(
            specs=[FaultSpec(site=SITE_POOL_LEASE, action="raise")]
        )
        pool = WarmSessionPool(injector=FaultInjector(plan))
        with pytest.raises(InjectedFault):
            pool.lease(TARGET_GOLDEN, SC88A)
        assert pool.stats()["lease_failures"] == 1
        # The plan's single shot is spent; the pool self-heals.
        assert pool.probe(TARGET_GOLDEN, SC88A)
        pool.close()

    def test_probe_false_over_broken_pool(self):
        plan = FaultPlan(
            specs=[
                FaultSpec(site=SITE_POOL_LEASE, action="raise", times=100)
            ]
        )
        pool = WarmSessionPool(injector=FaultInjector(plan))
        assert pool.probe(TARGET_GOLDEN, SC88A) is False
        pool.close()

    def test_close_drops_idle(self):
        pool = WarmSessionPool()
        pool.release(pool.lease(TARGET_GOLDEN, SC88A))
        pool.close()
        assert pool.stats()["idle"] == 0


# --------------------------------------------------------------------------
# service core
# --------------------------------------------------------------------------

def run_async(coroutine):
    return asyncio.run(coroutine)


class TestRegressionService:
    def test_submit_streams_cells_then_done(self, workspace):
        async def scenario():
            service = RegressionService(workspace)
            events = await collect(service.submit(smoke_pack()))
            await service.drain()
            return events

        events = run_async(scenario())
        kinds = [event["event"] for event in events]
        assert kinds[0] == "accepted"
        assert kinds[-1] == "done"
        assert "cell" in kinds
        cell = next(e for e in events if e["event"] == "cell")
        assert cell["status"] == "pass"
        done = events[-1]
        assert done["clean"] is True
        assert done["total_runs"] == 1

    def test_second_request_hits_warm_pool(self, workspace):
        async def scenario():
            service = RegressionService(workspace)
            await collect(service.submit(smoke_pack()))
            await collect(service.submit(smoke_pack(name="again")))
            stats = service.stats()
            await service.drain()
            return stats

        stats = run_async(scenario())
        assert stats["pool"]["warm_hits"] >= 1
        assert stats["jobs"]["completed"] == 2

    def test_admission_sheds_beyond_bound(self, workspace):
        async def scenario():
            service = RegressionService(workspace, max_pending=1)
            service._active = 1  # a job is mid-flight
            with pytest.raises(ServiceUnavailable) as excinfo:
                await collect(service.submit(smoke_pack()))
            shed = service.jobs_shed
            retry_after = excinfo.value.retry_after
            service._active = 0
            await service.drain()
            return shed, retry_after

        shed, retry_after = run_async(scenario())
        assert shed == 1
        assert retry_after > 0

    def test_concurrent_submits_respect_bound(self, workspace, tmp_path):
        # Regression: the admission check and _start_job's _active
        # increment are separated by the journal-accept await, so
        # concurrent submissions could all pass the check and exceed
        # max_pending.  A slot must be reserved across the await.
        async def scenario():
            journal = JobJournal(tmp_path / "journal")
            original_accept = journal.accept

            def slow_accept(job_id, pack_data):
                time.sleep(0.02)
                original_accept(job_id, pack_data)

            journal.accept = slow_accept
            service = RegressionService(
                workspace, journal=journal, max_pending=1
            )
            results = await asyncio.gather(
                collect(service.submit(smoke_pack(name="one"))),
                collect(service.submit(smoke_pack(name="two"))),
                return_exceptions=True,
            )
            shed = service.jobs_shed
            await service.drain()
            return results, shed

        results, shed = run_async(scenario())
        assert shed == 1
        shed_errors = [
            r for r in results if isinstance(r, ServiceUnavailable)
        ]
        completed = [r for r in results if isinstance(r, list)]
        assert len(shed_errors) == 1
        assert len(completed) == 1
        assert completed[0][-1]["event"] == "done"

    def test_draining_refuses_submissions(self, workspace):
        async def scenario():
            service = RegressionService(workspace)
            await service.drain()
            with pytest.raises(ServiceUnavailable, match="draining"):
                await collect(service.submit(smoke_pack()))

        run_async(scenario())

    def test_malformed_pack_rejected_before_accept(self, workspace):
        async def scenario():
            service = RegressionService(workspace)
            with pytest.raises(PackError):
                await collect(service.submit({"schema": 1}))
            accepted = service.jobs_accepted
            await service.drain()
            return accepted

        assert run_async(scenario()) == 0

    def test_unresolvable_pack_fails_explicitly(self, workspace):
        async def scenario():
            service = RegressionService(workspace)
            events = await collect(
                service.submit(smoke_pack(modules=["GPU"]))
            )
            await service.drain()
            return events

        events = run_async(scenario())
        assert events[-1]["event"] == "error"
        assert "GPU" in events[-1]["error"]

    def test_accept_chaos_is_explicit_refusal(self, workspace):
        async def scenario():
            plan = FaultPlan(
                specs=[FaultSpec(site=SITE_SERVICE_ACCEPT, action="raise")]
            )
            service = RegressionService(workspace, fault_plan=plan)
            with pytest.raises(ServiceError, match="admission fault"):
                await collect(service.submit(smoke_pack()))
            # The very next submission sails through: chaos was windowed.
            events = await collect(service.submit(smoke_pack()))
            await service.drain()
            return events

        assert run_async(scenario())[-1]["event"] == "done"

    def test_journal_outage_refuses_not_loses(self, workspace, tmp_path):
        async def scenario():
            plan = FaultPlan(
                specs=[FaultSpec(site=SITE_JOURNAL_WRITE, action="raise")]
            )
            service = RegressionService(
                workspace,
                journal=JobJournal(tmp_path / "journal"),
                fault_plan=plan,
            )
            with pytest.raises(ServiceUnavailable, match="journal"):
                await collect(service.submit(smoke_pack()))
            accepted = service.jobs_accepted
            await service.drain()
            return accepted

        assert run_async(scenario()) == 0

    def test_deadline_fails_job_and_reclaims_sessions(self, workspace):
        async def scenario():
            service = RegressionService(workspace)
            events = await collect(
                service.submit(smoke_pack(), deadline=1e-6)
            )
            # The engine thread outlives the deadline; wait for it to
            # hand its session back (which the pool must then discard).
            for _ in range(500):
                if service.pool.stats()["recycled"] >= 1:
                    break
                await asyncio.sleep(0.01)
            await service.drain()
            return events, service.pool.stats(), service.stats()

        events, pool_stats, stats = run_async(scenario())
        assert events[-1]["event"] == "error"
        assert "deadline exceeded" in events[-1]["error"]
        assert stats["jobs"]["failed"] == 1
        # The job's session must not have rejoined the warm pool.
        assert pool_stats["idle"] == 0
        assert pool_stats["recycled"] >= 1

    def test_replay_runs_pending_jobs(self, workspace, tmp_path):
        journal_dir = tmp_path / "journal"
        # A daemon accepted a job and was killed before settling it.
        journal = JobJournal(journal_dir)
        journal.accept("job-000042", smoke_pack())
        del journal  # kill -9: no settle, no close

        async def scenario():
            service = RegressionService(
                workspace, journal=JobJournal(journal_dir)
            )
            replayed = await service.replay_pending()
            await service.drain()
            return replayed, service.stats()

        replayed, stats = run_async(scenario())
        assert replayed == 1
        assert stats["jobs"]["completed"] == 1
        assert stats["journal"]["pending"] == 0
        # The settle is durable: a third incarnation replays nothing.
        assert JobJournal(journal_dir).pending_jobs() == []

    def test_ready_reflects_pool_health(self, workspace):
        async def scenario():
            broken_plan = FaultPlan(
                specs=[
                    FaultSpec(
                        site=SITE_POOL_LEASE, action="raise", times=10_000
                    )
                ]
            )
            broken = RegressionService(workspace, fault_plan=broken_plan)
            healthy = RegressionService(workspace)
            broken_ready, _ = await broken.ready()
            healthy_ready, _ = await healthy.ready()
            await healthy.drain()
            drained_ready, reason = await healthy.ready()
            await broken.drain()
            return broken_ready, healthy_ready, drained_ready, reason

        broken_ready, healthy_ready, drained_ready, reason = run_async(
            scenario()
        )
        assert broken_ready is False
        assert healthy_ready is True
        assert drained_ready is False and reason == "draining"

    def test_disconnected_subscriber_does_not_lose_job(
        self, workspace, tmp_path
    ):
        async def scenario():
            service = RegressionService(
                workspace, journal=JobJournal(tmp_path / "journal")
            )
            stream = service.submit(smoke_pack())
            first = await anext(stream)
            assert first["event"] == "accepted"
            await stream.aclose()  # client hangs up mid-stream
            await service.drain()
            return service.stats()

        stats = run_async(scenario())
        assert stats["jobs"]["completed"] == 1
        assert stats["journal"]["pending"] == 0

    def test_stats_shape(self, workspace, tmp_path):
        async def scenario():
            service = RegressionService(
                workspace, journal=JobJournal(tmp_path / "journal")
            )
            stats = service.stats()
            await service.drain()
            return stats

        stats = run_async(scenario())
        assert set(stats) >= {"jobs", "admission", "pool", "journal"}
        assert json.dumps(stats)  # /stats must always serialize
