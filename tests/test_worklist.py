"""Fleet work-list acceptance: lease claims, work stealing, idempotent
publication, chaos containment and multi-process SIGKILL recovery.

The contract (the robustness issue's fleet half): several scheduler
processes sharing one directory divide a matrix by racing lease-based
cell claims; a SIGKILLed worker's cells are stolen by survivors after
its lease expires; publication is first-writer-wins so at-least-once
execution yields exactly-once accounting; corrupt published results are
quarantined and re-derived, never trusted; and healthy-cell verdicts
are byte-identical to a scalar serial run of the same matrix.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import time
from pathlib import Path

import pytest

from repro.core.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    SITE_LEASE_RENEW,
    SITE_SESSION_RUN,
    SITE_STORE_READ,
    SITE_STORE_WRITE,
)
from repro.core.scheduler import RegressionScheduler, result_to_payload
from repro.core.system_env import make_default_system
from repro.core.targets import target as lookup_target
from repro.core.workspace import (
    load_module_environment,
    write_system_environment,
)
from repro.soc.derivatives import derivative as lookup_derivative
from repro.store import WorkList
from repro.store.worklist import cell_key

TARGETS = ["golden", "rtl"]


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    return write_system_environment(
        make_default_system(nvm_tests=2, uart_tests=0),
        tmp_path_factory.mktemp("fleet-ws") / "ws",
    )


def make_scheduler(workspace, worklist=None, fault_plan=None):
    return RegressionScheduler(
        targets=[lookup_target(name) for name in TARGETS],
        executor="serial",
        worklist=worklist,
        fault_plan=fault_plan,
    )


def run_matrix(workspace, worklist=None, fault_plan=None):
    scheduler = make_scheduler(workspace, worklist, fault_plan)
    environments = {"NVM": load_module_environment(Path(workspace) / "NVM")}
    report = scheduler.run_system(
        environments, lookup_derivative("sc88a")
    )
    return scheduler, report


def verdict_bytes(report) -> dict[tuple, bytes]:
    return {
        key: json.dumps(
            result_to_payload(result), sort_keys=True
        ).encode()
        for key, result in report.results.items()
    }


# --------------------------------------------------------------------------
# lease protocol
# --------------------------------------------------------------------------

class TestLease:
    def make(self, tmp_path, **kwargs):
        now = [1_000.0]
        kwargs.setdefault("clock", lambda: now[0])
        kwargs.setdefault("lease_ttl", 10.0)
        return WorkList(tmp_path, **kwargs), now

    def test_claim_is_exclusive_while_live(self, tmp_path):
        worklist, _now = self.make(tmp_path, owner="a")
        rival, _ = self.make(tmp_path, owner="b")
        lease = worklist.claim("cell")
        assert lease is not None and not lease.stolen
        assert rival.claim("cell") is None
        worklist.release(lease)
        assert rival.claim("cell") is not None
        assert worklist.claimed == 1 and worklist.released == 1

    def test_expired_lease_is_stolen_with_nonce_confirm(self, tmp_path):
        worklist, now = self.make(tmp_path, owner="dead")
        survivor, snow = self.make(tmp_path, owner="alive")
        lease = worklist.claim("cell")
        assert lease is not None
        # Dead worker: wall clock passes the expiry on both sides.
        now[0] += 20.0
        snow[0] += 20.0
        stolen = survivor.claim("cell")
        assert stolen is not None and stolen.stolen
        assert survivor.stolen == 1
        # The original holder's release must not unlink the stolen
        # lease: the nonce no longer matches.
        worklist.release(lease)
        assert (tmp_path / "leases" / "cell.lease").exists()

    def test_renew_extends_and_detects_lost_ownership(self, tmp_path):
        worklist, now = self.make(tmp_path, owner="a")
        lease = worklist.claim("cell")
        before = lease.expires
        now[0] += 5.0
        assert worklist.renew(lease)
        assert lease.expires > before
        assert worklist.renewed == 1
        # Another worker steals after expiry; our renew must detect
        # the foreign nonce and mark the lease lost, not clobber it.
        rival, rnow = self.make(tmp_path, owner="thief")
        now[0] += 20.0
        rnow[0] = now[0]
        assert rival.claim("cell") is not None
        assert not worklist.renew(lease)
        assert lease.lost
        assert worklist.lease_lost == 1
        # A lost lease stays lost; renew never resurrects it.
        assert not worklist.renew(lease)

    def test_renew_chaos_site_fires_and_is_contained(self, tmp_path):
        plan = FaultPlan(
            seed=7,
            specs=[FaultSpec(site=SITE_LEASE_RENEW, action="raise")],
        )
        injector = FaultInjector(plan)
        worklist, _now = self.make(tmp_path, injector=injector)
        lease = worklist.claim("cell")
        assert not worklist.renew(lease)
        assert lease.lost
        assert worklist.lease_lost == 1
        assert ("lease-renew", "cell", "raise") in injector.fired

    def test_heartbeat_renews_from_background_thread(self, tmp_path):
        worklist = WorkList(tmp_path, lease_ttl=0.06)
        lease = worklist.claim("cell")
        with worklist.heartbeat(lease, interval=0.02):
            time.sleep(0.15)
        assert worklist.renewed >= 1
        assert not lease.lost

    def test_torn_lease_file_is_claimable(self, tmp_path):
        worklist, _now = self.make(tmp_path)
        (tmp_path / "leases").mkdir(exist_ok=True)
        (tmp_path / "leases" / "cell.lease").write_bytes(b"to")
        lease = worklist.claim("cell")
        assert lease is not None and lease.stolen


# --------------------------------------------------------------------------
# publication
# --------------------------------------------------------------------------

class TestPublish:
    def test_first_writer_wins_and_duplicates_count(self, tmp_path):
        first = WorkList(tmp_path, owner="a")
        second = WorkList(tmp_path, owner="b")
        assert first.publish("cell", {"verdict": "first"})
        assert not second.publish("cell", {"verdict": "second"})
        assert second.duplicates == 1
        # Every reader adopts the canonical first write.
        assert first.fetch("cell") == {"verdict": "first"}
        assert second.fetch("cell") == {"verdict": "first"}
        assert not list(tmp_path.glob("results/*.tmp"))

    def test_corrupt_result_is_quarantined_and_republishable(
        self, tmp_path
    ):
        worklist = WorkList(tmp_path)
        assert worklist.publish("cell", {"verdict": "good"})
        path = tmp_path / "results" / "cell.json"
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        # Corrupt != trusted: counted, renamed aside, cell re-enters
        # the claimable pool and the verdict is re-derived.
        assert worklist.fetch("cell") is None
        assert worklist.corrupt == 1
        assert worklist.quarantined == 1
        assert list((tmp_path / "results").glob("*.corrupt"))
        assert worklist.publish("cell", {"verdict": "rederived"})
        assert worklist.fetch("cell") == {"verdict": "rederived"}

    def test_cell_key_is_deterministic_and_distinct(self):
        key = cell_key("env", "cell", "sc88a", "golden", "digest", 1000)
        assert key == cell_key(
            "env", "cell", "sc88a", "golden", "digest", 1000
        )
        assert key != cell_key(
            "env", "cell", "sc88a", "rtl", "digest", 1000
        )
        assert len(key) == 64

    def test_disabled_worklist_contains_everything(self, tmp_path):
        squatter = tmp_path / "wl"
        squatter.write_text("a file where the work-list should be")
        worklist = WorkList(squatter)
        assert worklist.disabled
        assert worklist.claim("cell") is None
        assert not worklist.publish("cell", {})
        assert worklist.fetch("cell") is None
        assert worklist.stats()["disabled"] == 1


# --------------------------------------------------------------------------
# fleet execution through the scheduler
# --------------------------------------------------------------------------

class TestFleetScheduler:
    def test_second_worker_adopts_every_published_verdict(
        self, workspace, tmp_path
    ):
        _oracle_sched, oracle = run_matrix(workspace)
        _first, first = run_matrix(
            workspace, worklist=WorkList(tmp_path, owner="first")
        )
        assert verdict_bytes(first) == verdict_bytes(oracle)
        assert first.executed_runs == first.total_runs

        second_list = WorkList(tmp_path, owner="second")
        _second_sched, second = run_matrix(workspace, worklist=second_list)
        # Everything was already published: the second worker executes
        # nothing and adopts byte-identical verdicts.
        assert verdict_bytes(second) == verdict_bytes(oracle)
        assert second.fetched_runs == second.total_runs
        assert second.executed_runs == 0
        assert second_list.fetched == second.total_runs

    def test_matrix_completes_under_store_chaos(self, workspace, tmp_path):
        """All three store-layer sites armed hot: every fetch raises,
        every publish raises, every renew raises.  The matrix must
        still complete with locally-derived, byte-identical verdicts —
        store chaos degrades, it never wedges."""
        _oracle_sched, oracle = run_matrix(workspace)
        plan = FaultPlan(
            seed=11,
            specs=[
                FaultSpec(
                    site=SITE_STORE_READ, action="raise", times=10_000
                ),
                FaultSpec(
                    site=SITE_STORE_WRITE, action="raise", times=10_000
                ),
                FaultSpec(
                    site=SITE_LEASE_RENEW, action="raise", times=10_000
                ),
            ],
        )
        worklist = WorkList(tmp_path, lease_ttl=5.0)
        _sched, report = run_matrix(
            workspace, worklist=worklist, fault_plan=plan
        )
        assert verdict_bytes(report) == verdict_bytes(oracle)
        assert report.quarantined_runs == 0
        assert report.total_runs == len(TARGETS) * 2
        # The chaos demonstrably hit the store layer and was counted.
        assert worklist.write_errors == report.total_runs
        assert worklist.corrupt == 0  # nothing was ever published

    def test_quarantined_verdicts_are_never_published(
        self, workspace, tmp_path
    ):
        plan = FaultPlan(
            seed=5,
            specs=[
                FaultSpec(
                    site=SITE_SESSION_RUN,
                    action="raise",
                    times=10_000,
                    match="golden",
                )
            ],
        )
        worklist = WorkList(tmp_path)
        _sched, report = run_matrix(
            workspace, worklist=worklist, fault_plan=plan
        )
        # golden cells quarantine locally; rtl cells publish.
        assert report.quarantined_runs == 2
        assert worklist.published == 2
        published = [
            json.loads(
                json.loads(path.read_text())["payload"]
            )["platform"]
            for path in (tmp_path / "results").glob("*.json")
        ]
        assert published and all(name == "rtl" for name in published)


# --------------------------------------------------------------------------
# multi-process SIGKILL stress (the fleet acceptance test)
# --------------------------------------------------------------------------

def _fleet_worker(
    workspace: str,
    store_dir: str,
    report_path: str,
    owner: str,
    lease_ttl: float,
    kill_on_first_run: bool,
) -> None:
    """One fleet worker process.  The victim variant SIGKILLs itself at
    its first session start — after claiming a lease, before publishing
    anything — exactly the crash the steal protocol exists for."""
    plan = (
        FaultPlan(
            specs=[FaultSpec(site=SITE_SESSION_RUN, action="kill")]
        )
        if kill_on_first_run
        else None
    )
    worklist = WorkList(store_dir, owner=owner, lease_ttl=lease_ttl)
    scheduler = RegressionScheduler(
        targets=[lookup_target(name) for name in TARGETS],
        executor="serial",
        worklist=worklist,
        fault_plan=plan,
        retries=0,
    )
    environments = {"NVM": load_module_environment(Path(workspace) / "NVM")}
    report = scheduler.run_system(
        environments, lookup_derivative("sc88a")
    )
    payload = {
        "results": {
            "/".join(key): json.dumps(
                result_to_payload(result), sort_keys=True
            )
            for key, result in report.results.items()
        },
        "stats": worklist.stats(),
        "counters": {
            "total": report.total_runs,
            "executed": report.executed_runs,
            "fetched": report.fetched_runs,
            "stolen": report.stolen_runs,
            "quarantined": report.quarantined_runs,
        },
    }
    Path(report_path).write_text(json.dumps(payload, sort_keys=True))


def test_sigkilled_worker_is_stolen_and_matrix_settles_exactly_once(
    workspace, tmp_path
):
    """One worker is SIGKILLed mid-shard holding a lease.  Survivors
    must reclaim its cell after expiry, every cell must settle exactly
    once (first-writer-wins accounting), no torn or trusted-corrupt
    artifact may exist, and every verdict must be byte-identical to a
    scalar serial oracle run."""
    store_dir = tmp_path / "fleet"
    lease_ttl = 1.0
    cells = len(TARGETS) * 2  # 2 NVM tests x 2 targets

    victim = multiprocessing.Process(
        target=_fleet_worker,
        args=(
            str(workspace), str(store_dir),
            str(tmp_path / "victim.json"), "victim", lease_ttl, True,
        ),
    )
    victim.start()
    # Let the victim claim its first lease before the survivors start,
    # so a steal is guaranteed to be needed.
    deadline = time.time() + 30.0
    leases = store_dir / "leases"
    while time.time() < deadline:
        if leases.is_dir() and any(leases.glob("*.lease")):
            break
        time.sleep(0.01)
    victim.join(timeout=30.0)
    assert victim.exitcode == -signal.SIGKILL
    assert any(leases.glob("*.lease"))  # the orphaned lease
    assert not (tmp_path / "victim.json").exists()  # died mid-shard

    survivors = [
        multiprocessing.Process(
            target=_fleet_worker,
            args=(
                str(workspace), str(store_dir),
                str(tmp_path / f"survivor{index}.json"),
                f"survivor{index}", lease_ttl, False,
            ),
        )
        for index in range(2)
    ]
    for process in survivors:
        process.start()
    for process in survivors:
        process.join(timeout=120.0)
        assert process.exitcode == 0

    reports = [
        json.loads((tmp_path / f"survivor{index}.json").read_text())
        for index in range(2)
    ]

    # Every survivor saw the whole matrix settle, nothing quarantined.
    for report in reports:
        assert report["counters"]["total"] == cells
        assert report["counters"]["quarantined"] == 0
        assert (
            report["counters"]["executed"]
            + report["counters"]["fetched"]
            == cells
        )

    # The dead worker's cell was stolen, and exactly-once accounting
    # holds: one published file per cell, ever, across the fleet.
    assert sum(r["counters"]["stolen"] for r in reports) >= 1
    assert sum(r["stats"]["stolen"] for r in reports) >= 1
    assert sum(r["stats"]["published"] for r in reports) == cells
    results_dir = store_dir / "results"
    assert len(list(results_dir.glob("*.json"))) == cells

    # Zero torn artifacts: no temp droppings, and a fresh reader
    # verifies every published envelope cleanly.
    assert not list(results_dir.glob(".*.tmp"))
    assert not list(results_dir.glob("*.corrupt"))
    fresh = WorkList(store_dir, owner="auditor")
    for path in results_dir.glob("*.json"):
        assert fresh.fetch(path.stem) is not None
    assert fresh.corrupt == 0

    # Byte-identity against the scalar serial oracle, per cell.
    _oracle_sched, oracle = run_matrix(workspace)
    oracle_map = {
        "/".join(key): payload.decode()
        for key, payload in verdict_bytes(oracle).items()
    }
    for report in reports:
        assert report["results"] == oracle_map
