"""Tests for the ``advm`` command-line driver."""

import pytest

from repro.cli import main
from repro.core.workspace import SYSTEM_DIR_NAME


@pytest.fixture
def workspace(tmp_path):
    code = main(
        ["init", str(tmp_path), "--nvm-tests", "2", "--uart-tests", "1"]
    )
    assert code == 0
    return tmp_path / SYSTEM_DIR_NAME


class TestInitValidate:
    def test_init_writes_tree(self, workspace, capsys):
        assert workspace.is_dir()
        assert (workspace / "Global_Libraries").is_dir()

    def test_validate_clean(self, workspace, capsys):
        assert main(["validate", str(workspace)]) == 0
        assert "tree OK" in capsys.readouterr().out

    def test_validate_parent_dir_accepted(self, workspace, capsys):
        assert main(["validate", str(workspace.parent)]) == 0

    def test_validate_broken_tree(self, workspace, capsys):
        (workspace / "NVM" / "TESTPLAN.TXT").unlink()
        assert main(["validate", str(workspace)]) == 1
        assert "issue:" in capsys.readouterr().out


class TestRun:
    def test_run_passing_test(self, workspace, capsys):
        code = main(
            ["run", str(workspace), "NVM", "TEST_NVM_PAGE_001"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pass" in out
        assert "signature" in out

    def test_run_other_derivative_and_target(self, workspace, capsys):
        code = main(
            [
                "run", str(workspace), "NVM", "TEST_NVM_PAGE_001",
                "--derivative", "sc88c", "--target", "rtl",
            ]
        )
        assert code == 0
        assert "rtl/sc88c" in capsys.readouterr().out

    def test_run_unknown_derivative_raises(self, workspace):
        with pytest.raises(KeyError):
            main(
                [
                    "run", str(workspace), "NVM", "TEST_NVM_PAGE_001",
                    "--derivative", "sc99",
                ]
            )


class TestRegress:
    def test_module_regression(self, workspace, capsys):
        code = main(
            [
                "regress", str(workspace), "NVM",
                "--targets", "golden,rtl",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "golden" in out and "rtl" in out
        assert "0 divergence(s)" in out

    def test_system_regression(self, workspace, capsys):
        code = main(
            ["regress", str(workspace), "--targets", "golden"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "NVM/" in out and "UART/" in out

    def test_engine_stats_summary(self, workspace, capsys):
        code = main(
            [
                "regress", str(workspace), "NVM",
                "--targets", "golden", "--engine-stats",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "engine-stats:" in out
        assert "sb_replays=" in out
        assert "jit_exec_steps=" in out
        assert "registry_size=" in out


class TestPort:
    def test_port_command(self, capsys):
        code = main(["port", "--suite", "2", "--to", "sc88b"])
        assert code == 0
        out = capsys.readouterr().out
        assert "saving factor" in out


class TestGrepPlan:
    def test_grep_hits(self, workspace, capsys):
        code = main(["grep-plan", str(workspace), "NVM_"])
        assert code == 0
        out = capsys.readouterr().out
        assert "NVM_001" in out

    def test_grep_miss(self, workspace, capsys):
        code = main(["grep-plan", str(workspace), "ZZZ_NO_MATCH"])
        assert code == 1


class TestCheck:
    def test_clean_module(self, workspace, capsys):
        code = main(["check", str(workspace), "NVM"])
        assert code == 0
        assert "no abstraction-layer violations" in capsys.readouterr().out

    def test_abusive_module_flagged(self, workspace, capsys):
        abusive_dir = workspace / "NVM" / "TEST_ABUSE"
        abusive_dir.mkdir()
        (abusive_dir / "test.asm").write_text(
            ".INCLUDE Globals.inc\n"
            "_main:\n"
            "    LOAD a4, 0xF0002000\n"
            "    JMP Base_Report_Pass\n"
        )
        code = main(["check", str(workspace), "NVM"])
        assert code == 1
        assert "violation:" in capsys.readouterr().out


class TestDerivatives:
    def test_catalogue_listing(self, capsys):
        assert main(["derivatives"]) == 0
        out = capsys.readouterr().out
        for name in ("sc88a", "sc88b", "sc88c", "sc88d"):
            assert name in out
