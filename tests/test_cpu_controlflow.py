"""Execution tests for control flow, stack, traps and interrupts."""

import pytest

from repro.assembler.assembler import Assembler
from repro.assembler.linker import Linker
from repro.platforms.cpu import CpuCore, CpuFault
from repro.soc.bus import Bus, Memory
from repro.soc.peripherals.intc import InterruptController

RAM_BASE = 0x1000_0000
TEXT_BASE = 0x0000_0200


def build_cpu(source: str, with_intc: bool = False):
    asm = Assembler()
    obj = asm.assemble_source(source, "prog.asm")
    image = Linker(text_base=TEXT_BASE, data_base=RAM_BASE).link([obj])
    bus = Bus()
    rom = Memory(0x8_0000, read_only=True)
    ram = Memory(0x1_0000)
    bus.attach("rom", 0, 0x8_0000, rom)
    bus.attach("ram", RAM_BASE, 0x1_0000, ram)
    intc = None
    if with_intc:
        intc = InterruptController()
        bus.attach("intc", 0xF000_0000, 0x100, intc)
    for segment in image.segments:
        if segment.base >= RAM_BASE:
            ram.load(segment.base - RAM_BASE, segment.data)
        else:
            rom.load(segment.base, segment.data)
    cpu = CpuCore(bus, intc=intc)
    cpu.reset(image.entry, RAM_BASE + 0xF000)
    return cpu, intc


def run(source: str, max_steps: int = 20_000, with_intc: bool = False):
    cpu, intc = build_cpu(source, with_intc)
    for _ in range(max_steps):
        if cpu.halted:
            break
        cpu.step()
    assert cpu.halted
    return cpu


class TestJumps:
    def test_unconditional_jump(self):
        cpu = run(
            "_main:\n    JMP over\n    LOAD d1, 1\n"
            "over:\n    LOAD d2, 2\n    HALT\n"
        )
        assert cpu.regs.data[1] == 0
        assert cpu.regs.data[2] == 2

    @pytest.mark.parametrize(
        "setup,jump,taken",
        [
            ("    LOAD d1, 5\n    CMPI d1, 5\n", "JZ", True),
            ("    LOAD d1, 5\n    CMPI d1, 4\n", "JZ", False),
            ("    LOAD d1, 5\n    CMPI d1, 4\n", "JNZ", True),
            ("    LOAD d1, 3\n    CMPI d1, 7\n", "JC", True),  # borrow
            ("    LOAD d1, 9\n    CMPI d1, 7\n", "JNC", True),
            ("    LOAD d1, 3\n    CMPI d1, 7\n", "JN", True),
            ("    LOAD d1, 9\n    CMPI d1, 7\n", "JNN", True),
            ("    LOAD d1, 9\n    CMPI d1, 7\n", "JGE", True),
            ("    LOAD d1, 3\n    CMPI d1, 7\n", "JLT", True),
            ("    LOAD d1, 9\n    CMPI d1, 7\n", "JGT", True),
            ("    LOAD d1, 7\n    CMPI d1, 7\n", "JLE", True),
            ("    LOAD d1, 7\n    CMPI d1, 7\n", "JGT", False),
        ],
    )
    def test_conditional_jumps(self, setup, jump, taken):
        cpu = run(
            f"_main:\n{setup}    {jump} yes\n"
            "    LOAD d9, 2\n    HALT\n"
            "yes:\n    LOAD d9, 1\n    HALT\n"
        )
        assert cpu.regs.data[9] == (1 if taken else 2)

    def test_signed_comparison_wraps(self):
        # -1 < 1 signed, but 0xFFFFFFFF > 1 unsigned.
        cpu = run(
            "_main:\n    LOAD d1, 0xFFFFFFFF\n    LOAD d2, 1\n"
            "    CMP d1, d2\n    JLT neg\n"
            "    LOAD d9, 2\n    HALT\n"
            "neg:\n    LOAD d9, 1\n    HALT\n"
        )
        assert cpu.regs.data[9] == 1

    def test_djnz_loop(self):
        cpu = run(
            "_main:\n    LOAD d1, 5\n    LOAD d2, 0\n"
            "loop:\n    ADDI d2, d2, 3\n    DJNZ d1, loop\n    HALT\n"
        )
        assert cpu.regs.data[2] == 15
        assert cpu.regs.data[1] == 0


class TestCallsAndStack:
    def test_call_return(self):
        cpu = run(
            "_main:\n    CALL fn\n    LOAD d2, 2\n    HALT\n"
            "fn:\n    LOAD d1, 1\n    RETURN\n"
        )
        assert cpu.regs.data[1] == 1
        assert cpu.regs.data[2] == 2

    def test_indirect_call_via_paper_pattern(self):
        cpu = run(
            ".DEFINE CallAddr A12\n"
            "_main:\n"
            "    LOAD CallAddr, fn\n"
            "    CALL CallAddr\n"
            "    HALT\n"
            "fn:\n    LOAD d1, 42\n    RETURN\n"
        )
        assert cpu.regs.data[1] == 42

    def test_nested_calls(self):
        cpu = run(
            "_main:\n    CALL a_fn\n    HALT\n"
            "a_fn:\n    CALL b_fn\n    ADDI d1, d1, 1\n    RETURN\n"
            "b_fn:\n    LOAD d1, 10\n    RETURN\n"
        )
        assert cpu.regs.data[1] == 11

    def test_push_pop_preserve(self):
        cpu = run(
            "_main:\n    LOAD d1, 7\n    LOAD a4, 0x123\n"
            "    PUSH d1\n    PUSH a4\n"
            "    LOAD d1, 0\n    LOAD a4, 0\n"
            "    POP a4\n    POP d1\n    HALT\n"
        )
        assert cpu.regs.data[1] == 7
        assert cpu.regs.address[4] == 0x123

    def test_stack_pointer_balance(self):
        cpu, _ = build_cpu("_main:\n    CALL fn\n    HALT\nfn:\n    RETURN\n")
        initial_sp = cpu.regs.sp
        while not cpu.halted:
            cpu.step()
        assert cpu.regs.sp == initial_sp


class TestTraps:
    VECTORS = (
        ".SECTION vectors\n.ORG 0\n"
        "    .WORD 0\n"          # 0: reset
        "    .WORD handler\n"    # 1: div-zero
        "    .WORD handler\n"    # 2: illegal
        "    .WORD 0\n"          # 3: misaligned (unhandled)
        "    .WORD handler\n"    # 4: bus error
        "    .WORD 0, 0, 0\n"
        "    .WORD handler\n"    # 8: irq line 0
        ".SECTION text\n"
    )

    def test_software_trap_and_reti(self):
        cpu = run(
            self.VECTORS
            + "_main:\n    TRAP 1\n    LOAD d2, 2\n    HALT\n"
            "handler:\n    LOAD d1, 1\n    RETI\n"
        )
        assert cpu.regs.data[1] == 1
        assert cpu.regs.data[2] == 2  # resumed after the trap

    def test_trap_disables_interrupts_until_reti(self):
        cpu = run(
            self.VECTORS
            + "_main:\n    EI\n    TRAP 1\n    RDPSW d3\n    HALT\n"
            "handler:\n    RDPSW d1\n    RETI\n"
        )
        assert cpu.regs.data[1] & 0x80 == 0   # IE clear inside handler
        assert cpu.regs.data[3] & 0x80 == 0x80  # restored by RETI

    def test_divide_by_zero_traps(self):
        cpu = run(
            self.VECTORS
            + "_main:\n    LOAD d1, 5\n    LOAD d2, 0\n"
            "    DIVU d3, d1, d2\n    HALT\n"
            "handler:\n    LOAD d9, 1\n    RETI\n"
        )
        assert cpu.regs.data[9] == 1

    def test_unhandled_trap_faults(self):
        cpu, _ = build_cpu("_main:\n    TRAP 7\n    HALT\n")
        with pytest.raises(CpuFault, match="unhandled trap"):
            for _ in range(10):
                cpu.step()

    def test_bus_error_traps(self):
        cpu = run(
            self.VECTORS
            + "_main:\n    LOAD d1, [0x70000000]\n    HALT\n"
            "handler:\n    LOAD d9, 4\n    RETI\n"
        )
        assert cpu.regs.data[9] == 4

    def test_illegal_opcode_traps(self):
        cpu = run(
            self.VECTORS
            + "_main:\n    .WORD 0xFF000000\n    HALT\n"
            "handler:\n    LOAD d9, 2\n    RETI\n"
        )
        assert cpu.regs.data[9] == 2


class TestInterrupts:
    def test_pending_line_taken_when_enabled(self):
        source = TestTraps.VECTORS + (
            "_main:\n    EI\n"
            "    NOP\n    NOP\n    HALT\n"
            "handler:\n    LOAD d9, 1\n"
            # acknowledge: clear pending line 0 in the INTC
            "    LOAD a6, 0xF0000004\n"
            "    LOAD d6, 1\n"
            "    ST.W [a6], d6\n"
            "    RETI\n"
        )
        cpu, intc = build_cpu(source, with_intc=True)
        intc.set_reg("INT_EN", 1)
        intc.raise_line(0)
        for _ in range(100):
            if cpu.halted:
                break
            cpu.step()
        assert cpu.halted
        assert cpu.regs.data[9] == 1

    def test_masked_interrupt_not_taken(self):
        source = TestTraps.VECTORS + (
            "_main:\n    NOP\n    NOP\n    HALT\n"
            "handler:\n    LOAD d9, 1\n    RETI\n"
        )
        cpu, intc = build_cpu(source, with_intc=True)
        intc.set_reg("INT_EN", 1)
        intc.raise_line(0)
        # IE never set -> interrupt must not fire.
        for _ in range(100):
            if cpu.halted:
                break
            cpu.step()
        assert cpu.regs.data[9] == 0


class TestTiming:
    def test_cycle_accounting_with_waits(self):
        source = "_main:\n    LOAD d1, 5\n    HALT\n"
        asm = Assembler()
        obj = asm.assemble_source(source, "prog.asm")
        image = Linker(text_base=TEXT_BASE, data_base=RAM_BASE).link([obj])

        def executed_cycles(charge: bool) -> int:
            bus = Bus()
            rom = Memory(0x8_0000, read_only=True)
            bus.attach("rom", 0, 0x8_0000, rom, wait_states=2)
            for segment in image.segments:
                rom.load(segment.base, segment.data)
            cpu = CpuCore(bus, charge_wait_states=charge)
            cpu.reset(image.entry, 0)
            while not cpu.halted:
                cpu.step()
            return cpu.cycles

        assert executed_cycles(True) > executed_cycles(False)

    def test_instructions_retired_counted(self):
        cpu = run("_main:\n    NOP\n    NOP\n    NOP\n    HALT\n")
        assert cpu.instructions_retired == 4

    def test_brk_records_event_and_continues(self):
        cpu = run("_main:\n    BRK\n    LOAD d1, 1\n    HALT\n")
        assert len(cpu.brk_events) == 1
        assert cpu.regs.data[1] == 1

    def test_trace_capture(self):
        cpu, _ = build_cpu("_main:\n    NOP\n    HALT\n")
        cpu.enable_trace()
        while not cpu.halted:
            cpu.step()
        assert [t.mnemonic for t in cpu.trace] == ["NOP", "HALT"]
