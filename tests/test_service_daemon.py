"""HTTP-layer and chaos-acceptance tests for the serving daemon.

The acceptance bar, from the robustness issue: with faults armed at
every one of the eight injection sites against a *live* daemon, every
accepted request terminates with a result or an explicit FAULT; the
readiness probe never reports ready over a broken pool; and a
``kill -9`` between accept and settle replays the journal with zero
loss on restart.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core.faults import (
    ALL_SITES,
    FaultPlan,
    FaultSpec,
    SITE_BATCH_PEEL,
    SITE_CACHE_READ,
    SITE_CACHE_WRITE,
    SITE_JOURNAL_WRITE,
    SITE_LEASE_RENEW,
    SITE_POOL_LEASE,
    SITE_SERVICE_ACCEPT,
    SITE_SESSION_RUN,
    SITE_STORE_READ,
    SITE_STORE_WRITE,
    SITE_WORKER_BOOT,
)
from repro.core.scheduler import ResultCache
from repro.core.system_env import make_default_system
from repro.core.workspace import write_system_environment
from repro.isa.decodecache import reset_registry, set_artifact_store
from repro.service import JobJournal, RegressionService, ServiceDaemon
from repro.store import ArtifactStore

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")

REQUEST_TIMEOUT = 60.0


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    system = make_default_system(nvm_tests=1, uart_tests=0)
    return write_system_environment(
        system, tmp_path_factory.mktemp("daemon-ws") / "ws"
    )


def smoke_pack(**overrides) -> dict:
    pack = {
        "schema": 1,
        "name": "smoke",
        "modules": ["NVM"],
        "targets": ["golden"],
        "executor": "serial",
    }
    pack.update(overrides)
    return pack


async def http_request(port: int, method: str, path: str, body=None):
    """One request against the daemon; returns ``(status, headers,
    ndjson_objects)``.  Every daemon response closes the connection, so
    body framing is read-to-EOF."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        payload = b"" if body is None else json.dumps(body).encode()
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: daemon\r\n"
            f"Content-Length: {len(payload)}\r\n\r\n"
        )
        writer.write(head.encode() + payload)
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout=REQUEST_TIMEOUT)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:
            pass
    head_bytes, _, body_bytes = raw.partition(b"\r\n\r\n")
    head_lines = head_bytes.decode("latin-1").split("\r\n")
    status = int(head_lines[0].split(" ")[1])
    headers = {}
    for line in head_lines[1:]:
        key, _, value = line.partition(":")
        headers[key.strip().lower()] = value.strip()
    events = [
        json.loads(line)
        for line in body_bytes.splitlines()
        if line.strip()
    ]
    return status, headers, events


async def start_daemon(service: RegressionService) -> ServiceDaemon:
    daemon = ServiceDaemon(service, port=0)
    await daemon.start()
    return daemon


class TestHttpLayer:
    def test_probes_and_routes(self, workspace):
        async def scenario():
            daemon = await start_daemon(RegressionService(workspace))
            port = daemon.port
            results = {
                "healthz": await http_request(port, "GET", "/healthz"),
                "readyz": await http_request(port, "GET", "/readyz"),
                "stats": await http_request(port, "GET", "/stats"),
                "missing": await http_request(port, "GET", "/nope"),
                "bad_json": await http_request(port, "POST", "/submit"),
                "bad_pack": await http_request(
                    port, "POST", "/submit", body={"schema": 99}
                ),
            }
            await daemon.shutdown()
            return results

        results = asyncio.run(scenario())
        assert results["healthz"][0] == 200
        assert results["readyz"][0] == 200
        assert results["readyz"][2][0]["ready"] is True
        assert results["stats"][0] == 200
        assert "pool" in results["stats"][2][0]
        assert results["missing"][0] == 404
        assert results["bad_json"][0] == 400
        assert results["bad_pack"][0] == 400
        assert "schema" in results["bad_pack"][2][0]["error"]

    def test_submit_streams_ndjson(self, workspace):
        async def scenario():
            daemon = await start_daemon(RegressionService(workspace))
            status, headers, events = await http_request(
                daemon.port, "POST", "/submit", body=smoke_pack()
            )
            await daemon.shutdown()
            return status, headers, events

        status, headers, events = asyncio.run(scenario())
        assert status == 200
        assert headers["content-type"] == "application/x-ndjson"
        kinds = [event["event"] for event in events]
        assert kinds[0] == "accepted"
        assert "cell" in kinds
        assert kinds[-1] == "done"
        assert events[-1]["clean"] is True

    def test_load_shed_is_503_with_retry_after(self, workspace):
        async def scenario():
            service = RegressionService(
                workspace, max_pending=1, retry_after=7.0
            )
            daemon = await start_daemon(service)
            service._active = 1  # a job is mid-flight
            status, headers, events = await http_request(
                daemon.port, "POST", "/submit", body=smoke_pack()
            )
            service._active = 0
            await daemon.shutdown()
            return status, headers, events

        status, headers, events = asyncio.run(scenario())
        assert status == 503
        assert headers["retry-after"] == "7"
        assert "queue full" in events[0]["error"]

    def test_readyz_never_ready_over_broken_pool(self, workspace):
        async def scenario():
            plan = FaultPlan(
                specs=[
                    FaultSpec(
                        site=SITE_POOL_LEASE, action="raise", times=10_000
                    )
                ]
            )
            daemon = await start_daemon(
                RegressionService(workspace, fault_plan=plan)
            )
            ready = await http_request(daemon.port, "GET", "/readyz")
            alive = await http_request(daemon.port, "GET", "/healthz")
            await daemon.shutdown()
            return ready, alive

        ready, alive = asyncio.run(scenario())
        assert ready[0] == 503
        assert ready[2][0]["ready"] is False
        assert "retry-after" in ready[1]
        # Liveness is orthogonal: the process is up, just not ready.
        assert alive[0] == 200

    def test_shutdown_stops_accepting(self, workspace):
        async def scenario():
            daemon = await start_daemon(RegressionService(workspace))
            port = daemon.port
            await daemon.shutdown()
            try:
                await http_request(port, "GET", "/healthz")
            except OSError:
                return "refused"
            return "accepted"

        assert asyncio.run(scenario()) == "refused"


# --------------------------------------------------------------------------
# chaos acceptance: all eight sites against a live daemon
# --------------------------------------------------------------------------

CHAOS_CASES = {
    SITE_WORKER_BOOT: (
        FaultSpec(site=SITE_WORKER_BOOT, action="raise"),
        smoke_pack(executor="process", jobs=2),
    ),
    SITE_SESSION_RUN: (
        FaultSpec(site=SITE_SESSION_RUN, action="raise", times=10),
        smoke_pack(),
    ),
    SITE_BATCH_PEEL: (
        FaultSpec(site=SITE_BATCH_PEEL, action="raise"),
        smoke_pack(executor="batch", targets=["golden", "rtl"]),
    ),
    SITE_CACHE_READ: (
        FaultSpec(site=SITE_CACHE_READ, action="corrupt"),
        smoke_pack(),
    ),
    SITE_CACHE_WRITE: (
        FaultSpec(site=SITE_CACHE_WRITE, action="raise"),
        smoke_pack(),
    ),
    SITE_SERVICE_ACCEPT: (
        FaultSpec(site=SITE_SERVICE_ACCEPT, action="raise"),
        smoke_pack(),
    ),
    SITE_POOL_LEASE: (
        FaultSpec(site=SITE_POOL_LEASE, action="raise"),
        smoke_pack(),
    ),
    SITE_JOURNAL_WRITE: (
        FaultSpec(site=SITE_JOURNAL_WRITE, action="raise"),
        smoke_pack(),
    ),
    # Artifact-store sites: the daemon persists warmed decode state
    # after every job (store-write) and consults the store on registry
    # misses (store-read; the scenario resets the registry between its
    # two submissions so the second one demonstrably reads back what
    # the first one persisted — under injected corruption).
    SITE_STORE_READ: (
        FaultSpec(site=SITE_STORE_READ, action="corrupt", times=10),
        smoke_pack(),
    ),
    SITE_STORE_WRITE: (
        FaultSpec(site=SITE_STORE_WRITE, action="raise", times=10),
        smoke_pack(),
    ),
}


def test_chaos_cases_cover_every_site():
    """Every injection site is chaos-tested against a live daemon —
    except ``lease-renew``, which only exists on the fleet work-list
    (the daemon holds no cell leases); its live chaos coverage is the
    fleet suite in ``tests/test_worklist.py``."""
    assert set(CHAOS_CASES) | {SITE_LEASE_RENEW} == set(ALL_SITES)
    assert SITE_LEASE_RENEW not in CHAOS_CASES


@pytest.mark.parametrize("site", sorted(CHAOS_CASES))
def test_chaos_every_accepted_request_terminates(workspace, tmp_path, site):
    """With a fault armed at *site*, a live daemon either refuses the
    submission explicitly (4xx/5xx with a reason) or terminates it with
    a ``done``/``error`` event — never a hang, never silence — and
    keeps serving afterwards."""
    spec, pack = CHAOS_CASES[site]

    async def scenario():
        service = RegressionService(
            workspace,
            journal=JobJournal(tmp_path / "journal"),
            cache=ResultCache(tmp_path / "cache"),
            store=ArtifactStore(tmp_path / "store"),
            fault_plan=FaultPlan(seed=3, specs=[spec]),
        )
        try:
            daemon = await start_daemon(service)
            outcomes = []
            # Two submissions: cache/store faults need a second pass to
            # hit the read path, and windowed faults prove recovery on
            # the retry.
            for attempt in range(2):
                body = pack
                if attempt and site == SITE_STORE_READ:
                    # Force the second submission to warm-start from
                    # the store (registry miss -> store read), where
                    # the armed corruption is waiting.  The bumped
                    # instruction budget changes the *result*-cache
                    # key (else the run is a cache hit and never
                    # decodes) but not the decode/store key.
                    reset_registry()
                    body = dict(pack, max_instructions=1_000_001)
                status, _headers, events = await http_request(
                    daemon.port, "POST", "/submit", body=body
                )
                outcomes.append((status, events))
            alive = await http_request(daemon.port, "GET", "/healthz")
            stats = service.stats()
            await daemon.shutdown()
        finally:
            # The service installed its store process-globally; do not
            # leak it into unrelated tests.
            set_artifact_store(None)
        return outcomes, alive, stats

    outcomes, alive, stats = asyncio.run(
        asyncio.wait_for(scenario(), timeout=120)
    )
    for status, events in outcomes:
        if status == 200:
            # Accepted: the stream must carry a terminal event.
            assert events[0]["event"] == "accepted"
            assert events[-1]["event"] in ("done", "error")
        else:
            # Refused: explicitly, with a reason.
            assert status in (400, 500, 503)
            assert events and "error" in events[0]
    assert alive[0] == 200
    # Accounting balances: everything accepted reached a verdict.
    jobs = stats["jobs"]
    assert jobs["accepted"] == jobs["completed"] + jobs["failed"]
    assert stats["journal"]["pending"] == 0
    # The store sites must demonstrably have fired — and been
    # contained: corruption quarantined (never trusted), write faults
    # counted, the jobs above still terminated.
    if site == SITE_STORE_READ:
        assert stats["store"]["corrupt"] >= 1
        assert stats["store"]["quarantined"] >= 1
    elif site == SITE_STORE_WRITE:
        assert stats["store"]["write_errors"] >= 1


def test_kill9_between_accept_and_settle_replays_zero_loss(
    workspace, tmp_path
):
    """A daemon killed after acknowledging a job but before settling it
    must re-run that job from the journal on restart."""
    journal_dir = tmp_path / "journal"
    first = JobJournal(journal_dir)
    first.accept("job-000007", smoke_pack(name="orphan"))
    # kill -9: the handle is abandoned, never settled, never closed.
    del first

    async def scenario():
        service = RegressionService(
            workspace, journal=JobJournal(journal_dir)
        )
        daemon = await start_daemon(service)  # start() replays
        for _ in range(500):
            if service.stats()["journal"]["pending"] == 0:
                break
            await asyncio.sleep(0.01)
        stats = service.stats()
        await daemon.shutdown()
        return stats

    stats = asyncio.run(asyncio.wait_for(scenario(), timeout=60))
    assert stats["jobs"]["replayed"] == 1
    assert stats["jobs"]["completed"] == 1
    assert stats["journal"]["pending"] == 0
    # Durable: a third incarnation has nothing left to replay.
    reborn = JobJournal(journal_dir)
    assert reborn.pending_jobs() == []
    reborn.close()
