"""Tests for derivatives, embedded software and the assembled device."""

import pytest

from repro.assembler.assembler import Assembler
from repro.assembler.linker import Linker
from repro.soc.derivatives import (
    CATALOGUE,
    SC88A,
    SC88B,
    SC88C,
    SC88D,
    all_derivatives,
    derivative,
)
from repro.soc.device import SystemOnChip
from repro.soc.embedded import (
    assemble_embedded_software,
    es_abi,
    es_source,
)
from repro.soc.memorymap import ES_ROM_BASE, MemoryMap


class TestDerivativeCatalogue:
    def test_four_derivatives(self):
        assert sorted(CATALOGUE) == ["sc88a", "sc88b", "sc88c", "sc88d"]
        assert len(all_derivatives()) == 4

    def test_lookup_case_insensitive(self):
        assert derivative("SC88A") is SC88A

    def test_unknown_derivative_raises(self):
        with pytest.raises(KeyError, match="available"):
            derivative("sc99x")

    def test_page_field_changes_match_paper(self):
        # Figure 6's derivative change: field widened 5 -> 6.
        assert SC88A.page_field_width == 5
        assert SC88B.page_field_width == 6
        assert SC88B.nvm_pages == 64
        # Figure 6's specification change: field shifted by one.
        assert SC88C.page_field_pos == SC88A.page_field_pos + 1

    def test_register_rename_in_sc88c(self):
        assert SC88A.nvm_ctrl_name == "NVM_CTRL"
        assert SC88C.nvm_ctrl_name == "NVM_CONTROL"
        register_map = SC88C.register_map()
        assert register_map.register_address("NVM.NVM_CONTROL")
        with pytest.raises(KeyError):
            register_map.register_address("NVM.NVM_CTRL")

    def test_uart_rebased_in_sc88c(self):
        a = SC88A.register_map().register_address("UART.UART_CTRL")
        c = SC88C.register_map().register_address("UART.UART_CTRL")
        assert a != c

    def test_es_rewrite_in_sc88d(self):
        # Figure 7's scenario.
        assert SC88A.es_version == 1
        assert SC88D.es_version == 2
        assert SC88D.wdt_service_key != SC88A.wdt_service_key
        assert SC88D.timer_counter_width == 32

    def test_predefine_names(self):
        assert SC88A.predefine == "DERIVATIVE_SC88A"

    def test_memory_map_scales_with_pages(self):
        assert SC88B.memory_map().nvm.size == 2 * SC88A.memory_map().nvm.size


class TestEmbeddedSoftware:
    def test_abi_versions(self):
        v1, v2 = es_abi(1), es_abi(2)
        assert v1.init_register_symbol == "ES_Init_Register"
        assert v2.init_register_symbol == "ES_InitRegister"
        assert (v1.init_addr_reg, v1.init_value_reg) == ("a4", "d4")
        assert (v2.init_addr_reg, v2.init_value_reg) == ("a5", "d5")

    def test_unknown_version_raises(self):
        with pytest.raises(ValueError):
            es_abi(3)

    def test_sources_assemble(self):
        for version in (1, 2):
            obj = assemble_embedded_software(version)
            assert obj.sections["estext"].org == ES_ROM_BASE
            assert "ES_Get_Version" in obj.symbols

    def test_v1_and_v2_differ_in_entry_symbol(self):
        v1 = assemble_embedded_software(1)
        v2 = assemble_embedded_software(2)
        assert "ES_Init_Register" in v1.symbols
        assert "ES_Init_Register" not in v2.symbols
        assert "ES_InitRegister" in v2.symbols

    def test_es_init_register_works(self):
        """Run the firmware function bare-metal: write a value through it."""
        asm = Assembler()
        test = asm.assemble_source(
            "_main:\n"
            f"    LOAD a4, 0x10000040\n"
            "    LOAD d4, 0x77\n"
            "    CALL ES_Init_Register\n"
            "    HALT\n",
            "t.asm",
        )
        es = assemble_embedded_software(1, asm)
        memory_map = MemoryMap()
        image = Linker(
            text_base=memory_map.text_base, data_base=memory_map.data_base
        ).link([test, es])
        soc = SystemOnChip(SC88A)
        soc.load_image(image)
        from repro.platforms.cpu import CpuCore

        cpu = CpuCore(soc.bus)
        cpu.reset(image.entry, soc.memory_map.stack_top)
        while not cpu.halted:
            cpu.step()
        assert soc.bus.peek_word(0x1000_0040) == 0x77


class TestSystemOnChip:
    def test_construction_per_derivative(self):
        for deriv in all_derivatives():
            soc = SystemOnChip(deriv)
            assert soc.nvm.pages == deriv.nvm_pages
            assert soc.wdt.service_key == deriv.wdt_service_key

    def test_peripheral_bus_mapping(self):
        soc = SystemOnChip(SC88A)
        ctrl_address = soc.register_map.register_address("NVM.NVM_CTRL")
        soc.bus.poke_word(ctrl_address, 0)
        assert soc.bus.peek_word(ctrl_address) == 0

    def test_irq_collection(self):
        soc = SystemOnChip(SC88A)
        soc.intc.set_reg("INT_EN", 0xFF)
        reload_address = soc.register_map.register_address("TIMER.TIM_RELOAD")
        ctrl_address = soc.register_map.register_address("TIMER.TIM_CTRL")
        soc.bus.poke_word(reload_address, 3)
        soc.bus.poke_word(ctrl_address, 0b11)  # EN|IE
        soc.tick(10)
        from repro.soc.peripherals.intc import LINE_TIMER

        assert soc.intc.pending_line() == LINE_TIMER

    def test_result_probes(self):
        soc = SystemOnChip(SC88A)
        soc.bus.poke_word(soc.memory_map.result_address, 0x1234)
        assert soc.result_word() == 0x1234
        gpio_out = soc.register_map.register_address("GPIO.GPIO_OUT")
        gpio_dir = soc.register_map.register_address("GPIO.GPIO_DIR")
        soc.bus.poke_word(gpio_dir, 0b11)
        soc.bus.poke_word(gpio_out, 0b11)
        assert soc.done_pin() == 1 and soc.pass_pin() == 1

    def test_load_image_routes_regions(self):
        soc = SystemOnChip(SC88A)
        from repro.assembler.linker import MemoryImage, PlacedSection

        image = MemoryImage(
            segments=[
                PlacedSection("o", "text", 0x200, b"\x01\x02\x03\x04"),
                PlacedSection("o", "data", 0x1000_0000, b"\x05\x06\x07\x08"),
            ]
        )
        soc.load_image(image)
        assert soc.bus.peek_word(0x200) == 0x04030201
        assert soc.bus.peek_word(0x1000_0000) == 0x08070605

    def test_load_image_outside_regions_rejected(self):
        soc = SystemOnChip(SC88A)
        from repro.assembler.linker import MemoryImage, PlacedSection

        image = MemoryImage(
            segments=[PlacedSection("o", "text", 0x7000_0000, b"\x00" * 4)]
        )
        with pytest.raises(ValueError, match="outside"):
            soc.load_image(image)

    def test_reset_clears_state(self):
        soc = SystemOnChip(SC88A)
        soc.bus.poke_word(soc.memory_map.result_address, 0xFF)
        soc.uart.tx_log.append(1)
        soc.reset()
        assert soc.result_word() == 0
        assert soc.uart.tx_log == []
