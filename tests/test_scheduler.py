"""Tests for the parallel, cached regression scheduler."""

import pytest

from repro.cli import main
from repro.core.regression import RegressionRunner
from repro.core.scheduler import (
    RegressionScheduler,
    ResultCache,
    RunRequest,
    result_from_payload,
    result_to_payload,
)
from repro.core.targets import TARGET_GOLDEN, all_targets, target
from repro.core.workloads import make_nvm_environment, make_uart_environment
from repro.core.workspace import SYSTEM_DIR_NAME
from repro.isa.instructions import Opcode
from repro.platforms import GateLevelSim, NetlistFault, RunStatus
from repro.soc.derivatives import SC88A


def status_matrix(report):
    return {key: result.status for key, result in report.results.items()}


def make_environments():
    return {
        "NVM": make_nvm_environment(2),
        "UART": make_uart_environment(1),
    }


class TestWorkList:
    def test_work_list_covers_matrix(self):
        env = make_nvm_environment(2)
        scheduler = RegressionScheduler()
        work = scheduler._work_list({"NVM": env}, SC88A)
        assert len(work) == 2 * len(all_targets())
        requests = {request for request, _image, _tgt in work}
        assert (
            RunRequest("NVM", "TEST_NVM_PAGE_001", "sc88a", "golden")
            in requests
        )

    def test_equal_build_inputs_share_one_image(self):
        # golden/accelerator and bondout/silicon have identical target
        # defines, so the work-list must reuse their built images.
        env = make_nvm_environment(1)
        work = RegressionScheduler()._work_list({"NVM": env}, SC88A)
        image_by_target = {
            request.target: image for request, image, _tgt in work
        }
        assert image_by_target["golden"] is image_by_target["accelerator"]
        assert image_by_target["bondout"] is image_by_target["silicon"]
        assert image_by_target["golden"] is not image_by_target["rtl"]


class TestExecutors:
    def test_serial_matches_legacy_runner(self):
        report = RegressionScheduler().run_system(
            make_environments(), SC88A
        )
        legacy = RegressionRunner().run_system(make_environments(), SC88A)
        assert status_matrix(report) == status_matrix(legacy)
        assert report.clean

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_pooled_matches_serial(self, executor):
        serial = RegressionScheduler().run_system(
            make_environments(), SC88A
        )
        pooled = RegressionScheduler(jobs=3, executor=executor).run_system(
            make_environments(), SC88A
        )
        assert status_matrix(pooled) == status_matrix(serial)
        assert pooled.executed_runs == pooled.total_runs

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError):
            RegressionScheduler(executor="carrier-pigeon")

    def test_divergence_attribution_with_overrides(self):
        fault = NetlistFault(
            opcode=int(Opcode.SETB),
            xor_mask=0x1,
            description="stuck bit",
        )
        scheduler = RegressionScheduler(
            jobs=2,
            executor="thread",
            platform_overrides={"gatelevel": GateLevelSim(fault=fault)},
        )
        report = scheduler.run_environment(make_nvm_environment(2), SC88A)
        assert set(report.suspect_platforms()) == {"gatelevel"}
        assert report.suspect_platforms()["gatelevel"] == 2


class TestResultCache:
    def test_roundtrip_payload(self):
        env = make_nvm_environment(1)
        result = env.run_test("TEST_NVM_PAGE_001", SC88A, "rtl")
        restored = result_from_payload(result_to_payload(result))
        assert restored.status is result.status
        assert restored.cycles == result.cycles
        assert restored.signature == result.signature
        assert [t.pc for t in restored.trace] == [
            t.pc for t in result.trace
        ]

    def test_warm_cache_executes_zero_runs(self, tmp_path):
        cache = ResultCache(tmp_path)
        scheduler = RegressionScheduler(cache=cache)
        cold = scheduler.run_system(make_environments(), SC88A)
        assert cold.executed_runs == cold.total_runs
        assert cold.cached_runs == 0
        warm = scheduler.run_system(make_environments(), SC88A)
        assert warm.executed_runs == 0
        assert warm.cached_runs == warm.total_runs
        assert status_matrix(warm) == status_matrix(cold)
        assert warm.divergences == cold.divergences == []
        assert "served from cache" in warm.summary()

    def test_cache_persists_across_scheduler_instances(self, tmp_path):
        RegressionScheduler(cache=ResultCache(tmp_path)).run_environment(
            make_nvm_environment(1), SC88A
        )
        warm = RegressionScheduler(
            cache=ResultCache(tmp_path)
        ).run_environment(make_nvm_environment(1), SC88A)
        assert warm.executed_runs == 0

    def test_changed_cell_invalidates_only_its_runs(self, tmp_path):
        cache = ResultCache(tmp_path)
        scheduler = RegressionScheduler(cache=cache)
        scheduler.run_environment(make_nvm_environment(2), SC88A)
        # Same suite, but test 2 now targets a different NVM page: its
        # image digests change, test 1's do not.
        changed = make_nvm_environment(2, page_overrides={2: 19})
        report = scheduler.run_environment(changed, SC88A)
        executed_cells = {
            key[1]
            for key, result in report.results.items()
        }
        assert report.cached_runs == len(all_targets())
        assert report.executed_runs == len(all_targets())
        assert executed_cells == {"TEST_NVM_PAGE_001", "TEST_NVM_PAGE_002"}

    def test_overridden_platform_never_cached(self, tmp_path):
        fault = NetlistFault(opcode=int(Opcode.SETB), xor_mask=0x1)
        scheduler = RegressionScheduler(
            cache=ResultCache(tmp_path),
            platform_overrides={"gatelevel": GateLevelSim(fault=fault)},
            targets=[TARGET_GOLDEN, target("gatelevel")],
        )
        env = make_nvm_environment(1)
        scheduler.run_environment(env, SC88A)
        warm = scheduler.run_environment(env, SC88A)
        # golden comes from cache; the faulty gatelevel re-executes.
        assert warm.cached_runs == 1
        assert warm.executed_runs == 1
        assert set(warm.suspect_platforms()) == {"gatelevel"}

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        scheduler = RegressionScheduler(cache=cache)
        env = make_nvm_environment(1)
        scheduler.run_environment(env, SC88A)
        for path in tmp_path.glob("*.json"):
            path.write_text("{not json")
        report = scheduler.run_environment(env, SC88A)
        assert report.executed_runs == report.total_runs
        assert report.clean


class TestRegressCli:
    @pytest.fixture
    def workspace(self, tmp_path):
        assert (
            main(
                [
                    "init",
                    str(tmp_path),
                    "--nvm-tests",
                    "1",
                    "--uart-tests",
                    "1",
                ]
            )
            == 0
        )
        return tmp_path / SYSTEM_DIR_NAME

    def test_regress_with_jobs(self, workspace, capsys):
        code = main(
            [
                "regress", str(workspace), "NVM",
                "--targets", "golden,rtl",
                "--jobs", "2", "--executor", "thread",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2/2 runs ok" in out

    def test_regress_cache_roundtrip(self, workspace, tmp_path, capsys):
        cache_dir = tmp_path / "verdicts"
        argv = [
            "regress", str(workspace), "NVM",
            "--targets", "golden,rtl",
            "--cache-dir", str(cache_dir),
        ]
        assert main(argv) == 0
        cold_out = capsys.readouterr().out
        assert "2/2 runs ok" in cold_out
        assert "served from cache" not in cold_out
        assert main(argv) == 0
        assert "0 run(s) executed, 2 served from cache" in (
            capsys.readouterr().out
        )

    def test_no_cache_flag_forces_execution(self, workspace, tmp_path, capsys):
        cache_dir = tmp_path / "verdicts"
        argv = [
            "regress", str(workspace), "NVM",
            "--targets", "golden",
            "--cache-dir", str(cache_dir),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv + ["--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "1/1 runs ok" in out
        assert "served from cache" not in out
