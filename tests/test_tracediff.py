"""Tests for instruction-trace divergence localisation."""

import pytest

from repro.core.tracediff import compare_traces
from repro.core.targets import TARGET_GOLDEN
from repro.core.workloads import make_nvm_environment
from repro.isa.instructions import Opcode
from repro.platforms import (
    Accelerator,
    GateLevelSim,
    GoldenModel,
    NetlistFault,
    RtlSim,
)
from repro.soc.derivatives import SC88A


@pytest.fixture(scope="module")
def nvm_image():
    env = make_nvm_environment(1)
    artifacts = env.build_image("TEST_NVM_PAGE_001", SC88A, TARGET_GOLDEN)
    return artifacts.image


class TestHealthyComparison:
    def test_golden_vs_gatelevel_identical_pcs(self, nvm_image):
        comparison = compare_traces(
            nvm_image, SC88A, GoldenModel(), GateLevelSim()
        )
        # Timing differs (polling), so traces may differ in LENGTH, but
        # the *instruction streams* must not fork before the shorter one
        # ends for a non-polling prefix; if there is a "divergence" it
        # can only be a trace-length artifact of polling loops.
        if comparison.divergence is not None:
            div = comparison.divergence
            # Any fork must be inside the polling loop (same PC revisited),
            # never a genuinely different instruction at the same stage.
            assert (
                div.reference_entry is None
                or div.subject_entry is None
                or div.reference_entry.pc == div.subject_entry.pc
                or comparison.reference_trace[div.index - 1].pc
                == comparison.subject_trace[div.index - 1].pc
            )

    def test_identical_platforms_identical_traces(self, nvm_image):
        comparison = compare_traces(
            nvm_image, SC88A, GoldenModel(), GoldenModel()
        )
        assert comparison.identical


class TestFaultLocalisation:
    def test_fault_fork_found_and_described(self, nvm_image):
        fault = NetlistFault(
            opcode=int(Opcode.SETB), xor_mask=0x1, description="bit0 crossed"
        )
        comparison = compare_traces(
            nvm_image, SC88A, GoldenModel(), GateLevelSim(fault=fault)
        )
        assert not comparison.identical
        description = comparison.divergence.describe()
        assert "diverge at instruction #" in description
        context = comparison.context(window=2)
        assert context
        assert any("fork" in line for line in context)

    def test_fork_happens_after_the_faulty_instruction(self, nvm_image):
        """Control flow forks only downstream of the corrupted SETB —
        both traces agree up to that point."""
        fault = NetlistFault(opcode=int(Opcode.SETB), xor_mask=0x1)
        comparison = compare_traces(
            nvm_image, SC88A, GoldenModel(), GateLevelSim(fault=fault)
        )
        index = comparison.divergence.index
        assert index > 0
        setb_seen = any(
            entry.mnemonic == "SETB"
            for entry in comparison.reference_trace[:index]
        )
        assert setb_seen


class TestVisibilityRules:
    def test_traceless_platform_rejected(self, nvm_image):
        with pytest.raises(ValueError, match="no trace visibility"):
            compare_traces(nvm_image, SC88A, GoldenModel(), Accelerator())

    def test_rtl_participates(self, nvm_image):
        comparison = compare_traces(
            nvm_image, SC88A, GoldenModel(), RtlSim()
        )
        assert comparison.subject_platform == "rtl"
