"""Tests for the opcode table's internal consistency."""

import pytest

from repro.isa.encoding import Format
from repro.isa.instructions import (
    OPCODE_TABLE,
    Opcode,
    is_mnemonic,
    lookup_opcode,
    mnemonics,
    specs_for_mnemonic,
)


class TestTableConsistency:
    def test_spec_names_unique(self):
        assert len(OPCODE_TABLE) == len({s.name for s in OPCODE_TABLE.values()})

    def test_slots_match_operands(self):
        for spec in OPCODE_TABLE.values():
            assert len(spec.slots) == len(spec.operands), spec.name

    def test_literal_slot_only_in_literal_formats(self):
        for spec in OPCODE_TABLE.values():
            if "literal" in spec.slots:
                assert spec.fmt.has_literal, spec.name

    def test_register_slots_exist_in_format(self):
        for spec in OPCODE_TABLE.values():
            for slot in spec.slots:
                if slot in ("r1", "r2", "r3", "imm16", "pos", "width", "imm8"):
                    assert slot in spec.fmt.fields, (spec.name, slot)
                elif slot == "mem":
                    assert "r2" in spec.fmt.fields
                    assert "imm16" in spec.fmt.fields

    def test_every_opcode_value_reachable(self):
        for opcode in Opcode:
            spec = lookup_opcode(int(opcode))
            assert spec.opcode == opcode or spec.opcode is Opcode.RET

    def test_ret_and_return_share_an_opcode(self):
        ret = specs_for_mnemonic("RET")
        ret_alias = specs_for_mnemonic("RETURN")
        assert len(ret) == 1 and len(ret_alias) == 1
        assert ret[0].opcode == ret_alias[0].opcode


class TestMnemonicLookup:
    def test_paper_mnemonics_present(self):
        # The paper's examples use these surface forms.
        for mnemonic in ("LOAD", "STORE", "CALL", "RETURN", "INSERT"):
            assert is_mnemonic(mnemonic), mnemonic

    def test_load_is_overloaded(self):
        forms = specs_for_mnemonic("LOAD")
        assert len(forms) >= 3  # LOAD.D, LOAD.A, LOAD.MEMD, LOAD.MEMA

    def test_mov_has_four_bank_combinations(self):
        assert len(specs_for_mnemonic("MOV")) == 4

    def test_case_insensitive(self):
        assert specs_for_mnemonic("load") == specs_for_mnemonic("LOAD")

    def test_unknown_mnemonic_empty(self):
        assert specs_for_mnemonic("FLY") == []
        assert not is_mnemonic("FLY")

    def test_mnemonics_sorted_and_nonempty(self):
        names = mnemonics()
        assert names == sorted(names)
        assert "HALT" in names

    def test_dotted_memory_mnemonics_keep_suffix(self):
        # Regression: LD.W must not collapse to the surface name "LD".
        for name in ("LD.W", "LD.H", "LD.B", "ST.W", "ST.H", "ST.B"):
            assert is_mnemonic(name), name
        assert not is_mnemonic("LD")

    def test_lookup_illegal_opcode_raises(self):
        with pytest.raises(KeyError):
            lookup_opcode(0xFF)


class TestSpecShapes:
    def test_insert_signature_matches_paper(self):
        # INSERT rd, rs, value, pos, width — Figure 6's five operands.
        spec = OPCODE_TABLE["INSERT"]
        assert spec.fmt is Format.BIT
        assert len(spec.operands) == 5
        assert spec.slots == ("r1", "r2", "literal", "pos", "width")

    def test_call_forms(self):
        forms = {s.name: s for s in specs_for_mnemonic("CALL")}
        assert forms["CALL.ABS"].fmt is Format.ABS
        assert forms["CALL.IND"].fmt is Format.R

    def test_store_operand_order(self):
        # STORE [addr], reg — memory operand first (paper's Figure 7).
        spec = OPCODE_TABLE["STORE.D"]
        assert spec.slots == ("literal", "r1")

    def test_sizes(self):
        assert OPCODE_TABLE["NOP"].size_bytes == 4
        assert OPCODE_TABLE["LOAD.D"].size_bytes == 8
        assert OPCODE_TABLE["INSERT"].size_bytes == 8
        assert OPCODE_TABLE["INSERTR"].size_bytes == 4
