"""Tests for the workload generators (ADVM + hardwired twins)."""

import pytest

from repro.core.targets import TARGET_GOLDEN
from repro.core.workloads import (
    REGINIT_TARGETS,
    make_datapath_environment,
    make_nvm_environment,
    make_register_environment,
    make_reginit_environment,
    make_timer_environment,
    make_uart_environment,
    nvm_test_hardwired,
    page_for_test,
    reginit_test_hardwired,
)
from repro.platforms.base import RunStatus
from repro.soc.derivatives import SC88A, SC88B, SC88C, SC88D, all_derivatives

ALL_FACTORIES = [
    ("NVM", lambda: make_nvm_environment(2)),
    ("UART", lambda: make_uart_environment(2)),
    ("TIMER", make_timer_environment),
    ("REGINIT", make_reginit_environment),
    ("REGCHECK", make_register_environment),
    ("DATAPATH", lambda: make_datapath_environment(2)),
]


class TestPageAssignment:
    def test_pages_valid_on_narrowest_derivative(self):
        for index in range(1, 50):
            assert 0 <= page_for_test(index) < 32

    def test_pages_vary(self):
        pages = {page_for_test(i) for i in range(1, 11)}
        assert len(pages) > 5


class TestEnvironmentsPassEverywhere:
    @pytest.mark.parametrize("name,factory", ALL_FACTORIES)
    @pytest.mark.parametrize(
        "derivative", all_derivatives(), ids=lambda d: d.name
    )
    def test_all_cells_pass_on_golden(self, name, factory, derivative):
        """THE core ADVM property: every generated test passes on every
        derivative without source changes."""
        env = factory()
        for cell_name, result in env.run_all(derivative).items():
            assert result.status is RunStatus.PASS, (
                name,
                cell_name,
                derivative.name,
                result.fault_reason,
            )

    def test_nvm_environment_on_rtl_target(self):
        env = make_nvm_environment(1)
        result = env.run_test("TEST_NVM_PAGE_001", SC88A, "rtl")
        assert result.passed

    def test_uart_banner_visible_on_silicon(self):
        env = make_uart_environment(1)
        result = env.run_test("TEST_UART_BANNER", SC88A, "silicon")
        assert result.passed
        assert "ADVM" in result.uart_output


class TestHardwiredTwins:
    def test_hardwired_nvm_source_has_no_includes(self):
        defines = make_nvm_environment(1, derivatives=[SC88A]).defines
        source = nvm_test_hardwired(1, defines, SC88A, TARGET_GOLDEN)
        assert ".INCLUDE" not in source
        assert "Base_" not in source

    def test_hardwired_sources_differ_per_derivative(self):
        defines = make_nvm_environment(1).defines
        a = nvm_test_hardwired(1, defines, SC88A, TARGET_GOLDEN)
        b = nvm_test_hardwired(1, defines, SC88B, TARGET_GOLDEN)
        c = nvm_test_hardwired(1, defines, SC88C, TARGET_GOLDEN)
        assert a != b and a != c and b != c

    def test_hardwired_reginit_uses_derivative_abi(self):
        defines = make_reginit_environment().defines
        v1 = reginit_test_hardwired(
            1, "UART_BAUD_ADDR", 0x12, defines, SC88A, TARGET_GOLDEN
        )
        v2 = reginit_test_hardwired(
            1, "UART_BAUD_ADDR", 0x12, defines, SC88D, TARGET_GOLDEN
        )
        assert "ES_Init_Register" in v1
        assert "ES_InitRegister" in v2
        assert "a5" in v2  # swapped input registers


class TestDeterminism:
    def test_environment_generation_is_deterministic(self):
        first = make_nvm_environment(3)
        second = make_nvm_environment(3)
        assert first.globals_text() == second.globals_text()
        assert {c.name: c.source for c in first.cells.values()} == {
            c.name: c.source for c in second.cells.values()
        }

    def test_reginit_targets_well_formed(self):
        assert len(REGINIT_TARGETS) >= 3
        for register_define, value in REGINIT_TARGETS:
            assert register_define.endswith("_ADDR")
            assert 0 <= value <= 0xFFFF_FFFF
