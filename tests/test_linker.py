"""Tests for section placement, symbol resolution and relocation."""

import pytest

from repro.assembler.assembler import Assembler
from repro.assembler.errors import LinkError
from repro.assembler.linker import Linker, MemoryImage, PlacedSection, Region


def obj_from(source: str, name: str):
    return Assembler().assemble_source(source, name)


class TestPlacement:
    def test_floating_text_placed_at_text_base(self):
        obj = obj_from("_main:\n    HALT\n", "a.asm")
        image = Linker(text_base=0x200).link([obj])
        assert image.entry == 0x200
        assert image.segments[0].base == 0x200

    def test_org_section_placed_exactly(self):
        obj = obj_from(
            ".SECTION vectors\n.ORG 0x40\n    .WORD 1\n"
            ".SECTION text\n_main:\n    HALT\n",
            "a.asm",
        )
        image = Linker().link([obj])
        vectors = next(s for s in image.segments if s.name == "vectors")
        assert vectors.base == 0x40

    def test_data_section_goes_to_data_base(self):
        obj = obj_from(
            "_main:\n    HALT\n.SECTION data\nd1:\n    .WORD 5\n", "a.asm"
        )
        image = Linker(data_base=0x1000_0000).link([obj])
        data = next(s for s in image.segments if s.name == "data")
        assert data.base == 0x1000_0000

    def test_multiple_objects_packed_sequentially(self):
        a = obj_from("_main:\n    HALT\n", "a.asm")
        b = obj_from("helper:\n    RET\n", "b.asm")
        image = Linker(text_base=0x100).link([a, b])
        bases = sorted(s.base for s in image.segments)
        assert bases[0] == 0x100
        assert bases[1] == 0x100 + a.section("text").size

    def test_overlapping_org_sections_rejected(self):
        a = obj_from(".ORG 0x100\n_main:\n    HALT\n", "a.asm")
        b = obj_from(".ORG 0x100\nother:\n    HALT\n", "b.asm")
        with pytest.raises(LinkError, match="overlap"):
            Linker().link([a, b])

    def test_region_bounds_enforced(self):
        obj = obj_from("_main:\n    .SPACE 0x200\n    HALT\n", "a.asm")
        tiny = Region("rom", 0x100, 0x80)
        with pytest.raises(LinkError, match="does not fit"):
            Linker(text_base=0x100, text_region=tiny).link([obj])


class TestSymbols:
    def test_cross_object_call_patched(self):
        a = obj_from("_main:\n    CALL helper\n    HALT\n", "a.asm")
        b = obj_from("helper:\n    RET\n", "b.asm")
        image = Linker(text_base=0x100).link([a, b])
        helper_address = image.symbols["helper"]
        # CALL literal word is at _main+4.
        assert image.read_word(0x104) == helper_address

    def test_relocation_addend_applied(self):
        a = obj_from(
            "_main:\n    LOAD a4, table + 8\n    HALT\n", "a.asm"
        )
        b = obj_from(".SECTION data\ntable:\n    .WORD 1,2,3\n", "b.asm")
        image = Linker().link([a, b])
        assert image.read_word(0x104) == image.symbols["table"] + 8

    def test_duplicate_symbol_across_objects_rejected(self):
        a = obj_from("shared:\n    HALT\n_main:\n    NOP\n", "a.asm")
        b = obj_from("shared:\n    RET\n", "b.asm")
        with pytest.raises(LinkError, match="defined in both"):
            Linker().link([a, b])

    def test_undefined_symbol_reported_with_source(self):
        a = obj_from("_main:\n    CALL Base_Missing\n", "a.asm")
        with pytest.raises(LinkError, match="Base_Missing"):
            Linker().link([a])

    def test_missing_entry_rejected(self):
        a = obj_from("not_main:\n    HALT\n", "a.asm")
        with pytest.raises(LinkError, match="_main"):
            Linker().link([a])

    def test_entry_optional_when_disabled(self):
        a = obj_from("not_main:\n    HALT\n", "a.asm")
        image = Linker().link([a], require_entry=False)
        assert image.entry is None

    def test_custom_entry_symbol(self):
        a = obj_from("start:\n    HALT\n", "a.asm")
        image = Linker().link([a], entry_symbol="start")
        assert image.entry == image.symbols["start"]

    def test_nothing_to_link_rejected(self):
        with pytest.raises(LinkError, match="nothing"):
            Linker().link([])


class TestMemoryImage:
    def test_read_word_outside_image_rejected(self):
        image = MemoryImage(
            segments=[PlacedSection("a", "text", 0x100, b"\x01\x02\x03\x04")]
        )
        assert image.read_word(0x100) == 0x04030201
        with pytest.raises(LinkError):
            image.read_word(0x200)

    def test_total_bytes(self):
        image = MemoryImage(
            segments=[
                PlacedSection("a", "text", 0, b"\x00" * 12),
                PlacedSection("b", "data", 100, b"\x00" * 8),
            ]
        )
        assert image.total_bytes == 20

    def test_symbol_lookup_missing_raises(self):
        with pytest.raises(LinkError, match="not present"):
            MemoryImage().symbol("ghost")

    def test_vector_table_words_resolved(self):
        # The global trap-handler pattern: a vectors section full of
        # .WORD handler references must come out fully patched.
        obj = obj_from(
            ".SECTION vectors\n.ORG 0\n    .WORD 0\n    .WORD handler\n"
            ".SECTION text\nhandler:\n    RETI\n_main:\n    HALT\n",
            "traps.asm",
        )
        image = Linker(text_base=0x200).link([obj])
        assert image.read_word(4) == image.symbols["handler"]
        assert image.read_word(0) == 0
