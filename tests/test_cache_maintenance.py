"""ResultCache maintenance: quarantine uniqueness, pruning and
multi-process crash consistency.

The serving daemon makes the cache a long-lived, *shared* resource:
several regressions (and several processes) may hammer one directory
concurrently for days.  These tests pin the maintenance contract that
makes that safe — repeated corruption preserves every piece of
forensic evidence, pruning bounds the directory without racing
writers, and concurrent get/put/corrupt traffic never produces a
torn read or a lost update."""

from __future__ import annotations

import json
import os
import random
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

from repro import cli
from repro.core.scheduler import ResultCache
from repro.core.system_env import make_default_system
from repro.core.workspace import write_system_environment
from repro.platforms.base import RunResult, RunStatus


def make_result(tag: str) -> RunResult:
    return RunResult(
        platform=tag, derivative="sc88a", status=RunStatus.PASS
    )


# --------------------------------------------------------------------------
# quarantine uniqueness
# --------------------------------------------------------------------------

class TestQuarantine:
    def test_repeated_corruption_preserves_every_file(self, tmp_path):
        """A key that corrupts twice must leave *two* quarantined files
        — the second quarantine must not clobber the first."""
        cache = ResultCache(tmp_path)
        key = "deadbeef"
        for round_index in range(3):
            cache.put(key, make_result(f"round-{round_index}"))
            (tmp_path / f"{key}.json").write_bytes(b"bit rot")
            assert cache.get(key) is None
        quarantined = sorted(tmp_path.glob("*.corrupt"))
        assert len(quarantined) == 3
        assert len({path.name for path in quarantined}) == 3
        assert cache.quarantined == 3
        assert cache.corrupt == 3
        assert cache.stats()["quarantined"] == 3

    def test_lost_race_leaves_no_empty_decoy(self, tmp_path):
        """If the corrupt file vanished (another process quarantined it
        first), no placeholder may survive to be mistaken for
        evidence."""
        cache = ResultCache(tmp_path)
        cache._quarantine_file(tmp_path / "vanished.json")
        assert list(tmp_path.iterdir()) == []
        assert cache.quarantined == 0


# --------------------------------------------------------------------------
# pruning
# --------------------------------------------------------------------------

class TestPrune:
    def fill(self, cache: ResultCache, directory: Path, count: int):
        base = 1_000_000_000
        for index in range(count):
            key = f"key{index:02d}"
            cache.put(key, make_result(key))
            stamp = base + index * 100
            os.utime(directory / f"{key}.json", (stamp, stamp))
        return base

    def test_noop_without_bounds(self, tmp_path):
        cache = ResultCache(tmp_path)
        self.fill(cache, tmp_path, 3)
        assert cache.prune() == 0
        assert cache.pruned == 0
        assert len(list(tmp_path.glob("*.json"))) == 3

    def test_max_entries_keeps_newest(self, tmp_path):
        cache = ResultCache(tmp_path)
        self.fill(cache, tmp_path, 5)
        assert cache.prune(max_entries=2) == 3
        survivors = sorted(p.stem for p in tmp_path.glob("*.json"))
        assert survivors == ["key03", "key04"]
        assert cache.pruned == 3
        assert cache.stats()["pruned"] == 3

    def test_max_age_drops_stale_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        base = self.fill(cache, tmp_path, 4)
        # Horizon chosen so the two oldest entries age out.
        removed = cache.prune(max_age=250, now=base + 400)
        assert removed == 2
        survivors = sorted(p.stem for p in tmp_path.glob("*.json"))
        assert survivors == ["key02", "key03"]

    def test_max_age_reaps_quarantined_evidence(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("badkey", make_result("badkey"))
        (tmp_path / "badkey.json").write_bytes(b"rot")
        assert cache.get("badkey") is None
        corrupt = next(tmp_path.glob("*.corrupt"))
        os.utime(corrupt, (1_000, 1_000))
        # Old evidence ages out; entry bounds never touch .corrupt.
        assert cache.prune(max_entries=100) == 0
        assert corrupt.exists()
        assert cache.prune(max_age=10, now=2_000) == 1
        assert not corrupt.exists()

    def test_cli_cache_prune_plumbing(self, tmp_path, capsys):
        workspace = write_system_environment(
            make_default_system(nvm_tests=1, uart_tests=0),
            tmp_path / "ws",
        )
        cache_dir = tmp_path / "cache"
        code = cli.main(
            [
                "regress",
                str(workspace),
                "NVM",
                "--targets",
                "golden",
                "--cache-dir",
                str(cache_dir),
                "--cache-prune",
                "--cache-max-entries",
                "0",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "cache-prune: removed 1 file(s)" in out
        assert "pruned=1" in out
        assert list(cache_dir.glob("*.json")) == []


# --------------------------------------------------------------------------
# multi-process stress
# --------------------------------------------------------------------------

STRESS_KEYS = [f"stress{i:02d}" for i in range(6)]


def _stress_worker(directory: str, seed: int, rounds: int) -> dict:
    """One process's share of the hammering: interleaved puts, gets and
    deliberate non-atomic corruption of a shared cache directory."""
    rng = random.Random(seed)
    cache = ResultCache(directory)
    torn_reads = 0
    unexpected_errors = 0
    for _ in range(rounds):
        key = rng.choice(STRESS_KEYS)
        roll = rng.random()
        try:
            if roll < 0.45:
                cache.put(key, make_result(key))
            elif roll < 0.90:
                result = cache.get(key)
                # The integrity contract: a returned result is always
                # a complete, checksum-valid payload for this key —
                # never a torn read, never another key's verdict.
                if result is not None and result.platform != key:
                    torn_reads += 1
            else:
                # Simulated bit rot / torn write: flip one byte in
                # place, non-atomically, while others are reading.
                path = Path(directory) / f"{key}.json"
                try:
                    data = bytearray(path.read_bytes())
                    if data:
                        data[rng.randrange(len(data))] ^= 0xFF
                        path.write_bytes(bytes(data))
                except OSError:
                    pass
        except Exception:
            unexpected_errors += 1
    stats = cache.stats()
    stats["torn_reads"] = torn_reads
    stats["unexpected_errors"] = unexpected_errors
    return stats


def test_concurrent_multiprocess_stress(tmp_path):
    """N processes hammer one cache directory with get/put/corrupt.
    No worker may crash, observe a torn read, or leave the directory
    in a state a fresh cache cannot read cleanly."""
    workers = 4
    rounds = 150
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(_stress_worker, str(tmp_path), seed, rounds)
            for seed in range(workers)
        ]
        reports = [future.result(timeout=120) for future in futures]

    for report in reports:
        assert report["unexpected_errors"] == 0
        assert report["torn_reads"] == 0

    # Corruption really happened and was really detected somewhere.
    assert sum(report["corrupt"] for report in reports) > 0
    assert sum(report["hits"] for report in reports) > 0

    # No half-written temp files survive the melee.
    assert list(tmp_path.glob("*.tmp")) == []
    assert list(tmp_path.glob(".*.tmp")) == []

    # Every surviving entry is complete and checksum-valid: a fresh
    # cache reads the directory without tripping over wreckage.
    fresh = ResultCache(tmp_path)
    for path in tmp_path.glob("*.json"):
        key = path.stem
        result = fresh.get(key)
        if result is not None:
            assert result.platform == key
    # Whatever the last writers left corrupt is quarantined evidence
    # now, accounted for, and off the hot path.
    assert fresh.corrupt == fresh.quarantined
    for path in tmp_path.glob("*.json"):
        body = json.loads(path.read_bytes())
        assert {"schema", "checksum", "payload"} <= set(body)
