"""Unit + property tests for instruction word encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.encoding import (
    EncodedInstruction,
    Format,
    decode_word,
    encode_word,
    field_mask,
    opcode_of,
    sign_extend_16,
)


class TestFieldMask:
    def test_single_bit(self):
        assert field_mask(0, 0) == 1
        assert field_mask(31, 31) == 0x8000_0000

    def test_byte_range(self):
        assert field_mask(7, 0) == 0xFF
        assert field_mask(23, 16) == 0x00FF_0000


class TestFormats:
    def test_every_format_has_distinct_identity(self):
        # Regression test: tuple-valued enum members used to alias.
        assert Format.ABS is not Format.R
        assert Format.MEM is not Format.RI16
        assert len({f.name for f in Format}) == len(list(Format))

    def test_literal_formats(self):
        assert Format.ABS.has_literal and Format.BIT.has_literal
        assert Format.ABS.words == 2
        for fmt in Format:
            if fmt not in (Format.ABS, Format.BIT):
                assert not fmt.has_literal
                assert fmt.words == 1


class TestEncodeDecode:
    def test_simple_rr(self):
        word = encode_word(Format.RR, 0x10, r1=14, r2=3)
        assert opcode_of(word) == 0x10
        assert decode_word(Format.RR, word) == {"r1": 14, "r2": 3}

    def test_bitfield_width_bias(self):
        word = encode_word(Format.BIT, 0x50, r1=1, r2=2, pos=0, width=32)
        fields = decode_word(Format.BIT, word)
        assert fields["width"] == 32
        assert fields["pos"] == 0

    def test_missing_field_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            encode_word(Format.RR, 0x10, r1=1)

    def test_unexpected_field_rejected(self):
        with pytest.raises(ValueError, match="unexpected"):
            encode_word(Format.NONE, 0x00, r1=1)

    def test_out_of_range_field_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            encode_word(Format.RR, 0x10, r1=16, r2=0)
        with pytest.raises(ValueError, match="out of range"):
            encode_word(Format.BIT, 0x50, r1=0, r2=0, pos=32, width=1)

    def test_opcode_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            encode_word(Format.NONE, 0x100)

    @given(
        r1=st.integers(0, 15),
        r2=st.integers(0, 15),
        r3=st.integers(0, 15),
        pos=st.integers(0, 31),
        width=st.integers(1, 32),
    )
    def test_bitr_round_trip(self, r1, r2, r3, pos, width):
        word = encode_word(
            Format.BITR, 0x51, r1=r1, r2=r2, r3=r3, pos=pos, width=width
        )
        assert decode_word(Format.BITR, word) == {
            "r1": r1,
            "r2": r2,
            "r3": r3,
            "pos": pos,
            "width": width,
        }

    @given(
        r1=st.integers(0, 15),
        r2=st.integers(0, 15),
        imm=st.integers(0, 0xFFFF),
    )
    def test_ri16_round_trip(self, r1, r2, imm):
        word = encode_word(Format.RI16, 0x3B, r1=r1, r2=r2, imm16=imm)
        assert decode_word(Format.RI16, word) == {
            "r1": r1,
            "r2": r2,
            "imm16": imm,
        }

    @given(imm8=st.integers(0, 255))
    def test_trap_round_trip(self, imm8):
        word = encode_word(Format.TRAP, 0x78, imm8=imm8)
        assert decode_word(Format.TRAP, word) == {"imm8": imm8}


class TestSignExtend:
    @pytest.mark.parametrize(
        "raw,expected",
        [(0, 0), (1, 1), (0x7FFF, 32767), (0x8000, -32768), (0xFFFF, -1)],
    )
    def test_values(self, raw, expected):
        assert sign_extend_16(raw) == expected

    @given(st.integers(-32768, 32767))
    def test_round_trip(self, value):
        assert sign_extend_16(value & 0xFFFF) == value


class TestEncodedInstruction:
    def test_single_word(self):
        instr = EncodedInstruction(word=0x1234)
        assert instr.words == (0x1234,)
        assert instr.size_bytes == 4

    def test_with_literal(self):
        instr = EncodedInstruction(word=0x1234, literal=-1)
        assert instr.words == (0x1234, 0xFFFF_FFFF)
        assert instr.size_bytes == 8
