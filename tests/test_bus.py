"""Tests for the system bus and memory devices."""

import pytest

from repro.soc.bus import Bus, BusAccess, BusError, Memory


class TestMemory:
    def test_read_write_round_trip(self):
        mem = Memory(64)
        mem.write(0, 0xDEADBEEF, 4)
        assert mem.read(0, 4) == 0xDEADBEEF

    def test_little_endian_layout(self):
        mem = Memory(8)
        mem.write(0, 0x11223344, 4)
        assert mem.read(0, 1) == 0x44
        assert mem.read(3, 1) == 0x11
        assert mem.read(0, 2) == 0x3344

    def test_write_masks_value(self):
        mem = Memory(8)
        mem.write(0, 0x1FF, 1)
        assert mem.read(0, 1) == 0xFF

    def test_read_only_rejects_writes(self):
        rom = Memory(16, read_only=True)
        with pytest.raises(BusError):
            rom.write(0, 1, 4)

    def test_backdoor_load_bypasses_read_only(self):
        rom = Memory(16, read_only=True)
        rom.load(4, b"\x01\x02")
        assert rom.read(4, 2) == 0x0201

    def test_fill_value(self):
        nvm = Memory(4, fill=0xFF)
        assert nvm.read(0, 4) == 0xFFFF_FFFF


class TestBusDecode:
    def test_routing_to_correct_device(self):
        bus = Bus()
        a = Memory(0x100)
        b = Memory(0x100)
        bus.attach("a", 0x0, 0x100, a)
        bus.attach("b", 0x1000, 0x100, b)
        bus.write(0x1004, 42, 4)
        assert b.read(4, 4) == 42
        assert a.read(4, 4) == 0

    def test_overlapping_mapping_rejected(self):
        bus = Bus()
        bus.attach("a", 0x0, 0x100, Memory(0x100))
        with pytest.raises(ValueError, match="overlaps"):
            bus.attach("b", 0x80, 0x100, Memory(0x100))

    def test_unmapped_access_raises(self):
        bus = Bus()
        bus.attach("a", 0x0, 0x100, Memory(0x100))
        with pytest.raises(BusError, match="unmapped"):
            bus.read(0x5000, 4)

    def test_misaligned_access_raises(self):
        bus = Bus()
        bus.attach("a", 0x0, 0x100, Memory(0x100))
        with pytest.raises(BusError, match="misaligned"):
            bus.read(0x2, 4)
        with pytest.raises(BusError, match="misaligned"):
            bus.write(0x1, 0, 2)

    def test_access_straddling_region_end_rejected(self):
        bus = Bus()
        bus.attach("a", 0x0, 0x100, Memory(0x100))
        with pytest.raises(BusError):
            bus.read(0xFC + 4, 4)

    def test_wait_states_reported(self):
        bus = Bus()
        bus.attach("slow", 0x0, 0x100, Memory(0x100), wait_states=3)
        _, waits = bus.read(0, 4)
        assert waits == 3
        assert bus.write(0, 1, 4) == 3


class TestBusTracing:
    def test_trace_hook_sees_accesses(self):
        bus = Bus()
        bus.attach("a", 0x0, 0x100, Memory(0x100))
        seen: list[BusAccess] = []
        bus.trace_hooks.append(seen.append)
        bus.write(0x10, 7, 4)
        bus.read(0x10, 4)
        assert [a.kind for a in seen] == ["write", "read"]
        assert seen[0].address == 0x10 and seen[0].value == 7
        assert seen[1].value == 7

    def test_peek_poke_do_not_trace(self):
        bus = Bus()
        bus.attach("a", 0x0, 0x100, Memory(0x100))
        seen = []
        bus.trace_hooks.append(seen.append)
        bus.poke_word(0, 9)
        assert bus.peek_word(0) == 9
        assert seen == []

    def test_access_counter(self):
        bus = Bus()
        bus.attach("a", 0x0, 0x100, Memory(0x100))
        bus.read(0, 4)
        bus.write(0, 1, 4)
        assert bus.access_count == 2
