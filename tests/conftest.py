"""Shared fixtures for the ADVM reproduction test suite."""

from __future__ import annotations

import pytest

from repro.core.targets import TARGET_GOLDEN, TARGET_RTL
from repro.soc.derivatives import SC88A, SC88B, SC88C, SC88D, all_derivatives


@pytest.fixture(scope="session")
def derivatives():
    return all_derivatives()


@pytest.fixture
def sc88a():
    return SC88A


@pytest.fixture
def sc88b():
    return SC88B


@pytest.fixture
def sc88c():
    return SC88C


@pytest.fixture
def sc88d():
    return SC88D


@pytest.fixture
def golden_target():
    return TARGET_GOLDEN


@pytest.fixture
def rtl_target():
    return TARGET_RTL


@pytest.fixture(scope="session")
def nvm_env_small():
    """A small NVM environment, session-cached (read-only use)."""
    from repro.core.workloads import make_nvm_environment

    return make_nvm_environment(num_tests=2)
