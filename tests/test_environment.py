"""Tests for module test environments and the global layer."""

import pytest

from repro.core.environment import (
    GlobalLayer,
    ModuleTestEnvironment,
    TestCell,
)
from repro.core.targets import TARGET_GOLDEN, TARGET_RTL
from repro.core.workloads import make_nvm_environment, nvm_test_advm
from repro.platforms.base import RunStatus
from repro.soc.derivatives import SC88A, SC88B, SC88D, all_derivatives


class TestEnvironmentConstruction:
    def test_derivative_specific_names_rejected(self):
        # The paper: "Derivative specific names are not permitted".
        with pytest.raises(ValueError, match="derivative-specific"):
            ModuleTestEnvironment("SC88A_NVM")

    def test_bad_names_rejected(self):
        with pytest.raises(ValueError):
            ModuleTestEnvironment("")
        with pytest.raises(ValueError):
            ModuleTestEnvironment("nvm tests")

    def test_duplicate_cells_rejected(self):
        env = ModuleTestEnvironment("NVM")
        env.add_test(nvm_test_advm(1))
        with pytest.raises(ValueError, match="duplicate"):
            env.add_test(nvm_test_advm(1))

    def test_testplan_items_created_from_cells(self):
        env = make_nvm_environment(3)
        assert env.testplan.find("NVM_001") is not None
        assert env.testplan.find("NVM_001").status == "implemented"

    def test_cell_lookup_error(self):
        env = ModuleTestEnvironment("NVM")
        with pytest.raises(KeyError, match="no test cell"):
            env.cell("GHOST")


class TestAbstractionLayerGeneration:
    def test_globals_cover_all_derivatives(self):
        env = make_nvm_environment(1)
        text = env.globals_text()
        for derivative in all_derivatives():
            assert f".IFDEF {derivative.predefine}" in text

    def test_base_functions_include_globals(self):
        env = make_nvm_environment(1)
        assert ".INCLUDE Globals.inc" in env.base_functions_text()

    def test_extra_base_functions_appended(self):
        env = ModuleTestEnvironment(
            "NVM", extra_base_functions="Base_Custom:\n    RETURN\n"
        )
        assert "Base_Custom" in env.base_functions_text()


class TestBuildAndRun:
    def test_build_produces_linked_image(self):
        env = make_nvm_environment(1)
        artifacts = env.build_image("TEST_NVM_PAGE_001", SC88A, TARGET_GOLDEN)
        assert artifacts.image.entry is not None
        assert "Base_Report_Pass" in artifacts.image.symbols
        assert "ES_Init_Register" in artifacts.image.symbols

    def test_same_cell_builds_for_every_derivative(self):
        env = make_nvm_environment(1)
        images = {}
        for derivative in all_derivatives():
            artifacts = env.build_image(
                "TEST_NVM_PAGE_001", derivative, TARGET_GOLDEN
            )
            images[derivative.name] = artifacts.image
        # Different derivatives produce different binaries from the SAME
        # source (the abstraction layer did the adapting).
        blobs = {
            name: image.segments[0].data for name, image in images.items()
        }
        assert blobs["sc88a"] != blobs["sc88b"]

    def test_run_test_passes(self):
        env = make_nvm_environment(1)
        result = env.run_test("TEST_NVM_PAGE_001", SC88A)
        assert result.status is RunStatus.PASS

    def test_run_on_rtl_target(self):
        env = make_nvm_environment(1)
        result = env.run_test("TEST_NVM_PAGE_001", SC88A, "rtl")
        assert result.status is RunStatus.PASS
        assert result.platform == "rtl"

    def test_run_all(self):
        env = make_nvm_environment(2)
        results = env.run_all(SC88B)
        assert len(results) == 2
        assert all(r.passed for r in results.values())

    def test_figure7_wrapper_absorbs_firmware_rewrite(self):
        """The core Figure 7 scenario: the SAME test source passes on a
        derivative whose firmware renamed the entry point and swapped
        its input registers."""
        from repro.core.workloads import make_reginit_environment

        env = make_reginit_environment()
        for derivative in (SC88A, SC88D):
            result = env.run_test("TEST_REG_INIT_001", derivative)
            assert result.passed, derivative.name

    def test_max_instructions_override(self):
        env = make_nvm_environment(1)
        result = env.run_test(
            "TEST_NVM_PAGE_001", SC88A, max_instructions=3
        )
        assert result.status is RunStatus.TIMEOUT


class TestGlobalLayer:
    def test_library_files(self):
        layer = GlobalLayer()
        files = layer.library_files()
        assert "Trap_Handlers.asm" in files
        assert "Global_Test_Functions.asm" in files

    def test_shared_layer_reused_across_environments(self):
        layer = GlobalLayer([SC88A])
        env1 = ModuleTestEnvironment(
            "NVM", derivatives=[SC88A], global_layer=layer
        )
        env2 = ModuleTestEnvironment(
            "UART", derivatives=[SC88A], global_layer=layer
        )
        assert env1.global_layer is env2.global_layer

    def test_trap_handler_fails_test_on_unexpected_trap(self):
        env = ModuleTestEnvironment("NVM", derivatives=[SC88A])
        env.add_test(
            TestCell(
                name="TEST_TRAPS",
                source=(
                    ".INCLUDE Globals.inc\n"
                    "_main:\n"
                    "    TRAP 5\n"            # unexpected trap
                    "    JMP Base_Report_Pass\n"
                ),
            )
        )
        result = env.run_test("TEST_TRAPS", SC88A)
        assert result.status is RunStatus.FAIL
