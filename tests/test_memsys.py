"""Memory-system tests: page dispatch table, word fast paths, the
flat bus-trace ring buffer, and the two equivalence properties the
ISSUE 2 tentpole hangs on:

(a) fast-path routing (page table + direct word buffers) retires
    identical ``(signature, cycles, trace)`` to legacy routing
    (sorted-list decode + generic device access) on golden and RTL;
(b) coverage bins, bus traces and first-divergence points are
    identical with the decode cache enabled vs disabled while a bus
    trace is recorded — the cache now *stays on* under observation.
"""

import pytest

from repro.assembler.assembler import Assembler
from repro.assembler.linker import Linker
from repro.core.coverage import CoverageCollector
from repro.core.tracediff import compare_traces
from repro.core.workloads import (
    make_datapath_environment,
    make_nvm_environment,
    make_timer_environment,
    make_uart_environment,
)
from repro.core.targets import TARGET_GOLDEN, TARGET_RTL
from repro.isa.instructions import Opcode
from repro.platforms import (
    ExecutionSession,
    GateLevelSim,
    GoldenModel,
    InstructionTrace,
    NetlistFault,
    RtlSim,
    RunStatus,
)
from repro.soc.bus import (
    Bus,
    BusAccess,
    BusError,
    BusTrace,
    Memory,
    PAGE_SIZE,
)
from repro.soc.derivatives import SC88A, SC88B
from repro.soc.device import PASS_MAGIC, FAIL_MAGIC, SystemOnChip

MEMORY_MAP = SC88A.memory_map()


def link_source(source: str):
    obj = Assembler().assemble_source(source, "t.asm")
    return Linker(
        text_base=MEMORY_MAP.text_base, data_base=MEMORY_MAP.data_base
    ).link([obj])


def disable_fast_routing(soc) -> None:
    """Force every access onto the slow path: no page-table hits, no
    direct word buffers — mapping_for + device.read/write, as the
    pre-dispatch bus behaved."""
    bus = soc.bus
    bus.page_table.clear()
    for mapping in bus.mappings:
        mapping.word_buf = None
        mapping.word_wbuf = None


def strip(result):
    """The comparable engine-visible outcome of a run."""
    return (
        result.status,
        result.signature,
        result.result_word,
        result.instructions,
        result.cycles,
        result.uart_output,
        result.done_pin,
        result.pass_pin,
        None
        if result.trace is None
        else [(t.pc, t.opcode, t.mnemonic, t.cycles) for t in result.trace],
    )


# ---------------------------------------------------------------------------
# dispatch table + word fast paths
# ---------------------------------------------------------------------------

class TestDispatchTable:
    def test_page_table_covers_real_device_regions(self):
        soc = SystemOnChip(SC88A)
        table = soc.bus.page_table
        for region, name in (
            (MEMORY_MAP.rom, "rom"),
            (MEMORY_MAP.ram, "ram"),
            (MEMORY_MAP.nvm, "nvm_array"),
        ):
            assert table[region.base >> 8].name == name
            assert table[(region.end - 4) >> 8].name == name
        # SFR peripheral blocks are 0x100-sized at aligned bases — each
        # covers exactly its own page.
        nvm_base = soc.register_map.instance("NVM").base
        assert table[nvm_base >> 8].name == "nvm"

    def test_partial_pages_fall_back_to_sorted_lookup(self):
        bus = Bus()
        mem = Memory(0x100)
        # Unaligned base: no page is fully covered, so the table stays
        # empty and every access routes through mapping_for.
        bus.attach("odd", 0x80, 0x100, mem)
        assert bus.page_table == {}
        bus.write(0x84, 0xAB, 1)
        assert bus.read(0x84, 1) == (0xAB, 0)
        with pytest.raises(BusError, match="unmapped"):
            bus.read(0x180, 4)

    def test_access_straddling_mapping_end_rejected_on_page_hit(self):
        bus = Bus()
        bus.attach("a", 0x0, PAGE_SIZE, Memory(PAGE_SIZE))
        with pytest.raises(BusError, match="unmapped"):
            bus.read(PAGE_SIZE, 4)

    def test_overlap_detected_against_both_neighbours(self):
        bus = Bus()
        bus.attach("low", 0x0, 0x200, Memory(0x200))
        bus.attach("high", 0x1000, 0x200, Memory(0x200))
        with pytest.raises(ValueError, match="overlaps 'low'"):
            bus.attach("mid", 0x100, 0x100, Memory(0x100))
        with pytest.raises(ValueError, match="overlaps 'high'"):
            bus.attach("mid", 0xF00, 0x200, Memory(0x200))

    def test_mappings_stay_sorted_by_base(self):
        bus = Bus()
        bus.attach("c", 0x2000, 0x100, Memory(0x100))
        bus.attach("a", 0x0, 0x100, Memory(0x100))
        bus.attach("b", 0x1000, 0x100, Memory(0x100))
        assert [m.name for m in bus.mappings] == ["a", "b", "c"]

    def test_rebuild_dispatch_restores_table(self):
        soc = SystemOnChip(SC88A)
        soc.bus.page_table.clear()
        soc.full_reset()
        assert soc.bus.page_table
        soc.bus.poke_word(MEMORY_MAP.ram.base, 0x1234)
        assert soc.bus.peek_word(MEMORY_MAP.ram.base) == 0x1234


class TestWordFastPath:
    def make_bus(self):
        bus = Bus()
        bus.attach("ram", 0x0, 0x1000, Memory(0x1000), wait_states=2)
        bus.attach("rom", 0x1000, 0x1000, Memory(0x1000, read_only=True))
        return bus

    def test_word_accessors_match_generic(self):
        bus = self.make_bus()
        assert bus.write_word(0x10, 0xDEADBEEF) == 2
        assert bus.read_word(0x10) == (0xDEADBEEF, 2)
        assert bus.read(0x10, 4) == (0xDEADBEEF, 2)

    def test_word_write_masks_value(self):
        bus = self.make_bus()
        bus.write_word(0x0, 0x1_2345_6789)
        assert bus.read_word(0x0)[0] == 0x2345_6789

    def test_word_write_to_rom_raises(self):
        bus = self.make_bus()
        with pytest.raises(BusError, match="read-only"):
            bus.write_word(0x1000, 1)

    def test_misaligned_word_access_raises(self):
        bus = self.make_bus()
        with pytest.raises(BusError, match="misaligned"):
            bus.read_word(0x2)
        with pytest.raises(BusError, match="misaligned"):
            bus.write_word(0x6, 0)

    def test_memory_fill_preserved(self):
        nvm = Memory(8, fill=0xFF)
        assert nvm.read(0, 4) == 0xFFFF_FFFF
        assert len(nvm.data) == 8


# ---------------------------------------------------------------------------
# flat trace ring buffer
# ---------------------------------------------------------------------------

class TestBusTraceBuffer:
    def test_records_raw_tuples_and_lazy_views(self):
        trace = BusTrace()
        trace.record("write", 0x10, 4, 7)
        trace.record("read", 0x10, 4, 7)
        assert trace.raw() == [("write", 0x10, 4, 7), ("read", 0x10, 4, 7)]
        views = list(trace)
        assert views == [
            BusAccess("write", 0x10, 4, 7),
            BusAccess("read", 0x10, 4, 7),
        ]
        assert trace[0].kind == "write"
        assert [a.kind for a in trace[0:2]] == ["write", "read"]

    def test_ring_capacity_wraps_oldest_first(self):
        trace = BusTrace(capacity=3)
        for n in range(5):
            trace.record("write", n, 4, n)
        assert len(trace) == 3
        assert trace.dropped == 2
        assert [event[1] for event in trace.raw()] == [2, 3, 4]

    def test_clear(self):
        trace = BusTrace(capacity=2)
        for n in range(4):
            trace.record("read", n, 4, n)
        trace.clear()
        assert len(trace) == 0 and trace.dropped == 0
        trace.record("read", 9, 4, 9)
        assert trace.raw() == [("read", 9, 4, 9)]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            BusTrace(capacity=0)

    def test_bus_records_into_buffer_on_all_access_paths(self):
        bus = Bus()
        bus.attach("ram", 0x0, 0x1000, Memory(0x1000))
        trace = BusTrace()
        bus.trace_buffer = trace
        bus.write(0x10, 7, 4)
        bus.read(0x10, 4)
        bus.write_word(0x20, 8)
        bus.read_word(0x20)
        bus.read(0x30, 1)
        assert trace.raw() == [
            ("write", 0x10, 4, 7),
            ("read", 0x10, 4, 7),
            ("write", 0x20, 4, 8),
            ("read", 0x20, 4, 8),
            ("read", 0x30, 1, 0),
        ]

    def test_peek_poke_do_not_record(self):
        bus = Bus()
        bus.attach("ram", 0x0, 0x1000, Memory(0x1000))
        bus.trace_buffer = BusTrace()
        bus.poke_word(0x0, 9)
        assert bus.peek_word(0x0) == 9
        assert len(bus.trace_buffer) == 0

    def test_hooks_still_fire_alongside_buffer(self):
        bus = Bus()
        bus.attach("ram", 0x0, 0x1000, Memory(0x1000))
        bus.trace_buffer = BusTrace()
        seen: list[BusAccess] = []
        bus.trace_hooks.append(seen.append)
        bus.write_word(0x40, 1)
        assert len(bus.trace_buffer) == 1
        assert seen == [BusAccess("write", 0x40, 4, 1)]


class TestInstructionTrace:
    def test_limit_enforced(self):
        trace = InstructionTrace(limit=2)
        for n in range(4):
            trace.record(n * 4, 1, "NOP", 1)
        assert len(trace) == 2

    def test_lazy_entry_views(self):
        trace = InstructionTrace()
        trace.record(0x200, 7, "ADD", 1)
        entry = trace[0]
        assert (entry.pc, entry.opcode, entry.mnemonic, entry.cycles) == (
            0x200, 7, "ADD", 1
        )
        assert [e.mnemonic for e in trace] == ["ADD"]
        assert [e.pc for e in trace[0:1]] == [0x200]


# ---------------------------------------------------------------------------
# property (a): fast-path vs legacy routing equivalence
# ---------------------------------------------------------------------------

ENVIRONMENT_FACTORIES = [
    lambda: make_nvm_environment(2),
    lambda: make_uart_environment(1),
    lambda: make_timer_environment(),
    lambda: make_datapath_environment(1),
]


class TestRoutingEquivalence:
    @pytest.mark.parametrize("make_env", ENVIRONMENT_FACTORIES)
    @pytest.mark.parametrize(
        "tgt, platform_cls",
        [(TARGET_GOLDEN, GoldenModel), (TARGET_RTL, RtlSim)],
        ids=["golden", "rtl"],
    )
    @pytest.mark.parametrize(
        "derivative", [SC88A, SC88B], ids=lambda d: d.name
    )
    def test_fast_routing_matches_legacy(
        self, make_env, tgt, platform_cls, derivative
    ):
        env = make_env()
        for cell_name in env.cells:
            image = env.build_image(cell_name, derivative, tgt).image
            fast = ExecutionSession(platform_cls(), derivative).run(image)
            legacy_session = ExecutionSession(platform_cls(), derivative)
            disable_fast_routing(legacy_session.soc)
            legacy = legacy_session.run(image)
            assert strip(fast) == strip(legacy), cell_name
            assert fast.status is RunStatus.PASS


# ---------------------------------------------------------------------------
# property (b): decode cache stays on under tracing, observably identical
# ---------------------------------------------------------------------------

def traced_run(image, derivative, platform_cls, use_decode_cache):
    platform = platform_cls()
    platform.record_bus_trace = True
    session = ExecutionSession(
        platform, derivative, use_decode_cache=use_decode_cache
    )
    result = session.run(image)
    return platform, session, result


class TestTracedCacheEquivalence:
    @pytest.mark.parametrize(
        "platform_cls", [GoldenModel, RtlSim], ids=["golden", "rtl"]
    )
    def test_bus_trace_identical_with_cache_on_and_off(self, platform_cls):
        env = make_nvm_environment(1)
        image = env.build_image(
            "TEST_NVM_PAGE_001", SC88A, TARGET_GOLDEN
        ).image
        on_platform, on_session, on_result = traced_run(
            image, SC88A, platform_cls, True
        )
        off_platform, _, off_result = traced_run(
            image, SC88A, platform_cls, False
        )
        # The cache was active while the trace was recorded...
        assert on_session.cpu.decode_cache is not None
        assert on_session.cpu.decode_cache.hits > 0
        # ...yet the recorded access stream is byte-identical, fetches
        # included, and so is the architectural outcome.
        assert (
            on_platform.last_bus_trace.raw()
            == off_platform.last_bus_trace.raw()
        )
        assert strip(on_result) == strip(off_result)

    def test_coverage_bins_identical_with_cache_on_and_off(self):
        env = make_nvm_environment(2)
        reports = []
        for use_cache in (True, False):
            collector = CoverageCollector(SC88A)
            for cell_name in env.cells:
                image = env.build_image(
                    cell_name, SC88A, TARGET_GOLDEN
                ).image
                platform, _, _ = traced_run(
                    image, SC88A, GoldenModel, use_cache
                )
                collector.observe_platform(platform)
            reports.append(collector.report)
        cached, legacy = reports
        assert cached.registers_written == legacy.registers_written
        assert cached.nvm_pages_programmed == legacy.nvm_pages_programmed
        assert {
            key: coverage.values for key, coverage in cached.fields.items()
        } == {
            key: coverage.values for key, coverage in legacy.fields.items()
        }

    def test_first_divergence_identical_with_cache_on_and_off(self):
        image = link_source(
            "_main:\n"
            "    LOAD d1, 0\n"
            "    INSERT d1, d1, 3, 0, 5\n"
            "    CMPI d1, 3\n"
            "    JZ good\n"
            f"    LOAD d0, {FAIL_MAGIC:#x}\n"
            "    HALT\n"
            "good:\n"
            f"    LOAD d0, {PASS_MAGIC:#x}\n"
            "    HALT\n"
        )
        fault = NetlistFault(
            opcode=int(Opcode.INSERT), xor_mask=0x4, description="bad bit 2"
        )
        points = []
        for use_cache in (True, False):
            reference = GoldenModel()
            subject = GateLevelSim(fault=fault)
            reference.use_decode_cache = use_cache
            subject.use_decode_cache = use_cache
            comparison = compare_traces(image, SC88A, reference, subject)
            assert not comparison.identical
            point = comparison.divergence
            points.append(
                (
                    point.index,
                    point.reference_entry.pc,
                    point.subject_entry.pc,
                )
            )
        assert points[0] == points[1]

    def test_truncated_literal_fetch_traps_instead_of_escaping(self):
        # A two-word instruction whose opcode word is the very last ROM
        # word: the literal fetch runs off mapped memory and must take
        # the architectural bus-error trap (unhandled here -> CpuFault),
        # not leak a raw BusError out of step().
        from repro.platforms.cpu import CpuCore, CpuFault

        image = link_source("_main:\n    JMP _main\n")
        segment = next(
            s for s in image.segments if s.base <= image.entry < s.end
        )
        offset = image.entry - segment.base
        jmp_word = bytes(segment.data[offset : offset + 4])
        soc = SystemOnChip(SC88A)
        soc.rom.load(MEMORY_MAP.rom.size - 4, jmp_word)
        cpu = CpuCore(soc.bus, intc=soc.intc)
        cpu.reset(MEMORY_MAP.rom.end - 4, MEMORY_MAP.stack_top)
        with pytest.raises(CpuFault, match="unhandled trap 4"):
            cpu.step()

    def test_fetches_present_in_trace_with_cache_on(self):
        image = link_source(
            f"_main:\n    LOAD d0, {PASS_MAGIC:#x}\n    HALT\n"
        )
        platform, session, _ = traced_run(image, SC88A, GoldenModel, True)
        assert session.cpu.decode_cache is not None
        fetch_reads = [
            access
            for access in platform.last_bus_trace
            if access.kind == "read"
            and MEMORY_MAP.rom.contains(access.address, 4)
        ]
        # LOAD (two words) + HALT: at least three fetched ROM words.
        assert len(fetch_reads) >= 3
