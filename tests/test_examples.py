"""Smoke tests: every shipped example must run green.

Examples are documentation that executes; letting them rot defeats the
purpose, so CI runs each one as a subprocess.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]


def test_all_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "nvm_derivative_porting",
        "cross_platform_regression",
        "random_globals",
        "release_workflow",
        "python_testbench",
    } <= names
