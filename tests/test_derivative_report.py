"""Tests for the derivative-diff port planner."""

from repro.core.derivative_report import (
    AbsorbedBy,
    compare_derivatives,
    port_plan,
)
from repro.soc.derivatives import SC88A, SC88B, SC88C, SC88D


class TestCompare:
    def test_identity_is_empty(self):
        assert compare_derivatives(SC88A, SC88A) == []

    def test_sc88b_is_the_figure6_derivative_change(self):
        changes = compare_derivatives(SC88A, SC88B)
        categories = {c.category for c in changes}
        assert "bit-field geometry" in categories
        assert "capacity" in categories
        assert all(
            c.absorbed_by is AbsorbedBy.GLOBAL_DEFINES for c in changes
        )

    def test_sc88c_includes_rename_and_rebase(self):
        changes = compare_derivatives(SC88A, SC88C)
        categories = {c.category for c in changes}
        assert "register rename" in categories
        assert "peripheral re-base" in categories
        rebased = [c for c in changes if c.category == "peripheral re-base"]
        assert all("UART" in c.detail for c in rebased)

    def test_sc88d_includes_firmware_rewrite(self):
        changes = compare_derivatives(SC88A, SC88D)
        firmware = [c for c in changes if c.category == "firmware rewrite"]
        assert len(firmware) == 1
        assert firmware[0].absorbed_by is AbsorbedBy.BASE_FUNCTIONS
        assert "ES_InitRegister" in firmware[0].detail

    def test_change_description_renders(self):
        change = compare_derivatives(SC88A, SC88B)[0]
        text = str(change)
        assert "Globals.inc" in text


class TestPortPlan:
    def test_plan_no_op(self):
        plan = port_plan(SC88A, SC88A)
        assert "no-op" in plan

    def test_plan_mentions_both_artifacts_for_sc88d(self):
        plan = port_plan(SC88A, SC88D)
        assert "Globals.inc" in plan
        assert "Base_Functions.asm" in plan
        assert "test layer: 0 changes" in plan

    def test_plan_matches_measured_port(self):
        """The planner's artifact prediction matches what the porting
        engine actually touches — plan and reality agree."""
        from repro.core.porting import port_advm_environment
        from repro.core.workloads import make_nvm_environment

        plan_changes = compare_derivatives(SC88A, SC88D)
        predicted = {c.absorbed_by.value for c in plan_changes}
        outcome = port_advm_environment(
            lambda derivatives: make_nvm_environment(
                2, derivatives=derivatives
            ),
            [SC88A],
            SC88D,
        )
        touched = {
            d.filename for d in outcome.effort.diffs if d.touched
        }
        assert predicted == touched
