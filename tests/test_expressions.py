"""Tests for assembler constant-expression evaluation."""

import pytest
from hypothesis import given, strategies as st

from repro.assembler.errors import ExpressionError, SourceLocation
from repro.assembler.expressions import ExprResult, evaluate_all
from repro.assembler.lexer import tokenize_line

LOC = SourceLocation("expr.asm", 1)


def evaluate(text: str, table: dict[str, int] | None = None) -> ExprResult:
    table = table or {}
    tokens = tokenize_line(text, LOC)
    return evaluate_all(tokens, lambda name: table.get(name), LOC)


class TestArithmetic:
    @pytest.mark.parametrize(
        "text,value",
        [
            ("1 + 2", 3),
            ("10 - 4", 6),
            ("3 * 7", 21),
            ("20 / 6", 3),
            ("20 % 6", 2),
            ("1 << 5", 32),
            ("0x80 >> 3", 16),
            ("0xF0 | 0x0F", 0xFF),
            ("0xFF & 0x0F", 0x0F),
            ("0xFF ^ 0x0F", 0xF0),
            ("-5 + 10", 5),
            ("~0 & 0xFF", 0xFF),
            ("(1 + 2) * 3", 9),
            ("1 + 2 * 3", 7),
            ("2 * (3 + 4) - 1", 13),
        ],
    )
    def test_values(self, text, value):
        assert evaluate(text).value == value

    @pytest.mark.parametrize(
        "text,value",
        [
            ("1 == 1", 1),
            ("1 != 1", 0),
            ("2 < 3", 1),
            ("3 <= 3", 1),
            ("4 > 5", 0),
            ("1 && 0", 0),
            ("1 || 0", 1),
            ("!0", 1),
            ("!7", 0),
        ],
    )
    def test_comparisons_and_logic(self, text, value):
        assert evaluate(text).value == value

    def test_division_by_zero_raises(self):
        with pytest.raises(ExpressionError, match="division by zero"):
            evaluate("1 / 0")
        with pytest.raises(ExpressionError):
            evaluate("1 % 0")

    def test_precedence_bitwise_vs_shift(self):
        # C-like: shifts bind tighter than & which binds tighter than |.
        assert evaluate("1 | 2 & 3 << 1").value == (1 | (2 & (3 << 1)))


class TestSymbols:
    def test_known_symbol(self):
        assert evaluate("PAGE + 1", {"PAGE": 7}).value == 8

    def test_unknown_symbol_is_symbolic(self):
        result = evaluate("ES_Init_Register")
        assert result.symbol == "ES_Init_Register"
        assert result.value == 0

    def test_symbol_plus_constant(self):
        result = evaluate("handler + 8")
        assert result.symbol == "handler"
        assert result.value == 8

    def test_constant_plus_symbol(self):
        result = evaluate("4 + handler")
        assert result.symbol == "handler"
        assert result.value == 4

    def test_symbol_minus_constant(self):
        result = evaluate("handler - 4")
        assert result.symbol == "handler"
        assert result.value == -4

    def test_symbol_times_constant_rejected(self):
        with pytest.raises(ExpressionError, match="symbolic"):
            evaluate("handler * 2")

    def test_two_symbols_rejected(self):
        with pytest.raises(ExpressionError):
            evaluate("a_sym + b_sym")

    def test_negate_symbol_rejected(self):
        with pytest.raises(ExpressionError):
            evaluate("-handler")

    def test_require_absolute(self):
        result = evaluate("handler + 8")
        with pytest.raises(ExpressionError, match="absolute"):
            result.require_absolute("immediate", LOC)
        assert evaluate("1+1").require_absolute("x", LOC) == 2


class TestSyntaxErrors:
    @pytest.mark.parametrize(
        "text", ["", "1 +", "(1", "1)", "* 3", "1 2", ", 3"]
    )
    def test_malformed(self, text):
        with pytest.raises(ExpressionError):
            evaluate(text)


class TestProperties:
    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    def test_addition_matches_python(self, a, b):
        assert evaluate(f"({a}) + ({b})").value == a + b

    @given(
        st.integers(0, 0xFFFF),
        st.integers(0, 0xFFFF),
        st.integers(0, 15),
    )
    def test_mixed_expression_matches_python(self, a, b, s):
        text = f"(({a} ^ {b}) << {s}) & 0xFFFFFFFF"
        assert evaluate(text).value == ((a ^ b) << s) & 0xFFFFFFFF

    @given(st.integers(-10_000, 10_000), st.integers(1, 100))
    def test_div_mod_identity(self, a, b):
        quotient = evaluate(f"({a}) / {b}").value
        remainder = evaluate(f"({a}) % {b}").value
        assert quotient * b + remainder == a

    def test_figure6_style_expression(self):
        # The kind of expression Globals.inc entries use.
        table = {"PAGE_FIELD_SIZE": 5}
        assert evaluate("(1 << PAGE_FIELD_SIZE) - 1", table).value == 31
