"""Property-based round-trip tests across the toolchain.

These exercise the deep invariants the reproduction rests on:

- assemble -> disassemble recovers the instruction stream;
- assemble -> link -> execute produces identical architectural state on
  functionally-equivalent platforms for *randomly generated* straight-
  line programs (a miniature cross-platform consistency fuzzer — the C1
  claim as a property).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.assembler.assembler import Assembler
from repro.assembler.linker import Linker
from repro.assembler.listing import disassemble_range
from repro.platforms import Accelerator, Bondout, GateLevelSim, GoldenModel, RtlSim
from repro.soc.derivatives import SC88A

MEMORY_MAP = SC88A.memory_map()

# -- random straight-line program generator --------------------------------

_REG = st.integers(0, 10)  # avoid a11..a15 (scratch/SP conventions)
_SMALL = st.integers(0, 0xFFF)


def _rrr(op):
    return st.tuples(st.just(op), _REG, _REG, _REG).map(
        lambda t: f"    {t[0]} d{t[1]}, d{t[2]}, d{t[3]}"
    )


def _ri(op):
    return st.tuples(st.just(op), _REG, _REG, _SMALL).map(
        lambda t: f"    {t[0]} d{t[1]}, d{t[2]}, {t[3]}"
    )


_INSTRUCTION = st.one_of(
    st.tuples(_REG, st.integers(0, 0xFFFF_FFFF)).map(
        lambda t: f"    LOAD d{t[0]}, {t[1]:#x}"
    ),
    _rrr("ADD"),
    _rrr("SUB"),
    _rrr("AND"),
    _rrr("OR"),
    _rrr("XOR"),
    _rrr("MUL"),
    _ri("ADDI"),
    _ri("ANDI"),
    _ri("ORI"),
    _ri("XORI"),
    st.tuples(_REG, _REG, st.integers(0, 31)).map(
        lambda t: f"    SHLI d{t[0]}, d{t[1]}, {t[2]}"
    ),
    st.tuples(_REG, _REG, st.integers(0, 27), st.integers(1, 5)).map(
        lambda t: f"    EXTRU d{t[0]}, d{t[1]}, {t[2]}, {t[3]}"
    ),
    st.tuples(
        _REG, _REG, st.integers(0, 0xFF), st.integers(0, 27),
        st.integers(1, 5),
    ).map(
        lambda t: f"    INSERT d{t[0]}, d{t[1]}, {t[2]}, {t[3]}, {t[4]}"
    ),
    st.tuples(_REG, st.integers(0, 31)).map(
        lambda t: f"    SETB d{t[0]}, {t[1]}"
    ),
    st.tuples(_REG, _REG).map(lambda t: f"    MOV d{t[0]}, d{t[1]}"),
)

_PROGRAM = st.lists(_INSTRUCTION, min_size=1, max_size=30)


def _assemble(lines: list[str]):
    source = "_main:\n" + "\n".join(lines) + "\n    HALT\n"
    obj = Assembler().assemble_source(source, "fuzz.asm")
    return Linker(
        text_base=MEMORY_MAP.text_base, data_base=MEMORY_MAP.data_base
    ).link([obj])


class TestDisassemblyRoundTrip:
    @given(_PROGRAM)
    @settings(max_examples=50, deadline=None)
    def test_mnemonics_recovered(self, lines):
        image = _assemble(lines)
        segment = image.segments[0]
        words = [
            int.from_bytes(segment.data[i : i + 4], "little")
            for i in range(0, len(segment.data), 4)
        ]
        disassembly = disassemble_range(words, base=segment.base)
        # One line per source instruction plus the HALT.
        assert len(disassembly) == len(lines) + 1
        for source_line, listing_line in zip(lines, disassembly):
            mnemonic = source_line.split()[0]
            assert f" {mnemonic} " in f" {listing_line} ", (
                source_line,
                listing_line,
            )
        assert disassembly[-1].endswith("HALT")


class TestCrossPlatformConsistencyFuzz:
    @given(_PROGRAM)
    @settings(max_examples=25, deadline=None)
    def test_register_file_identical_across_platforms(self, lines):
        """The C1 claim as a property: random ALU programs finish with
        bit-identical data registers on every register-visible platform."""
        image = _assemble(lines)
        reference = GoldenModel().run(image, SC88A)
        for platform_cls in (RtlSim, GateLevelSim, Bondout):
            result = platform_cls().run(image, SC88A)
            assert result.registers == reference.registers, (
                platform_cls.__name__
            )

    @given(_PROGRAM)
    @settings(max_examples=10, deadline=None)
    def test_memory_visible_platform_agrees_on_halt(self, lines):
        image = _assemble(lines)
        reference = GoldenModel().run(image, SC88A)
        accelerator = Accelerator().run(image, SC88A)
        assert accelerator.instructions == reference.instructions


class TestDeterminism:
    @given(_PROGRAM)
    @settings(max_examples=20, deadline=None)
    def test_assembly_is_deterministic(self, lines):
        first = _assemble(lines)
        second = _assemble(lines)
        assert [s.data for s in first.segments] == [
            s.data for s in second.segments
        ]

    @given(_PROGRAM)
    @settings(max_examples=10, deadline=None)
    def test_execution_is_deterministic(self, lines):
        image = _assemble(lines)
        a = GoldenModel().run(image, SC88A)
        b = GoldenModel().run(image, SC88A)
        assert a.registers == b.registers
        assert a.cycles == b.cycles
