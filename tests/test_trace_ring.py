"""Bulk trace-ring append equivalence (ISSUE 5).

The observed superblock engine emits whole blocks (and warped spins)
into the trace rings through ``extend_raw`` / ``extend_repeat`` instead
of one ``record`` call per event.  These property tests pin the
contract that makes that sound: for every capacity and every chunking
of an event stream, the bulk APIs leave the ring in **exactly** the
state a per-event ``record`` loop would — same drained tuples, same
length, same dropped count — across wrap boundaries, capacity edges
and the closed-form huge-warp synthesis.
"""

from __future__ import annotations

import random

import pytest

from repro.platforms.cpu import InstructionTrace
from repro.soc.bus import BusTrace


def bus_event(i: int) -> tuple[str, int, int, int]:
    return ("read" if i % 3 else "write", 0x1000 + 4 * i, 4, i)


def retire_event(i: int) -> tuple[int, int, str, int]:
    return (0x2000 + 4 * i, i % 80, f"OP{i % 7}", 1 + i % 4)


def chunkings(total: int, seed: int) -> list[list[int]]:
    """A few deterministic ways to split *total* events into chunks."""
    rng = random.Random(seed)
    random_chunks = []
    remaining = total
    while remaining:
        take = rng.randint(1, remaining)
        random_chunks.append(take)
        remaining -= take
    return [[total], [1] * total, random_chunks]


# ---------------------------------------------------------------------------
# BusTrace: ring semantics (drop-oldest wrap)
# ---------------------------------------------------------------------------

class TestBusTraceExtendRaw:
    @pytest.mark.parametrize("capacity", [None, 1, 2, 3, 5, 7, 16])
    @pytest.mark.parametrize("total", [0, 1, 2, 3, 5, 8, 21, 40])
    def test_matches_per_event_record(self, capacity, total):
        events = [bus_event(i) for i in range(total)]
        for chunks in chunkings(total, seed=total * 31 + (capacity or 0)):
            reference = BusTrace(capacity)
            for event in events:
                reference.record(*event)
            bulk = BusTrace(capacity)
            offset = 0
            for size in chunks:
                bulk.extend_raw(events[offset : offset + size])
                offset += size
            assert bulk.raw() == reference.raw(), (capacity, chunks)
            assert len(bulk) == len(reference)
            assert bulk.dropped == reference.dropped

    @pytest.mark.parametrize("capacity", [2, 3, 5, 8])
    def test_bulk_after_partial_fill_and_wrap(self, capacity):
        """Chunks landing exactly on the fill edge, one past it, and a
        chunk longer than the whole ring."""
        for prefill in range(0, capacity + 1):
            for chunk in (1, capacity - 1, capacity, capacity + 1,
                          3 * capacity + 2):
                if chunk <= 0:
                    continue
                events = [bus_event(i) for i in range(prefill + chunk)]
                reference = BusTrace(capacity)
                bulk = BusTrace(capacity)
                for event in events[:prefill]:
                    reference.record(*event)
                    bulk.record(*event)
                for event in events[prefill:]:
                    reference.record(*event)
                bulk.extend_raw(events[prefill:])
                assert bulk.raw() == reference.raw(), (prefill, chunk)
                assert bulk.dropped == reference.dropped

    def test_interleaves_with_record(self):
        reference = BusTrace(5)
        bulk = BusTrace(5)
        events = [bus_event(i) for i in range(17)]
        for event in events:
            reference.record(*event)
        bulk.extend_raw(events[:3])
        bulk.record(*events[3])
        bulk.extend_raw(events[4:11])
        bulk.record(*events[11])
        bulk.extend_raw(events[12:])
        assert bulk.raw() == reference.raw()
        assert bulk.dropped == reference.dropped


class TestBusTraceExtendRepeat:
    @pytest.mark.parametrize("capacity", [None, 1, 2, 3, 5, 7])
    @pytest.mark.parametrize("unit", [1, 2, 3])
    @pytest.mark.parametrize("count", [1, 2, 5, 9, 50])
    def test_matches_repeated_record(self, capacity, unit, count):
        pattern = tuple(bus_event(i) for i in range(unit))
        for prefill in (0, 1, 3):
            prefix = [bus_event(100 + i) for i in range(prefill)]
            reference = BusTrace(capacity)
            bulk = BusTrace(capacity)
            for event in prefix:
                reference.record(*event)
                bulk.record(*event)
            for _ in range(count):
                for event in pattern:
                    reference.record(*event)
            bulk.extend_repeat(pattern, count)
            assert bulk.raw() == reference.raw(), (capacity, unit, count)
            assert bulk.dropped == reference.dropped

    @pytest.mark.parametrize("capacity", [1, 2, 3, 7, 64])
    @pytest.mark.parametrize("unit", [1, 2, 3])
    def test_huge_warp_closed_form(self, capacity, unit):
        """A warp far larger than the ring must land the same final
        state as one-at-a-time recording while only synthesizing one
        ring's worth of events."""
        count = 100_003  # not a multiple of any unit/capacity in use
        pattern = tuple(bus_event(i) for i in range(unit))
        bulk = BusTrace(capacity)
        bulk.record(*bus_event(999))
        bulk.extend_repeat(pattern, count)
        # Closed-form reference: replay only the arithmetic.
        reference = BusTrace(capacity)
        reference.record(*bus_event(999))
        for _ in range(count):
            for event in pattern:
                reference.record(*event)
        assert bulk.raw() == reference.raw()
        assert bulk.dropped == reference.dropped
        assert len(bulk) == len(reference)

    def test_huge_warp_work_is_bounded(self):
        """The synthesized buffer never exceeds the ring capacity —
        i.e. a million-iteration warp cannot allocate a million
        tuples."""
        trace = BusTrace(8)
        trace.extend_repeat((bus_event(0), bus_event(1)), 1_000_000)
        assert len(trace._events) == 8
        assert trace.dropped == 2_000_000 - 8


# ---------------------------------------------------------------------------
# InstructionTrace: bounded-log semantics (drop-newest at the limit)
# ---------------------------------------------------------------------------

class TestInstructionTraceBulk:
    @pytest.mark.parametrize("limit", [1, 2, 5, 10, 100])
    @pytest.mark.parametrize("total", [0, 1, 4, 9, 23, 120])
    def test_extend_raw_matches_per_event_record(self, limit, total):
        events = [retire_event(i) for i in range(total)]
        for chunks in chunkings(total, seed=total * 13 + limit):
            reference = InstructionTrace(limit)
            for event in events:
                reference.record(*event)
            bulk = InstructionTrace(limit)
            offset = 0
            for size in chunks:
                bulk.extend_raw(events[offset : offset + size])
                offset += size
            assert bulk.raw() == reference.raw(), (limit, chunks)
            assert len(bulk) == len(reference)

    @pytest.mark.parametrize("limit", [1, 3, 10])
    @pytest.mark.parametrize("count", [1, 2, 9, 1_000_000])
    def test_extend_repeat_clamps_at_limit(self, limit, count):
        record = retire_event(42)
        reference = InstructionTrace(limit)
        for _ in range(min(count, limit + 5)):
            reference.record(*record)
        bulk = InstructionTrace(limit)
        bulk.extend_repeat(record, count)
        assert bulk.raw() == reference.raw()
        # Work (and memory) is bounded by the limit, not the count.
        assert len(bulk._events) <= limit

    def test_views_survive_bulk_append(self):
        trace = InstructionTrace(10)
        trace.extend_raw([retire_event(i) for i in range(4)])
        assert trace[1].pc == retire_event(1)[0]
        assert [entry.mnemonic for entry in trace] == [
            retire_event(i)[2] for i in range(4)
        ]
