"""Tests for the assembler line lexer."""

import pytest
from hypothesis import given, strategies as st

from repro.assembler.errors import LexError, SourceLocation
from repro.assembler.lexer import Token, TokenKind, tokenize_line

LOC = SourceLocation("test.asm", 1)


def kinds(line: str) -> list[TokenKind]:
    return [t.kind for t in tokenize_line(line, LOC)]


def texts(line: str) -> list[str]:
    return [t.text for t in tokenize_line(line, LOC)[:-1]]


class TestBasicTokens:
    def test_empty_line_yields_eol_only(self):
        tokens = tokenize_line("", LOC)
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOL

    def test_comment_only(self):
        assert kinds(";; a comment") == [TokenKind.EOL]
        assert kinds("   ; x") == [TokenKind.EOL]

    def test_identifier(self):
        tokens = tokenize_line("_main", LOC)
        assert tokens[0].kind is TokenKind.IDENT
        assert tokens[0].text == "_main"

    def test_dotted_identifier_is_one_token(self):
        tokens = tokenize_line("LD.W", LOC)
        assert tokens[0].kind is TokenKind.IDENT
        assert tokens[0].text == "LD.W"

    def test_directive(self):
        tokens = tokenize_line(".INCLUDE Globals.inc", LOC)
        assert tokens[0].kind is TokenKind.DIRECTIVE
        assert tokens[0].text == ".INCLUDE"
        assert tokens[1].text == "Globals.inc"

    def test_label_with_colon(self):
        tokens = tokenize_line("Base_Init_Register:", LOC)
        assert tokens[0].kind is TokenKind.IDENT
        assert tokens[1].is_punct(":")


class TestNumbers:
    @pytest.mark.parametrize(
        "literal,value",
        [
            ("0", 0),
            ("42", 42),
            ("0x1F", 31),
            ("0XFF", 255),
            ("0b101", 5),
            ("0o17", 15),
            ("1_000", 1000),
            ("0xDEAD_BEEF", 0xDEADBEEF),
        ],
    )
    def test_number_formats(self, literal, value):
        token = tokenize_line(literal, LOC)[0]
        assert token.kind is TokenKind.NUMBER
        assert token.value == value

    def test_char_literal(self):
        assert tokenize_line("'A'", LOC)[0].value == 65
        assert tokenize_line(r"'\n'", LOC)[0].value == 10
        assert tokenize_line(r"'\0'", LOC)[0].value == 0

    @pytest.mark.parametrize("bad", ["0x", "0xG", "0b2", "5t", "0x5G"])
    def test_malformed_numbers_raise(self, bad):
        with pytest.raises(LexError):
            tokenize_line(bad, LOC)

    def test_unterminated_char_raises(self):
        with pytest.raises(LexError):
            tokenize_line("'A", LOC)


class TestStrings:
    def test_simple_string(self):
        token = tokenize_line('"hello"', LOC)[0]
        assert token.kind is TokenKind.STRING
        assert token.text == "hello"

    def test_escapes(self):
        token = tokenize_line(r'"a\nb\"c"', LOC)[0]
        assert token.text == 'a\nb"c'

    def test_unterminated_raises(self):
        with pytest.raises(LexError):
            tokenize_line('"abc', LOC)

    def test_unknown_escape_raises(self):
        with pytest.raises(LexError):
            tokenize_line(r'"\q"', LOC)


class TestPunctuation:
    def test_operand_list(self):
        assert texts("INSERT d14, d14, 8, 0, 5") == [
            "INSERT", "d14", ",", "d14", ",", "8", ",", "0", ",", "5",
        ]

    def test_memory_operand(self):
        assert texts("ST.W [a4+8], d1") == [
            "ST.W", "[", "a4", "+", "8", "]", ",", "d1",
        ]

    def test_multi_char_operators_munch_longest(self):
        assert texts("1 << 2 >= 3 != 4 && 5") == [
            "1", "<<", "2", ">=", "3", "!=", "4", "&&", "5",
        ]

    def test_stray_character_raises(self):
        with pytest.raises(LexError):
            tokenize_line("mov d0, @", LOC)

    def test_is_punct_helper(self):
        token = Token(TokenKind.PUNCT, ",")
        assert token.is_punct(",") and not token.is_punct(":")


class TestLexerProperties:
    @given(
        st.lists(
            st.sampled_from(
                ["LOAD", "d4", "0x10", ",", "+", "(", ")", "[", "]", "42"]
            ),
            min_size=0,
            max_size=12,
        )
    )
    def test_never_crashes_on_token_soup(self, pieces):
        line = " ".join(pieces)
        tokens = tokenize_line(line, LOC)
        assert tokens[-1].kind is TokenKind.EOL

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_hex_round_trip(self, value):
        token = tokenize_line(hex(value), LOC)[0]
        assert token.value == value
