"""Unit tests for the SC88 register model."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.registers import (
    AddressRegister,
    DataRegister,
    ProcessorStatusWord,
    Register,
    RegisterClass,
    RegisterFile,
    STACK_POINTER,
    parse_register,
)


class TestRegisterParsing:
    def test_parse_data_register(self):
        reg = parse_register("d14")
        assert reg == DataRegister(14)
        assert reg.cls is RegisterClass.DATA
        assert reg.index == 14

    def test_parse_address_register_uppercase(self):
        assert parse_register("A12") == AddressRegister(12)

    def test_parse_mixed_case(self):
        assert parse_register("D3") == DataRegister(3)

    @pytest.mark.parametrize(
        "text", ["", "d", "x5", "d16", "a99", "d-1", "d1x", "data", "a1.5"]
    )
    def test_parse_rejects_non_registers(self, text):
        assert parse_register(text) is None

    def test_register_name_round_trip(self):
        for index in range(16):
            for ctor in (DataRegister, AddressRegister):
                reg = ctor(index)
                assert parse_register(reg.name) == reg

    def test_register_index_out_of_range_raises(self):
        with pytest.raises(ValueError):
            Register(RegisterClass.DATA, 16)
        with pytest.raises(ValueError):
            Register(RegisterClass.ADDRESS, -1)

    def test_stack_pointer_is_a15(self):
        assert STACK_POINTER.name == "a15"


class TestProcessorStatusWord:
    def test_reset_state(self):
        psw = ProcessorStatusWord()
        assert psw.value == 0

    def test_value_round_trip(self):
        psw = ProcessorStatusWord()
        psw.carry = True
        psw.negative = True
        psw.interrupt_enable = True
        restored = ProcessorStatusWord()
        restored.value = psw.value
        assert restored.carry and restored.negative
        assert restored.interrupt_enable
        assert not restored.zero and not restored.overflow

    @given(st.integers(min_value=0, max_value=0xFF))
    def test_value_setter_masks_unknown_bits(self, raw):
        psw = ProcessorStatusWord()
        psw.value = raw
        # Round-tripping keeps only the architected bits.
        again = ProcessorStatusWord()
        again.value = psw.value
        assert again.value == psw.value

    def test_add_flags_carry(self):
        psw = ProcessorStatusWord()
        psw.set_add_flags(0xFFFF_FFFF, 1, 0xFFFF_FFFF + 1)
        assert psw.carry and psw.zero
        assert not psw.negative

    def test_add_flags_overflow_positive(self):
        psw = ProcessorStatusWord()
        lhs = rhs = 0x4000_0000
        psw.set_add_flags(lhs, rhs, lhs + rhs)
        assert psw.overflow and psw.negative
        assert not psw.carry

    def test_sub_flags_borrow(self):
        psw = ProcessorStatusWord()
        psw.set_sub_flags(1, 2)
        assert psw.carry  # borrow
        assert psw.negative
        assert not psw.zero

    def test_sub_flags_equal_sets_zero(self):
        psw = ProcessorStatusWord()
        psw.set_sub_flags(7, 7)
        assert psw.zero
        assert not psw.carry and not psw.negative and not psw.overflow

    def test_logic_flags(self):
        psw = ProcessorStatusWord()
        psw.set_logic_flags(0x8000_0000)
        assert psw.negative and not psw.zero
        assert not psw.carry and not psw.overflow
        psw.set_logic_flags(0)
        assert psw.zero and not psw.negative

    def test_copy_is_independent(self):
        psw = ProcessorStatusWord(carry=True)
        clone = psw.copy()
        clone.carry = False
        assert psw.carry


class TestRegisterFile:
    def test_read_write_masks_to_32_bits(self):
        regs = RegisterFile()
        regs.write(DataRegister(5), 0x1_2345_6789)
        assert regs.read(DataRegister(5)) == 0x2345_6789

    def test_banks_are_independent(self):
        regs = RegisterFile()
        regs.write(DataRegister(3), 111)
        regs.write(AddressRegister(3), 222)
        assert regs.read(DataRegister(3)) == 111
        assert regs.read(AddressRegister(3)) == 222

    def test_sp_property_aliases_a15(self):
        regs = RegisterFile()
        regs.sp = 0x1000_FE00
        assert regs.read(AddressRegister(15)) == 0x1000_FE00

    def test_snapshot_contains_all_registers(self):
        regs = RegisterFile()
        regs.write(DataRegister(0), 42)
        regs.pc = 0x100
        snap = regs.snapshot()
        assert snap["d0"] == 42
        assert snap["pc"] == 0x100
        assert len(snap) == 16 + 16 + 2

    def test_reset_clears_and_sets_sp(self):
        regs = RegisterFile()
        regs.write(DataRegister(1), 9)
        regs.pc = 0x500
        regs.reset(sp_init=0x2000)
        assert regs.read(DataRegister(1)) == 0
        assert regs.pc == 0
        assert regs.sp == 0x2000

    @given(
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=0xFFFF_FFFF),
    )
    def test_write_read_round_trip(self, index, value):
        regs = RegisterFile()
        regs.write(DataRegister(index), value)
        assert regs.read(DataRegister(index)) == value
