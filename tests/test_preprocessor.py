"""Tests for source streaming: includes, cycles, providers."""

import pytest

from repro.assembler.errors import IncludeError, SourceLocation
from repro.assembler.preprocessor import (
    FilesystemProvider,
    InMemoryProvider,
    SourceStream,
)


def drain(stream: SourceStream) -> list[tuple[str, str, int]]:
    out = []
    while (item := stream.next_line()) is not None:
        line, loc = item
        out.append((line, loc.filename, loc.line))
    return out


class TestInMemoryProvider:
    def test_read_known_file(self):
        provider = InMemoryProvider({"a.inc": "x"})
        assert provider.read("a.inc") == "x"

    def test_read_missing_raises(self):
        with pytest.raises(FileNotFoundError):
            InMemoryProvider().read("nope")

    def test_resolve_relative_to_including_file(self):
        provider = InMemoryProvider({"dir/a.inc": "x"})
        assert provider.resolve("a.inc", "dir") == "dir/a.inc"

    def test_resolve_absolute_name_first(self):
        provider = InMemoryProvider({"a.inc": "x", "dir/a.inc": "y"})
        assert provider.resolve("a.inc", "dir") == "a.inc"


class TestFilesystemProvider(object):
    def test_search_paths(self, tmp_path):
        include_dir = tmp_path / "inc"
        include_dir.mkdir()
        (include_dir / "g.inc").write_text("NAME .EQU 1\n")
        provider = FilesystemProvider(include_paths=[str(include_dir)])
        resolved = provider.resolve("g.inc", None)
        assert resolved == str(include_dir / "g.inc")
        assert "NAME" in provider.read(resolved)

    def test_including_file_dir_searched_first(self, tmp_path):
        (tmp_path / "g.inc").write_text("local\n")
        other = tmp_path / "other"
        other.mkdir()
        (other / "g.inc").write_text("other\n")
        provider = FilesystemProvider(include_paths=[str(other)])
        resolved = provider.resolve("g.inc", str(tmp_path))
        assert resolved == str(tmp_path / "g.inc")

    def test_missing_returns_none(self, tmp_path):
        provider = FilesystemProvider()
        assert provider.resolve("ghost.inc", str(tmp_path)) is None


class TestSourceStream:
    def test_single_file(self):
        provider = InMemoryProvider({"t.asm": "one\ntwo"})
        stream = SourceStream(provider)
        stream.push_file("t.asm")
        assert drain(stream) == [("one", "t.asm", 1), ("two", "t.asm", 2)]

    def test_nested_include_order(self):
        provider = InMemoryProvider({"inner.inc": "I1\nI2"})
        stream = SourceStream(provider)
        stream.push_text("outer.asm", "O1\nO2")
        # Simulate the assembler encountering .INCLUDE after O1.
        first = stream.next_line()
        assert first[0] == "O1"
        stream.push_file("inner.inc", opened_at=first[1])
        rest = drain(stream)
        assert [line for line, *_ in rest] == ["I1", "I2", "O2"]

    def test_include_location_context(self):
        provider = InMemoryProvider({"inner.inc": "X"})
        stream = SourceStream(provider)
        stream.push_text("outer.asm", "line1")
        line, loc = stream.next_line()
        stream.push_file("inner.inc", opened_at=loc)
        _, inner_loc = stream.next_line()
        assert inner_loc.filename == "inner.inc"
        assert ("outer.asm", 1) in inner_loc.context
        assert "via" in str(inner_loc)

    def test_missing_include_raises(self):
        stream = SourceStream(InMemoryProvider())
        with pytest.raises(IncludeError, match="not found"):
            stream.push_file("ghost.inc")

    def test_include_cycle_detected(self):
        provider = InMemoryProvider({"a.inc": "x", "b.inc": "y"})
        stream = SourceStream(provider)
        stream.push_file("a.inc")
        stream.push_file("b.inc")
        with pytest.raises(IncludeError, match="cycle"):
            stream.push_file("a.inc")

    def test_reinclude_after_pop_is_allowed(self):
        provider = InMemoryProvider({"a.inc": "only"})
        stream = SourceStream(provider)
        stream.push_file("a.inc")
        drain(stream)
        stream.push_file("a.inc")  # not a cycle: previous frame closed
        assert drain(stream) == [("only", "a.inc", 1)]

    def test_depth_limit(self):
        provider = InMemoryProvider({f"f{i}.inc": "" for i in range(100)})
        stream = SourceStream(provider, max_depth=5)
        for index in range(5):
            stream.push_file(f"f{index}.inc")
        with pytest.raises(IncludeError, match="deeper"):
            stream.push_file("f99.inc")

    def test_opened_files_recorded_once(self):
        provider = InMemoryProvider({"a.inc": "", "b.inc": ""})
        stream = SourceStream(provider)
        stream.push_file("a.inc")
        drain(stream)
        stream.push_file("b.inc")
        drain(stream)
        stream.push_file("a.inc")
        drain(stream)
        assert stream.opened_files == ["a.inc", "b.inc"]

    def test_macro_frames_not_in_opened_files(self):
        stream = SourceStream(InMemoryProvider())
        stream.push_text("<macro m>", "body", is_file=False)
        drain(stream)
        assert stream.opened_files == []


class TestSourceLocation:
    def test_str_plain(self):
        assert str(SourceLocation("f.asm", 3)) == "f.asm:3"

    def test_nested(self):
        loc = SourceLocation("a.asm", 1).nested("b.inc", 2)
        assert loc.filename == "b.inc"
        assert loc.context == (("a.asm", 1),)
