"""Tests for the porting engine (the paper's headline claim)."""

import pytest

from repro.core.metrics import compare_effort
from repro.core.porting import (
    compare_nvm_port,
    make_hardwired_nvm_suite,
    port_advm_environment,
    port_hardwired_suite,
)
from repro.core.environment import GlobalLayer
from repro.core.targets import TARGET_GOLDEN
from repro.core.workloads import make_nvm_environment
from repro.soc.derivatives import SC88A, SC88B, SC88C, SC88D


class TestAdvmPort:
    def test_port_touches_only_abstraction_layer(self):
        outcome = port_advm_environment(
            lambda derivatives: make_nvm_environment(
                3, derivatives=derivatives
            ),
            [SC88A],
            SC88B,
        )
        touched = [d.filename for d in outcome.effort.diffs if d.touched]
        assert touched == ["Globals.inc"]

    def test_ported_suite_passes_on_new_derivative(self):
        outcome = port_advm_environment(
            lambda derivatives: make_nvm_environment(
                2, derivatives=derivatives
            ),
            [SC88A],
            SC88C,
        )
        assert outcome.all_pass

    def test_port_to_firmware_rewrite_touches_base_functions(self):
        # sc88d changes the ES ABI -> Base_Functions must change too,
        # but STILL no test files.
        outcome = port_advm_environment(
            lambda derivatives: make_nvm_environment(
                3, derivatives=derivatives
            ),
            [SC88A, SC88B],
            SC88D,
        )
        touched = {d.filename for d in outcome.effort.diffs if d.touched}
        assert "Base_Functions.asm" in touched
        assert not any(name.startswith("TEST_") for name in touched)
        assert outcome.all_pass

    def test_test_files_counted_but_untouched(self):
        outcome = port_advm_environment(
            lambda derivatives: make_nvm_environment(
                4, derivatives=derivatives
            ),
            [SC88A],
            SC88B,
        )
        test_diffs = [
            d for d in outcome.effort.diffs if d.filename.endswith(".asm")
            and d.filename.startswith("TEST_")
        ]
        assert len(test_diffs) == 4
        assert all(not d.touched for d in test_diffs)


class TestHardwiredPort:
    def test_every_test_touched(self):
        outcome = port_hardwired_suite(4, SC88A, SC88B)
        assert outcome.effort.files_touched == 4

    def test_ported_hardwired_suite_passes(self):
        outcome = port_hardwired_suite(2, SC88A, SC88C)
        assert outcome.all_pass

    def test_hardwired_suite_runs_standalone(self):
        suite = make_hardwired_nvm_suite(2, SC88A)
        results = suite.run_all(GlobalLayer([SC88A]))
        assert all(r.passed for r in results.values())

    def test_hardwired_port_lines_scale_with_suite_size(self):
        small = port_hardwired_suite(2, SC88A, SC88B)
        large = port_hardwired_suite(6, SC88A, SC88B)
        assert (
            large.effort.lines_changed
            >= 3 * small.effort.lines_changed / 2
        )


class TestComparison:
    def test_files_factor_scales_with_suite_size(self):
        """The paper's claim in numbers: baseline cost grows with N,
        ADVM cost is constant — so the saving factor grows linearly."""
        small = compare_nvm_port(2, [SC88A], SC88B)
        large = compare_nvm_port(6, [SC88A], SC88B)
        assert small.factors["files_factor"] == 2.0
        assert large.factors["files_factor"] == 6.0

    def test_advm_lines_constant_in_suite_size(self):
        small = compare_nvm_port(2, [SC88A], SC88B)
        large = compare_nvm_port(8, [SC88A], SC88B)
        assert (
            small.advm.effort.lines_changed
            == large.advm.effort.lines_changed
        )

    def test_both_sides_pass_after_port(self):
        comparison = compare_nvm_port(2, [SC88A], SC88B)
        assert comparison.advm.all_pass
        assert comparison.baseline.all_pass

    def test_summary_renders(self):
        comparison = compare_nvm_port(2, [SC88A], SC88B)
        text = comparison.summary()
        assert "saving factor" in text
        assert "files" in text

    def test_compare_effort_inf_safe(self):
        from repro.core.metrics import EffortReport, FileDiff

        advm = EffortReport("advm")
        advm.add(FileDiff("g", 0, 0))
        baseline = EffortReport("base")
        baseline.add(FileDiff("t", 5, 5))
        factors = compare_effort(advm, baseline)
        assert factors["files_factor"] == float("inf")
