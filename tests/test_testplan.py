"""Tests for the plain-text TESTPLAN.TXT model."""

import pytest

from repro.core.testplan import PlanItem, TestPlan


class TestPlanBasics:
    def test_add_and_find(self):
        plan = TestPlan("NVM")
        plan.add("NVM_001", "program a page")
        assert plan.find("NVM_001").description == "program a page"
        assert plan.find("GHOST") is None

    def test_duplicate_id_rejected(self):
        plan = TestPlan("NVM")
        plan.add("NVM_001", "x")
        with pytest.raises(ValueError, match="duplicate"):
            plan.add("NVM_001", "y")

    def test_status_transitions(self):
        plan = TestPlan("NVM")
        plan.add("NVM_001", "x")
        plan.mark("NVM_001", "implemented")
        plan.mark("NVM_001", "passing")
        assert plan.find("NVM_001").status == "passing"

    def test_invalid_status_rejected(self):
        plan = TestPlan("NVM")
        plan.add("NVM_001", "x")
        with pytest.raises(ValueError):
            plan.mark("NVM_001", "magic")
        with pytest.raises(ValueError):
            PlanItem("A", "bogus", "desc")

    def test_mark_unknown_raises(self):
        with pytest.raises(KeyError):
            TestPlan("NVM").mark("GHOST", "passing")


class TestTextRoundTrip:
    def test_render_and_parse(self):
        plan = TestPlan("UART")
        plan.add("UART_001", "loopback byte", "implemented")
        plan.add("UART_002", "overrun flag", "planned")
        text = plan.to_text()
        parsed = TestPlan.from_text(text)
        assert parsed.module == "UART"
        assert [i.item_id for i in parsed.items] == ["UART_001", "UART_002"]
        assert parsed.find("UART_001").status == "implemented"

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            TestPlan.from_text("NVM_001 only-two-fields\n")

    def test_comments_and_blank_lines_ignored(self):
        text = ";; a comment\n\nA_1 | planned | thing\n"
        plan = TestPlan.from_text(text, module="M")
        assert len(plan.items) == 1

    def test_grep(self):
        # The paper's rationale: plain text is grep-able.
        plan = TestPlan("NVM")
        plan.add("NVM_001", "program page 8")
        plan.add("NVM_002", "erase page")
        plan.add("UARTISH_001", "unrelated")
        hits = plan.grep(r"page")
        assert len(hits) == 2
        hits = plan.grep(r"^NVM_\d+ \| planned")
        assert len(hits) == 2


class TestSummaries:
    def test_summary_counts(self):
        plan = TestPlan("M")
        plan.add("A", "x", "planned")
        plan.add("B", "y", "implemented")
        plan.add("C", "z", "passing")
        counts = plan.summary()
        assert counts == {
            "planned": 1,
            "implemented": 1,
            "passing": 1,
            "total": 3,
        }

    def test_completion_ratio(self):
        plan = TestPlan("M")
        assert plan.completion_ratio() == 1.0
        plan.add("A", "x", "passing")
        plan.add("B", "y", "planned")
        assert plan.completion_ratio() == 0.5
