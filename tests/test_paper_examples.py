"""Integration tests reproducing the paper's worked examples literally.

These tests assemble the *exact code shapes* printed in the paper's
Figures 6 and 7 and verify the change-absorption behaviour the text
describes, end to end, through the full stack (assembler -> linker ->
SoC -> platform).
"""

import pytest

from repro.core.environment import ModuleTestEnvironment, TestCell
from repro.core.targets import TARGET_GOLDEN
from repro.core.workloads import make_nvm_environment
from repro.platforms.base import RunStatus
from repro.soc.derivatives import SC88A, SC88B, SC88C, SC88D


FIGURE6_TEST_TEMPLATE = """\
;; Code for test {index}  (verbatim Figure 6 shape)
.INCLUDE Globals.inc
TEST_PAGE .EQU TEST{index}_TARGET_PAGE
_main:
    LOAD d14, 0
    INSERT d14, d14, TEST_PAGE, PAGE_FIELD_START_POSITION, PAGE_FIELD_SIZE
    ;; verify the constructed control value by extracting the field back
    EXTRU d4, d14, PAGE_FIELD_START_POSITION, PAGE_FIELD_SIZE
    LOAD d5, TEST_PAGE
    CALL Base_Check_EQ
    ;; and write it to the module control register, as the paper says
    LOAD a11, NVM_CTRL_ADDR
    ST.W [a11], d14
    LOAD d4, [NVM_CTRL_ADDR]
    EXTRU d4, d4, PAGE_FIELD_START_POSITION, PAGE_FIELD_SIZE
    CALL Base_Check_EQ
    JMP Base_Report_Pass
"""


def figure6_environment():
    # The paper's values: TEST1_TARGET_PAGE=8, TEST2_TARGET_PAGE=7.
    env = ModuleTestEnvironment(
        "NVM_FIG6",
        extras={"TEST1_TARGET_PAGE": 8, "TEST2_TARGET_PAGE": 7},
    )
    for index in (1, 2):
        env.add_test(
            TestCell(
                name=f"TEST_FIG6_{index}",
                source=FIGURE6_TEST_TEMPLATE.format(index=index),
            )
        )
    return env


class TestFigure6:
    def test_both_tests_pass_on_baseline(self):
        env = figure6_environment()
        for name in env.cells:
            assert env.run_test(name, SC88A).passed, name

    def test_spec_change_absorbed(self):
        """sc88c shifts the PAGE field by one bit — 'this change can be
        absorbed easily by modifying only the globals file' (here: the
        generated per-derivative block).  Test sources are untouched."""
        env = figure6_environment()
        for name in env.cells:
            assert env.run_test(name, SC88C).passed, name

    def test_derivative_change_absorbed(self):
        """sc88b widens the field from 5 to 6 bits for more pages —
        'the PAGE_FILE_SIZE define can be changed from 5 to 6 for this
        derivative'."""
        env = figure6_environment()
        for name in env.cells:
            assert env.run_test(name, SC88B).passed, name

    def test_global_control_without_touching_tests(self):
        """'Using this globals file it is possible to control both tests
        without actually changing the test code.'"""
        env = figure6_environment()
        baseline_sources = {
            name: cell.source for name, cell in env.cells.items()
        }
        env.defines.set_extra("TEST1_TARGET_PAGE", 21)
        env.defines.set_extra("TEST2_TARGET_PAGE", 3)
        for name in env.cells:
            assert env.run_test(name, SC88A).passed
            assert env.cells[name].source == baseline_sources[name]

    def test_local_override_for_corner_case(self):
        """The TEST_PAGE .EQU placeholder gives 'local control for
        debugging the test' — a corner-case page pinned in the test."""
        env = ModuleTestEnvironment(
            "NVM_FIG6L", extras={"TEST1_TARGET_PAGE": 8}
        )
        env.add_test(
            TestCell(
                name="TEST_CORNER",
                source=FIGURE6_TEST_TEMPLATE.format(index=1).replace(
                    "TEST_PAGE .EQU TEST1_TARGET_PAGE",
                    "TEST_PAGE .EQU 31    ;; corner case pinned locally",
                ),
            )
        )
        assert env.run_test("TEST_CORNER", SC88A).passed


FIGURE7_TEST = """\
;; Code for test 1  (verbatim Figure 7 shape)
.INCLUDE Globals.inc
_main:
    LOAD a4, UART_BAUD_ADDR
    LOAD d4, 0x1234
    CALL Base_Init_Register
    LOAD d4, [UART_BAUD_ADDR]
    LOAD d5, 0x1234
    CALL Base_Check_EQ
    JMP Base_Report_Pass
"""


class TestFigure7:
    def figure7_environment(self):
        env = ModuleTestEnvironment("REG_FIG7")
        env.add_test(TestCell(name="TEST_FIG7", source=FIGURE7_TEST))
        return env

    def test_wrapped_call_passes_on_v1_firmware(self):
        env = self.figure7_environment()
        assert env.run_test("TEST_FIG7", SC88A).passed

    def test_firmware_rewrite_absorbed_by_wrapper(self):
        """The paper's scenario: the embedded-software function 'has now
        been re-written in such a way that the input registers have been
        swapped around' (and renamed).  Only Base_Functions adapts; the
        test is byte-identical."""
        env = self.figure7_environment()
        assert env.run_test("TEST_FIG7", SC88D).passed

    def test_direct_call_breaks_on_rewrite(self):
        """Counterfactual: a test that bypasses the wrapper (Figure 2's
        abuse) works on v1 firmware but breaks on the rewrite — this is
        the failure mode the ADVM exists to prevent."""
        abusive = (
            ".INCLUDE Globals.inc\n"
            "_main:\n"
            "    LOAD a4, UART_BAUD_ADDR\n"
            "    LOAD d4, 0x1234\n"
            "    LOAD CallAddr, ES_Init_Register\n"
            "    CALL CallAddr\n"
            "    LOAD d4, [UART_BAUD_ADDR]\n"
            "    LOAD d5, 0x1234\n"
            "    CALL Base_Check_EQ\n"
            "    JMP Base_Report_Pass\n"
        )
        env = ModuleTestEnvironment("REG_FIG7A")
        env.add_test(TestCell(name="TEST_ABUSE", source=abusive))
        assert env.run_test("TEST_ABUSE", SC88A).passed
        # On sc88d the symbol ES_Init_Register no longer exists; the
        # build itself fails — every such test would need re-factoring.
        with pytest.raises(Exception):
            env.run_test("TEST_ABUSE", SC88D)


class TestCrossPlatformClaim:
    def test_figure6_suite_runs_on_all_six_platforms(self):
        """Section 1's claim: the same suite performs functional
        verification of every development platform."""
        env = figure6_environment()
        for target_name in (
            "golden", "rtl", "gatelevel", "accelerator", "bondout",
            "silicon",
        ):
            result = env.run_test("TEST_FIG6_1", SC88A, target_name)
            assert result.status is RunStatus.PASS, target_name
