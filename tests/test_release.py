"""Tests for release labels and frozen regression environments (§3)."""

import pytest

from repro.core.release import ReleaseManager
from repro.core.workloads import make_nvm_environment
from repro.platforms.base import RunStatus
from repro.soc.derivatives import SC88A


class TestLabels:
    def test_create_label_snapshots_content(self):
        manager = ReleaseManager()
        env = make_nvm_environment(2)
        release = manager.create_label("NVM_R1.0", env)
        assert release.environment_name == "NVM"
        assert "Globals.inc" in release.files
        assert "cell:TEST_NVM_PAGE_001" in release.files
        assert len(release.digest) == 16

    def test_duplicate_label_rejected(self):
        manager = ReleaseManager()
        env = make_nvm_environment(1)
        manager.create_label("R1", env)
        with pytest.raises(ValueError, match="already exists"):
            manager.create_label("R1", env)

    def test_dirty_detection(self):
        manager = ReleaseManager()
        env = make_nvm_environment(1)
        manager.create_label("R1", env)
        assert not manager.is_dirty("R1")
        env.defines.set_extra("TEST1_TARGET_PAGE", 30)
        assert manager.is_dirty("R1")

    def test_unknown_label_raises(self):
        with pytest.raises(KeyError):
            ReleaseManager().frozen("GHOST")


class TestFrozenEnvironment:
    def test_frozen_env_runs(self):
        manager = ReleaseManager()
        env = make_nvm_environment(1)
        manager.create_label("R1", env)
        frozen = manager.frozen("R1")
        result = frozen.run_test("TEST_NVM_PAGE_001", SC88A)
        assert result.status is RunStatus.PASS

    def test_frozen_env_immune_to_live_mutation(self):
        """The C7 property: a frozen regression is bit-stable while the
        live abstraction layer is being developed."""
        manager = ReleaseManager()
        env = make_nvm_environment(1)
        manager.create_label("R1", env)
        frozen = manager.frozen("R1")
        before = frozen.environment.globals_text()

        # Live development: break the live environment thoroughly.
        env.defines.set_extra("TEST1_TARGET_PAGE", 999_999)

        assert frozen.environment.globals_text() == before
        assert frozen.run_test("TEST_NVM_PAGE_001", SC88A).passed
        # The live environment, by contrast, is now broken (the bogus
        # page address takes a bus-error trap and the test fails).
        assert not env.run_test("TEST_NVM_PAGE_001", SC88A).passed

    def test_frozen_cells_match_snapshot(self):
        manager = ReleaseManager()
        env = make_nvm_environment(2)
        manager.create_label("R1", env)
        frozen = manager.frozen("R1")
        assert set(frozen.environment.cells) == set(env.cells)


class TestSystemLabels:
    def test_compose_and_freeze_system(self):
        manager = ReleaseManager()
        nvm = make_nvm_environment(1)
        from repro.core.workloads import make_uart_environment

        uart = make_uart_environment(1)
        manager.create_label("NVM_R1", nvm)
        manager.create_label("UART_R1", uart)
        system = manager.compose_system_label(
            "SYS_R1", {"NVM": "NVM_R1", "UART": "UART_R1"}
        )
        assert "NVM=NVM_R1" in str(system)
        frozen = manager.frozen_system("SYS_R1")
        assert set(frozen) == {"NVM", "UART"}
        assert frozen["NVM"].run_test("TEST_NVM_PAGE_001", SC88A).passed

    def test_unknown_sublabel_rejected(self):
        manager = ReleaseManager()
        with pytest.raises(KeyError):
            manager.compose_system_label("S", {"NVM": "GHOST"})

    def test_mismatched_environment_rejected(self):
        manager = ReleaseManager()
        env = make_nvm_environment(1)
        manager.create_label("NVM_R1", env)
        with pytest.raises(ValueError, match="belongs to"):
            manager.compose_system_label("S", {"UART": "NVM_R1"})

    def test_duplicate_system_label_rejected(self):
        manager = ReleaseManager()
        env = make_nvm_environment(1)
        manager.create_label("NVM_R1", env)
        manager.compose_system_label("S", {"NVM": "NVM_R1"})
        with pytest.raises(ValueError):
            manager.compose_system_label("S", {"NVM": "NVM_R1"})
