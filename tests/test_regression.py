"""Tests for cross-platform regressions and divergence attribution."""

import pytest

from repro.core.regression import (
    RegressionRunner,
    quick_regression,
)
from repro.core.reporting import regression_matrix, render_table
from repro.core.targets import TARGET_GOLDEN, TARGET_RTL, target
from repro.core.workloads import make_nvm_environment, make_uart_environment
from repro.isa.instructions import Opcode
from repro.platforms import GateLevelSim, NetlistFault
from repro.platforms.base import RunStatus
from repro.soc.derivatives import SC88A, SC88B


class TestHealthyRegression:
    def test_all_platforms_agree(self):
        env = make_nvm_environment(1)
        report = quick_regression(env, SC88A)
        assert report.divergences == []
        assert report.clean
        assert report.total_runs == 6

    def test_subset_of_targets(self):
        env = make_nvm_environment(1)
        report = quick_regression(env, SC88A, ["golden", "rtl"])
        assert report.total_runs == 2
        assert report.clean

    def test_runs_keyed_by_env_cell_target(self):
        env = make_nvm_environment(1)
        report = quick_regression(env, SC88A, ["golden"])
        assert ("NVM", "TEST_NVM_PAGE_001", "golden") in report.results

    def test_summary_text(self):
        env = make_nvm_environment(1)
        report = quick_regression(env, SC88A, ["golden", "rtl"])
        assert "2/2 runs ok" in report.summary()


class TestDivergenceAttribution:
    def faulty_runner(self):
        fault = NetlistFault(
            opcode=int(Opcode.SETB),
            xor_mask=0x1,
            description="stuck bit in bit-set unit",
        )
        return RegressionRunner(
            platform_overrides={"gatelevel": GateLevelSim(fault=fault)}
        )

    def test_faulty_platform_attributed(self):
        env = make_nvm_environment(2)
        report = self.faulty_runner().run_environment(env, SC88A)
        assert report.divergences
        assert set(report.suspect_platforms()) == {"gatelevel"}
        assert report.suspect_platforms()["gatelevel"] == 2

    def test_divergence_description(self):
        env = make_nvm_environment(1)
        report = self.faulty_runner().run_environment(env, SC88A)
        text = str(report.divergences[0])
        assert "gatelevel" in text and "golden" in text

    def test_unaffected_tests_stay_clean(self):
        # A UART-only suite never executes SETB via the NVM path, so the
        # injected NVM-ish fault must not show up there.
        env = make_uart_environment(1)
        report = self.faulty_runner().run_environment(env, SC88A)
        affected = {d.test_name for d in report.divergences}
        assert "TEST_UART_BANNER" not in affected

    def test_no_data_platform_never_diverges(self):
        # Product silicon reporting NO_DATA must not be flagged.
        env = make_nvm_environment(1)
        runner = RegressionRunner(
            targets=[TARGET_GOLDEN, target("silicon")]
        )
        report = runner.run_environment(env, SC88A)
        assert not report.divergences


class TestSystemRegression:
    def test_run_system_combines_reports(self):
        runner = RegressionRunner(targets=[TARGET_GOLDEN])
        environments = {
            "NVM": make_nvm_environment(1),
            "UART": make_uart_environment(1),
        }
        report = runner.run_system(environments, SC88B)
        env_names = {key[0] for key in report.results}
        assert env_names == {"NVM", "UART"}


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(
            ["name", "value"], [["alpha", "1"], ["b", "222"]]
        )
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4

    def test_regression_matrix(self):
        env = make_nvm_environment(1)
        report = quick_regression(env, SC88A, ["golden", "rtl"])
        matrix = regression_matrix(report)
        assert "NVM/TEST_NVM_PAGE_001" in matrix
        assert "golden" in matrix and "rtl" in matrix
        assert "pass" in matrix
