"""Tests for effort metrics (LoC, diffs, saving factors)."""

from hypothesis import given, strategies as st

from repro.core.metrics import (
    EffortReport,
    FileDiff,
    compare_effort,
    diff_files,
    loc,
)


class TestLoc:
    def test_counts_code_lines(self):
        source = "_main:\n    NOP\n\n;; comment\n    HALT\n"
        assert loc(source) == 3

    def test_count_comments_option(self):
        source = ";; a\n    NOP\n"
        assert loc(source, count_comments=True) == 2

    def test_empty(self):
        assert loc("") == 0
        assert loc("\n\n\n") == 0


class TestDiff:
    def test_identical_files(self):
        diff = diff_files("f", "a\nb\n", "a\nb\n")
        assert diff.changed == 0
        assert not diff.touched

    def test_pure_insert(self):
        diff = diff_files("f", "a\nb\n", "a\nX\nb\n")
        assert diff.added == 1 and diff.removed == 0

    def test_pure_delete(self):
        diff = diff_files("f", "a\nX\nb\n", "a\nb\n")
        assert diff.removed == 1 and diff.added == 0

    def test_replace_counts_both_sides(self):
        diff = diff_files("f", "a\nold\nb\n", "a\nnew\nb\n")
        assert diff.added == 1 and diff.removed == 1
        assert diff.changed == 2

    @given(
        st.lists(st.sampled_from("abcd"), max_size=20),
        st.lists(st.sampled_from("abcd"), max_size=20),
    )
    def test_diff_counts_bounded(self, before, after):
        diff = diff_files("f", "\n".join(before), "\n".join(after))
        assert 0 <= diff.added <= len(after)
        assert 0 <= diff.removed <= len(before)

    @given(st.lists(st.sampled_from("abcd"), max_size=20))
    def test_self_diff_is_zero(self, lines):
        text = "\n".join(lines)
        assert diff_files("f", text, text).changed == 0


class TestEffortReport:
    def test_aggregation(self):
        report = EffortReport("port")
        report.add(FileDiff("a", 3, 1))
        report.add(FileDiff("b", 0, 0))
        report.add(FileDiff("c", 0, 2))
        assert report.files_touched == 2
        assert report.files_total == 3
        assert report.lines_changed == 6
        assert "2/3 files" in report.summary()

    def test_compare_effort_factors(self):
        advm = EffortReport("advm")
        advm.add(FileDiff("g", 10, 0))
        baseline = EffortReport("base")
        for index in range(5):
            baseline.add(FileDiff(f"t{index}", 4, 4))
        factors = compare_effort(advm, baseline)
        assert factors["files_factor"] == 5.0
        assert factors["lines_factor"] == 4.0

    def test_equal_effort_factor_one(self):
        a = EffortReport("a")
        a.add(FileDiff("x", 1, 1))
        factors = compare_effort(a, a)
        assert factors["files_factor"] == 1.0
