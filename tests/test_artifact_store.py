"""Artifact-store acceptance: snapshot fidelity, corrupt-never-trusted,
degradation, pruning, registry warm-start and the registry-reset fix.

The store's contract (the robustness issue's tentpole): a fresh process
warm-starts from persisted decode/superblock/JIT state instead of
re-paying predecode, a corrupt artifact is counted + quarantined aside
+ re-derived from source (corrupt != miss, never trusted), and a store
root that is unavailable degrades the run to local cold starts instead
of failing it.  Byte-identity of verdicts always comes before any
warm-start claim.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.scheduler import (
    RegressionScheduler,
    result_to_payload,
)
from repro.core.system_env import make_default_system
from repro.core.workspace import (
    load_module_environment,
    write_system_environment,
)
from repro.core.targets import target as lookup_target
from repro.isa import decodecache
from repro.isa.decodecache import (
    RegistryReset,
    install_cache,
    registry_stats,
    reset_registry,
    set_artifact_store,
)
from repro.soc.derivatives import derivative as lookup_derivative
from repro.store import ArtifactStore, restore_decode_cache, snapshot_decode_cache


@pytest.fixture(scope="module")
def matrix(tmp_path_factory):
    """One small (env, derivative, targets) matrix, loaded once."""
    system_dir = write_system_environment(
        make_default_system(nvm_tests=1, uart_tests=0),
        tmp_path_factory.mktemp("store-ws") / "ws",
    )
    environments = {"NVM": load_module_environment(system_dir / "NVM")}
    derivative = lookup_derivative("sc88a")
    targets = [lookup_target("golden"), lookup_target("rtl")]
    return environments, derivative, targets


@pytest.fixture(autouse=True)
def clean_global_store():
    """No test leaks a process-global artifact store into the next."""
    yield
    set_artifact_store(None)


def run_matrix(matrix, **scheduler_kwargs):
    environments, derivative, targets = matrix
    scheduler = RegressionScheduler(
        targets=targets, executor="serial", **scheduler_kwargs
    )
    return scheduler, scheduler.run_system(environments, derivative)


def verdict_bytes(report) -> dict[tuple, bytes]:
    """Canonical byte encoding of every verdict in a report."""
    return {
        key: json.dumps(
            result_to_payload(result), sort_keys=True
        ).encode()
        for key, result in report.results.items()
    }


def warm_and_persist(matrix, store: ArtifactStore):
    """Run the matrix once with *store* installed; returns the report
    (the run's own finally-persist writes the artifacts)."""
    set_artifact_store(store)
    _scheduler, report = run_matrix(matrix)
    return report


# --------------------------------------------------------------------------
# roundtrip + warm-start byte identity
# --------------------------------------------------------------------------

class TestRoundtrip:
    def test_scheduler_run_persists_registry(self, tmp_path, matrix):
        store = ArtifactStore(tmp_path)
        reset_registry()
        warm_and_persist(matrix, store)
        assert store.saved >= 1
        assert store.write_errors == 0
        assert sorted(tmp_path.glob("decode-*.art"))

    def test_warm_start_is_byte_identical_and_skips_predecode(
        self, tmp_path, matrix
    ):
        store = ArtifactStore(tmp_path)
        reset_registry()
        cold_report = warm_and_persist(matrix, store)

        # Fresh "process": empty registry, fresh store handle.
        reset_registry()
        warm = ArtifactStore(tmp_path)
        set_artifact_store(warm)
        scheduler, warm_report = run_matrix(matrix)

        # Byte identity before any warmth claim.
        assert verdict_bytes(warm_report) == verdict_bytes(cold_report)
        assert warm.hits >= 1
        assert warm.corrupt == 0
        # The restored caches are fully predecoded: the warm run never
        # missed the decode cache.
        assert scheduler.engine_stats["decode_misses"] == 0

    def test_snapshot_restore_preserves_block_entry_aliasing(
        self, tmp_path, matrix
    ):
        reset_registry()
        run_matrix(matrix)
        key, cache = next(iter(decodecache._REGISTRY.items()))
        assert cache._entries  # the run warmed it
        restored = restore_decode_cache(snapshot_decode_cache(cache))
        assert set(restored._entries) == set(cache._entries)
        assert set(restored._blocks) == set(cache._blocks)
        assert restored._skip == cache._skip
        # The pickle memo must preserve identity: block bodies alias
        # the restored entries dict, not parallel copies.
        for pc, block in restored._blocks.items():
            for offset, entry in enumerate(block.body):
                assert entry is restored._entries[entry.pc]


# --------------------------------------------------------------------------
# corrupt != miss: counted, quarantined aside, re-derived, never trusted
# --------------------------------------------------------------------------

class TestCorruption:
    def corrupt_file(self, path) -> None:
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))

    def corrupt_one(self, tmp_path) -> None:
        self.corrupt_file(next(tmp_path.glob("decode-*.art")))

    def test_corrupt_artifact_is_quarantined_and_rederived(
        self, tmp_path, matrix
    ):
        store = ArtifactStore(tmp_path)
        reset_registry()
        cold_report = warm_and_persist(matrix, store)
        artifacts = sorted(tmp_path.glob("decode-*.art"))
        for path in artifacts:
            self.corrupt_file(path)

        reset_registry()
        fresh = ArtifactStore(tmp_path)
        set_artifact_store(fresh)
        _scheduler, report = run_matrix(matrix)

        # Every corrupt artifact was detected, renamed aside as
        # evidence, and the state re-derived from source — verdicts
        # identical to the cold run, nothing trusted.
        assert verdict_bytes(report) == verdict_bytes(cold_report)
        assert fresh.corrupt == len(artifacts)
        assert fresh.quarantined == len(artifacts)
        assert fresh.hits == 0
        evidence = list(tmp_path.glob("*.corrupt"))
        assert len(evidence) == len(artifacts)
        # The re-derived state was re-persisted over the quarantined
        # originals by the run's finally-persist.
        assert fresh.saved >= 1

    def test_repeated_corruption_preserves_every_evidence_file(
        self, tmp_path, matrix
    ):
        store = ArtifactStore(tmp_path)
        reset_registry()
        warm_and_persist(matrix, store)
        key = next(iter(decodecache._REGISTRY))
        for _ in range(3):
            # Re-persist (cold state changed nothing, so force a new
            # file), corrupt it, then watch the load quarantine it.
            store._stamps.clear()
            assert store.save_decode_cache(
                key, decodecache._REGISTRY[key]
            )
            self.corrupt_one(tmp_path)
            assert store.load_decode_cache(key) is None
        assert store.corrupt == 3
        assert store.quarantined == 3
        assert len(list(tmp_path.glob("*.corrupt"))) == 3

    def test_header_key_mismatch_is_corruption(self, tmp_path, matrix):
        store = ArtifactStore(tmp_path)
        reset_registry()
        warm_and_persist(matrix, store)
        key = next(iter(decodecache._REGISTRY))
        path = store._path(store._stem("decode", key))
        alias = ("0" * 64, 0, 16, 0)
        # A valid artifact squatting under another key's content
        # address lies about its identity: corruption by definition.
        os.replace(path, store._path(store._stem("decode", alias)))
        fresh = ArtifactStore(tmp_path)
        assert fresh.load_decode_cache(alias) is None
        assert fresh.corrupt == 1
        assert fresh.quarantined == 1

    def test_truncated_artifact_is_corruption(self, tmp_path):
        store = ArtifactStore(tmp_path)
        stem = store._stem("decode", ("digest", 0, 16, 0))
        store._path(stem).write_bytes(b'{"schema": 1')  # no payload
        assert store.load_decode_cache(("digest", 0, 16, 0)) is None
        assert store.corrupt == 1


# --------------------------------------------------------------------------
# degradation: an unavailable store is counted, never fatal
# --------------------------------------------------------------------------

class TestDegradation:
    def test_uncreatable_root_disables_the_store(self, tmp_path, matrix):
        squatter = tmp_path / "store"
        squatter.write_text("a file where the store root should be")
        store = ArtifactStore(squatter)
        assert store.disabled
        assert store.stats()["disabled"] == 1
        # Every operation is a contained no-op; the run still works.
        reset_registry()
        report = warm_and_persist(matrix, store)
        assert report.total_runs == len(report.results)
        assert store.saved == 0
        assert store.load_decode_cache(("k", 0, 1, 0)) is None
        assert store.warm_registry() == 0
        assert store.prune(max_entries=0) == 0

    def test_fleet_flag_without_store_dir_is_an_error(self, capsys):
        from repro import cli

        code = cli.main(["regress", "/nonexistent", "--fleet"])
        assert code == 2
        assert "--fleet requires --store-dir" in capsys.readouterr().err


# --------------------------------------------------------------------------
# pruning
# --------------------------------------------------------------------------

class TestPrune:
    def fill(self, store: ArtifactStore, tmp_path, count: int) -> int:
        base = 1_000_000_000
        for index in range(count):
            path = tmp_path / f"decode-{index:064d}.art"
            path.write_bytes(b"{}\nx")
            stamp = base + index * 100
            os.utime(path, (stamp, stamp))
        return base

    def test_max_entries_keeps_newest(self, tmp_path):
        store = ArtifactStore(tmp_path)
        self.fill(store, tmp_path, 5)
        assert store.prune(max_entries=2) == 3
        survivors = sorted(p.stem for p in tmp_path.glob("*.art"))
        assert survivors == [f"decode-{3:064d}", f"decode-{4:064d}"]
        assert store.pruned == 3

    def test_max_age_reaps_artifacts_and_evidence(self, tmp_path):
        store = ArtifactStore(tmp_path)
        base = self.fill(store, tmp_path, 2)
        evidence = tmp_path / "decode-dead.0000.corrupt"
        evidence.write_bytes(b"rot")
        os.utime(evidence, (base, base))
        # Entry bounds never touch evidence...
        assert store.prune(max_entries=100) == 0
        assert evidence.exists()
        # ...but the age horizon reaps it with the stale artifact.
        assert store.prune(max_age=150, now=base + 200) == 2
        assert not evidence.exists()

    def test_noop_without_bounds(self, tmp_path):
        store = ArtifactStore(tmp_path)
        self.fill(store, tmp_path, 2)
        assert store.prune() == 0


# --------------------------------------------------------------------------
# boot-time rehydration + registry semantics
# --------------------------------------------------------------------------

class TestRegistry:
    def test_warm_registry_installs_every_snapshot(self, tmp_path, matrix):
        store = ArtifactStore(tmp_path)
        reset_registry()
        warm_and_persist(matrix, store)
        saved_keys = set(decodecache._REGISTRY)
        assert saved_keys

        reset_registry()
        fresh = ArtifactStore(tmp_path)
        installed = fresh.warm_registry()
        assert installed == len(saved_keys)
        assert set(decodecache._REGISTRY) == saved_keys
        assert registry_stats()["registry_size"] == len(saved_keys)

    def test_install_cache_live_entry_wins(self, tmp_path, matrix):
        reset_registry()
        run_matrix(matrix)
        key, live = next(iter(decodecache._REGISTRY.items()))
        restored = restore_decode_cache(snapshot_decode_cache(live))
        assert install_cache(key, restored) is live
        assert decodecache._REGISTRY[key] is live

    def test_reset_registry_zeroes_evictions_and_keeps_int_contract(
        self, matrix, monkeypatch
    ):
        """The satellite fix: ``reset_registry`` used to zero the
        registry but leave the eviction counter standing, so the next
        cold-start measurement inherited a previous sample's
        evictions."""
        reset_registry()
        run_matrix(matrix)
        assert decodecache._REGISTRY
        # Force evictions: a limit of 1 evicts on the next install.
        monkeypatch.setattr(decodecache, "_REGISTRY_LIMIT", 1)
        cache = next(iter(decodecache._REGISTRY.values()))
        install_cache(("other", 0, 1, 0), restore_decode_cache(
            snapshot_decode_cache(cache)
        ))
        assert registry_stats()["registry_evictions"] >= 1

        dropped = reset_registry()
        # Existing callers treat the return as an int...
        assert isinstance(dropped, RegistryReset)
        assert isinstance(dropped, int)
        assert dropped == dropped + 0
        # ...and the reset reports and zeroes the eviction counter too.
        assert dropped.evictions >= 1
        assert registry_stats() == {
            "registry_size": 0,
            "registry_evictions": 0,
        }
