"""Tests for constrained-random Globals generation and coverage."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.coverage import CoverageCollector
from repro.core.crg import (
    DefineConstraint,
    RandomGlobalsGenerator,
    coverage_of_campaign,
)
from repro.core.targets import TARGET_GOLDEN
from repro.core.workloads import make_nvm_environment
from repro.soc.derivatives import SC88A, SC88B


def build_env(extras):
    return make_nvm_environment(
        2,
        page_overrides={
            1: extras["TEST1_TARGET_PAGE"],
            2: extras["TEST2_TARGET_PAGE"],
        },
    )


def page_generator(seed=0, high=31):
    return RandomGlobalsGenerator(
        build_env,
        [
            DefineConstraint("TEST1_TARGET_PAGE", 0, high),
            DefineConstraint("TEST2_TARGET_PAGE", 0, high),
        ],
        seed=seed,
    )


class TestConstraints:
    def test_draw_within_bounds(self):
        constraint = DefineConstraint("X", 5, 10)
        import random

        for _ in range(50):
            assert 5 <= constraint.draw(random.Random()) <= 10

    def test_predicate_filters(self):
        constraint = DefineConstraint(
            "X", 0, 100, predicate=lambda v: v % 2 == 0
        )
        import random

        assert constraint.draw(random.Random(1)) % 2 == 0

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError, match="empty range"):
            DefineConstraint("X", 10, 5)

    def test_unsatisfiable_predicate_rejected(self):
        constraint = DefineConstraint(
            "X", 0, 10, predicate=lambda v: False
        )
        import random

        with pytest.raises(ValueError, match="rejected"):
            constraint.draw(random.Random(1))

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            RandomGlobalsGenerator(
                build_env,
                [
                    DefineConstraint("X", 0, 1),
                    DefineConstraint("X", 0, 1),
                ],
            )


class TestGenerator:
    def test_deterministic_per_seed(self):
        gen = page_generator(seed=7)
        assert gen.draw(0) == gen.draw(0)
        assert gen.draw(0) != gen.draw(1) or gen.draw(0) != gen.draw(2)

    def test_different_master_seeds_differ(self):
        draws_a = [page_generator(seed=1).draw(i) for i in range(4)]
        draws_b = [page_generator(seed=2).draw(i) for i in range(4)]
        assert draws_a != draws_b

    def test_campaign_all_pass(self):
        campaign = page_generator().campaign(4, SC88A)
        assert all(instance.all_pass for instance in campaign)

    def test_campaign_on_wide_derivative(self):
        gen = page_generator(high=63)
        campaign = gen.campaign(3, SC88B)  # 64 pages
        assert all(instance.all_pass for instance in campaign)

    def test_coverage_grows_with_campaign_size(self):
        gen = page_generator()
        small = coverage_of_campaign(
            gen.campaign(2, SC88A), "TEST1_TARGET_PAGE"
        )
        large = coverage_of_campaign(
            gen.campaign(8, SC88A), "TEST1_TARGET_PAGE"
        )
        assert len(large) >= len(small)

    def test_instance_without_run(self):
        instance = page_generator().instance(0, SC88A, run=False)
        assert instance.results == {}
        assert not instance.all_pass


class TestCoverageCollector:
    def run_and_collect(self, num_tests=3):
        env = make_nvm_environment(num_tests)
        collector = CoverageCollector(SC88A)
        for cell_name in env.cells:
            artifacts = env.build_image(cell_name, SC88A, TARGET_GOLDEN)
            platform = TARGET_GOLDEN.make_platform()
            platform.record_bus_trace = True
            platform.run(artifacts.image, SC88A)
            collector.observe_platform(platform)
        return collector

    def test_nvm_pages_covered(self):
        collector = self.run_and_collect(3)
        assert len(collector.report.nvm_pages_programmed) == 3
        assert collector.report.nvm_pages_total == 32

    def test_registers_written_tracked(self):
        collector = self.run_and_collect(1)
        assert "NVM.NVM_CTRL" in collector.report.registers_written
        assert collector.report.register_ratio > 0

    def test_field_values_tracked(self):
        collector = self.run_and_collect(2)
        page_field = collector.report.fields["NVM.NVM_CTRL.PAGE"]
        assert page_field.bins_hit >= 2

    def test_summary_renders(self):
        collector = self.run_and_collect(1)
        text = collector.report.summary()
        assert "NVM pages programmed: 1/32" in text

    def test_reads_not_counted_as_writes(self):
        collector = CoverageCollector(SC88A)
        from repro.soc.bus import BusAccess

        collector.observe_bus_access(
            BusAccess("read", 0xF000_2000, 4, 0xFF)
        )
        assert not collector.report.registers_written

    def test_non_sfr_writes_ignored(self):
        collector = CoverageCollector(SC88A)
        from repro.soc.bus import BusAccess

        collector.observe_bus_access(
            BusAccess("write", 0x1000_0000, 4, 0xFF)
        )
        assert not collector.report.registers_written
