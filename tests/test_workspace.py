"""Tests for on-disk workspaces (Figures 3 and 5)."""

import pytest

from repro.core.system_env import make_default_system
from repro.core.targets import TARGET_GOLDEN
from repro.core.workloads import make_nvm_environment
from repro.core.workspace import (
    ABSTRACTION_DIR,
    DiskBuilder,
    GLOBAL_LIBRARIES_DIR,
    load_module_environment,
    SYSTEM_DIR_NAME,
    TESTPLAN_FILE,
    validate_module_tree,
    validate_system_tree,
    write_module_environment,
    write_system_environment,
)
from repro.platforms.base import RunStatus
from repro.soc.derivatives import SC88A, SC88C


@pytest.fixture
def module_tree(tmp_path):
    env = make_nvm_environment(2)
    return write_module_environment(env, tmp_path), env


@pytest.fixture
def system_tree(tmp_path):
    system = make_default_system(nvm_tests=1, uart_tests=1)
    return write_system_environment(system, tmp_path), system


class TestModuleTree:
    def test_figure3_layout(self, module_tree):
        module_dir, _ = module_tree
        assert (module_dir / ABSTRACTION_DIR / "Globals.inc").is_file()
        assert (
            module_dir / ABSTRACTION_DIR / "Base_Functions.asm"
        ).is_file()
        assert (module_dir / TESTPLAN_FILE).is_file()
        assert (module_dir / "TEST_NVM_PAGE_001" / "test.asm").is_file()

    def test_validation_clean(self, module_tree):
        module_dir, _ = module_tree
        assert validate_module_tree(module_dir) == []

    def test_validation_catches_missing_testplan(self, module_tree):
        module_dir, _ = module_tree
        (module_dir / TESTPLAN_FILE).unlink()
        issues = validate_module_tree(module_dir)
        assert any("TESTPLAN" in str(i) for i in issues)

    def test_validation_catches_missing_abstraction(self, module_tree):
        module_dir, _ = module_tree
        (module_dir / ABSTRACTION_DIR / "Globals.inc").unlink()
        issues = validate_module_tree(module_dir)
        assert any("Globals.inc" in str(i) for i in issues)

    def test_validation_rejects_derivative_specific_names(self, tmp_path):
        bad = tmp_path / "SC88A_NVM"
        bad.mkdir()
        issues = validate_module_tree(bad)
        assert any("derivative-specific" in str(i) for i in issues)

    def test_missing_directory(self, tmp_path):
        issues = validate_module_tree(tmp_path / "GHOST")
        assert issues and "not a directory" in str(issues[0])

    def test_testplan_written_grep_able(self, module_tree):
        module_dir, _ = module_tree
        text = (module_dir / TESTPLAN_FILE).read_text()
        assert "NVM_001" in text  # searchable from the command line


class TestModuleRoundTrip:
    def test_load_back(self, module_tree):
        module_dir, env = module_tree
        loaded = load_module_environment(module_dir)
        assert set(loaded.cells) == set(env.cells)
        assert loaded.globals_text() == env.globals_text()
        assert loaded.testplan.find("NVM_001") is not None

    def test_loaded_environment_runs(self, module_tree):
        module_dir, _ = module_tree
        loaded = load_module_environment(module_dir)
        result = loaded.run_test("TEST_NVM_PAGE_001", SC88A)
        assert result.status is RunStatus.PASS

    def test_disk_is_source_of_truth(self, module_tree):
        """Editing Globals.inc on disk changes the loaded build — the
        tree is a working abstraction layer, not an export."""
        module_dir, _ = module_tree
        globals_path = module_dir / ABSTRACTION_DIR / "Globals.inc"
        text = globals_path.read_text()
        globals_path.write_text(
            text.replace(
                "TEST1_TARGET_PAGE .EQU 0xa", "TEST1_TARGET_PAGE .EQU 0xb"
            )
        )
        loaded = load_module_environment(module_dir)
        assert "0xb" in loaded.globals_text() or "0xa" not in loaded.globals_text()

    def test_invalid_tree_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="invalid module tree"):
            load_module_environment(tmp_path / "GHOST")


class TestSystemTree:
    def test_figure5_layout(self, system_tree):
        system_dir, system = system_tree
        assert system_dir.name == SYSTEM_DIR_NAME
        libraries = system_dir / GLOBAL_LIBRARIES_DIR
        assert (libraries / "Trap_Handlers.asm").is_file()
        assert (libraries / "Global_Test_Functions.asm").is_file()
        for env_name in system.environments:
            assert (system_dir / env_name).is_dir()

    def test_validation_clean(self, system_tree):
        system_dir, _ = system_tree
        assert validate_system_tree(system_dir) == []

    def test_validation_catches_missing_libraries(self, system_tree):
        system_dir, _ = system_tree
        (system_dir / GLOBAL_LIBRARIES_DIR / "Trap_Handlers.asm").unlink()
        issues = validate_system_tree(system_dir)
        assert any("Trap_Handlers" in str(i) for i in issues)


class TestDiskBuilder:
    def test_build_and_run_from_disk(self, system_tree):
        system_dir, _ = system_tree
        builder = DiskBuilder(system_dir)
        result = builder.run(
            "NVM", "TEST_NVM_PAGE_001", SC88A, TARGET_GOLDEN
        )
        assert result.status is RunStatus.PASS

    def test_build_for_other_derivative(self, system_tree):
        system_dir, _ = system_tree
        builder = DiskBuilder(system_dir)
        result = builder.run(
            "NVM", "TEST_NVM_PAGE_001", SC88C, TARGET_GOLDEN
        )
        assert result.status is RunStatus.PASS

    def test_invalid_tree_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="invalid system tree"):
            DiskBuilder(tmp_path)
