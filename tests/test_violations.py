"""Tests for the Figure 2 abuse checker."""

from repro.core.environment import ModuleTestEnvironment, TestCell
from repro.core.targets import TARGET_GOLDEN
from repro.core.violations import (
    ViolationKind,
    check_cell,
    check_environment,
    check_hardwired_addresses,
)
from repro.core.workloads import (
    make_nvm_environment,
    make_reginit_environment,
    make_timer_environment,
    make_uart_environment,
)
from repro.soc.derivatives import SC88A


def assemble_cell(env, name):
    return env.assemble_cell(name, SC88A, TARGET_GOLDEN)


class TestCleanEnvironments:
    def test_all_shipped_workloads_are_clean(self):
        """Every generated workload must obey its own methodology."""
        for factory in (
            lambda: make_nvm_environment(2),
            make_reginit_environment,
            lambda: make_uart_environment(1),
            make_timer_environment,
        ):
            env = factory()
            violations = check_environment(env, SC88A, TARGET_GOLDEN)
            assert violations == [], (env.name, [str(v) for v in violations])


class TestDirectCall:
    def test_direct_es_call_flagged(self):
        env = make_nvm_environment(1)
        env.add_test(
            TestCell(
                name="TEST_DIRECT_ES",
                source=(
                    ".INCLUDE Globals.inc\n"
                    "_main:\n"
                    "    LOAD CallAddr, ES_Init_Register\n"
                    "    CALL CallAddr\n"
                    "    JMP Base_Report_Pass\n"
                ),
            )
        )
        obj = assemble_cell(env, "TEST_DIRECT_ES")
        violations = check_cell(
            "TEST_DIRECT_ES", env.cell("TEST_DIRECT_ES").source, obj
        )
        kinds = {v.kind for v in violations}
        assert ViolationKind.DIRECT_CALL in kinds

    def test_direct_global_function_call_flagged(self):
        env = make_nvm_environment(1)
        env.add_test(
            TestCell(
                name="TEST_DIRECT_GLOBAL",
                source=(
                    ".INCLUDE Globals.inc\n"
                    "_main:\n"
                    "    CALL Global_Fill_Pattern\n"
                    "    JMP Base_Report_Pass\n"
                ),
            )
        )
        obj = assemble_cell(env, "TEST_DIRECT_GLOBAL")
        violations = check_cell(
            "TEST_DIRECT_GLOBAL",
            env.cell("TEST_DIRECT_GLOBAL").source,
            obj,
        )
        assert any(v.kind is ViolationKind.DIRECT_CALL for v in violations)

    def test_base_calls_allowed(self):
        env = make_nvm_environment(1)
        obj = assemble_cell(env, "TEST_NVM_PAGE_001")
        violations = check_cell(
            "TEST_NVM_PAGE_001",
            env.cell("TEST_NVM_PAGE_001").source,
            obj,
        )
        assert violations == []


class TestDirectInclude:
    def test_foreign_include_flagged(self):
        env = make_nvm_environment(1)
        env.add_test(
            TestCell(
                name="TEST_BAD_INCLUDE",
                source=(
                    ".INCLUDE Globals.inc\n"
                    ".INCLUDE Global_Test_Functions.asm\n"
                    "_main:\n"
                    "    JMP Base_Report_Pass\n"
                ),
            )
        )
        obj = assemble_cell(env, "TEST_BAD_INCLUDE")
        violations = check_cell(
            "TEST_BAD_INCLUDE", env.cell("TEST_BAD_INCLUDE").source, obj
        )
        assert any(
            v.kind is ViolationKind.DIRECT_INCLUDE for v in violations
        )

    def test_globals_include_allowed(self):
        env = make_nvm_environment(1)
        obj = assemble_cell(env, "TEST_NVM_PAGE_001")
        assert not any(
            v.kind is ViolationKind.DIRECT_INCLUDE
            for v in check_cell(
                "TEST_NVM_PAGE_001",
                env.cell("TEST_NVM_PAGE_001").source,
                obj,
            )
        )


class TestHardwiredAddresses:
    def test_sfr_literal_flagged(self):
        source = "_main:\n    LOAD a4, 0xF0002000\n    HALT\n"
        violations = check_hardwired_addresses("T", source)
        assert len(violations) == 1
        assert "0xF0002000" in violations[0].detail

    def test_non_sfr_literals_allowed(self):
        source = (
            "_main:\n    LOAD d1, 0x12345678\n"
            "    LOAD a4, 0x10000000\n    HALT\n"
        )
        assert check_hardwired_addresses("T", source) == []

    def test_comments_ignored(self):
        source = "_main:\n    NOP ; uses 0xF0002000 conceptually\n"
        assert check_hardwired_addresses("T", source) == []

    def test_line_numbers_reported(self):
        source = "\n\n    LOAD a4, 0xF0001000\n"
        violations = check_hardwired_addresses("T", source)
        assert "line 3" in violations[0].detail


class TestEnvironmentSweep:
    def test_check_environment_aggregates(self):
        env = make_nvm_environment(1)
        env.add_test(
            TestCell(
                name="TEST_MIXED_ABUSE",
                source=(
                    ".INCLUDE Globals.inc\n"
                    "_main:\n"
                    "    LOAD a4, 0xF0002000\n"
                    "    LOAD CallAddr, ES_Init_Register\n"
                    "    CALL CallAddr\n"
                    "    JMP Base_Report_Pass\n"
                ),
            )
        )
        violations = check_environment(env, SC88A, TARGET_GOLDEN)
        kinds = {v.kind for v in violations}
        assert ViolationKind.DIRECT_CALL in kinds
        assert ViolationKind.HARDWIRED_ADDRESS in kinds
        assert all(
            v.test_name == "TEST_MIXED_ABUSE" for v in violations
        )
