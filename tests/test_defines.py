"""Tests for the Globals.inc generator (the abstraction layer's core)."""

import pytest

from repro.assembler.assembler import Assembler
from repro.assembler.errors import DirectiveError
from repro.assembler.preprocessor import InMemoryProvider
from repro.core.defines import (
    GlobalDefines,
    common_entries,
    derivative_entries,
    target_entries,
)
from repro.core.targets import (
    TARGET_GOLDEN,
    TARGET_RTL,
    all_targets,
    target,
)
from repro.soc.derivatives import SC88A, SC88B, SC88C, SC88D


class TestDerivativeEntries:
    def entry_map(self, derivative):
        return {e.name: e.value for e in derivative_entries(derivative)}

    def test_figure6_defines_present(self):
        table = self.entry_map(SC88A)
        assert table["PAGE_FIELD_START_POSITION"] == 0
        assert table["PAGE_FIELD_SIZE"] == 5

    def test_figure6_derivative_change(self):
        # The paper's example: field grows 5 -> 6 bits on the derivative.
        assert self.entry_map(SC88B)["PAGE_FIELD_SIZE"] == 6
        assert self.entry_map(SC88B)["NVM_PAGE_COUNT"] == 64

    def test_figure6_spec_change(self):
        # ... and the position shift is absorbed the same way.
        assert self.entry_map(SC88C)["PAGE_FIELD_START_POSITION"] == 1

    def test_renamed_register_remapped_to_canonical_name(self):
        # sc88c renames NVM_CTRL -> NVM_CONTROL; the canonical define
        # name must survive (the paper's "re-map them using the Global
        # Defines file").
        a = self.entry_map(SC88A)
        c = self.entry_map(SC88C)
        assert "NVM_CTRL_ADDR" in a and "NVM_CTRL_ADDR" in c
        assert a["NVM_CTRL_ADDR"] == c["NVM_CTRL_ADDR"]

    def test_uart_rebase_visible(self):
        a = self.entry_map(SC88A)
        c = self.entry_map(SC88C)
        assert a["UART_CTRL_ADDR"] != c["UART_CTRL_ADDR"]

    def test_wdt_key_and_es_version(self):
        d = self.entry_map(SC88D)
        assert d["WDT_SERVICE_KEY"] == 0x5A
        assert d["ES_VERSION"] == 2

    def test_timer_width(self):
        assert self.entry_map(SC88A)["TIMER_MAX_COUNT"] == (1 << 24) - 1
        assert self.entry_map(SC88D)["TIMER_MAX_COUNT"] == (1 << 32) - 1

    def test_canonical_names_stable_across_derivatives(self):
        names_a = {e.name for e in derivative_entries(SC88A)}
        for derivative in (SC88B, SC88C, SC88D):
            assert {e.name for e in derivative_entries(derivative)} == names_a


class TestTargetEntries:
    def test_poll_limits_differ_by_target(self):
        golden = {e.name: e.value for e in target_entries(TARGET_GOLDEN)}
        rtl = {e.name: e.value for e in target_entries(TARGET_RTL)}
        assert golden["POLL_LIMIT"] > rtl["POLL_LIMIT"]

    def test_target_lookup(self):
        assert target("rtl") is TARGET_RTL
        with pytest.raises(KeyError):
            target("fpga")

    def test_six_targets_matching_platforms(self):
        assert len(all_targets()) == 6


class TestRenderedGlobals:
    def assemble_with(self, text: str, predefines: dict) -> dict:
        provider = InMemoryProvider({"Globals.inc": text})
        asm = Assembler(provider=provider, predefines=predefines)
        obj = asm.assemble_source(
            ".INCLUDE Globals.inc\n_main:\n    HALT\n", "t.asm"
        )
        return obj.define_snapshot

    def test_derivative_selection_via_predefine(self):
        defines = GlobalDefines(module_name="NVM")
        text = defines.render()
        for derivative, width in ((SC88A, 5), (SC88B, 6)):
            snapshot = self.assemble_with(
                text,
                {derivative.predefine: 1, TARGET_GOLDEN.predefine: 1},
            )
            assert snapshot["PAGE_FIELD_SIZE"] == width

    def test_target_selection_via_predefine(self):
        text = GlobalDefines().render()
        golden = self.assemble_with(
            text, {SC88A.predefine: 1, TARGET_GOLDEN.predefine: 1}
        )
        rtl = self.assemble_with(
            text, {SC88A.predefine: 1, TARGET_RTL.predefine: 1}
        )
        assert golden["POLL_LIMIT"] != rtl["POLL_LIMIT"]

    def test_no_derivative_selected_errors_loudly(self):
        text = GlobalDefines().render()
        with pytest.raises(DirectiveError, match="no DERIVATIVE"):
            self.assemble_with(text, {TARGET_GOLDEN.predefine: 1})

    def test_include_guard_allows_double_include(self):
        text = GlobalDefines().render()
        provider = InMemoryProvider({"Globals.inc": text})
        asm = Assembler(
            provider=provider,
            predefines={SC88A.predefine: 1, TARGET_GOLDEN.predefine: 1},
        )
        obj = asm.assemble_source(
            ".INCLUDE Globals.inc\n.INCLUDE Globals.inc\n"
            "_main:\n    HALT\n",
            "t.asm",
        )
        assert "_main" in obj.symbols

    def test_extras_rendered(self):
        defines = GlobalDefines(extras={"TEST1_TARGET_PAGE": 8})
        snapshot = self.assemble_with(
            defines.render(),
            {SC88A.predefine: 1, TARGET_GOLDEN.predefine: 1},
        )
        assert snapshot["TEST1_TARGET_PAGE"] == 8

    def test_derivative_extras_override(self):
        defines = GlobalDefines(
            extras={"X": 1},
            derivative_extras={"sc88b": {"X_B_ONLY": 9}},
        )
        a = self.assemble_with(
            defines.render(),
            {SC88A.predefine: 1, TARGET_GOLDEN.predefine: 1},
        )
        b = self.assemble_with(
            defines.render(),
            {SC88B.predefine: 1, TARGET_GOLDEN.predefine: 1},
        )
        assert "X_B_ONLY" not in a
        assert b["X_B_ONLY"] == 9

    def test_callladdr_define_present(self):
        assert ".DEFINE CallAddr A12" in GlobalDefines().render()


class TestResolvedFor:
    def test_matches_assembled_snapshot(self):
        """resolved_for must agree with what the assembler resolves —
        the porting metrics depend on this equivalence."""
        defines = GlobalDefines(extras={"TEST1_TARGET_PAGE": 7})
        resolved = defines.resolved_for(SC88B, TARGET_RTL)
        provider = InMemoryProvider({"Globals.inc": defines.render()})
        asm = Assembler(
            provider=provider,
            predefines={SC88B.predefine: 1, TARGET_RTL.predefine: 1},
        )
        obj = asm.assemble_source(
            ".INCLUDE Globals.inc\n_main:\n    HALT\n", "t.asm"
        )
        for name, value in resolved.items():
            assert obj.define_snapshot.get(name) == value, name

    def test_common_entries_stable(self):
        names = {e.name for e in common_entries(SC88A)}
        assert "PASS_MAGIC" in names and "RESULT_ADDR" in names
