"""Tests for assembler directives: EQU/DEFINE, conditionals, macros,
sections, data emission — the machinery the ADVM abstraction layer uses."""

import pytest

from repro.assembler.assembler import Assembler
from repro.assembler.errors import (
    DirectiveError,
    ParseError,
    SymbolError,
)
from repro.assembler.preprocessor import InMemoryProvider


def assemble(source: str, predefines=None, files=None):
    asm = Assembler(
        provider=InMemoryProvider(files or {}), predefines=predefines
    )
    return asm.assemble_source(source, "unit.asm")


class TestEqu:
    def test_suffix_form(self):
        obj = assemble("PAGE .EQU 8\n_main:\n    LOAD d0, PAGE\n    HALT\n")
        assert obj.define_snapshot["PAGE"] == 8
        assert obj.section("text").read_word(4) == 8  # literal word

    def test_directive_form(self):
        obj = assemble(".EQU WIDTH, 5\n_main:\n    HALT\n")
        assert obj.define_snapshot["WIDTH"] == 5

    def test_equ_expression_with_prior_equ(self):
        obj = assemble(
            "A .EQU 4\nB .EQU A * 2 + 1\n_main:\n    HALT\n"
        )
        assert obj.define_snapshot["B"] == 9

    def test_equ_forward_reference_rejected(self):
        with pytest.raises(Exception):
            assemble("B .EQU A + 1\nA .EQU 4\n_main:\n    HALT\n")

    def test_redefinition_same_value_ok(self):
        obj = assemble("A .EQU 4\nA .EQU 4\n_main:\n    HALT\n")
        assert obj.define_snapshot["A"] == 4

    def test_redefinition_different_value_rejected(self):
        with pytest.raises(SymbolError, match="redefined"):
            assemble("A .EQU 4\nA .EQU 5\n_main:\n    HALT\n")

    def test_paper_figure6_local_placeholder(self):
        # TEST_PAGE .EQU TEST1_TARGET_PAGE — local control alias.
        obj = assemble(
            "TEST1_TARGET_PAGE .EQU 8\n"
            "TEST_PAGE .EQU TEST1_TARGET_PAGE\n"
            "_main:\n    HALT\n"
        )
        assert obj.define_snapshot["TEST_PAGE"] == 8


class TestDefine:
    def test_register_alias(self):
        # The paper's `.DEFINE CallAddr A12`.
        obj = assemble(
            ".DEFINE CallAddr A12\n"
            "_main:\n"
            "    LOAD CallAddr, 0x100\n"
            "    CALL CallAddr\n"
            "    HALT\n"
        )
        text = obj.section("text")
        # LOAD.A opcode is 0x15; register a12 in r1.
        first = text.read_word(0)
        assert (first >> 24) == 0x15
        assert (first >> 20) & 0xF == 12

    def test_define_without_value_defaults_to_one(self):
        obj = assemble(
            ".DEFINE FLAG\n"
            ".IFDEF FLAG\n"
            "OK .EQU 1\n"
            ".ENDIF\n"
            "_main:\n    HALT\n"
        )
        assert obj.define_snapshot["OK"] == 1

    def test_duplicate_define_rejected(self):
        with pytest.raises(SymbolError, match="duplicate"):
            assemble(".DEFINE X 1\n.DEFINE X 2\n_main:\n    HALT\n")

    def test_undef_allows_redefinition(self):
        obj = assemble(
            ".DEFINE X 1\n.UNDEF X\n.DEFINE X 2\n"
            "V .EQU X\n_main:\n    HALT\n"
        )
        assert obj.define_snapshot["V"] == 2

    def test_cyclic_define_detected(self):
        with pytest.raises(ParseError, match="depth"):
            assemble(
                ".DEFINE A B\n.DEFINE B A\nV .EQU A\n_main:\n    HALT\n"
            )

    def test_define_expands_in_expressions(self):
        obj = assemble(
            ".DEFINE WIDE (2 * 8)\nV .EQU WIDE + 1\n_main:\n    HALT\n"
        )
        assert obj.define_snapshot["V"] == 17


class TestConditionals:
    def test_ifdef_with_predefine(self):
        obj = assemble(
            ".IFDEF DERIVATIVE_SC88B\nV .EQU 2\n.ELSE\nV .EQU 1\n.ENDIF\n"
            "_main:\n    HALT\n",
            predefines={"DERIVATIVE_SC88B": 1},
        )
        assert obj.define_snapshot["V"] == 2

    def test_ifdef_without_predefine_takes_else(self):
        obj = assemble(
            ".IFDEF DERIVATIVE_SC88B\nV .EQU 2\n.ELSE\nV .EQU 1\n.ENDIF\n"
            "_main:\n    HALT\n"
        )
        assert obj.define_snapshot["V"] == 1

    def test_ifndef(self):
        obj = assemble(
            ".IFNDEF MISSING\nV .EQU 3\n.ENDIF\n_main:\n    HALT\n"
        )
        assert obj.define_snapshot["V"] == 3

    def test_if_expression(self):
        obj = assemble(
            "MODE .EQU 2\n"
            ".IF MODE == 2\nV .EQU 20\n.ELSE\nV .EQU 10\n.ENDIF\n"
            "_main:\n    HALT\n"
        )
        assert obj.define_snapshot["V"] == 20

    def test_nested_conditionals(self):
        obj = assemble(
            ".IF 1\n"
            ".IF 0\nV .EQU 1\n.ELSE\nV .EQU 2\n.ENDIF\n"
            ".ELSE\nV .EQU 3\n.ENDIF\n"
            "_main:\n    HALT\n"
        )
        assert obj.define_snapshot["V"] == 2

    def test_skipped_region_not_assembled(self):
        # Junk inside a false branch must be ignored entirely.
        obj = assemble(
            ".IF 0\n"
            "    BOGUS_INSTRUCTION d9\n"
            ".ENDIF\n"
            "_main:\n    HALT\n"
        )
        assert "_main" in obj.symbols

    def test_else_without_if_rejected(self):
        with pytest.raises(DirectiveError, match="without"):
            assemble(".ELSE\n_main:\n    HALT\n")

    def test_unclosed_if_rejected(self):
        with pytest.raises(DirectiveError, match="missing .ENDIF"):
            assemble(".IF 1\n_main:\n    HALT\n")

    def test_duplicate_else_rejected(self):
        with pytest.raises(DirectiveError, match="duplicate"):
            assemble(".IF 1\n.ELSE\n.ELSE\n.ENDIF\n_main:\n    HALT\n")

    def test_error_directive_fires_in_active_region(self):
        with pytest.raises(DirectiveError, match="no derivative"):
            assemble('.ERROR "no derivative"\n')

    def test_error_directive_skipped_in_inactive_region(self):
        obj = assemble(
            '.IF 0\n.ERROR "never"\n.ENDIF\n_main:\n    HALT\n'
        )
        assert "_main" in obj.symbols


class TestMacros:
    def test_simple_macro(self):
        obj = assemble(
            ".MACRO LOAD_TWO ra, rb, val\n"
            "    LOAD ra, val\n"
            "    LOAD rb, val\n"
            ".ENDM\n"
            "_main:\n"
            "    LOAD_TWO d1, d2, 7\n"
            "    HALT\n"
        )
        text = obj.section("text")
        assert text.read_word(4) == 7
        assert text.read_word(12) == 7

    def test_macro_unique_label_counter(self):
        obj = assemble(
            ".MACRO SPIN n\n"
            "spin_\\@:\n"
            "    DJNZ n, spin_\\@\n"
            ".ENDM\n"
            "_main:\n"
            "    SPIN d1\n"
            "    SPIN d2\n"
            "    HALT\n"
        )
        labels = [s for s in obj.symbols if s.startswith("spin_")]
        assert len(labels) == 2

    def test_macro_wrong_arity_rejected(self):
        with pytest.raises(ParseError, match="argument"):
            assemble(
                ".MACRO M a, b\n    NOP\n.ENDM\n_main:\n    M 1\n    HALT\n"
            )

    def test_unterminated_macro_rejected(self):
        with pytest.raises(DirectiveError, match="missing .ENDM"):
            assemble(".MACRO M\n    NOP\n")

    def test_nested_macro_definition_rejected(self):
        with pytest.raises(DirectiveError, match="nested"):
            assemble(".MACRO A\n.MACRO B\n.ENDM\n.ENDM\n")

    def test_endm_without_macro_rejected(self):
        with pytest.raises(DirectiveError, match="without"):
            assemble(".ENDM\n")


class TestSectionsAndData:
    def test_word_data(self):
        obj = assemble(
            "_main:\n    HALT\n"
            ".SECTION data\n"
            "values:\n    .WORD 1, 2, 0xFFFFFFFF\n"
        )
        data = obj.section("data")
        assert data.read_word(0) == 1
        assert data.read_word(4) == 2
        assert data.read_word(8) == 0xFFFF_FFFF

    def test_word_with_symbol_emits_relocation(self):
        obj = assemble(
            "_main:\n    HALT\n"
            ".SECTION vectors\n"
            ".WORD handler\n"
        )
        assert any(r.symbol == "handler" for r in obj.relocations)

    def test_half_and_byte(self):
        obj = assemble(
            "_main:\n    HALT\n"
            ".SECTION data\n"
            "    .HALF 0x1234\n    .BYTE 0xAB, 1\n"
        )
        data = obj.section("data").data
        assert data[:2] == b"\x34\x12"
        assert data[2] == 0xAB and data[3] == 1

    def test_byte_range_checked(self):
        with pytest.raises(Exception):
            assemble("_main:\n    HALT\n.SECTION d\n    .BYTE 256\n")

    def test_ascii_and_asciiz(self):
        obj = assemble(
            "_main:\n    HALT\n"
            '.SECTION data\n    .ASCII "AB"\n    .ASCIIZ "C"\n'
        )
        assert bytes(obj.section("data").data) == b"ABC\x00"

    def test_space_reserves_zeroes(self):
        obj = assemble(
            "_main:\n    HALT\n.SECTION data\n    .SPACE 8\n    .BYTE 1\n"
        )
        assert bytes(obj.section("data").data) == b"\x00" * 8 + b"\x01"

    def test_align_pads(self):
        obj = assemble(
            "_main:\n    HALT\n"
            ".SECTION data\n    .BYTE 1\n    .ALIGN 4\n    .WORD 2\n"
        )
        data = obj.section("data")
        assert data.size == 8
        assert data.read_word(4) == 2

    def test_align_non_power_of_two_rejected(self):
        with pytest.raises(DirectiveError, match="power of two"):
            assemble("_main:\n    HALT\n.ALIGN 3\n")

    def test_org_sets_section_base(self):
        obj = assemble(
            ".SECTION vectors\n.ORG 0\n    .WORD 0\n_main:\n"
            ".SECTION text\n    HALT\n"
        )
        assert obj.section("vectors").org == 0

    def test_org_after_emission_rejected(self):
        with pytest.raises(DirectiveError, match="before any bytes"):
            assemble("    .WORD 1\n.ORG 0x100\n_main:\n    HALT\n")

    def test_end_stops_processing(self):
        obj = assemble("_main:\n    HALT\n.END\nGARBAGE_LINE !!!\n")
        assert "_main" in obj.symbols

    def test_include_via_provider(self):
        obj = assemble(
            '.INCLUDE "defs.inc"\n_main:\n    LOAD d0, MAGIC\n    HALT\n',
            files={"defs.inc": "MAGIC .EQU 0x42\n"},
        )
        assert obj.define_snapshot["MAGIC"] == 0x42
        assert "defs.inc" in obj.included_files

    def test_unknown_directive_rejected(self):
        with pytest.raises(DirectiveError, match="unknown directive"):
            assemble(".FROBNICATE 3\n")
