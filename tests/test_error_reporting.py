"""Failure-injection tests: diagnostics must point at the real problem.

A verification team lives or dies by its error messages; these tests
break the environment in the ways teams actually break it and assert
the diagnostics are specific and located.
"""

import pytest

from repro.assembler.assembler import Assembler
from repro.assembler.errors import (
    AssemblerError,
    Diagnostics,
    DirectiveError,
    LinkError,
    ParseError,
)
from repro.assembler.linker import Linker
from repro.assembler.preprocessor import InMemoryProvider
from repro.core.environment import ModuleTestEnvironment, TestCell
from repro.core.targets import TARGET_GOLDEN
from repro.soc.derivatives import SC88A


class TestLocationThroughIncludes:
    def test_error_inside_include_names_both_files(self):
        provider = InMemoryProvider(
            {"broken.inc": "\n\n    BOGUS d1, d2\n"}
        )
        asm = Assembler(provider=provider)
        with pytest.raises(ParseError) as excinfo:
            asm.assemble_source(
                '.INCLUDE "broken.inc"\n_main:\n    HALT\n', "top.asm"
            )
        message = str(excinfo.value)
        assert "broken.inc:3" in message
        assert "top.asm:1" in message  # the include site

    def test_error_inside_macro_names_invocation_site(self):
        asm = Assembler()
        with pytest.raises(AssemblerError) as excinfo:
            asm.assemble_source(
                ".MACRO BAD\n    FNORD d1\n.ENDM\n"
                "_main:\n    BAD\n    HALT\n",
                "top.asm",
            )
        message = str(excinfo.value)
        assert "<macro BAD>" in message
        assert "top.asm:5" in message


class TestEnvironmentMisconfiguration:
    def test_missing_derivative_predefine_is_loud(self):
        env = ModuleTestEnvironment("NVM")
        env.add_test(
            TestCell(
                name="TEST_X",
                source=".INCLUDE Globals.inc\n_main:\n    HALT\n",
            )
        )
        asm = Assembler(provider=env._provider(), predefines={})
        with pytest.raises(DirectiveError, match="no DERIVATIVE"):
            asm.assemble_file("TEST_X.asm")

    def test_missing_base_function_names_the_symbol(self):
        env = ModuleTestEnvironment("NVM")
        env.add_test(
            TestCell(
                name="TEST_X",
                source=(
                    ".INCLUDE Globals.inc\n_main:\n"
                    "    CALL Base_Never_Written\n"
                    "    JMP Base_Report_Pass\n"
                ),
            )
        )
        with pytest.raises(LinkError, match="Base_Never_Written"):
            env.build_image("TEST_X", SC88A, TARGET_GOLDEN)

    def test_undefined_define_in_test_names_the_symbol(self):
        env = ModuleTestEnvironment("NVM")
        env.add_test(
            TestCell(
                name="TEST_X",
                source=(
                    ".INCLUDE Globals.inc\n_main:\n"
                    "    LOAD d4, NOT_A_DEFINE\n"
                    "    JMP Base_Report_Pass\n"
                ),
            )
        )
        # Unknown names become externs; the linker catches the typo.
        with pytest.raises(LinkError, match="NOT_A_DEFINE"):
            env.build_image("TEST_X", SC88A, TARGET_GOLDEN)


class TestDiagnosticsCollector:
    def test_collects_and_summarises(self):
        diagnostics = Diagnostics()
        assert diagnostics.ok
        diagnostics.error(ParseError("bad operand"))
        diagnostics.warn("suspicious alignment")
        assert not diagnostics.ok
        summary = diagnostics.summary()
        assert "bad operand" in summary
        assert "warning: " in summary
        with pytest.raises(ParseError):
            diagnostics.raise_first()

    def test_raise_first_noop_when_clean(self):
        Diagnostics().raise_first()  # must not raise


class TestRuntimeFailureModes:
    def run_cell(self, body: str):
        env = ModuleTestEnvironment("FAULTS")
        env.add_test(
            TestCell(
                name="TEST_F",
                source=f".INCLUDE Globals.inc\n_main:\n{body}",
            )
        )
        return env.run_test("TEST_F", SC88A)

    def test_wild_jump_fails_cleanly(self):
        # Jump into unmapped space -> bus-error trap -> visible FAIL.
        result = self.run_cell("    JMP 0x70000000\n")
        assert not result.passed

    def test_stack_runaway_fails_cleanly(self):
        # Infinite recursion eventually overwrites the result area and
        # runs the stack out of RAM; the run must end in a non-pass
        # verdict, never a Python-level crash.
        result = self.run_cell(
            "recurse:\n    CALL recurse\n    JMP Base_Report_Pass\n"
        )
        assert not result.passed

    def test_infinite_loop_times_out(self):
        env = ModuleTestEnvironment("FAULTS")
        env.add_test(
            TestCell(
                name="TEST_F",
                source=(
                    ".INCLUDE Globals.inc\n_main:\n"
                    "spin:\n    JMP spin\n"
                ),
            )
        )
        result = env.run_test("TEST_F", SC88A, max_instructions=1_000)
        assert result.status.value == "timeout"
