"""Tests for the named register / bit-field model."""

import pytest
from hypothesis import given, strategies as st

from repro.soc.registers import (
    Access,
    Field,
    Instance,
    PeripheralLayout,
    RegisterDef,
    RegisterMap,
)


def simple_layout(name="BLK", reg="CTRL"):
    return PeripheralLayout(
        name=name,
        registers=(
            RegisterDef(
                reg,
                0x00,
                fields=(Field("PAGE", 0, 5), Field("CMD", 16, 2)),
            ),
            RegisterDef("STAT", 0x04, access=Access.RO),
        ),
    )


class TestField:
    def test_mask_and_extract(self):
        page = Field("PAGE", 0, 5)
        assert page.mask == 0x1F
        assert page.extract(0xFFFF_FFE8) == 8

    def test_insert(self):
        page = Field("PAGE", 3, 4)
        assert page.insert(0, 0xF) == 0xF << 3
        assert page.insert(0xFFFF_FFFF, 0) == 0xFFFF_FFFF & ~(0xF << 3)

    def test_insert_masks_value(self):
        page = Field("PAGE", 0, 4)
        assert page.insert(0, 0x1FF) == 0xF

    @given(
        pos=st.integers(0, 27),
        width=st.integers(1, 5),
        value=st.integers(0, 0xFFFF_FFFF),
        register=st.integers(0, 0xFFFF_FFFF),
    )
    def test_insert_extract_round_trip(self, pos, width, value, register):
        fld = Field("F", pos, width)
        inserted = fld.insert(register, value)
        assert fld.extract(inserted) == value & fld.max_value
        # Other bits untouched:
        assert inserted & ~fld.mask == register & ~fld.mask

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            Field("F", 32, 1)
        with pytest.raises(ValueError):
            Field("F", 30, 4)
        with pytest.raises(ValueError):
            Field("F", 0, 0)


class TestRegisterDef:
    def test_field_lookup(self):
        reg = simple_layout().register_named("CTRL")
        assert reg.field_named("PAGE").width == 5
        with pytest.raises(KeyError):
            reg.field_named("GHOST")

    def test_overlapping_fields_rejected(self):
        with pytest.raises(ValueError, match="overlaps"):
            RegisterDef(
                "R", 0, fields=(Field("A", 0, 8), Field("B", 4, 8))
            )

    def test_duplicate_field_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            RegisterDef(
                "R", 0, fields=(Field("A", 0, 4), Field("A", 8, 4))
            )

    def test_unaligned_offset_rejected(self):
        with pytest.raises(ValueError, match="aligned"):
            RegisterDef("R", 2)


class TestLayout:
    def test_register_at_offset(self):
        layout = simple_layout()
        assert layout.register_at(0x04).name == "STAT"
        assert layout.register_at(0x40) is None

    def test_duplicate_offsets_rejected(self):
        with pytest.raises(ValueError, match="duplicate offset"):
            PeripheralLayout(
                "P",
                registers=(RegisterDef("A", 0), RegisterDef("B", 0)),
            )

    def test_register_outside_block_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            PeripheralLayout(
                "P", registers=(RegisterDef("A", 0x200),), size=0x100
            )


class TestRegisterMap:
    def make_map(self):
        register_map = RegisterMap()
        register_map.add(Instance("NVM", simple_layout("NVM"), 0xF000_2000))
        register_map.add(
            Instance("UART", simple_layout("UART", reg="UCTRL"), 0xF000_1000)
        )
        return register_map

    def test_qualified_lookup(self):
        register_map = self.make_map()
        assert register_map.register_address("NVM.CTRL") == 0xF000_2000
        assert register_map.register_address("UART.STAT") == 0xF000_1004

    def test_bare_name_when_unambiguous(self):
        register_map = self.make_map()
        assert register_map.register_address("UCTRL") == 0xF000_1000

    def test_ambiguous_bare_name_rejected(self):
        register_map = self.make_map()
        with pytest.raises(KeyError, match="ambiguous"):
            register_map.register_address("STAT")

    def test_unknown_names_rejected(self):
        register_map = self.make_map()
        with pytest.raises(KeyError):
            register_map.register_address("GHOST")
        with pytest.raises(KeyError):
            register_map.instance("GHOST")

    def test_duplicate_instance_rejected(self):
        register_map = self.make_map()
        with pytest.raises(ValueError, match="duplicate"):
            register_map.add(
                Instance("NVM", simple_layout("NVM"), 0xF000_4000)
            )

    def test_field_of(self):
        register_map = self.make_map()
        assert register_map.field_of("NVM.CTRL", "PAGE").width == 5

    def test_all_register_addresses(self):
        register_map = self.make_map()
        table = register_map.all_register_addresses()
        assert table["NVM.CTRL"] == 0xF000_2000
        assert len(table) == 4
