"""Tests for the generated global layer (trap handlers + shared library)."""

import pytest

from repro.assembler.assembler import Assembler
from repro.core.environment import ModuleTestEnvironment, TestCell
from repro.core.globals_layer import (
    NVM_VECTOR,
    TIMER_VECTOR,
    generate_global_test_functions,
    generate_trap_handlers,
)
from repro.platforms.base import RunStatus
from repro.soc.derivatives import SC88A, SC88C, all_derivatives
from repro.soc.memorymap import VECTOR_COUNT


class TestGeneration:
    def test_trap_handlers_assemble_per_derivative(self):
        text = generate_trap_handlers(all_derivatives())
        for derivative in all_derivatives():
            obj = Assembler(
                predefines={derivative.predefine: 1}
            ).assemble_source(text, "th.asm")
            vectors = obj.sections["vectors"]
            assert vectors.org == 0
            assert vectors.size == VECTOR_COUNT * 4

    def test_vector_table_entries(self):
        text = generate_trap_handlers([SC88A])
        obj = Assembler(
            predefines={SC88A.predefine: 1}
        ).assemble_source(text, "th.asm")
        timer_relocs = [
            r
            for r in obj.relocations
            if r.section == "vectors"
            and r.offset == TIMER_VECTOR * 4
        ]
        assert timer_relocs[0].symbol == "GL_IRQ_Timer_Handler"
        nvm_relocs = [
            r
            for r in obj.relocations
            if r.section == "vectors" and r.offset == NVM_VECTOR * 4
        ]
        assert nvm_relocs[0].symbol == "GL_IRQ_Nvm_Handler"

    def test_global_functions_assemble(self):
        obj = Assembler().assemble_source(
            generate_global_test_functions(), "gf.asm"
        )
        assert "Global_Fill_Pattern" in obj.symbols
        assert "Global_Compare_Block" in obj.symbols

    def test_derivative_conditionals_present(self):
        text = generate_trap_handlers(all_derivatives())
        for derivative in all_derivatives():
            assert f".IFDEF {derivative.predefine}" in text


class TestBehaviour:
    def run_cell(self, source, derivative=SC88A):
        env = ModuleTestEnvironment("GLTEST")
        env.add_test(TestCell(name="TEST_GL", source=source))
        return env.run_test("TEST_GL", derivative)

    def test_unexpected_trap_fails_visibly(self):
        result = self.run_cell(
            ".INCLUDE Globals.inc\n_main:\n    TRAP 6\n"
            "    JMP Base_Report_Pass\n"
        )
        assert result.status is RunStatus.FAIL
        assert result.done_pin == 1 and result.pass_pin == 0

    def test_divide_by_zero_fails_via_global_handler(self):
        result = self.run_cell(
            ".INCLUDE Globals.inc\n_main:\n"
            "    LOAD d1, 5\n    LOAD d2, 0\n    DIVU d3, d1, d2\n"
            "    JMP Base_Report_Pass\n"
        )
        assert result.status is RunStatus.FAIL

    def test_timer_irq_counted_by_global_handler(self):
        result = self.run_cell(
            ".INCLUDE Globals.inc\n"
            "_main:\n"
            "    LOAD a11, IRQ_COUNT_ADDR\n"
            "    LOAD d11, 0\n"
            "    ST.W [a11], d11\n"
            "    LOAD d4, IRQ_LINE_TIMER_MASK\n"
            "    CALL Base_Enable_IRQ\n"
            "    LOAD a4, TIM_RELOAD_ADDR\n"
            "    LOAD d4, 30\n"
            "    CALL Base_Init_Register\n"
            "    LOAD a4, TIM_CTRL_ADDR\n"
            "    LOAD d4, TIMER_CTRL_IRQ_VALUE\n"
            "    CALL Base_Init_Register\n"
            "    LOAD d13, POLL_LIMIT\n"
            "wait:\n"
            "    LOAD d4, [IRQ_COUNT_ADDR]\n"
            "    CMPI d4, 3\n"
            "    JGE enough\n"
            "    DJNZ d13, wait\n"
            "    JMP Base_Report_Fail\n"
            "enough:\n"
            "    DI\n"
            "    JMP Base_Report_Pass\n"
        )
        assert result.status is RunStatus.PASS

    def test_handlers_work_on_rebased_derivative(self):
        # sc88c moves the UART but the handler table follows the
        # derivative's register map through its own .IFDEF block.
        result = self.run_cell(
            ".INCLUDE Globals.inc\n_main:\n    TRAP 6\n"
            "    JMP Base_Report_Pass\n",
            derivative=SC88C,
        )
        assert result.status is RunStatus.FAIL  # handled, visible fail
