"""Tests for instruction parsing, overload resolution and encoding."""

import pytest

from repro.assembler.assembler import Assembler
from repro.assembler.errors import EncodingError, ParseError
from repro.isa.encoding import decode_word, opcode_of
from repro.isa.instructions import Opcode


def assemble_text_words(body: str, predefines=None) -> list[int]:
    asm = Assembler(predefines=predefines)
    obj = asm.assemble_source(f"_main:\n{body}\n", "unit.asm")
    section = obj.section("text")
    return [
        section.read_word(offset) for offset in range(0, section.size, 4)
    ]


class TestOverloadResolution:
    def test_load_immediate_data_register(self):
        words = assemble_text_words("    LOAD d3, 0x12345678")
        assert opcode_of(words[0]) == Opcode.LOAD_D
        assert words[1] == 0x12345678

    def test_load_immediate_address_register(self):
        words = assemble_text_words("    LOAD a9, 0x200")
        assert opcode_of(words[0]) == Opcode.LOAD_A

    def test_load_absolute_memory(self):
        words = assemble_text_words("    LOAD d1, [0xF0001000]")
        assert opcode_of(words[0]) == Opcode.LDABS_D
        assert words[1] == 0xF0001000

    def test_store_absolute(self):
        words = assemble_text_words("    STORE [0x10000000], d7")
        assert opcode_of(words[0]) == Opcode.STABS_D
        fields = decode_word(
            __import__("repro.isa.encoding", fromlist=["Format"]).Format.ABS,
            words[0],
        )
        assert fields["r1"] == 7

    def test_call_direct_vs_indirect(self):
        direct = assemble_text_words("    CALL 0x400")
        indirect = assemble_text_words("    CALL a12")
        assert opcode_of(direct[0]) == Opcode.CALL_ABS
        assert opcode_of(indirect[0]) == Opcode.CALL_IND

    def test_mov_bank_selection(self):
        dd = assemble_text_words("    MOV d1, d2")
        aa = assemble_text_words("    MOV a1, a2")
        da = assemble_text_words("    MOV d1, a2")
        ad = assemble_text_words("    MOV a1, d2")
        assert opcode_of(dd[0]) == Opcode.MOV_DD
        assert opcode_of(aa[0]) == Opcode.MOV_AA
        assert opcode_of(da[0]) == Opcode.MOV_DA
        assert opcode_of(ad[0]) == Opcode.MOV_AD

    def test_push_pop_banks(self):
        assert opcode_of(assemble_text_words("    PUSH d1")[0]) == Opcode.PUSH_D
        assert opcode_of(assemble_text_words("    PUSH a1")[0]) == Opcode.PUSH_A
        assert opcode_of(assemble_text_words("    POP d1")[0]) == Opcode.POP_D
        assert opcode_of(assemble_text_words("    POP a1")[0]) == Opcode.POP_A

    def test_no_matching_overload_reports_shapes(self):
        with pytest.raises(ParseError, match="no form of 'LOAD'"):
            assemble_text_words("    LOAD 5, d1")


class TestMemoryOperands:
    def test_indirect_with_offset(self):
        words = assemble_text_words("    LD.W d2, [a4 + 8]")
        assert opcode_of(words[0]) == Opcode.LD_W
        assert words[0] & 0xFFFF == 8
        assert (words[0] >> 16) & 0xF == 4

    def test_indirect_without_offset(self):
        words = assemble_text_words("    LD.W d2, [a4]")
        assert words[0] & 0xFFFF == 0

    def test_negative_offset_encoded_twos_complement(self):
        words = assemble_text_words("    ST.W [a4 - 4], d2")
        assert words[0] & 0xFFFF == 0xFFFC

    def test_offset_out_of_range_rejected(self):
        with pytest.raises(EncodingError, match="out of range"):
            assemble_text_words("    LD.W d2, [a4 + 0x10000]")

    def test_store_operand_order(self):
        words = assemble_text_words("    ST.W [a5], d9")
        assert (words[0] >> 20) & 0xF == 9  # r1 = data source
        assert (words[0] >> 16) & 0xF == 5  # r2 = address base

    def test_unterminated_memory_operand(self):
        with pytest.raises(ParseError):
            assemble_text_words("    LD.W d2, [a4")


class TestBitFieldInstructions:
    def test_insert_paper_form(self):
        # INSERT d14, d14, 8, 0, 5 — the Figure 6 instruction verbatim.
        words = assemble_text_words("    INSERT d14, d14, 8, 0, 5")
        assert opcode_of(words[0]) == Opcode.INSERT
        assert words[1] == 8
        from repro.isa.encoding import Format

        fields = decode_word(Format.BIT, words[0])
        assert fields == {"r1": 14, "r2": 14, "pos": 0, "width": 5}

    def test_insert_with_equ_operands(self):
        asm = Assembler()
        obj = asm.assemble_source(
            "POS .EQU 3\nWIDTH .EQU 6\nVAL .EQU 9\n"
            "_main:\n    INSERT d1, d2, VAL, POS, WIDTH\n    HALT\n",
            "unit.asm",
        )
        section = obj.section("text")
        from repro.isa.encoding import Format

        fields = decode_word(Format.BIT, section.read_word(0))
        assert fields["pos"] == 3 and fields["width"] == 6
        assert section.read_word(4) == 9

    def test_insertr_register_value(self):
        words = assemble_text_words("    INSERTR d1, d2, d3, 4, 5")
        assert opcode_of(words[0]) == Opcode.INSERTR

    def test_width_zero_rejected(self):
        with pytest.raises(EncodingError, match="field width"):
            assemble_text_words("    EXTRU d1, d2, 0, 0")

    def test_pos_out_of_range_rejected(self):
        with pytest.raises(EncodingError, match="bit position"):
            assemble_text_words("    EXTRU d1, d2, 32, 1")


class TestImmediates:
    def test_signed_immediate_range(self):
        assemble_text_words("    ADDI d1, d2, -32768")
        assemble_text_words("    ADDI d1, d2, 32767")
        with pytest.raises(EncodingError):
            assemble_text_words("    ADDI d1, d2, 40000")

    def test_unsigned_immediate_range(self):
        assemble_text_words("    ANDI d1, d2, 0xFFFF")
        with pytest.raises(EncodingError):
            assemble_text_words("    ANDI d1, d2, 0x10000")

    def test_trap_number_range(self):
        assemble_text_words("    TRAP 255")
        with pytest.raises(EncodingError):
            assemble_text_words("    TRAP 256")

    def test_imm16_cannot_be_symbolic(self):
        with pytest.raises(Exception, match="absolute"):
            assemble_text_words("    ADDI d1, d2, some_label")

    def test_32bit_literal_range(self):
        assemble_text_words("    LOAD d0, 0xFFFFFFFF")
        assemble_text_words("    LOAD d0, -2147483648")
        with pytest.raises(EncodingError):
            assemble_text_words("    LOAD d0, 0x1FFFFFFFF")


class TestLabelsAndRelocations:
    def test_local_label_creates_relocation(self):
        asm = Assembler()
        obj = asm.assemble_source(
            "_main:\n    JMP done\n    NOP\ndone:\n    HALT\n", "u.asm"
        )
        relocs = [r for r in obj.relocations if r.symbol == "done"]
        assert len(relocs) == 1
        assert relocs[0].offset == 4  # literal word of the JMP

    def test_extern_symbol_recorded(self):
        asm = Assembler()
        obj = asm.assemble_source(
            "_main:\n    CALL Base_Report_Pass\n", "u.asm"
        )
        assert "Base_Report_Pass" in obj.externs
        assert "Base_Report_Pass" in obj.undefined_symbols()

    def test_label_with_statement_on_same_line(self):
        asm = Assembler()
        obj = asm.assemble_source("_main:    HALT\n", "u.asm")
        assert obj.symbols["_main"].offset == 0
        assert obj.section("text").size == 4

    def test_duplicate_label_rejected(self):
        with pytest.raises(Exception, match="duplicate"):
            Assembler().assemble_source(
                "_main:\n    NOP\n_main:\n    HALT\n", "u.asm"
            )

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(ParseError, match="unknown instruction"):
            assemble_text_words("    FNORD d1")

    def test_symbol_plus_offset_relocation(self):
        asm = Assembler()
        obj = asm.assemble_source(
            "_main:\n    LOAD a4, table + 8\n    HALT\n"
            ".SECTION data\ntable:\n    .WORD 1, 2, 3\n",
            "u.asm",
        )
        reloc = next(r for r in obj.relocations if r.symbol == "table")
        assert reloc.addend == 8
