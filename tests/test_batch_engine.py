"""Tests for the batched lock-step engine (ISSUE 6).

The scalar :class:`ExecutionSession` is the byte-identity oracle: every
batch property here compares a batch-of-N against N scalar runs on
result words, retire traces, cycle counts, register files and UART
output.  The peel machinery is exercised through per-lane stimulus
(forced divergence), leader writes that heal dirty bytes before any
read, and platform hooks that make a lane statically ineligible.
"""

from __future__ import annotations

import pytest

from repro.assembler.assembler import Assembler
from repro.assembler.linker import Linker
from repro.core.scheduler import RegressionScheduler, ResultCache
from repro.core.regression import RegressionRunner
from repro.core.targets import TARGET_GOLDEN
from repro.isa.batch import (
    BATCH_EXECUTORS,
    HAVE_NUMPY,
    LaneRows,
    ROW_NAMES,
    load_footprint,
)
from repro.isa.decodecache import (
    MEM_LD_B,
    MEM_LD_H,
    MEM_LD_W,
    MEM_LDABS_A,
    MEM_LDABS_D,
    MEM_ST_W,
)
from repro.platforms import (
    BatchSession,
    ExecutionSession,
    GateLevelSim,
    NetlistFault,
    RunStatus,
    make_platform,
)
from repro.soc.derivatives import SC88A
from repro.soc.device import FAIL_MAGIC, PASS_MAGIC

MEMORY_MAP = SC88A.memory_map()
#: A RAM word no workload touches: far from the data segment, the
#: result/signature words and the stack.
STIM_ADDR = 0x1000_8000

SIX = ["golden", "rtl", "gatelevel", "accelerator", "bondout", "silicon"]

BACKENDS = ["array"] + (["numpy"] if HAVE_NUMPY else [])


def build_image(body: str):
    asm = Assembler()
    obj = asm.assemble_source(f"_main:\n{body}", "t.asm")
    return Linker(
        text_base=MEMORY_MAP.text_base, data_base=MEMORY_MAP.data_base
    ).link([obj])


def reporting_tail(label: str = "") -> str:
    return (
        f"    LOAD d0, {PASS_MAGIC:#x}\n"
        f"    STORE [{MEMORY_MAP.result_address:#x}], d0\n"
        "    HALT\n"
        f"lane_fail{label}:\n"
        f"    LOAD d0, {FAIL_MAGIC:#x}\n"
        f"    STORE [{MEMORY_MAP.result_address:#x}], d0\n"
        "    HALT\n"
    )


#: Branches on the stimulus word: 0 -> PASS, nonzero -> FAIL.
BRANCH_IMAGE = build_image(
    f"""\
    LOAD a4, {STIM_ADDR:#x}
    LD.W d4, [a4]
    CMPI d4, 0
    JNZ lane_fail
"""
    + reporting_tail()
)

#: Overwrites the stimulus word before reading it: divergent stimulus
#: is healed by the leader's store and no lane may peel.
HEAL_IMAGE = build_image(
    f"""\
    LOAD a4, {STIM_ADDR:#x}
    LOAD d3, 7
    ST.W [a4], d3
    LD.W d4, [a4]
    CMPI d4, 7
    JNZ lane_fail
"""
    + reporting_tail()
)


def strip(result):
    """Everything a RunResult carries, as comparable values."""
    return (
        result.platform,
        result.derivative,
        result.status,
        result.instructions,
        result.cycles,
        result.signature,
        result.result_word,
        result.uart_output,
        result.done_pin,
        result.pass_pin,
        result.fault_reason,
        None
        if result.trace is None
        else [(t.pc, t.opcode, t.mnemonic, t.cycles) for t in result.trace],
        result.registers,
    )


def scalar_reference(name, image, stimulus=None, **engine):
    session = ExecutionSession(make_platform(name), SC88A, **engine)
    return session.run(image, stimulus=stimulus)


# --------------------------------------------------------------------------
# LaneRows / batch executors (ISA layer)
# --------------------------------------------------------------------------

class TestLaneRows:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_capture_restore_roundtrip(self, backend):
        session = ExecutionSession(make_platform("golden"), SC88A)
        session.run(BRANCH_IMAGE)
        cpu = session.cpu
        rows = LaneRows(3, backend=backend)
        rows.capture(1, cpu)
        before = {
            "data": list(cpu.regs.data),
            "address": list(cpu.regs.address),
            "pc": cpu.regs.pc,
            "psw": cpu.regs.psw.value,
            "cycles": cpu.cycles,
            "retired": cpu.instructions_retired,
            "halted": cpu.halted,
        }
        # Scramble, then restore from the captured column.
        cpu.regs.data[0] = 0xDEAD
        cpu.regs.pc = 0
        cpu.cycles = 0
        rows.restore(1, cpu)
        assert list(cpu.regs.data) == before["data"]
        assert list(cpu.regs.address) == before["address"]
        assert cpu.regs.pc == before["pc"]
        assert cpu.regs.psw.value == before["psw"]
        assert cpu.cycles == before["cycles"]
        assert cpu.instructions_retired == before["retired"]
        assert cpu.halted == before["halted"]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_divergence_queries(self, backend):
        rows = LaneRows(4, backend=backend)
        assert rows.diverging_lanes() == []
        rows.rows["d3"][2] = 99
        rows.rows["pc"][3] = 0x200
        assert rows.diverging_lanes() == [2, 3]
        assert rows.lane_divergences(0, 2) == ["d3"]
        assert rows.lane_divergences(0, 3) == ["pc"]
        assert rows.column(2)["d3"] == 99

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_broadcast(self, backend):
        session = ExecutionSession(make_platform("golden"), SC88A)
        session.run(BRANCH_IMAGE)
        rows = LaneRows(3, backend=backend)
        rows.broadcast(session.cpu)
        assert rows.diverging_lanes() == []
        assert rows.column(0) == rows.column(2)

    def test_row_layout(self):
        assert len(ROW_NAMES) == 16 + 16 + 5
        with pytest.raises(ValueError):
            LaneRows(0)

    def test_numpy_backend_requires_numpy(self):
        if HAVE_NUMPY:
            assert LaneRows(2, backend="numpy").backend == "numpy"
        else:
            with pytest.raises(ValueError):
                LaneRows(2, backend="numpy")


class TestBatchExecutors:
    def test_covers_exactly_the_simple_loads(self):
        assert set(BATCH_EXECUTORS) == {
            MEM_LD_W, MEM_LD_H, MEM_LD_B, MEM_LDABS_D, MEM_LDABS_A,
        }

    def test_load_lane_wise_application(self):
        class Entry:
            mem_kind = MEM_LD_W
            r1 = 5

        rows = LaneRows(2, backend="array")
        BATCH_EXECUTORS[MEM_LD_W](rows, 1, Entry, 0x1_2345_6789)
        assert rows.rows["d5"][1] == 0x2345_6789  # masked to a word
        assert rows.rows["d5"][0] == 0

        class AbsEntry:
            mem_kind = MEM_LDABS_A
            r1 = 3

        BATCH_EXECUTORS[MEM_LDABS_A](rows, 0, AbsEntry, 0x40)
        assert rows.rows["a3"][0] == 0x40

    def test_load_footprint(self):
        session = ExecutionSession(make_platform("golden"), SC88A)
        session.run(BRANCH_IMAGE)
        regs = session.cpu.regs

        class Entry:
            mem_kind = MEM_LD_W
            mem_disp = 8
            r2 = 4

        regs.address[4] = 0x1000_0100
        assert load_footprint(regs, Entry) == (0x1000_0108, 4)
        Entry.mem_kind = MEM_LD_B
        assert load_footprint(regs, Entry) == (0x1000_0108, 1)
        Entry.mem_kind = MEM_LDABS_D
        Entry.mem_disp = 0x1000_0200
        assert load_footprint(regs, Entry) == (0x1000_0200, 4)
        Entry.mem_kind = MEM_ST_W
        assert load_footprint(regs, Entry) is None


# --------------------------------------------------------------------------
# batch vs scalar byte-identity (the oracle property)
# --------------------------------------------------------------------------

class TestSixPlatformIdentity:
    def test_workload_image_across_all_platforms(self, nvm_env_small):
        cell = sorted(nvm_env_small.cells)[0]
        image = nvm_env_small.build_image(cell, SC88A, TARGET_GOLDEN).image
        batch = BatchSession(SC88A, [make_platform(n) for n in SIX])
        results = batch.run_batch(image)
        for name, result in zip(SIX, results):
            assert strip(result) == strip(
                scalar_reference(name, image)
            ), name
        stats = batch.stats()
        assert stats["batch_lanes"] == 6
        assert stats["batch_steps"] > 0
        assert stats["sb_blocks"] > 0
        # gatelevel overrides configure_cpu -> statically peeled.
        gate = batch.last_lanes[SIX.index("gatelevel")]
        assert gate.peeled and not gate.batched
        # The lock-step cohort really shares devices: only leaders and
        # peeled lanes ever get a session of their own.
        assert len(batch._sessions) < len(SIX)

    def test_batch_reuse_across_images(self, nvm_env_small):
        cells = sorted(nvm_env_small.cells)[:2]
        batch = BatchSession(SC88A, [make_platform(n) for n in SIX])
        for cell in cells:
            image = nvm_env_small.build_image(
                cell, SC88A, TARGET_GOLDEN
            ).image
            results = batch.run_batch(image)
            for name, result in zip(SIX, results):
                assert strip(result) == strip(
                    scalar_reference(name, image)
                ), (cell, name)

    def test_batch_of_one_degenerates_to_scalar(self):
        batch = BatchSession(SC88A, [make_platform("golden")])
        (result,) = batch.run_batch(BRANCH_IMAGE)
        assert strip(result) == strip(
            scalar_reference("golden", BRANCH_IMAGE)
        )
        stats = batch.stats()
        assert stats["batch_lanes"] == 1
        assert stats["peel_events"] == 0
        assert stats["sb_blocks"] > 0
        lane = batch.last_lanes[0]
        assert lane.batched and not lane.peeled

    def test_result_ordering_matches_lanes(self):
        platforms = [make_platform("golden"), make_platform("silicon")]
        batch = BatchSession(SC88A, platforms)
        results = batch.run_batch(BRANCH_IMAGE)
        assert [r.platform for r in results] == ["golden", "silicon"]


# --------------------------------------------------------------------------
# forced divergence: peel, heal, rejoin
# --------------------------------------------------------------------------

class TestDivergence:
    NAMES = ["golden", "golden", "golden", "rtl"]
    STIMULI = [None, {STIM_ADDR: 1}, {STIM_ADDR: 2}, {STIM_ADDR: 1}]

    def make_batch(self, **engine):
        return BatchSession(
            SC88A, [make_platform(n) for n in self.NAMES], **engine
        )

    def test_divergent_stimulus_peels_and_stays_byte_identical(self):
        batch = self.make_batch()
        results = batch.run_batch(BRANCH_IMAGE, stimuli=self.STIMULI)
        statuses = [r.status for r in results]
        assert statuses == [
            RunStatus.PASS, RunStatus.FAIL, RunStatus.FAIL, RunStatus.FAIL,
        ]
        for name, stimulus, result in zip(
            self.NAMES, self.STIMULI, results
        ):
            assert strip(result) == strip(
                scalar_reference(name, BRANCH_IMAGE, stimulus)
            )
        assert batch.peel_events == 2
        # The divergent golden lanes rode the cohort to the fork point.
        assert batch.last_lanes[1].batched and batch.last_lanes[1].peeled
        assert batch.last_lanes[2].batched and batch.last_lanes[2].peeled
        # The rtl lane is its own cohort leader; its stimulus is applied
        # directly, so it never peels.
        assert not batch.last_lanes[3].peeled
        # Lane rows expose the per-lane divergence data.
        diverging = set()
        for lane, names in batch.lane_divergences().items():
            if names:
                diverging.add(lane)
        assert {1, 2}.issubset(diverging)

    def test_healed_stimulus_never_peels(self):
        batch = self.make_batch()
        results = batch.run_batch(HEAL_IMAGE, stimuli=self.STIMULI)
        assert [r.status for r in results] == [RunStatus.PASS] * 4
        assert batch.peel_events == 0
        for name, stimulus, result in zip(
            self.NAMES, self.STIMULI, results
        ):
            assert strip(result) == strip(
                scalar_reference(name, HEAL_IMAGE, stimulus)
            )

    def test_peeled_lanes_rejoin_at_the_next_batch(self):
        batch = self.make_batch()
        batch.run_batch(BRANCH_IMAGE, stimuli=self.STIMULI)
        assert batch.peel_events == 2
        results = batch.run_batch(BRANCH_IMAGE)
        assert [r.status for r in results] == [RunStatus.PASS] * 4
        assert batch.peel_events == 0
        assert all(lane.batched for lane in batch.last_lanes)

    def test_per_step_reference_loop_peels_from_reset(self):
        # use_block_run=False has no block boundaries, so peels are
        # serviced at end of run by conservative from-reset re-runs —
        # still byte-identical to the per-step scalar oracle.
        batch = self.make_batch(use_block_run=False)
        results = batch.run_batch(BRANCH_IMAGE, stimuli=self.STIMULI)
        for name, stimulus, result in zip(
            self.NAMES, self.STIMULI, results
        ):
            assert strip(result) == strip(
                scalar_reference(
                    name, BRANCH_IMAGE, stimulus, use_block_run=False
                )
            )
        assert batch.peel_events == 2

    def test_stimulus_outside_ram_rejected(self):
        batch = self.make_batch()
        with pytest.raises(ValueError, match="outside RAM"):
            batch.run_batch(
                BRANCH_IMAGE,
                stimuli=[None, {0x9999_0000: 1}, None, None],
            )

    def test_stimulus_count_must_match_lanes(self):
        batch = self.make_batch()
        with pytest.raises(ValueError, match="lanes"):
            batch.run_batch(BRANCH_IMAGE, stimuli=[None])


class TestScalarStimulus:
    def test_scalar_session_applies_stimulus(self):
        session = ExecutionSession(make_platform("golden"), SC88A)
        assert session.run(BRANCH_IMAGE).status is RunStatus.PASS
        assert (
            session.run(BRANCH_IMAGE, stimulus={STIM_ADDR: 5}).status
            is RunStatus.FAIL
        )
        # Stimulus does not leak into the next (reset) run.
        assert session.run(BRANCH_IMAGE).status is RunStatus.PASS

    def test_scalar_session_rejects_rom_stimulus(self):
        session = ExecutionSession(make_platform("golden"), SC88A)
        with pytest.raises(ValueError, match="outside RAM"):
            session.run(BRANCH_IMAGE, stimulus={0x0000_0200: 1})

    def test_stats_has_batch_telemetry_keys(self):
        session = ExecutionSession(make_platform("golden"), SC88A)
        session.run(BRANCH_IMAGE)
        stats = session.stats()
        assert stats["batch_lanes"] == 0
        assert stats["batch_steps"] == 0
        assert stats["peel_events"] == 0


# --------------------------------------------------------------------------
# scheduler integration (the regress matrix rides the batch engine)
# --------------------------------------------------------------------------

class TestSchedulerBatchExecutor:
    def test_batch_matches_serial(self, nvm_env_small):
        serial = RegressionScheduler(executor="serial").run_environment(
            nvm_env_small, SC88A
        )
        batch = RegressionScheduler(executor="batch").run_environment(
            nvm_env_small, SC88A
        )
        assert set(serial.results) == set(batch.results)
        for key in serial.results:
            a, b = serial.results[key], batch.results[key]
            assert (a.status, a.instructions, a.cycles, a.signature,
                    a.result_word, a.uart_output, a.registers) == (
                b.status, b.instructions, b.cycles, b.signature,
                b.result_word, b.uart_output, b.registers), key
        assert batch.clean is serial.clean
        assert batch.batched_runs > 0
        assert batch.executed_runs == serial.executed_runs
        # Per-cell accounting: every run is counted individually, and
        # the summary surfaces the batch bookkeeping.
        assert batch.batched_runs + batch.peeled_runs >= batch.total_runs
        assert "batched in lock-step" in batch.summary()
        assert "batched" not in serial.summary()

    def test_batch_executor_with_cache_accounts_per_cell(
        self, nvm_env_small, tmp_path
    ):
        cache = ResultCache(tmp_path / "cache")
        first = RegressionScheduler(
            executor="batch", cache=cache
        ).run_environment(nvm_env_small, SC88A)
        assert first.cached_runs == 0
        assert first.executed_runs == first.total_runs
        assert first.batched_runs > 0
        second = RegressionScheduler(
            executor="batch", cache=cache
        ).run_environment(nvm_env_small, SC88A)
        assert second.executed_runs == 0
        assert second.cached_runs == second.total_runs
        # Cache hits never ran this time, batched or otherwise.
        assert second.batched_runs == 0
        for key in first.results:
            assert (
                first.results[key].status is second.results[key].status
            )

    def test_batch_executor_respects_overrides(self, nvm_env_small):
        fault = NetlistFault(opcode=0, xor_mask=0)
        report = RegressionRunner(
            platform_overrides={"gatelevel": GateLevelSim(fault=fault)},
            executor="batch",
        ).run_environment(nvm_env_small, SC88A)
        assert report.total_runs == 6 * len(nvm_env_small.cells)
        assert report.batched_runs > 0

    def test_unknown_executor_still_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            RegressionScheduler(executor="lockstep")

    def test_runner_passes_executor_through(self, nvm_env_small):
        runner = RegressionRunner(executor="batch")
        report = runner.run_environment(nvm_env_small, SC88A)
        assert report.batched_runs > 0
        assert report.clean
