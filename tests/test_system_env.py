"""Tests for the complete system environment (Figures 4 and 5)."""

import pytest

from repro.core.environment import TestCell
from repro.core.system_env import (
    SystemEnvironment,
    make_default_system,
)
from repro.core.workloads import make_nvm_environment, make_uart_environment
from repro.soc.derivatives import SC88A


class TestComposition:
    def test_default_system_has_six_environments(self):
        system = make_default_system(nvm_tests=1, uart_tests=1)
        assert set(system.environments) == {
            "NVM", "UART", "TIMER", "REGINIT", "REGCHECK", "DATAPATH",
        }
        assert system.total_tests > 10

    def test_duplicate_environment_rejected(self):
        system = SystemEnvironment()
        system.add_environment(make_nvm_environment(1))
        with pytest.raises(ValueError, match="duplicate"):
            system.add_environment(make_nvm_environment(1))

    def test_environments_share_global_layer(self):
        system = SystemEnvironment()
        system.add_environment(make_nvm_environment(1))
        system.add_environment(make_uart_environment(1))
        layers = {
            id(env.global_layer) for env in system.environments.values()
        }
        assert len(layers) == 1  # Figure 4: one shared global layer

    def test_environment_lookup(self):
        system = SystemEnvironment()
        system.add_environment(make_nvm_environment(1))
        assert system.environment("NVM").name == "NVM"
        with pytest.raises(KeyError):
            system.environment("GHOST")


class TestIsolation:
    def test_clean_system_has_no_violations(self):
        system = make_default_system(nvm_tests=1, uart_tests=1)
        assert system.check_isolation() == []

    def test_cross_environment_reference_detected(self):
        """A UART test must not reference the NVM environment's private
        defines — Figure 4's isolation rule."""
        system = SystemEnvironment()
        system.add_environment(make_nvm_environment(1))
        uart = make_uart_environment(1)
        uart.add_test(
            TestCell(
                name="TEST_SNEAKY",
                source=(
                    ".INCLUDE Globals.inc\n"
                    "_main:\n"
                    "    LOAD d4, TEST1_TARGET_PAGE\n"  # NVM's define!
                    "    JMP Base_Report_Pass\n"
                ),
            )
        )
        system.add_environment(uart)
        violations = system.check_isolation()
        assert violations
        assert violations[0].offending_env == "UART"
        assert violations[0].referenced_env == "NVM"
        assert violations[0].symbol == "TEST1_TARGET_PAGE"
        assert "TEST1_TARGET_PAGE" in str(violations[0])


class TestSystemRuns:
    def test_run_all(self):
        system = make_default_system(nvm_tests=1, uart_tests=1)
        results = system.run_all(SC88A)
        assert set(results) == set(system.environments)
        for env_name, cells in results.items():
            for cell_name, result in cells.items():
                assert result.passed, (env_name, cell_name)
