"""Superblock chaining + idle fast-forward tests (ISSUE 4).

The contract under test:

(a) **Formation** — superblocks are maximal straight-line runs of
    pure-register instructions; memory micro-ops, control flow, traps
    and interrupt-enable writers terminate them; a bare ``DJNZ rX, .``
    self-loop is classified as an idle spin.
(b) **Equivalence** — the superblock engine (fusion + chaining + idle
    fast-forward) retires byte-identical signature / cycles /
    IRQ-delivery timing to the ``use_block_run=False`` per-step
    reference across **all six platforms**, on timer-delay and
    busy-wait workloads whose wall-clock is dominated by fast-forwarded
    iterations.
(c) **Observation** (ISSUE 5) — the superblock engine (fusion, chaining
    and the idle fast-forward) keeps running under instruction traces,
    bus traces and wait-state charging, replaying each block's
    precomputed observation templates in bulk; the retire trace and bus
    access stream are byte-identical to the per-step reference.  Only
    the per-step loop itself (``use_block_run=False``), fault hooks and
    per-access ``trace_hooks`` remain reference baselines where no warp
    fires.
(d) **Exactness** — warps land retire counts and cycle counts exactly
    on instruction limits and block deadlines, so event-horizon
    scheduling (and therefore interrupt delivery) is unperturbed.
(e) **Chaining/invalidation** — successor links are validated against
    the live pc, and :meth:`CpuCore.cut_block` flushes the cached
    chain.
"""

import pytest

from repro.assembler.assembler import Assembler
from repro.assembler.linker import Linker
from repro.core.targets import TARGET_GOLDEN, all_targets
from repro.core.workloads import (
    make_delay_environment,
    make_timer_environment,
)
from repro.isa.decodecache import Superblock, decode_cache_for
from repro.isa.instructions import Opcode
from repro.platforms import (
    ExecutionSession,
    PLATFORM_CLASSES,
    GoldenModel,
    RunStatus,
)
from repro.platforms.cpu import CpuCore
from repro.soc.derivatives import SC88A, SC88B
from repro.soc.device import PASS_MAGIC, SystemOnChip

MEMORY_MAP = SC88A.memory_map()

TARGETS_BY_NAME = {target.name: target for target in all_targets()}


def link_source(source: str):
    obj = Assembler().assemble_source(source, "t.asm")
    return Linker(
        text_base=MEMORY_MAP.text_base, data_base=MEMORY_MAP.data_base
    ).link([obj])


def strip(result):
    """The comparable engine-visible outcome of a run."""
    return (
        result.status,
        result.signature,
        result.result_word,
        result.instructions,
        result.cycles,
        result.uart_output,
        result.done_pin,
        result.pass_pin,
        None
        if result.trace is None
        else [(t.pc, t.opcode, t.mnemonic, t.cycles) for t in result.trace],
    )


def cache_for(image):
    rom = MEMORY_MAP.rom
    return decode_cache_for(image, rom.base, rom.base + rom.size)


# ---------------------------------------------------------------------------
# (a) formation
# ---------------------------------------------------------------------------

FORMATION_SOURCE = f"""\
_main:
    ADDI d2, d2, 3
    XOR d3, d3, d2
    SHLI d4, d2, 5
    CMPI d4, 0
    ST.W [a1], d4
    ADDI d5, d5, 1
    JMP over
over:
    LOAD d6, 7
spin:
    DJNZ d6, spin
    EI
    HALT
"""


class TestFormation:
    def test_bodies_end_at_memory_and_control_flow(self):
        image = link_source(FORMATION_SOURCE)
        cache = cache_for(image)
        entry = image.entry

        first = cache.block_at(entry)
        # Four pure ALU/flag ops, then the ST.W micro-op terminates.
        assert first.body_count == 4
        assert [e.mnemonic for e in first.body] == [
            "ADDI", "XOR", "SHLI", "CMPI",
        ]
        assert first.terminator.mnemonic == "ST.W"
        assert first.body_cycles == sum(e.base_cycles for e in first.body)
        assert first.spin_reg == -1

        after_store = cache.block_at(first.terminator.next_pc)
        assert [e.mnemonic for e in after_store.body] == ["ADDI"]
        assert after_store.terminator.mnemonic == "JMP"

    def test_idle_spin_detection(self):
        image = link_source(FORMATION_SOURCE)
        cache = cache_for(image)
        spin_pc = image.symbol("spin")
        spin = cache.block_at(spin_pc)
        assert spin.body_count == 0
        assert spin.terminator.op is Opcode.DJNZ
        assert spin.spin_reg == spin.terminator.r1
        assert spin.spin_cost == spin.terminator.base_cycles + 1

        # A DJNZ that targets another address is not an idle spin.
        other = link_source(
            "_main:\nback:\n    ADDI d2, d2, 1\n"
            "    DJNZ d1, back\n    HALT\n"
        )
        other_cache = cache_for(other)
        djnz_block = other_cache.block_at(other.symbol("back"))
        # Body [ADDI], DJNZ terminator pointing at the block start but
        # with a nonempty body: analytic warp does not apply.
        assert djnz_block.terminator.op is Opcode.DJNZ
        assert djnz_block.spin_reg == -1

    def test_interrupt_enable_writers_terminate(self):
        image = link_source(FORMATION_SOURCE)
        cache = cache_for(image)
        spin_pc = image.symbol("spin")
        spin = cache.block_at(spin_pc)
        after_spin = cache.block_at(spin.terminator.next_pc)
        assert after_spin.body_count == 0
        assert after_spin.terminator.mnemonic == "EI"

    def test_uncacheable_address_has_no_block(self):
        image = link_source(FORMATION_SOURCE)
        cache = cache_for(image)
        ram_base = MEMORY_MAP.ram.base
        assert cache.block_at(ram_base) is None


# ---------------------------------------------------------------------------
# (b) cross-platform equivalence on delay-heavy workloads
# ---------------------------------------------------------------------------

def make_envs():
    return [
        make_delay_environment(delay_ticks=(900,), spin_loops=(4_000,)),
        make_timer_environment(),
    ]


class TestDelayEquivalenceAcrossPlatforms:
    @pytest.mark.parametrize(
        "platform_name", sorted(PLATFORM_CLASSES), ids=str
    )
    @pytest.mark.parametrize(
        "derivative", [SC88A, SC88B], ids=lambda d: d.name
    )
    def test_fast_forward_matches_per_step_reference(
        self, platform_name, derivative
    ):
        """The satellite property: fast-forwarded ``Base_Timer_Delay``
        (and pure busy-wait) runs retire byte-identical signature,
        cycles and IRQ-delivery timing vs the ``use_block_run=False``
        reference on every platform.  ``TEST_TIMER_IRQ`` exercises
        interrupt delivery; cycle equality pins its timing."""
        platform_cls = PLATFORM_CLASSES[platform_name]
        tgt = TARGETS_BY_NAME[platform_name]
        for env in make_envs():
            for cell_name in env.cells:
                image = env.build_image(cell_name, derivative, tgt).image
                fast = ExecutionSession(platform_cls(), derivative).run(
                    image
                )
                reference = ExecutionSession(
                    platform_cls(), derivative, use_block_run=False
                ).run(image)
                assert strip(fast) == strip(reference), (
                    platform_name,
                    cell_name,
                )
                assert fast.status is RunStatus.PASS, (
                    platform_name,
                    cell_name,
                )


IRQ_DURING_SPIN_SOURCE = """\
;; timer interrupts must land mid-spin at reference-exact cycles
.INCLUDE Globals.inc
_main:
    LOAD a11, IRQ_COUNT_ADDR
    LOAD d11, 0
    ST.W [a11], d11
    LOAD d4, IRQ_LINE_TIMER_MASK
    CALL Base_Enable_IRQ
    LOAD a4, TIM_RELOAD_ADDR
    LOAD d4, 700
    CALL Base_Init_Register
    LOAD a4, TIM_CTRL_ADDR
    LOAD d4, TIMER_CTRL_IRQ_VALUE
    CALL Base_Init_Register
    LOAD d4, 20000
    CALL Base_Spin
    DI
    ;; at least two interrupts must have been counted during the spin
    LOAD d4, [IRQ_COUNT_ADDR]
    CMPI d4, 2
    JLT Base_Report_Fail
    JMP Base_Report_Pass
"""


class TestIrqDeliveryDuringFastForward:
    def test_spin_warp_respects_irq_horizons(self):
        from repro.core.environment import ModuleTestEnvironment, TestCell

        env = ModuleTestEnvironment("DELAYIRQ")
        env.add_test(
            TestCell(name="TEST_IRQ_DURING_SPIN", source=IRQ_DURING_SPIN_SOURCE)
        )
        image = env.build_image(
            "TEST_IRQ_DURING_SPIN", SC88A, TARGET_GOLDEN
        ).image
        sessions = {}
        results = {}
        for label, kw in (
            ("fast", {}),
            ("reference", {"use_block_run": False}),
        ):
            session = ExecutionSession(GoldenModel(), SC88A, **kw)
            results[label] = session.run(image)
            sessions[label] = session
        assert strip(results["fast"]) == strip(results["reference"])
        assert results["fast"].status is RunStatus.PASS


# ---------------------------------------------------------------------------
# (c) observation rides the fast path; per-step/hook baselines never warp
# ---------------------------------------------------------------------------

SPIN_ONLY_SOURCE = f"""\
_main:
    LOAD d1, 5000
spin:
    DJNZ d1, spin
    LOAD d0, {PASS_MAGIC:#x}
    HALT
"""


def direct_cpu(image, *, trace: bool = False) -> tuple[CpuCore, SystemOnChip]:
    soc = SystemOnChip(SC88A)
    soc.load_image(image)
    cpu = CpuCore(soc.bus, intc=soc.intc)
    cpu.decode_cache = cache_for(image)
    cpu.reset(image.entry, MEMORY_MAP.stack_top)
    if trace:
        cpu.enable_trace()
    return cpu, soc


class TestObservedFastPath:
    def test_warps_fire_under_instruction_trace(self):
        """The ISSUE 5 tentpole at its smallest: a traced run still
        warps the idle spin, and the synthesized trace records are
        byte-identical to per-instruction recording."""
        image = link_source(SPIN_ONLY_SOURCE)
        cpu, _ = direct_cpu(image, trace=True)
        cpu.run()
        assert cpu.halted
        assert cpu.ff_warps > 0
        # Every retire is in the trace — the warped iterations were
        # synthesized, not skipped.
        assert len(cpu.trace) == cpu.instructions_retired
        reference, _ = direct_cpu(image, trace=True)
        reference.use_superblocks = False
        reference.run()
        assert reference.ff_warps == 0
        assert cpu.trace.raw() == reference.trace.raw()
        assert (cpu.cycles, cpu.regs.data[0]) == (
            reference.cycles,
            reference.regs.data[0],
        )

    def test_no_warps_in_per_step_reference_session(self):
        image = link_source(SPIN_ONLY_SOURCE)
        session = ExecutionSession(GoldenModel(), SC88A, use_block_run=False)
        result = session.run(image)
        assert result.signature == PASS_MAGIC
        assert session.cpu.ff_warps == 0

    def test_no_warps_under_trace_hooks(self):
        """Per-access hook callbacks still force the reference path —
        each hook must observe every access as its own object."""
        image = link_source(SPIN_ONLY_SOURCE)
        cpu, soc = direct_cpu(image)
        events = []
        soc.bus.trace_hooks.append(events.append)
        cpu.run()
        assert cpu.halted
        assert cpu.ff_warps == 0
        assert cpu.regs.data[0] == PASS_MAGIC

    def test_warps_fire_on_the_hoisted_path(self):
        image = link_source(SPIN_ONLY_SOURCE)
        cpu, _ = direct_cpu(image)
        cpu.run()
        assert cpu.halted
        assert cpu.ff_warps > 0
        # LOAD + 5000 DJNZ retires + LOAD + HALT
        assert cpu.instructions_retired == 1 + 5000 + 2

    def test_ablation_flags(self):
        image = link_source(SPIN_ONLY_SOURCE)
        outcomes = []
        for superblocks, fast_forward in (
            (True, True), (True, False), (False, True), (False, False),
        ):
            cpu, _ = direct_cpu(image)
            cpu.use_superblocks = superblocks
            cpu.use_fast_forward = fast_forward
            cpu.run()
            outcomes.append(
                (cpu.instructions_retired, cpu.cycles, cpu.regs.data[0])
            )
            expected_warps = superblocks and fast_forward
            assert (cpu.ff_warps > 0) == expected_warps, (
                superblocks,
                fast_forward,
            )
        assert len(set(outcomes)) == 1  # all four configs byte-identical


# ---------------------------------------------------------------------------
# (d) warp exactness on limits and deadlines
# ---------------------------------------------------------------------------

class TestWarpExactness:
    def test_instruction_limit_lands_mid_spin(self):
        image = link_source(SPIN_ONLY_SOURCE)
        cpu, _ = direct_cpu(image)
        # 1 LOAD + 2000 DJNZ retires: the ceiling lands mid-warp.
        cpu.run(instruction_limit=2001)
        assert cpu.instructions_retired == 2001
        assert not cpu.halted
        # LOAD (2 cycles) + 2000 taken DJNZ (2 cycles each).
        assert cpu.cycles == 2 + 2000 * 2
        cpu.run()  # finish
        assert cpu.halted
        assert cpu.regs.data[0] == PASS_MAGIC
        assert cpu.instructions_retired == 1 + 5000 + 2

    def test_cycle_budget_lands_mid_spin(self):
        image = link_source(SPIN_ONLY_SOURCE)
        cpu, _ = direct_cpu(image)
        consumed = cpu.run(cycle_budget=501)
        # Stops at the first retire boundary at/after the budget,
        # exactly like per-instruction stepping.
        assert 501 <= consumed <= 502
        reference_cpu, _ = direct_cpu(image)
        reference_cpu.use_superblocks = False
        reference_consumed = reference_cpu.run(cycle_budget=501)
        assert consumed == reference_consumed
        assert cpu.instructions_retired == reference_cpu.instructions_retired

    def test_zero_counter_wraps_like_reference(self):
        source = f"""\
_main:
    LOAD d1, 0
spin:
    DJNZ d1, spin
    LOAD d0, {PASS_MAGIC:#x}
    HALT
"""
        image = link_source(source)
        fast_cpu, _ = direct_cpu(image)
        fast_cpu.run(instruction_limit=10_000)
        slow_cpu, _ = direct_cpu(image)
        slow_cpu.use_superblocks = False
        slow_cpu.run(instruction_limit=10_000)
        assert fast_cpu.instructions_retired == 10_000
        assert (fast_cpu.cycles, fast_cpu.regs.data[1]) == (
            slow_cpu.cycles,
            slow_cpu.regs.data[1],
        )


# ---------------------------------------------------------------------------
# (e) chaining + invalidation
# ---------------------------------------------------------------------------

class TestChaining:
    def test_successor_links_memoised_and_validated(self):
        source = f"""\
_main:
    LOAD d1, 50
loop:
    ADDI d2, d2, 3
    XOR d3, d3, d2
    DJNZ d1, loop
    LOAD d0, {PASS_MAGIC:#x}
    HALT
"""
        image = link_source(source)
        cpu, _ = direct_cpu(image)
        cpu.run()
        assert cpu.halted
        cache = cpu.decode_cache
        loop_block = cache.block_at(image.symbol("loop"))
        # The DJNZ taken edge was chained back to the loop head...
        assert loop_block.succ_taken is loop_block
        # ...and the fall-through edge to the epilogue block.
        assert loop_block.succ_fall is not None
        assert loop_block.succ_fall.start == loop_block.terminator.next_pc

    def test_cut_block_flushes_cached_chain(self):
        image = link_source(SPIN_ONLY_SOURCE)
        cpu, _ = direct_cpu(image)
        cpu.run(instruction_limit=10)
        assert cpu._sb_resume is not None  # chain predicted for resume
        epoch = cpu._sb_epoch
        cpu.cut_block()
        assert cpu._sb_resume is None
        assert cpu._sb_epoch == epoch + 1
        # The run must still complete correctly after the flush.
        cpu.run()
        assert cpu.halted
        assert cpu.regs.data[0] == PASS_MAGIC

    def test_reset_flushes_cached_chain(self):
        image = link_source(SPIN_ONLY_SOURCE)
        cpu, _ = direct_cpu(image)
        cpu.run(instruction_limit=10)
        assert cpu._sb_resume is not None
        cpu.reset(image.entry, MEMORY_MAP.stack_top)
        assert cpu._sb_resume is None


# ---------------------------------------------------------------------------
# (f) ISSUE 5: traced + wait-state runs stay on the superblock engine,
#     byte-identical to the per-step reference across all six platforms
# ---------------------------------------------------------------------------

def stripped_bus_trace(platform):
    """The recorded bus access stream as comparable raw tuples."""
    trace = platform.last_bus_trace
    return None if trace is None else list(trace.raw())


class TestObservedMatrixAcrossPlatforms:
    @pytest.mark.parametrize(
        "platform_name", sorted(PLATFORM_CLASSES), ids=str
    )
    @pytest.mark.parametrize(
        "derivative", [SC88A, SC88B], ids=lambda d: d.name
    )
    def test_traced_run_matches_per_step_reference(
        self, platform_name, derivative
    ):
        """With a bus trace recorded (and the platform's natural
        instruction-trace / wait-state configuration active), the
        superblock engine must execute the run — telemetry shows
        blocks and no silent fallbacks — and retire a byte-identical
        outcome, retire trace and bus access stream vs the per-step
        reference."""
        platform_cls = PLATFORM_CLASSES[platform_name]
        tgt = TARGETS_BY_NAME[platform_name]
        for env in make_envs():
            for cell_name in env.cells:
                image = env.build_image(cell_name, derivative, tgt).image
                fast_platform = platform_cls()
                fast_platform.record_bus_trace = True
                fast_session = ExecutionSession(fast_platform, derivative)
                fast = fast_session.run(image)
                ref_platform = platform_cls()
                ref_platform.record_bus_trace = True
                reference = ExecutionSession(
                    ref_platform, derivative, use_block_run=False
                ).run(image)
                assert strip(fast) == strip(reference), (
                    platform_name,
                    cell_name,
                )
                assert stripped_bus_trace(fast_platform) == (
                    stripped_bus_trace(ref_platform)
                ), (platform_name, cell_name)
                stats = fast_session.stats()
                assert stats["sb_blocks"] > 0, (platform_name, cell_name)
                assert stats["sb_fallback_steps"] == 0, (
                    platform_name,
                    cell_name,
                )
                assert fast.status is RunStatus.PASS

    def test_wait_state_run_warps_on_the_fast_path(self):
        """Cycle-accurate platforms (nonzero folded fetch waits) warp
        idle spins and retire reference-exact cycle counts."""
        from repro.platforms import RtlSim

        image = link_source(SPIN_ONLY_SOURCE)
        fast_session = ExecutionSession(RtlSim(), SC88A)
        fast = fast_session.run(image)
        reference = ExecutionSession(
            RtlSim(), SC88A, use_block_run=False
        ).run(image)
        assert strip(fast) == strip(reference)
        assert fast.signature == PASS_MAGIC
        assert fast_session.cpu.charge_wait_states
        assert fast_session.cpu.ff_warps > 0
        # ROM fetches cost wait states on this platform: the folded
        # spin cost must exceed the base-cycle figure, i.e. the run is
        # genuinely charging waits on the warped path.
        cache = fast_session.cpu.decode_cache
        spin = cache.block_at(image.symbol("spin"))
        assert spin.spin_cost_w > spin.spin_cost

    def test_irq_lands_mid_spin_while_traced(self):
        """An interrupt delivered inside a warped spin, with both the
        instruction trace and a bus trace active: delivery timing,
        handler retires and every recorded event must match the
        per-step reference."""
        from repro.core.environment import ModuleTestEnvironment, TestCell

        env = ModuleTestEnvironment("DELAYIRQTRACE")
        env.add_test(
            TestCell(
                name="TEST_IRQ_DURING_SPIN_TRACED",
                source=IRQ_DURING_SPIN_SOURCE,
            )
        )
        image = env.build_image(
            "TEST_IRQ_DURING_SPIN_TRACED", SC88A, TARGET_GOLDEN
        ).image
        fast_platform = GoldenModel()
        fast_platform.record_bus_trace = True
        fast_session = ExecutionSession(fast_platform, SC88A)
        fast = fast_session.run(image)
        ref_platform = GoldenModel()
        ref_platform.record_bus_trace = True
        reference = ExecutionSession(
            ref_platform, SC88A, use_block_run=False
        ).run(image)
        assert strip(fast) == strip(reference)
        assert stripped_bus_trace(fast_platform) == (
            stripped_bus_trace(ref_platform)
        )
        assert fast.status is RunStatus.PASS
        # The engine really was on: spins warped while traced, and the
        # trace carries the synthesized spin retires.
        assert fast_session.cpu.ff_warps > 0
        assert fast_session.stats()["sb_fallback_steps"] == 0
