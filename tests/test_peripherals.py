"""Behavioural tests for all six peripherals."""

import pytest

from repro.soc.bus import BusError
from repro.soc.memorymap import NVM_PAGE_BYTES
from repro.soc.peripherals.gpio import Gpio
from repro.soc.peripherals.intc import InterruptController
from repro.soc.peripherals.nvm import (
    CMD_ERASE,
    CMD_PROG,
    NvmController,
    PROGRAM_CYCLES,
    make_nvm_layout,
)
from repro.soc.peripherals.timer import Timer, make_timer_layout
from repro.soc.peripherals.uart import RX_FIFO_DEPTH, Uart
from repro.soc.peripherals.watchdog import Watchdog


class TestUart:
    def enable(self, uart, loopback=True):
        value = 0b0111 | (0b10 if loopback else 0)
        # EN=1, LOOP=bit1, TXEN=bit2, RXEN=bit3 -> compute via fields
        ctrl = uart.layout.register_named("UART_CTRL")
        word = 0
        for name in ("EN", "TXEN", "RXEN") + (("LOOP",) if loopback else ()):
            word = ctrl.field_named(name).insert(word, 1)
        uart.write(0x00, word, 4)
        return value

    def test_transmit_captured(self):
        uart = Uart()
        self.enable(uart, loopback=False)
        for byte in b"Hi":
            uart.write(0x08, byte, 4)
        assert uart.transmitted_text() == "Hi"

    def test_loopback_reflects_to_rx(self):
        uart = Uart()
        self.enable(uart)
        uart.write(0x08, 0x41, 4)
        stat = uart.read(0x04, 4)
        assert stat & 0b10  # RXAVL
        assert uart.read(0x08, 4) == 0x41
        assert not uart.read(0x04, 4) & 0b10

    def test_disabled_uart_drops_tx(self):
        uart = Uart()
        uart.write(0x08, 0x41, 4)
        assert uart.tx_log == []

    def test_host_receive_respects_rxen(self):
        uart = Uart()
        uart.host_receive(0x31)
        assert not uart.rx_fifo  # receiver disabled
        self.enable(uart, loopback=False)
        uart.host_receive(0x31)
        assert uart.read(0x08, 4) == 0x31

    def test_overrun_flag(self):
        uart = Uart()
        self.enable(uart)
        for index in range(RX_FIFO_DEPTH + 1):
            uart.write(0x08, index, 4)
        assert uart.read(0x04, 4) & 0b100  # OVR

    def test_rx_interrupt(self):
        uart = Uart()
        ctrl = uart.layout.register_named("UART_CTRL")
        word = 0
        for name in ("EN", "TXEN", "RXEN", "LOOP", "RXIE"):
            word = ctrl.field_named(name).insert(word, 1)
        uart.write(0x00, word, 4)
        uart.write(0x08, 0x55, 4)
        uart.tick()
        assert uart.irq
        uart.read(0x08, 4)
        uart.tick()
        assert not uart.irq

    def test_word_access_required(self):
        uart = Uart()
        with pytest.raises(BusError):
            uart.read(0x00, 1)


class TestNvm:
    def start(self, nvm, page, cmd):
        ctrl = nvm.layout.register_named("NVM_CTRL")
        word = ctrl.field_named("PAGE").insert(0, page)
        word = ctrl.field_named("CMD").insert(word, cmd)
        word = ctrl.field_named("START").insert(word, 1)
        nvm.write(0x00, word, 4)

    def run_to_done(self, nvm):
        for _ in range(10):
            nvm.tick(PROGRAM_CYCLES)
            if not nvm.busy_cycles:
                return

    def test_program_page(self):
        nvm = NvmController(pages=32)
        nvm.write(0x08, 0, 4)           # NVM_ADDR
        nvm.write(0x0C, 0xCAFE0001, 4)  # NVM_DATA
        self.start(nvm, 3, CMD_PROG)
        assert nvm.read(0x04, 4) & 1  # BUSY
        self.run_to_done(nvm)
        stat = nvm.read(0x04, 4)
        assert stat & 0b10 and not stat & 1  # DONE, not BUSY
        assert nvm.page_bytes(3)[:4] == b"\x01\x00\xfe\xca"
        assert ("prog", 3) in nvm.operation_log

    def test_erase_page_fills_ff(self):
        nvm = NvmController(pages=32)
        self.start(nvm, 1, CMD_ERASE)
        self.run_to_done(nvm)
        assert nvm.page_bytes(1) == b"\xff" * NVM_PAGE_BYTES

    def test_data_autoincrement(self):
        nvm = NvmController()
        nvm.write(0x08, 0, 4)
        nvm.write(0x0C, 1, 4)
        nvm.write(0x0C, 2, 4)
        assert nvm.page_buffer[0] == 1
        assert nvm.page_buffer[4] == 2

    def test_bad_page_sets_error(self):
        nvm = NvmController(pages=32)
        layout = make_nvm_layout(page_pos=0, page_width=6)
        nvm_wide = NvmController(layout=layout, pages=32)  # 64 encodable
        self.start(nvm_wide, 40, CMD_PROG)  # page 40 >= 32
        assert nvm_wide.read(0x04, 4) & 0b100  # ERR

    def test_bad_command_sets_error(self):
        nvm = NvmController()
        self.start(nvm, 0, 3)
        assert nvm.read(0x04, 4) & 0b100

    def test_start_while_busy_is_error(self):
        nvm = NvmController()
        self.start(nvm, 0, CMD_PROG)
        self.start(nvm, 1, CMD_PROG)
        assert nvm.error

    def test_array_read_only_via_bus(self):
        nvm = NvmController()
        with pytest.raises(BusError):
            nvm.array.write(0, 1, 4)

    def test_done_raises_irq(self):
        nvm = NvmController()
        self.start(nvm, 0, CMD_PROG)
        self.run_to_done(nvm)
        assert nvm.irq

    def test_derivative_page_field_positions(self):
        # sc88c-style layout: PAGE at pos 1.
        layout = make_nvm_layout(page_pos=1, page_width=5)
        nvm = NvmController(layout=layout, pages=32)
        ctrl = layout.register_named("NVM_CTRL")
        word = ctrl.field_named("PAGE").insert(0, 5)
        word = ctrl.field_named("CMD").insert(word, CMD_PROG)
        word = ctrl.field_named("START").insert(word, 1)
        nvm.write(0x00, word, 4)
        self.run_to_done(nvm)
        assert ("prog", 5) in nvm.operation_log


class TestTimer:
    def test_counts_down_and_underflows(self):
        timer = Timer()
        timer.write(0x08, 10, 4)  # reload (primes count)
        timer.write(0x00, 0b01, 4)  # EN
        timer.tick(10 + 1)
        assert timer.underflows == 1
        assert timer.read(0x0C, 4) & 1  # OVF

    def test_oneshot_stops(self):
        timer = Timer()
        timer.write(0x08, 5, 4)
        timer.write(0x00, 0b101, 4)  # EN|ONESHOT
        timer.tick(100)
        assert timer.underflows == 1
        assert timer.field_value("TIM_CTRL", "EN") == 0

    def test_periodic_reloads(self):
        timer = Timer()
        timer.write(0x08, 4, 4)
        timer.write(0x00, 0b01, 4)
        timer.tick(20)
        assert timer.underflows == 4

    def test_irq_requires_ie(self):
        timer = Timer()
        timer.write(0x08, 2, 4)
        timer.write(0x00, 0b01, 4)  # EN only
        timer.tick(5)
        assert not timer.irq
        timer.write(0x00, 0b11, 4)  # EN|IE
        timer.tick(5)
        assert timer.irq

    def test_w1c_status(self):
        timer = Timer()
        timer.write(0x08, 1, 4)
        timer.write(0x00, 0b01, 4)
        timer.tick(3)
        assert timer.read(0x0C, 4) & 1
        timer.write(0x0C, 1, 4)  # W1C
        assert not timer.read(0x0C, 4) & 1

    def test_counter_width_respected(self):
        narrow = Timer(make_timer_layout(counter_width=8))
        narrow.write(0x08, 0x1FF, 4)  # masked to 8 bits
        assert narrow.read(0x04, 4) == 0xFF

    def test_disabled_timer_static(self):
        timer = Timer()
        timer.write(0x08, 5, 4)
        timer.tick(100)
        assert timer.read(0x04, 4) == 5


class TestIntc:
    def test_pending_and_priority(self):
        intc = InterruptController()
        intc.write(0x00, 0xFF, 4)  # enable all
        intc.raise_line(3)
        intc.raise_line(1)
        assert intc.pending_line() == 1  # lowest wins

    def test_masked_lines_ignored(self):
        intc = InterruptController()
        intc.write(0x00, 0b1000, 4)
        intc.raise_line(1)
        assert intc.pending_line() is None
        intc.raise_line(3)
        assert intc.pending_line() == 3

    def test_w1c_acknowledge(self):
        intc = InterruptController()
        intc.write(0x00, 0xFF, 4)
        intc.raise_line(2)
        intc.write(0x04, 0b100, 4)  # W1C
        assert intc.pending_line() is None

    def test_vector_register(self):
        intc = InterruptController()
        intc.write(0x00, 0xFF, 4)
        assert intc.read(0x08, 4) == 0
        intc.raise_line(5)
        value = intc.read(0x08, 4)
        assert value & 0xF == 5
        assert value >> 31


class TestGpio:
    def test_pin_respects_direction(self):
        gpio = Gpio()
        gpio.write(0x00, 0b11, 4)  # OUT
        assert gpio.pin(0) == 0  # DIR still input
        gpio.write(0x08, 0b01, 4)  # DIR pin0 out
        assert gpio.pin(0) == 1
        assert gpio.pin(1) == 0

    def test_out_history(self):
        gpio = Gpio()
        gpio.write(0x00, 1, 4)
        gpio.write(0x00, 3, 4)
        assert gpio.out_history == [1, 3]

    def test_input_injection(self):
        gpio = Gpio()
        gpio.drive_input(0xAB)
        assert gpio.read(0x04, 4) == 0xAB

    def test_input_register_read_only(self):
        gpio = Gpio()
        gpio.write(0x04, 0xFF, 4)  # ignored
        assert gpio.read(0x04, 4) == 0


class TestWatchdog:
    def arm(self, wdt, timeout=100):
        wdt.write(0x00, 1 | (timeout << 8), 4)

    def test_expires_without_service(self):
        wdt = Watchdog()
        self.arm(wdt, 50)
        wdt.tick(49)
        assert not wdt.expired
        wdt.tick(1)
        assert wdt.expired and wdt.irq

    def test_service_reloads(self):
        wdt = Watchdog()
        self.arm(wdt, 50)
        wdt.tick(40)
        wdt.write(0x04, 0xA5, 4)
        wdt.tick(40)
        assert not wdt.expired
        assert wdt.services == 1

    def test_wrong_key_ignored(self):
        wdt = Watchdog()
        self.arm(wdt, 50)
        wdt.tick(40)
        wdt.write(0x04, 0x11, 4)
        wdt.tick(20)
        assert wdt.expired

    def test_derivative_key(self):
        wdt = Watchdog(service_key=0x5A)
        self.arm(wdt, 50)
        wdt.tick(40)
        wdt.write(0x04, 0xA5, 4)  # old key: miss
        wdt.write(0x04, 0x5A, 4)  # new key: hit
        wdt.tick(40)
        assert not wdt.expired
        assert wdt.services == 1

    def test_disabled_never_expires(self):
        wdt = Watchdog()
        wdt.tick(10_000_000)
        assert not wdt.expired
