"""Template JIT tests (ISSUE 8).

The contract under test:

(a) **Compilation** — hot superblock chains (``sb.heat`` crossing
    ``JIT_THRESHOLD``) are promoted to generated Python functions with
    operands, branch targets and cycle costs baked in; idle spins and
    cold junk are declined; compiled chains live on the ``Superblock``
    in the shared digest-keyed registry.
(b) **Equivalence** — with ``use_jit=True`` (the default) every run
    retires byte-identical signature / instruction count / cycles /
    retire trace / bus trace to the ``use_jit=False`` superblock engine
    across **all six platforms**, on compute-heavy workloads where no
    closed-form warp applies, with ``jit_chains``/``jit_exec_steps``
    telemetry nonzero.
(c) **Invalidation** — self-modifying RAM code (never cached, never
    chained), SFR writes mid-chain (``cut_block`` via the re-read
    deadline probes), derivative swaps (distinct registry keys) and
    injected faults (``core/faults.py`` sites) all leave runs
    byte-identical to the reference engine; ``flush_chains`` force-drops
    compiled chains and the next hot run recompiles.
(d) **Registry bound** — the digest-keyed registry is LRU-bounded;
    evictions drop caches (and their chains) wholesale and are exposed
    via ``registry_stats()`` in ``stats()``.
"""

import pytest

from repro.assembler.assembler import Assembler
from repro.assembler.linker import Linker
from repro.core.faults import (
    ACTION_RAISE,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    SITE_SESSION_RUN,
)
from repro.core.targets import TARGET_GOLDEN
from repro.core.workloads import (
    compute_burn_test,
    make_compute_environment,
)
from repro.isa import decodecache
from repro.isa.decodecache import decode_cache_for, registry_stats
from repro.isa.jit import (
    JIT_THRESHOLD,
    compile_chain,
    trace_chain,
)
from repro.platforms import (
    ExecutionSession,
    GoldenModel,
    PLATFORM_CLASSES,
    RunStatus,
)
from repro.platforms.cpu import CpuCore
from repro.soc.derivatives import SC88A, SC88B
from repro.soc.device import PASS_MAGIC, SystemOnChip

MEMORY_MAP = SC88A.memory_map()


def link_source(source: str):
    obj = Assembler().assemble_source(source, "t.asm")
    return Linker(
        text_base=MEMORY_MAP.text_base, data_base=MEMORY_MAP.data_base
    ).link([obj])


def cache_for(image):
    rom = MEMORY_MAP.rom
    return decode_cache_for(image, rom.base, rom.base + rom.size)


def strip(result):
    """The comparable engine-visible outcome of a run."""
    return (
        result.status,
        result.signature,
        result.result_word,
        result.instructions,
        result.cycles,
        result.uart_output,
        result.done_pin,
        result.pass_pin,
        None
        if result.trace is None
        else [(t.pc, t.opcode, t.mnemonic, t.cycles) for t in result.trace],
    )


def direct_cpu(image, *, trace: bool = False) -> tuple[CpuCore, SystemOnChip]:
    soc = SystemOnChip(SC88A)
    soc.load_image(image)
    cpu = CpuCore(soc.bus, intc=soc.intc)
    cpu.decode_cache = cache_for(image)
    cpu.reset(image.entry, MEMORY_MAP.stack_top)
    if trace:
        cpu.enable_trace()
    return cpu, soc


ALU_LOOP_SOURCE = f"""\
_main:
    LOAD d2, 0x1234
    LOAD d3, 0
    LOAD d6, 400
loop:
    SHLI d4, d2, 13
    XOR d2, d2, d4
    SHRI d5, d2, 17
    XOR d2, d2, d5
    ADD d3, d3, d2
    ADDI d3, d3, 1
    DJNZ d6, loop
    LOAD d0, {PASS_MAGIC:#x}
    HALT
"""

SPIN_ONLY_SOURCE = f"""\
_main:
    LOAD d1, 200
spin:
    DJNZ d1, spin
    LOAD d0, {PASS_MAGIC:#x}
    HALT
"""


# ---------------------------------------------------------------------------
# (a) chain tracing + compilation
# ---------------------------------------------------------------------------

class TestChainCompiler:
    def test_djnz_loop_traces_to_cyclic_chain(self):
        image = link_source(ALU_LOOP_SOURCE)
        cache = cache_for(image)
        head = cache.block_at(image.symbol("loop"))
        traced = trace_chain(cache, head)
        assert traced is not None
        blocks, links = traced
        assert blocks[0] is head
        # The DJNZ taken edge closes the loop on the head: cyclic.
        assert links[-1] == "taken"

    def test_idle_spin_head_is_declined(self):
        image = link_source(SPIN_ONLY_SOURCE)
        cache = cache_for(image)
        spin = cache.block_at(image.symbol("spin"))
        assert spin.spin_reg >= 0
        assert trace_chain(cache, spin) is None
        assert compile_chain(cache, spin) is False

    def test_compile_installs_all_variants(self):
        image = link_source(ALU_LOOP_SOURCE)
        cache = cache_for(image)
        head = cache.block_at(image.symbol("loop"))
        assert compile_chain(cache, head) is True
        assert head.jit_u is not None
        assert head.jit_ot is not None
        assert head.jit_ow is not None
        assert cache.jit_chains == 1

    def test_heat_threshold_triggers_compile_during_run(self):
        image = link_source(ALU_LOOP_SOURCE)
        cache_for(image).flush_chains()  # registry is shared across tests
        cpu, _ = direct_cpu(image)
        cpu.run()
        assert cpu.halted
        assert cpu.regs.data[0] == PASS_MAGIC
        head = cpu.decode_cache.block_at(image.symbol("loop"))
        assert head.heat >= JIT_THRESHOLD
        assert head.jit_u is not None
        assert cpu.jit_chains == 1
        assert cpu.jit_exec_steps > 0

    def test_use_jit_false_never_compiles(self):
        image = link_source(ALU_LOOP_SOURCE)
        cache_for(image).flush_chains()  # registry is shared across tests
        cpu, _ = direct_cpu(image)
        cpu.use_jit = False
        cpu.run()
        assert cpu.halted
        head = cpu.decode_cache.block_at(image.symbol("loop"))
        assert head.jit_u is None
        assert cpu.jit_chains == 0
        assert cpu.jit_exec_steps == 0

    def test_compile_prememoises_successor_edges(self):
        image = link_source(ALU_LOOP_SOURCE)
        cache = cache_for(image)
        head = cache.block_at(image.symbol("loop"))
        assert compile_chain(cache, head) is True
        # Side exits retire inside the chain, so the compiler warms the
        # memo graph itself: both DJNZ edges must be populated.
        assert head.succ_taken is head
        assert head.succ_fall is not None
        assert head.succ_fall.start == head.terminator.next_pc


# ---------------------------------------------------------------------------
# (b) cross-platform equivalence + telemetry on compute-heavy workloads
# ---------------------------------------------------------------------------

class TestComputeEquivalenceAcrossPlatforms:
    @pytest.mark.parametrize(
        "platform_name", sorted(PLATFORM_CLASSES), ids=str
    )
    @pytest.mark.parametrize(
        "derivative", [SC88A, SC88B], ids=lambda d: d.name
    )
    def test_jit_matches_superblock_reference(
        self, platform_name, derivative
    ):
        """The acceptance property: compiled chains retire byte-identical
        signature, instruction count, cycles and retire trace vs the
        ``use_jit=False`` superblock engine on every platform, on the
        workload class where no closed-form warp applies."""
        platform_cls = PLATFORM_CLASSES[platform_name]
        env = make_compute_environment(compute_loops=(600,))
        tgt = TARGET_GOLDEN
        for cell_name in env.cells:
            image = env.build_image(cell_name, derivative, tgt).image
            jit_session = ExecutionSession(platform_cls(), derivative)
            jit = jit_session.run(image)
            reference = ExecutionSession(
                platform_cls(), derivative, use_jit=False
            ).run(image)
            assert strip(jit) == strip(reference), (
                platform_name,
                cell_name,
            )
            stats = jit_session.stats()
            assert stats["jit_exec_steps"] > 0, (platform_name, cell_name)

    def test_bus_trace_replay_is_identical(self):
        """A bus-trace-recording platform replays fetch/access events
        from inside the compiled body, byte-identical to the superblock
        engine's replay."""
        image = link_source(ALU_LOOP_SOURCE)
        for name in sorted(PLATFORM_CLASSES):
            cls = PLATFORM_CLASSES[name]
            jit_platform, ref_platform = cls(), cls()
            jit_platform.record_bus_trace = True
            ref_platform.record_bus_trace = True
            ExecutionSession(jit_platform, SC88A).run(image)
            ExecutionSession(ref_platform, SC88A, use_jit=False).run(image)
            assert list(jit_platform.last_bus_trace.raw()) == list(
                ref_platform.last_bus_trace.raw()
            ), name

    def test_stats_carry_jit_and_registry_telemetry(self):
        image = link_source(ALU_LOOP_SOURCE)
        session = ExecutionSession(GoldenModel(), SC88A)
        session.run(image)
        stats = session.stats()
        assert stats["jit_exec_steps"] > 0
        assert stats["registry_size"] >= 1
        assert stats["registry_evictions"] >= 0


# ---------------------------------------------------------------------------
# (c) invalidation lattice
# ---------------------------------------------------------------------------

SELF_MODIFYING_SOURCE = f"""\
_main:
    LOAD d6, {JIT_THRESHOLD * 3}
warm:
    ADDI d2, d2, 3
    XOR d3, d3, d2
    DJNZ d6, warm
    ;; patch the RAM literal, then run the patched code
    LOAD d1, {PASS_MAGIC:#x}
    STORE [patch_me + 4], d1
    JMP ram_code
.SECTION data
ram_code:
patch_me:
    LOAD d0, 0
    HALT
"""

SFR_WRITE_LOOP_SOURCE = f"""\
;; every iteration writes a timer SFR: peripheral rescheduling cuts the
;; block deadline mid-chain, exercising the per-boundary probes
.INCLUDE Globals.inc
_main:
    LOAD d6, 300
    LOAD a4, TIM_RELOAD_ADDR
sfr_loop:
    ADDI d2, d2, 7
    XOR d3, d3, d2
    ST.W [a4], d2
    ADDI d3, d3, 1
    DJNZ d6, sfr_loop
    JMP Base_Report_Pass
"""


class TestInvalidation:
    def test_self_modifying_ram_code(self):
        """RAM code is never cached or chained; the JIT run sees the
        patched bytes exactly like the reference."""
        image = link_source(SELF_MODIFYING_SOURCE)
        jit = ExecutionSession(GoldenModel(), SC88A)
        ref = ExecutionSession(GoldenModel(), SC88A, use_jit=False)
        jit_result = jit.run(image)
        ref_result = ref.run(image)
        assert strip(jit_result) == strip(ref_result)
        assert jit_result.signature == PASS_MAGIC
        assert jit.stats()["jit_exec_steps"] > 0

    @pytest.mark.parametrize(
        "platform_name", sorted(PLATFORM_CLASSES), ids=str
    )
    def test_sfr_write_mid_chain(self, platform_name):
        """An SFR store inside the hot chain reschedules the event
        horizon (``cut_block``); the re-read deadline probes must stop
        the compiled body at reference-exact points on all platforms."""
        from repro.core.environment import ModuleTestEnvironment, TestCell

        env = ModuleTestEnvironment("JITSFR")
        env.add_test(
            TestCell(name="TEST_SFR_CHAIN", source=SFR_WRITE_LOOP_SOURCE)
        )
        image = env.build_image("TEST_SFR_CHAIN", SC88A, TARGET_GOLDEN).image
        cls = PLATFORM_CLASSES[platform_name]
        jit = ExecutionSession(cls(), SC88A).run(image)
        ref = ExecutionSession(cls(), SC88A, use_jit=False).run(image)
        assert strip(jit) == strip(ref), platform_name

    def test_derivative_swap_uses_distinct_caches(self):
        """Each derivative resolves its own registry entry, so chains
        compiled against one memory map are never replayed against
        another."""
        env = make_compute_environment(compute_loops=(400,))
        cell = next(iter(env.cells))
        caches = {}
        for derivative in (SC88A, SC88B):
            image = env.build_image(cell, derivative, TARGET_GOLDEN).image
            session = ExecutionSession(GoldenModel(), derivative)
            result = session.run(image)
            assert result.status is RunStatus.PASS, derivative.name
            ref = ExecutionSession(
                GoldenModel(), derivative, use_jit=False
            ).run(image)
            assert strip(result) == strip(ref), derivative.name
            caches[derivative.name] = session.cpu.decode_cache
        assert caches["sc88a"] is not caches["sc88b"]

    def test_injected_fault_then_clean_rerun(self):
        """A ``core/faults.py`` session-run fault aborts the session;
        the rebuilt session re-runs byte-identical to the reference
        (mirroring the scheduler's retry ladder)."""
        plan = FaultPlan(
            specs=[
                FaultSpec(
                    site=SITE_SESSION_RUN, action=ACTION_RAISE, times=1
                )
            ]
        )
        injector = FaultInjector(plan)
        image = link_source(ALU_LOOP_SOURCE)
        session = ExecutionSession(GoldenModel(), SC88A, injector=injector)
        with pytest.raises(InjectedFault):
            session.run(image)
        # Scheduler policy: a failed attempt discards the session.
        retry = ExecutionSession(GoldenModel(), SC88A, injector=injector)
        result = retry.run(image)
        ref = ExecutionSession(GoldenModel(), SC88A, use_jit=False).run(
            image
        )
        assert strip(result) == strip(ref)
        assert retry.stats()["jit_exec_steps"] > 0

    def test_flush_chains_force_drops_and_recompiles(self):
        image = link_source(ALU_LOOP_SOURCE)
        cpu, _ = direct_cpu(image)
        cpu.run()
        cache = cpu.decode_cache
        head = cache.block_at(image.symbol("loop"))
        assert head.jit_u is not None
        dropped = cache.flush_chains()
        assert dropped >= 1
        assert head.jit_u is None and head.jit_ot is None
        assert head.jit_ow is None and head.heat == 0
        assert cache.jit_chains == 0
        # The next hot run (on the same shared cache) recompiles and
        # still produces the correct result.
        cpu2, _ = direct_cpu(image)
        cpu2.run()
        assert cpu2.halted
        assert cpu2.regs.data[0] == PASS_MAGIC
        assert head.jit_u is not None
        assert cpu2.jit_chains == 1
        assert cpu2.jit_exec_steps > 0


# ---------------------------------------------------------------------------
# (d) registry LRU bound
# ---------------------------------------------------------------------------

class TestRegistryBound:
    def test_lru_evicts_oldest_and_counts(self, monkeypatch):
        monkeypatch.setattr(decodecache, "_REGISTRY", {})
        monkeypatch.setattr(decodecache, "_REGISTRY_LIMIT", 2)
        monkeypatch.setattr(decodecache, "_REGISTRY_EVICTIONS", 0)
        rom = MEMORY_MAP.rom
        images = [
            link_source(
                f"_main:\n    LOAD d0, {PASS_MAGIC + n:#x}\n    HALT\n"
            )
            for n in range(3)
        ]
        first = decode_cache_for(images[0], rom.base, rom.base + rom.size)
        decode_cache_for(images[1], rom.base, rom.base + rom.size)
        # Touch the first entry again: it becomes most-recently-used.
        assert (
            decode_cache_for(images[0], rom.base, rom.base + rom.size)
            is first
        )
        # A third digest evicts the least-recently-used (images[1]).
        decode_cache_for(images[2], rom.base, rom.base + rom.size)
        stats = registry_stats()
        assert stats["registry_size"] == 2
        assert stats["registry_evictions"] == 1
        assert (
            decode_cache_for(images[0], rom.base, rom.base + rom.size)
            is first
        )

    def test_same_digest_shares_cache_and_chains(self):
        image = link_source(ALU_LOOP_SOURCE)
        first = ExecutionSession(GoldenModel(), SC88A)
        first.run(image)
        second = ExecutionSession(GoldenModel(), SC88A)
        second.run(image)
        assert first.cpu.decode_cache is second.cpu.decode_cache
        # The second session reuses the chain the first one compiled.
        assert second.cpu.jit_chains == 0
        assert second.cpu.jit_exec_steps > 0
