"""Fault-tolerant regression execution: supervision, quarantine, chaos.

Drives seeded :class:`~repro.core.faults.FaultPlan`\\ s through the
serial / thread / process / batch executors and asserts the contract
the supervision layer promises: the matrix always completes, healthy
cells keep byte-identical verdicts vs a fault-free run, and faulty
cells surface as retried / degraded / quarantined bookkeeping instead
of raw tracebacks.
"""

import pickle

import pytest

from repro.core.faults import (
    ACTION_CORRUPT,
    ACTION_HANG,
    ACTION_KILL,
    ACTION_RAISE,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    SITE_BATCH_PEEL,
    SITE_CACHE_READ,
    SITE_CACHE_WRITE,
    SITE_SESSION_RUN,
    SITE_WORKER_BOOT,
    corrupt_bytes,
)
from repro.core.scheduler import RegressionScheduler, ResultCache, result_to_payload
from repro.core.targets import TARGET_GOLDEN
from repro.core.workloads import make_nvm_environment, make_uart_environment
from repro.platforms import RunStatus, make_platform
from repro.platforms.session import BatchSession
from repro.soc.derivatives import SC88A


def make_environments():
    return {
        "NVM": make_nvm_environment(2),
        "UART": make_uart_environment(1),
    }


def payload_matrix(report):
    """(env, cell, target) -> full serialized result, for byte-identity
    comparisons across executors and fault plans."""
    return {
        key: result_to_payload(result)
        for key, result in report.results.items()
    }


@pytest.fixture(scope="module")
def baseline_report():
    """One fault-free serial run of the full matrix to compare against."""
    return RegressionScheduler().run_system(make_environments(), SC88A)


def assert_healthy_cells_identical(report, baseline, faulty_targets=()):
    base = payload_matrix(baseline)
    got = payload_matrix(report)
    assert set(got) == set(base)
    for key, payload in got.items():
        if key[2] in faulty_targets:
            continue
        assert payload == base[key], f"healthy cell {key} diverged"


# --------------------------------------------------------------------------
# the injector itself
# --------------------------------------------------------------------------

class TestFaultInjector:
    def test_plan_validates_sites_and_actions(self):
        with pytest.raises(ValueError):
            FaultSpec(site="nonsense", action=ACTION_RAISE)
        with pytest.raises(ValueError):
            FaultSpec(site=SITE_SESSION_RUN, action="explode")

    def test_plan_is_picklable(self):
        plan = FaultPlan(
            seed=7,
            specs=[
                FaultSpec(site=SITE_WORKER_BOOT, action=ACTION_KILL,
                          match="rtl#0"),
            ],
        )
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_injected_fault_survives_pickling(self):
        fault = InjectedFault(SITE_WORKER_BOOT, "rtl#0")
        clone = pickle.loads(pickle.dumps(fault))
        assert clone.site == fault.site
        assert clone.key == fault.key
        assert str(clone) == str(fault)

    def test_after_times_window(self):
        plan = FaultPlan(specs=[
            FaultSpec(site=SITE_SESSION_RUN, action=ACTION_RAISE,
                      after=1, times=2),
        ])
        injector = FaultInjector(plan)
        injector.fire(SITE_SESSION_RUN, "golden#run0")  # hit 1: armed
        with pytest.raises(InjectedFault):
            injector.fire(SITE_SESSION_RUN, "golden#run1")  # hit 2
        with pytest.raises(InjectedFault):
            injector.fire(SITE_SESSION_RUN, "golden#run2")  # hit 3
        injector.fire(SITE_SESSION_RUN, "golden#run3")  # window spent

    def test_match_filters_and_does_not_advance_counter(self):
        plan = FaultPlan(specs=[
            FaultSpec(site=SITE_SESSION_RUN, action=ACTION_RAISE,
                      match="rtl"),
        ])
        injector = FaultInjector(plan)
        for _ in range(5):
            injector.fire(SITE_SESSION_RUN, "golden#run0")
        with pytest.raises(InjectedFault):
            injector.fire(SITE_SESSION_RUN, "rtl#run0")
        injector.fire(SITE_SESSION_RUN, "rtl#run1")

    def test_sites_are_independent(self):
        plan = FaultPlan(specs=[
            FaultSpec(site=SITE_CACHE_WRITE, action=ACTION_RAISE),
        ])
        injector = FaultInjector(plan)
        injector.fire(SITE_SESSION_RUN, "x")
        injector.fire(SITE_WORKER_BOOT, "x")
        with pytest.raises(InjectedFault):
            injector.fire(SITE_CACHE_WRITE, "x")

    def test_kill_degrades_to_raise_outside_worker(self):
        plan = FaultPlan(specs=[
            FaultSpec(site=SITE_WORKER_BOOT, action=ACTION_KILL),
        ])
        injector = FaultInjector(plan)
        # In the main process this must not SIGKILL the test runner.
        with pytest.raises(InjectedFault):
            injector.fire(SITE_WORKER_BOOT, "rtl#0")

    def test_hang_uses_injectable_sleep(self):
        slept = []
        plan = FaultPlan(specs=[
            FaultSpec(site=SITE_SESSION_RUN, action=ACTION_HANG,
                      hang_seconds=12.5),
        ])
        injector = FaultInjector(plan, sleep=slept.append)
        injector.fire(SITE_SESSION_RUN, "golden#run0")
        assert slept == [12.5]
        assert injector.fired == [
            (SITE_SESSION_RUN, "golden#run0", ACTION_HANG)
        ]

    def test_corruption_is_deterministic_per_seed(self):
        data = bytes(range(64))
        a = corrupt_bytes(data, 1, SITE_CACHE_READ, "k", 4)
        b = corrupt_bytes(data, 1, SITE_CACHE_READ, "k", 4)
        c = corrupt_bytes(data, 2, SITE_CACHE_READ, "k", 4)
        assert a == b
        assert a != data
        assert c != a
        assert corrupt_bytes(b"", 1, SITE_CACHE_READ, "k", 4) != b""


# --------------------------------------------------------------------------
# supervised executors
# --------------------------------------------------------------------------

class TestSerialSupervision:
    def test_transient_fault_is_retried(self, baseline_report):
        plan = FaultPlan(specs=[
            FaultSpec(site=SITE_SESSION_RUN, action=ACTION_RAISE,
                      match="rtl", times=1),
        ])
        report = RegressionScheduler(
            fault_plan=plan, sleep=lambda _s: None
        ).run_system(make_environments(), SC88A)
        assert report.retried_runs >= 1
        assert report.quarantined_runs == 0
        assert_healthy_cells_identical(report, baseline_report)

    def test_persistent_fault_quarantines_only_its_cells(
        self, baseline_report
    ):
        plan = FaultPlan(specs=[
            FaultSpec(site=SITE_SESSION_RUN, action=ACTION_RAISE,
                      match="rtl", times=999),
        ])
        report = RegressionScheduler(
            fault_plan=plan, retries=1, sleep=lambda _s: None
        ).run_system(make_environments(), SC88A)
        assert report.total_runs == baseline_report.total_runs
        rtl_cells = [
            result
            for key, result in report.results.items()
            if key[2] == "rtl"
        ]
        assert rtl_cells and all(
            r.status is RunStatus.FAULT
            and r.fault_reason.startswith("quarantined:")
            for r in rtl_cells
        )
        assert report.quarantined_runs == len(rtl_cells)
        assert_healthy_cells_identical(
            report, baseline_report, faulty_targets={"rtl"}
        )
        assert "quarantined" in report.summary()

    def test_quarantined_cells_do_not_pollute_divergences(self):
        plan = FaultPlan(specs=[
            FaultSpec(site=SITE_SESSION_RUN, action=ACTION_RAISE,
                      match="rtl", times=999),
        ])
        report = RegressionScheduler(
            fault_plan=plan, retries=0, sleep=lambda _s: None
        ).run_environment(make_nvm_environment(1), SC88A)
        # The quarantine is an infrastructure fault, not an rtl bug.
        assert report.suspect_platforms() == {}
        assert not report.clean  # but the fault is still surfaced

    def test_zero_overhead_wiring_when_disabled(self):
        scheduler = RegressionScheduler()
        assert scheduler._injector is None
        report = scheduler.run_environment(make_nvm_environment(1), SC88A)
        assert report.retried_runs == 0
        assert report.quarantined_runs == 0
        assert report.degraded_runs == 0


class TestPooledSupervision:
    def test_thread_worker_exception_does_not_abort_matrix(
        self, baseline_report
    ):
        # The original pool.map semantics aborted every payload on the
        # first worker exception; supervised futures must not.
        plan = FaultPlan(specs=[
            FaultSpec(site=SITE_WORKER_BOOT, action=ACTION_RAISE,
                      match="rtl#0", times=1),
        ])
        report = RegressionScheduler(
            jobs=3, executor="thread", fault_plan=plan,
            backoff_base=0.001,
        ).run_system(make_environments(), SC88A)
        assert report.retried_runs >= 1
        assert report.quarantined_runs == 0
        assert_healthy_cells_identical(report, baseline_report)

    def test_thread_persistent_fault_quarantines_per_cell(
        self, baseline_report
    ):
        plan = FaultPlan(specs=[
            FaultSpec(site=SITE_WORKER_BOOT, action=ACTION_RAISE,
                      match="rtl#", times=999),
        ])
        report = RegressionScheduler(
            jobs=2, executor="thread", fault_plan=plan, retries=1,
            backoff_base=0.001,
        ).run_system(make_environments(), SC88A)
        rtl_cells = [
            result
            for key, result in report.results.items()
            if key[2] == "rtl"
        ]
        assert rtl_cells and all(
            r.status is RunStatus.FAULT for r in rtl_cells
        )
        assert_healthy_cells_identical(
            report, baseline_report, faulty_targets={"rtl"}
        )

    def test_process_worker_kill_recovers(self, baseline_report):
        # One worker SIGKILLed on its first attempt: the pool breaks,
        # is rebuilt, unfinished payloads requeue, the retry (attempt
        # key no longer matches) succeeds — nothing quarantined.
        plan = FaultPlan(specs=[
            FaultSpec(site=SITE_WORKER_BOOT, action=ACTION_KILL,
                      match="rtl#0", times=1),
        ])
        report = RegressionScheduler(
            jobs=2, executor="process", fault_plan=plan,
            backoff_base=0.001,
        ).run_system(make_environments(), SC88A)
        assert report.total_runs == baseline_report.total_runs
        assert report.quarantined_runs == 0
        assert_healthy_cells_identical(report, baseline_report)

    def test_process_hang_past_run_timeout_is_reclaimed(
        self, baseline_report
    ):
        plan = FaultPlan(specs=[
            FaultSpec(site=SITE_WORKER_BOOT, action=ACTION_HANG,
                      match="gatelevel#0", times=1, hang_seconds=5.0),
        ])
        report = RegressionScheduler(
            jobs=2, executor="process", fault_plan=plan,
            run_timeout=0.3, backoff_base=0.001,
        ).run_system(make_environments(), SC88A)
        assert report.retried_runs >= 1
        assert report.quarantined_runs == 0
        assert_healthy_cells_identical(report, baseline_report)


class TestBatchDegradation:
    def test_lockstep_fault_degrades_not_aborts(self, baseline_report):
        plan = FaultPlan(specs=[
            FaultSpec(site=SITE_SESSION_RUN, action=ACTION_RAISE,
                      times=1),
        ])
        report = RegressionScheduler(
            executor="batch", fault_plan=plan
        ).run_system(make_environments(), SC88A)
        assert report.total_runs == baseline_report.total_runs
        assert report.degraded_runs >= 1
        assert report.quarantined_runs == 0
        assert_healthy_cells_identical(report, baseline_report)
        assert "degraded" in report.summary()

    def test_run_batch_never_raises_and_quarantines_last(self):
        # Every session attempt fails: the degradation ladder must
        # bottom out in synthesized FAULT verdicts, not an exception.
        plan = FaultPlan(specs=[
            FaultSpec(site=SITE_SESSION_RUN, action=ACTION_RAISE,
                      times=9999),
        ])
        injector = FaultInjector(plan)
        batch = BatchSession(
            SC88A,
            [make_platform("golden"), make_platform("rtl")],
            injector=injector,
        )
        env = make_nvm_environment(1)
        artifacts = env.build_image("TEST_NVM_PAGE_001", SC88A, TARGET_GOLDEN)
        results = batch.run_batch(artifacts.image)
        assert len(results) == 2
        for lane, result in zip(batch.last_lanes, results):
            assert lane.degraded and lane.quarantined
            assert result.status is RunStatus.FAULT
            assert result.fault_reason.startswith("quarantined:")
        assert batch.stats()["degraded_lanes"] == 2

    def test_peel_fault_degrades_lane_to_identical_scalar_run(self):
        # A fault during peel servicing demotes the lane to a
        # from-reset scalar run whose verdict is byte-identical.
        env = make_nvm_environment(1)
        artifacts = env.build_image("TEST_NVM_PAGE_001", SC88A, TARGET_GOLDEN)
        stimuli = [None, {SC88A.memory_map().ram.base: 0xDEAD_BEEF}]
        plans = [
            None,
            FaultPlan(specs=[
                FaultSpec(site=SITE_BATCH_PEEL, action=ACTION_RAISE,
                          times=1),
            ]),
        ]
        outcomes = []
        for plan in plans:
            batch = BatchSession(
                SC88A,
                [make_platform("golden"), make_platform("golden")],
                injector=(
                    FaultInjector(plan) if plan is not None else None
                ),
            )
            results = batch.run_batch(artifacts.image, stimuli=stimuli)
            outcomes.append(
                [result_to_payload(r) for r in results]
            )
        clean, chaotic = outcomes
        assert chaotic == clean

    def test_invalid_arguments_still_raise(self):
        # The degradation ladder must not swallow caller errors.
        env = make_nvm_environment(1)
        artifacts = env.build_image("TEST_NVM_PAGE_001", SC88A, TARGET_GOLDEN)
        batch = BatchSession(SC88A, [make_platform("golden")])
        with pytest.raises(ValueError, match="outside RAM"):
            batch.run_batch(artifacts.image, stimuli=[{0x10: 1}])
        with pytest.raises(ValueError, match="lanes"):
            batch.run_batch(artifacts.image, stimuli=[None, None])


# --------------------------------------------------------------------------
# cache integrity
# --------------------------------------------------------------------------

class TestCacheIntegrity:
    def run_once(self, cache):
        return RegressionScheduler(cache=cache).run_environment(
            make_nvm_environment(1), SC88A
        )

    def test_corrupt_entry_counted_and_quarantined_aside(self, tmp_path):
        cache = ResultCache(tmp_path)
        self.run_once(cache)
        victims = sorted(tmp_path.glob("*.json"))[:2]
        for path in victims:
            path.write_bytes(
                corrupt_bytes(path.read_bytes(), 0, "disk", path.name, 8)
            )
        cache = ResultCache(tmp_path)
        report = self.run_once(cache)
        assert cache.corrupt == 2
        assert report.clean
        # The bad files were renamed aside, not left to re-fail.
        assert len(list(tmp_path.glob("*.corrupt"))) == 2
        cache = ResultCache(tmp_path)
        self.run_once(cache)
        assert cache.corrupt == 0

    def test_checksum_mismatch_is_not_a_clean_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = self.run_once(cache).results.popitem()[1]
        key = next(iter(tmp_path.glob("*.json"))).stem
        fresh = ResultCache(tmp_path)
        assert fresh.get(key) is not None
        assert fresh.corrupt == 0
        # Flip payload bytes under the checksum.
        path = tmp_path / f"{key}.json"
        fresh.put(key, result)
        body = path.read_bytes().replace(b'status', b'sTatus', 1)
        path.write_bytes(body)
        probe = ResultCache(tmp_path)
        assert probe.get(key) is None
        assert probe.corrupt == 1
        assert probe.misses == 0

    def test_injected_read_corruption_reexecutes(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = self.run_once(cache)
        plan = FaultPlan(specs=[
            FaultSpec(site=SITE_CACHE_READ, action=ACTION_CORRUPT,
                      times=2),
        ])
        cache = ResultCache(tmp_path)
        warm = RegressionScheduler(
            cache=cache, fault_plan=plan
        ).run_environment(make_nvm_environment(1), SC88A)
        assert cache.corrupt == 2
        assert warm.executed_runs == 2
        assert warm.cached_runs == cold.total_runs - 2
        assert payload_matrix(warm) == payload_matrix(cold)

    def test_write_failure_degrades_to_cold_cache(self, tmp_path):
        plan = FaultPlan(specs=[
            FaultSpec(site=SITE_CACHE_WRITE, action=ACTION_RAISE,
                      times=1),
        ])
        cache = ResultCache(tmp_path)
        scheduler = RegressionScheduler(cache=cache, fault_plan=plan)
        env = make_nvm_environment(1)
        cold = scheduler.run_environment(env, SC88A)
        assert cold.executed_runs == cold.total_runs
        assert cache.write_errors == 1
        warm = scheduler.run_environment(env, SC88A)
        # The one unwritten verdict re-executes; the rest are warm.
        assert warm.executed_runs == 1
        assert warm.cached_runs == warm.total_runs - 1


# --------------------------------------------------------------------------
# the acceptance chaos plan
# --------------------------------------------------------------------------

CHAOS_PLAN = FaultPlan(
    seed=42,
    specs=[
        # Kill one process-pool worker persistently: rtl cells must end
        # up quarantined, never aborting the matrix.  (Outside a worker
        # process the kill degrades to a contained raise.)
        FaultSpec(site=SITE_WORKER_BOOT, action=ACTION_KILL,
                  match="rtl#", times=999),
        # Hang one run past --run-timeout; its retry succeeds.
        FaultSpec(site=SITE_WORKER_BOOT, action=ACTION_HANG,
                  match="gatelevel#0", times=1, hang_seconds=2.0),
    ],
)


class TestChaosAcceptance:
    @pytest.mark.parametrize("executor,jobs", [
        ("serial", 1),
        ("thread", 2),
        ("process", 2),
    ])
    def test_chaos_matrix_completes_everywhere(
        self, executor, jobs, baseline_report, tmp_path
    ):
        cache = ResultCache(tmp_path / executor)
        report = RegressionScheduler(
            jobs=jobs,
            executor=executor,
            cache=cache,
            fault_plan=CHAOS_PLAN,
            run_timeout=0.3,
            retries=1,
            backoff_base=0.001,
        ).run_system(make_environments(), SC88A)
        assert report.total_runs == baseline_report.total_runs
        faulty = {"rtl"} if executor != "serial" else set()
        # worker-boot only fires on pooled executors; serially the
        # whole plan is dormant and the run must be untouched.
        for key, result in report.results.items():
            if key[2] in faulty:
                assert result.status is RunStatus.FAULT
                assert result.fault_reason.startswith("quarantined:")
            else:
                assert result.status is not RunStatus.FAULT
        assert_healthy_cells_identical(
            report, baseline_report, faulty_targets=faulty
        )
        rtl_cells = sum(1 for key in report.results if key[2] == "rtl")
        if faulty:
            assert report.quarantined_runs == rtl_cells
            assert report.retried_runs >= 1
        # Quarantined verdicts must not be cached: a warm fault-free
        # re-run executes exactly the previously-quarantined cells.
        warm = RegressionScheduler(
            jobs=1, executor="serial",
            cache=ResultCache(tmp_path / executor),
        ).run_system(make_environments(), SC88A)
        assert warm.executed_runs == (rtl_cells if faulty else 0)
        assert_healthy_cells_identical(warm, baseline_report)
