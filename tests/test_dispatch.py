"""Execution-core dispatch + event-horizon scheduling tests (ISSUE 3).

Four properties the tentpole hangs on:

(a) executor-table dispatch retires byte-identical
    ``(signature, cycles, trace, ...)`` to the reference ``if/elif``
    chain, and the block-run/event-horizon session loop retires
    byte-identical results to the per-step/per-tick loop — across the
    example suites (timer overflow IRQ, watchdog expiry, UART output)
    on golden and RTL;
(b) batched peripheral ticking is *linear*: ``tick(a); tick(b)`` equals
    ``tick(a + b)``, and the per-peripheral ``event_horizon`` distances
    predict the first observable event exactly;
(c) probes and peripheral register accesses interleaved mid-run settle
    the deferred cycle debt first, so observed state is never stale;
(d) the byte/halfword memory micro-ops (``LD.B/LD.H/ST.B/ST.H``)
    zero-extend/truncate correctly on both the direct-buffer fast path
    and the traced bus path.
"""

import pytest

from repro.assembler.assembler import Assembler
from repro.assembler.linker import Linker
from repro.core.workloads import (
    make_datapath_environment,
    make_nvm_environment,
    make_timer_environment,
    make_uart_environment,
)
from repro.core.targets import TARGET_GOLDEN, TARGET_RTL
from repro.isa.decodecache import (
    EXECUTORS,
    MEM_LD_B,
    MEM_LD_H,
    MEM_ST_B,
    MEM_ST_H,
    decode_cache_for,
)
from repro.isa.instructions import Opcode
from repro.platforms import (
    ExecutionSession,
    GoldenModel,
    RtlSim,
    RunStatus,
)
from repro.platforms.cpu import CpuCore
from repro.soc.derivatives import SC88A, SC88B
from repro.soc.device import PASS_MAGIC, SystemOnChip
from repro.soc.peripherals.nvm import CMD_PROG, NvmController, PROGRAM_CYCLES
from repro.soc.peripherals.timer import Timer
from repro.soc.peripherals.uart import Uart
from repro.soc.peripherals.watchdog import Watchdog

MEMORY_MAP = SC88A.memory_map()


def link_source(source: str):
    obj = Assembler().assemble_source(source, "t.asm")
    return Linker(
        text_base=MEMORY_MAP.text_base, data_base=MEMORY_MAP.data_base
    ).link([obj])


def strip(result):
    """The comparable engine-visible outcome of a run."""
    return (
        result.status,
        result.signature,
        result.result_word,
        result.instructions,
        result.cycles,
        result.uart_output,
        result.done_pin,
        result.pass_pin,
        None
        if result.trace is None
        else [(t.pc, t.opcode, t.mnemonic, t.cycles) for t in result.trace],
    )


def reference_session(platform, derivative) -> ExecutionSession:
    """The pre-dispatch engine: ``if/elif`` chain on every retire, one
    peripheral walk per instruction."""
    session = ExecutionSession(platform, derivative, use_block_run=False)
    session.cpu.use_exec_table = False
    return session


ENVIRONMENT_FACTORIES = [
    lambda: make_nvm_environment(2),
    lambda: make_uart_environment(1),
    lambda: make_timer_environment(),
    lambda: make_datapath_environment(1),
]


# ---------------------------------------------------------------------------
# property (a): table dispatch + event horizons vs per-step/per-tick
# ---------------------------------------------------------------------------

class TestEngineEquivalence:
    @pytest.mark.parametrize("make_env", ENVIRONMENT_FACTORIES)
    @pytest.mark.parametrize(
        "tgt, platform_cls",
        [(TARGET_GOLDEN, GoldenModel), (TARGET_RTL, RtlSim)],
        ids=["golden", "rtl"],
    )
    @pytest.mark.parametrize(
        "derivative", [SC88A, SC88B], ids=lambda d: d.name
    )
    def test_new_engine_matches_reference(
        self, make_env, tgt, platform_cls, derivative
    ):
        env = make_env()
        for cell_name in env.cells:
            image = env.build_image(cell_name, derivative, tgt).image
            fast = ExecutionSession(platform_cls(), derivative).run(image)
            reference = reference_session(platform_cls(), derivative).run(
                image
            )
            assert strip(fast) == strip(reference), cell_name
            assert fast.status is RunStatus.PASS

    def test_block_run_bus_trace_identical(self):
        """The event-horizon loop records the same bus access stream
        (fetch replay included) as the per-step loop."""
        env = make_timer_environment()
        image = env.build_image("TEST_TIMER_IRQ", SC88A, TARGET_GOLDEN).image
        traces = []
        for use_block in (True, False):
            platform = GoldenModel()
            platform.record_bus_trace = True
            session = ExecutionSession(
                platform, SC88A, use_block_run=use_block
            )
            result = session.run(image)
            assert result.passed
            traces.append(platform.last_bus_trace.raw())
        assert traces[0] == traces[1]

    def test_executor_table_covers_every_opcode(self):
        assert set(EXECUTORS) == {int(op) for op in Opcode}

    def test_run_respects_cycle_budget_and_instruction_limit(self):
        image = link_source(
            "_main:\nloop:\n    ADDI d2, d2, 1\n    JMP loop\n"
        )
        soc = SystemOnChip(SC88A)
        soc.load_image(image)
        cpu = CpuCore(soc.bus, intc=soc.intc)
        rom = MEMORY_MAP.rom
        cpu.decode_cache = decode_cache_for(image, rom.base, rom.end)
        cpu.reset(image.entry, MEMORY_MAP.stack_top)

        consumed = cpu.run(cycle_budget=10)
        # Stops at the first retire boundary at/after the budget.
        assert 10 <= consumed <= 12
        before = cpu.instructions_retired
        cpu.run(instruction_limit=before + 5)
        assert cpu.instructions_retired == before + 5


# ---------------------------------------------------------------------------
# property (b): tick linearity + exact event horizons
# ---------------------------------------------------------------------------

def make_timer(reload=9, oneshot=False, ie=True) -> Timer:
    timer = Timer()
    timer.write(0x08, reload, 4)  # reload primes the counter
    ctrl = 0b001 | (0b010 if ie else 0) | (0b100 if oneshot else 0)
    timer.write(0x00, ctrl, 4)
    return timer


class TestTickLinearity:
    @pytest.mark.parametrize("total", [1, 5, 10, 37, 200])
    @pytest.mark.parametrize("chunk", [1, 3, 7])
    def test_timer_chunked_equals_batched(self, total, chunk):
        batched = make_timer()
        chunked = make_timer()
        batched.tick(total)
        remaining = total
        while remaining:
            step = min(chunk, remaining)
            chunked.tick(step)
            remaining -= step
        assert batched.values == chunked.values
        assert batched.underflows == chunked.underflows
        assert batched.irq == chunked.irq

    @pytest.mark.parametrize("total", [1, 49, 50, 51, 120])
    def test_watchdog_chunked_equals_batched(self, total):
        def make_wdt():
            wdt = Watchdog()
            wdt.write(0x00, (50 << 8) | 1, 4)  # EN, TIMEOUT=50
            return wdt

        batched, chunked = make_wdt(), make_wdt()
        batched.tick(total)
        for _ in range(total):
            chunked.tick(1)
        assert batched.values == chunked.values
        assert batched.expired == chunked.expired
        assert batched.irq == chunked.irq

    def test_nvm_chunked_equals_batched(self):
        def make_busy_nvm():
            nvm = NvmController()
            nvm.write(0x08, 0, 4)  # NVM_ADDR
            nvm.write(0x0C, 0xDEAD_BEEF, 4)  # page buffer word
            ctrl = (CMD_PROG << 16) | (1 << 31) | 3  # page 3, START
            nvm.write(0x00, ctrl, 4)
            return nvm

        batched, chunked = make_busy_nvm(), make_busy_nvm()
        batched.tick(PROGRAM_CYCLES + 5)
        for _ in range(PROGRAM_CYCLES + 5):
            chunked.tick(1)
        assert batched.done and chunked.done
        assert bytes(batched.array.data) == bytes(chunked.array.data)
        assert batched.operation_log == chunked.operation_log


class TestEventHorizons:
    def test_timer_horizon_predicts_first_irq_exactly(self):
        per_cycle = make_timer(reload=13)
        cycles_to_irq = 0
        while not per_cycle.irq:
            per_cycle.tick(1)
            cycles_to_irq += 1

        batched = make_timer(reload=13)
        horizon = batched.event_horizon()
        assert horizon == cycles_to_irq
        batched.tick(horizon - 1)
        assert not batched.irq
        batched.tick(1)
        assert batched.irq

    def test_timer_horizon_gating(self):
        disabled = Timer()
        assert disabled.event_horizon() is None
        no_ie = make_timer(ie=False)
        assert no_ie.event_horizon() is None
        # Level-active: OVF latched with IE set re-raises every tick.
        level = make_timer(reload=3)
        level.tick(10)
        assert level.irq
        assert level.event_horizon() == 1

    def test_watchdog_horizon_predicts_expiry_exactly(self):
        def make_wdt():
            wdt = Watchdog()
            wdt.write(0x00, (37 << 8) | 1, 4)
            return wdt

        per_cycle = make_wdt()
        cycles_to_expiry = 0
        while not per_cycle.expired:
            per_cycle.tick(1)
            cycles_to_expiry += 1

        batched = make_wdt()
        horizon = batched.event_horizon()
        assert horizon == cycles_to_expiry
        batched.tick(horizon - 1)
        assert not batched.expired
        batched.tick(1)
        assert batched.expired
        assert batched.event_horizon() is None  # latched
        assert Watchdog().event_horizon() is None  # disabled

    def test_uart_horizon_is_level_sensitive(self):
        uart = Uart()
        assert uart.event_horizon() is None
        uart.write(0x00, 0b11001, 4)  # EN | RXEN | RXIE
        assert uart.event_horizon() is None  # FIFO empty
        uart.host_receive(0x41)
        assert uart.event_horizon() == 1
        uart.read(0x08, 4)  # drain the byte
        assert uart.event_horizon() is None

    def test_nvm_horizon_is_busy_window(self):
        nvm = NvmController()
        assert nvm.event_horizon() is None
        ctrl = (CMD_PROG << 16) | (1 << 31) | 1
        nvm.write(0x00, ctrl, 4)
        assert nvm.event_horizon() == PROGRAM_CYCLES
        nvm.tick(PROGRAM_CYCLES)
        assert nvm.event_horizon() is None


# ---------------------------------------------------------------------------
# property (c): probes and SFR accesses settle deferred time
# ---------------------------------------------------------------------------

def run_with_probes(image, use_block: bool, probe_every: int):
    """Session-style loop that probes the SoC every *probe_every*
    cycles (at the first retire boundary crossing each threshold);
    returns (probe list, final cpu, final soc)."""
    soc = SystemOnChip(SC88A)
    soc.load_image(image)
    cpu = CpuCore(soc.bus, intc=soc.intc)
    rom = MEMORY_MAP.rom
    cpu.decode_cache = decode_cache_for(image, rom.base, rom.end)
    cpu.reset(image.entry, MEMORY_MAP.stack_top)

    probes = []

    def probe():
        probes.append(
            (
                cpu.cycles,
                soc.result_word(),
                soc.done_pin(),
                soc.pass_pin(),
                soc.uart_output(),
                soc.watchdog_expired,
                # Raw register state: stale values would differ here.
                soc.timer.values.copy(),
                soc.wdt.values.copy(),
                soc.intc.values.copy(),
            )
        )

    next_probe = probe_every
    limit = 100_000
    if use_block:
        soc.attach_cpu(cpu)
        while not cpu.halted and cpu.instructions_retired < limit:
            budget = soc.run_budget()
            to_probe = next_probe - cpu.cycles
            if budget is None or to_probe < budget:
                budget = max(to_probe, 1)
            cpu.run(budget, limit)
            soc.flush_ticks()
            if cpu.cycles >= next_probe:
                probe()
                while next_probe <= cpu.cycles:
                    next_probe += probe_every
            if soc.wdt.expired:
                break
        soc.detach_cpu()
    else:
        while not cpu.halted and cpu.instructions_retired < limit:
            consumed = cpu.step()
            soc.tick(max(consumed, 1))
            if cpu.cycles >= next_probe:
                probe()
                while next_probe <= cpu.cycles:
                    next_probe += probe_every
            if soc.watchdog_expired:
                break
    return probes, cpu, soc


class TestMidRunProbes:
    @pytest.mark.parametrize(
        "cell_name", ["TEST_TIMER_IRQ", "TEST_WDT_SERVICE", "TEST_TIMER_DELAY_001"]
    )
    @pytest.mark.parametrize("probe_every", [17, 64])
    def test_probe_streams_identical(self, cell_name, probe_every):
        env = make_timer_environment()
        image = env.build_image(cell_name, SC88A, TARGET_GOLDEN).image
        batched, batched_cpu, _ = run_with_probes(image, True, probe_every)
        stepped, stepped_cpu, _ = run_with_probes(image, False, probe_every)
        assert batched, "probe cadence never fired"
        assert batched == stepped
        assert (batched_cpu.cycles, batched_cpu.instructions_retired) == (
            stepped_cpu.cycles,
            stepped_cpu.instructions_retired,
        )
        assert batched_cpu.regs.data[0] == PASS_MAGIC

    def test_sfr_read_flushes_cycle_debt(self):
        """A bus read of a peripheral page mid-window settles deferred
        time: the timer count must reflect every cycle the core has
        consumed, not the last flush."""
        soc = SystemOnChip(SC88A)
        cpu = CpuCore(soc.bus, intc=soc.intc)
        timer_count = soc.register_map.register_address("TIMER.TIM_CNT")
        timer_reload = soc.register_map.register_address("TIMER.TIM_RELOAD")
        timer_ctrl = soc.register_map.register_address("TIMER.TIM_CTRL")
        soc.bus.poke_word(timer_reload, 50_000)
        soc.bus.poke_word(timer_ctrl, 0b01)  # EN only: far horizon
        soc.attach_cpu(cpu)
        cpu.cycles = 123  # core ran ahead; peripherals owe 123 cycles
        value, _ = soc.bus.read_word(timer_count)
        assert value == 50_000 - 123

    def test_sfr_write_ends_block_and_moves_horizon(self):
        """Arming a peripheral mid-block must cut the core's block so
        the new, nearer horizon takes effect."""
        soc = SystemOnChip(SC88A)
        cpu = CpuCore(soc.bus, intc=soc.intc)
        soc.attach_cpu(cpu)
        assert soc.run_budget() is None  # nothing armed
        cpu._block_deadline = None
        timer_reload = soc.register_map.register_address("TIMER.TIM_RELOAD")
        timer_ctrl = soc.register_map.register_address("TIMER.TIM_CTRL")
        soc.bus.write_word(timer_reload, 9)
        soc.bus.write_word(timer_ctrl, 0b11)  # EN | IE
        assert soc.run_budget() == 10  # reload + 1 cycles to underflow
        assert cpu._block_deadline is not None  # block was cut

    def test_sfr_write_flushes_cached_superblock_chain(self):
        """cut_block() invalidation covers the superblock chain: an SFR
        write mid-run must drop the cached successor prediction (the
        store may have rescheduled the world) as well as cut the block."""
        soc = SystemOnChip(SC88A)
        cpu = CpuCore(soc.bus, intc=soc.intc)
        soc.attach_cpu(cpu)
        cpu._sb_resume = ("sentinel-cache", "sentinel-block")
        epoch = cpu._sb_epoch
        timer_reload = soc.register_map.register_address("TIMER.TIM_RELOAD")
        soc.bus.write_word(timer_reload, 9)
        assert cpu._sb_resume is None
        assert cpu._sb_epoch == epoch + 1

    def test_sfr_write_mid_superblock_observes_settled_state(self):
        """A store that lands on an SFR page between superblocks must
        see peripheral time fully settled — including every cycle the
        idle fast-forward warped past — and the registers read back
        afterwards must match the per-step reference exactly."""
        source = f"""\
_main:
    LOAD d2, 60000
    STORE [TIM_RELOAD], d2
    LOAD d3, 1
    STORE [TIM_CTRL], d3                        ;; EN only: no IRQ horizon
    LOAD d4, 1000
spin:
    DJNZ d4, spin                               ;; warped when hoisted
    LOAD d5, [TIM_CNT]                          ;; read: settled count
    LOAD d6, 1
    STORE [TIM_STAT], d6                        ;; write mid-run: cut + settle
    LOAD d7, [TIM_CNT]                          ;; read again after the cut
    LOAD d0, {PASS_MAGIC:#x}
    HALT
"""
        timer_base = {
            name: SC88A.register_map().register_address(f"TIMER.{name}")
            for name in ("TIM_RELOAD", "TIM_CTRL", "TIM_CNT", "TIM_STAT")
        }
        for symbol, address in timer_base.items():
            source = source.replace(symbol, f"{address:#x}")
        image = link_source(source)

        def run(use_block: bool):
            soc = SystemOnChip(SC88A)
            soc.load_image(image)
            cpu = CpuCore(soc.bus, intc=soc.intc)
            rom = MEMORY_MAP.rom
            cpu.decode_cache = decode_cache_for(image, rom.base, rom.end)
            cpu.reset(image.entry, MEMORY_MAP.stack_top)
            if use_block:
                soc.attach_cpu(cpu)
                while not cpu.halted and cpu.instructions_retired < 100_000:
                    cpu.run(soc.run_budget(), 100_000)
                    soc.flush_ticks()
                soc.detach_cpu()
            else:
                while not cpu.halted and cpu.instructions_retired < 100_000:
                    consumed = cpu.step()
                    soc.tick(max(consumed, 1))
            return cpu

        fast = run(use_block=True)
        reference = run(use_block=False)
        assert fast.ff_warps > 0  # the spin really was fast-forwarded
        data = fast.regs.data
        # The first TIM_CNT read reflects every warped cycle...
        assert data[5] == reference.regs.data[5]
        assert data[5] < 60000  # ...i.e. the counter visibly moved.
        # The post-write read agrees too, and the engines retire
        # identical totals.
        assert data[7] == reference.regs.data[7]
        assert (fast.cycles, fast.instructions_retired) == (
            reference.cycles,
            reference.instructions_retired,
        )


# ---------------------------------------------------------------------------
# property (d): byte/halfword micro-ops
# ---------------------------------------------------------------------------

SUBWORD_SOURCE = f"""\
_main:
    LOAD a1, {MEMORY_MAP.ram.base:#x}
    LOAD d2, 0xF2345678
    ST.W [a1], d2
    LD.B d3, [a1]
    LD.B d4, [a1 + 3]
    LD.H d5, [a1]
    LD.H d6, [a1 + 2]
    ST.B [a1 + 4], d2
    ST.H [a1 + 8], d2
    LD.W d7, [a1 + 4]
    LD.W d8, [a1 + 8]
    LOAD d0, {PASS_MAGIC:#x}
    HALT
"""

EXPECTED_SUBWORD_REGS = {
    "d3": 0x78,  # byte loads zero-extend
    "d4": 0xF2,  # ...even with the sign bit set
    "d5": 0x5678,  # halfword loads zero-extend
    "d6": 0xF234,
    "d7": 0x78,  # byte store truncated to 8 bits
    "d8": 0x5678,  # halfword store truncated to 16 bits
}


class TestSubWordMicroOps:
    def test_classified_as_micro_ops(self):
        image = link_source(SUBWORD_SOURCE)
        rom = MEMORY_MAP.rom
        cache = decode_cache_for(image, rom.base, rom.end)
        cache.predecode_all()
        kinds = {entry.mem_kind for entry in cache._entries.values()}
        assert {MEM_LD_B, MEM_LD_H, MEM_ST_B, MEM_ST_H} <= kinds

    @pytest.mark.parametrize(
        "platform_cls", [GoldenModel, RtlSim], ids=["golden", "rtl"]
    )
    def test_semantics_on_fast_path(self, platform_cls):
        image = link_source(SUBWORD_SOURCE)
        result = ExecutionSession(platform_cls(), SC88A).run(image)
        assert result.status is RunStatus.PASS
        for reg, expected in EXPECTED_SUBWORD_REGS.items():
            assert result.registers[reg] == expected, reg

    def test_traced_bus_path_matches_fast_path(self):
        """With a bus trace armed the micro-ops route through the bus;
        values and cycle counts must not change, and the accesses must
        appear in the trace with their architectural sizes."""
        image = link_source(SUBWORD_SOURCE)
        fast = ExecutionSession(GoldenModel(), SC88A).run(image)
        platform = GoldenModel()
        platform.record_bus_trace = True
        traced = ExecutionSession(platform, SC88A).run(image)
        assert strip(fast) == strip(traced)
        ram = MEMORY_MAP.ram
        sized = [
            (access.kind, access.size)
            for access in platform.last_bus_trace
            if ram.contains(access.address, 1) and access.size in (1, 2)
        ]
        assert ("read", 1) in sized and ("write", 1) in sized
        assert ("read", 2) in sized and ("write", 2) in sized

    def test_reference_chain_agrees(self):
        image = link_source(SUBWORD_SOURCE)
        fast = ExecutionSession(GoldenModel(), SC88A).run(image)
        reference = reference_session(GoldenModel(), SC88A).run(image)
        assert strip(fast) == strip(reference)
