"""Tests for the generated Base_Functions.asm library."""

import pytest

from repro.core.basefuncs import generate_base_functions
from repro.core.environment import ModuleTestEnvironment, TestCell
from repro.core.targets import TARGET_GOLDEN
from repro.platforms.base import RunStatus
from repro.soc.derivatives import SC88A, SC88B, SC88C, SC88D, all_derivatives


def run_snippet(body: str, derivative=SC88A, extras=None):
    """Run a test body against the full abstraction + global layers."""
    env = ModuleTestEnvironment("LIBTEST", extras=extras or {})
    env.add_test(
        TestCell(
            name="TEST_SNIPPET",
            source=f".INCLUDE Globals.inc\n_main:\n{body}",
        )
    )
    return env.run_test("TEST_SNIPPET", derivative)


class TestGeneration:
    def test_all_wrappers_present(self):
        text = generate_base_functions(all_derivatives())
        for name in (
            "Base_Report_Pass",
            "Base_Report_Fail",
            "Base_Check_EQ",
            "Base_Init_Register",
            "Base_Select_Page",
            "Base_NVM_Program_Page",
            "Base_NVM_Erase_Page",
            "Base_UART_Send",
            "Base_UART_Recv",
            "Base_Timer_Delay",
            "Base_WDT_Service",
            "Base_Fill_Pattern",
            "Base_Compare_Block",
            "Base_Checksum",
        ):
            assert f"{name}:" in text, name

    def test_v2_wrapper_emitted_only_when_needed(self):
        with_v2 = generate_base_functions([SC88A, SC88D])
        without_v2 = generate_base_functions([SC88A, SC88B])
        assert "ES_InitRegister" in with_v2
        assert ".IFDEF DERIVATIVE_SC88D" in with_v2
        assert "ES_InitRegister" not in without_v2

    def test_no_hardwired_sfr_addresses(self):
        """The paper's critical rule: base functions use only defines."""
        import re

        text = generate_base_functions(all_derivatives())
        for match in re.finditer(r"0[xX][0-9a-fA-F_]+", text):
            value = int(match.group(0), 16)
            assert not (0xF000_0000 <= value < 0xF001_0000), match.group(0)


class TestReporting:
    def test_report_pass(self):
        result = run_snippet("    JMP Base_Report_Pass\n")
        assert result.status is RunStatus.PASS
        assert (result.done_pin, result.pass_pin) == (1, 1)

    def test_report_fail(self):
        result = run_snippet("    JMP Base_Report_Fail\n")
        assert result.status is RunStatus.FAIL
        assert (result.done_pin, result.pass_pin) == (1, 0)

    def test_check_eq_mismatch_fails(self):
        result = run_snippet(
            "    LOAD d4, 1\n    LOAD d5, 2\n    CALL Base_Check_EQ\n"
            "    JMP Base_Report_Pass\n"
        )
        assert result.status is RunStatus.FAIL


class TestFirmwareWrappers:
    @pytest.mark.parametrize(
        "derivative", [SC88A, SC88D], ids=["es_v1", "es_v2"]
    )
    def test_init_register_across_firmware_versions(self, derivative):
        body = (
            "    LOAD a4, UART_BAUD_ADDR\n"
            "    LOAD d4, 0x99\n"
            "    CALL Base_Init_Register\n"
            "    LOAD d4, [UART_BAUD_ADDR]\n"
            "    LOAD d5, 0x99\n"
            "    CALL Base_Check_EQ\n"
            "    JMP Base_Report_Pass\n"
        )
        assert run_snippet(body, derivative).passed

    @pytest.mark.parametrize(
        "derivative,expected", [(SC88A, 1), (SC88D, 2)], ids=["v1", "v2"]
    )
    def test_get_es_version(self, derivative, expected):
        body = (
            "    CALL Base_Get_ES_Version\n"
            "    MOV d4, d2\n"
            f"    LOAD d5, {expected}\n"
            "    CALL Base_Check_EQ\n"
            "    JMP Base_Report_Pass\n"
        )
        assert run_snippet(body, derivative).passed

    @pytest.mark.parametrize("derivative", [SC88A, SC88D], ids=["v1", "v2"])
    def test_checksum_wrapper(self, derivative):
        body = (
            "    LOAD a4, SCRATCH_ADDR\n"
            "    LOAD d4, 0xAAAA0001\n"
            "    LOAD d5, 4\n"
            "    CALL Base_Fill_Pattern\n"
            "    LOAD a4, SCRATCH_ADDR\n"
            "    LOAD d4, 4\n"
            "    CALL Base_Checksum\n"
            "    CMPI d2, 0\n"
            "    JZ Base_Report_Fail\n"
            "    JMP Base_Report_Pass\n"
        )
        assert run_snippet(body, derivative).passed


class TestNvmFunctions:
    @pytest.mark.parametrize(
        "derivative", all_derivatives(), ids=lambda d: d.name
    )
    def test_program_and_verify_page(self, derivative):
        body = (
            "    LOAD d4, 0\n"
            "    LOAD d5, 0x12345678\n"
            "    CALL Base_NVM_Write_Buffer_Word\n"
            "    LOAD d4, 9\n"
            "    CALL Base_NVM_Program_Page\n"
            "    CMPI d2, 0\n"
            "    JNZ Base_Report_Fail\n"
            "    LOAD a4, NVM_ARRAY_BASE + 9 * NVM_PAGE_BYTES\n"
            "    LD.W d4, [a4]\n"
            "    LOAD d5, 0x12345678\n"
            "    CALL Base_Check_EQ\n"
            "    JMP Base_Report_Pass\n"
        )
        assert run_snippet(body, derivative).passed, derivative.name

    def test_erase_page(self):
        body = (
            "    LOAD d4, 2\n"
            "    CALL Base_NVM_Erase_Page\n"
            "    CMPI d2, 0\n"
            "    JNZ Base_Report_Fail\n"
            "    LOAD a4, NVM_ARRAY_BASE + 2 * NVM_PAGE_BYTES\n"
            "    LD.W d4, [a4]\n"
            "    LOAD d5, 0xFFFFFFFF\n"
            "    CALL Base_Check_EQ\n"
            "    JMP Base_Report_Pass\n"
        )
        assert run_snippet(body).passed

    def test_select_page_reads_back(self):
        body = (
            "    LOAD d4, 5\n"
            "    CALL Base_Select_Page\n"
            "    LOAD d4, [NVM_CTRL_ADDR]\n"
            "    EXTRU d4, d4, PAGE_FIELD_START_POSITION, PAGE_FIELD_SIZE\n"
            "    LOAD d5, 5\n"
            "    CALL Base_Check_EQ\n"
            "    JMP Base_Report_Pass\n"
        )
        for derivative in (SC88A, SC88C):  # different field positions
            assert run_snippet(body, derivative).passed, derivative.name


class TestUartTimerWdt:
    def test_uart_loopback_roundtrip(self):
        body = (
            "    CALL Base_UART_Enable_Loopback\n"
            "    LOAD d4, 0x5A\n"
            "    CALL Base_UART_Send\n"
            "    CALL Base_UART_Recv\n"
            "    MOV d4, d2\n"
            "    LOAD d5, 0x5A\n"
            "    CALL Base_Check_EQ\n"
            "    JMP Base_Report_Pass\n"
        )
        assert run_snippet(body).passed

    def test_uart_recv_timeout_returns_sentinel(self):
        body = (
            "    CALL Base_UART_Enable\n"
            "    CALL Base_UART_Recv\n"
            "    LOAD d5, 0xFFFFFFFF\n"
            "    MOV d4, d2\n"
            "    CALL Base_Check_EQ\n"
            "    JMP Base_Report_Pass\n"
        )
        assert run_snippet(body).passed

    def test_timer_delay_completes(self):
        body = (
            "    LOAD d4, 30\n"
            "    CALL Base_Timer_Delay\n"
            "    JMP Base_Report_Pass\n"
        )
        result = run_snippet(body)
        assert result.passed

    @pytest.mark.parametrize("derivative", [SC88A, SC88D], ids=["keyA5", "key5A"])
    def test_wdt_service_uses_derivative_key(self, derivative):
        body = (
            "    LOAD a4, WDT_CTRL_ADDR\n"
            "    LOAD d4, 1 | (3000 << 8)\n"
            "    CALL Base_Init_Register\n"
            "    LOAD d4, 50\n"
            "    CALL Base_Timer_Delay\n"
            "    CALL Base_WDT_Service\n"
            "    LOAD d4, 50\n"
            "    CALL Base_Timer_Delay\n"
            "    JMP Base_Report_Pass\n"
        )
        assert run_snippet(body, derivative).passed
