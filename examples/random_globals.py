#!/usr/bin/env python3
"""Constrained-random Globals.inc generation (the paper's future work).

Section 2 closes with: "this test environment structure provides the
ability to generate constrained-random instances of the 'Global Defines'
file from a higher level language such as Specman e, Perl or even
C/Cpp".  Python is that language here.

We randomise the NVM target pages under constraints, run each instance
through the unmodified directed tests, and watch page coverage grow —
randomisation at the control plane, directed tests untouched.

Run:  python examples/random_globals.py
"""

from repro.core import (
    CoverageCollector,
    DefineConstraint,
    RandomGlobalsGenerator,
    coverage_of_campaign,
    make_nvm_environment,
    render_table,
)
from repro.core.targets import TARGET_GOLDEN
from repro.soc import SC88B

CAMPAIGN = 10


def build_env(extras):
    return make_nvm_environment(
        2,
        derivatives=[SC88B],
        page_overrides={
            1: extras["TEST1_TARGET_PAGE"],
            2: extras["TEST2_TARGET_PAGE"],
        },
    )


def main() -> None:
    generator = RandomGlobalsGenerator(
        build_env,
        [
            DefineConstraint("TEST1_TARGET_PAGE", 0, 63),
            DefineConstraint(
                "TEST2_TARGET_PAGE", 0, 63, predicate=lambda v: v % 2 == 1
            ),
        ],
        seed=2026,
    )

    print(f"running a {CAMPAIGN}-instance campaign on sc88b (64 pages)...")
    collector = CoverageCollector(SC88B)
    rows = []
    campaign = []
    for index in range(CAMPAIGN):
        instance = generator.instance(index, SC88B, run=False)
        env = build_env(instance.assignment)
        all_pass = True
        for cell_name in env.cells:
            artifacts = env.build_image(cell_name, SC88B, TARGET_GOLDEN)
            platform = TARGET_GOLDEN.make_platform()
            platform.record_bus_trace = True
            result = platform.run(artifacts.image, SC88B)
            all_pass &= result.passed
            collector.observe_platform(platform)
        instance.results = {"_": None}  # mark as executed
        campaign.append(instance)
        rows.append(
            [
                str(index),
                str(instance.assignment["TEST1_TARGET_PAGE"]),
                str(instance.assignment["TEST2_TARGET_PAGE"]),
                "pass" if all_pass else "FAIL",
            ]
        )
        assert all_pass

    print(render_table(["seed", "page 1", "page 2 (odd)", "verdict"], rows))

    covered = coverage_of_campaign(campaign, "TEST1_TARGET_PAGE")
    print(f"\ndistinct page-1 values drawn: {sorted(covered)}")
    print("\naccumulated functional coverage:")
    print(collector.report.summary())


if __name__ == "__main__":
    main()
