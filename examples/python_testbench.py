#!/usr/bin/env python3
"""A higher-level-language testbench over the assembler library.

The paper's Section 2 closes: "the Base Functions library could be
considered as a library of assembler code functions that can be called
or linked into some higher level language."  Here Python *is* that
language: it calls the assembler base functions directly, composes them
into a scenario no directed test cell spelled out, and checks device
state between calls.

Run:  python examples/python_testbench.py
"""

from repro.core.pycall import BaseFunctionLibrary
from repro.core.workloads import make_nvm_environment
from repro.soc import SC88A, SC88D


def main() -> None:
    env = make_nvm_environment(1)
    library = BaseFunctionLibrary(env, SC88A)

    print("callable assembler functions:")
    for name in library.functions()[:10]:
        print("   ", name)
    print("    ...")

    # Compose a scenario directly from Python: erase, program, verify.
    print("\nscenario: erase page 5, program it, verify the array")
    erased = library.call("Base_NVM_Erase_Page", d4=5)
    assert erased["d2"] == 0
    print(f"  erase   : ok ({erased.instructions} instructions)")

    programmed = library.call("Base_NVM_Program_Page", d4=5)
    assert programmed["d2"] == 0
    print(f"  program : ok ({programmed.instructions} instructions)")
    print(f"  nvm log : {programmed.soc.nvm.operation_log}")

    # Checksum RAM data staged from Python.
    scratch = SC88A.memory_map().result_address + 16
    outcome = library.call(
        "Base_Checksum",
        a4=scratch,
        d4=4,
        setup={
            scratch + 0: 0x11111111,
            scratch + 4: 0x22222222,
            scratch + 8: 0x44444444,
            scratch + 12: 0x88888888,
        },
    )
    expected = 0x11111111 ^ 0x22222222 ^ 0x44444444 ^ 0x88888888
    assert outcome["d2"] == expected
    print(f"\nBase_Checksum over staged RAM: {outcome['d2']:#010x} (correct)")

    # Derivative transparency reaches Python too: the sc88d firmware
    # rewrite is invisible through the wrapper.
    for derivative in (SC88A, SC88D):
        lib = BaseFunctionLibrary(
            make_nvm_environment(1, derivatives=[derivative]), derivative
        )
        version = lib.call("Base_Get_ES_Version")["d2"]
        print(
            f"firmware version via wrapper on {derivative.name}: v{version}"
        )

    print("\npython testbench OK")


if __name__ == "__main__":
    main()
