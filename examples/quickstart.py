#!/usr/bin/env python3
"""Quickstart: build one ADVM test environment and run a test.

This walks the paper's Figure 1 structure end to end:

1. create a module test environment (test layer + generated abstraction
   layer over the shared global layer);
2. build one test cell for a (derivative, target) pair — selection is
   done purely by assembler predefines;
3. execute the linked image on the golden reference model;
4. inspect what the platform observed.

Run:  python examples/quickstart.py
"""

from repro.core import make_nvm_environment
from repro.core.targets import TARGET_GOLDEN
from repro.soc import derivative

def main() -> None:
    # 1. A module test environment for the NVM block, with two directed
    #    tests (the Figure 6 shape: select a page, program, verify).
    env = make_nvm_environment(num_tests=2)
    print(f"environment {env.name!r}: {len(env.cells)} test cells")
    print("test plan:")
    print(env.testplan.to_text())

    # Peek at the generated abstraction layer — the heart of the ADVM.
    globals_inc = env.globals_text()
    print("Globals.inc (first 15 lines):")
    for line in globals_inc.splitlines()[:15]:
        print("   ", line)
    print("    ...")

    # 2./3. Build and run on the baseline derivative's golden model.
    sc88a = derivative("sc88a")
    result = env.run_test("TEST_NVM_PAGE_001", sc88a, "golden")

    # 4. What did the platform see?
    print(f"\nrun on {result.platform}/{result.derivative}:")
    print(f"  status       : {result.status.value}")
    print(f"  instructions : {result.instructions}")
    print(f"  cycles       : {result.cycles}")
    print(f"  signature    : {result.signature:#010x}")
    print(f"  GPIO pins    : done={result.done_pin} pass={result.pass_pin}")

    # The same test, same sources, on a different chip derivative — the
    # abstraction layer adapts, the test does not.
    sc88b = derivative("sc88b")  # NVM PAGE field widened 5 -> 6 bits
    result_b = env.run_test("TEST_NVM_PAGE_001", sc88b, "golden")
    print(f"\nsame test on {sc88b.title}: {result_b.status.value}")

    assert result.passed and result_b.passed
    print("\nquickstart OK")


if __name__ == "__main__":
    main()
