#!/usr/bin/env python3
"""The paper's headline claim, measured: rapid porting to derivatives.

Ports an NVM test suite from sc88a to the three other derivatives, twice:

- **ADVM style** — tests reference only Globals.inc names and Base_*
  wrappers; the port edits the abstraction layer only;
- **hardwired style** — every value is a literal; the port edits every
  test.

Both suites are *run* after each port to prove the edits were complete,
and the effort (files touched, lines changed) is tabulated.

Run:  python examples/nvm_derivative_porting.py
"""

from repro.core import compare_nvm_port, render_table
from repro.soc import SC88A, SC88B, SC88C, SC88D

SUITE_SIZE = 6


def main() -> None:
    rows = []
    for new in (SC88B, SC88C, SC88D):
        comparison = compare_nvm_port(SUITE_SIZE, [SC88A], new)
        advm = comparison.advm.effort
        baseline = comparison.baseline.effort
        rows.append(
            [
                f"sc88a -> {new.name}",
                new.description.split(":")[0],
                f"{advm.files_touched} files / {advm.lines_changed} lines",
                f"{baseline.files_touched} files / "
                f"{baseline.lines_changed} lines",
                f"{comparison.factors['files_factor']:.0f}x",
                "yes" if comparison.advm.all_pass else "NO",
            ]
        )

    print(f"porting a {SUITE_SIZE}-test NVM suite (tests are never edited "
          "in the ADVM column):\n")
    print(
        render_table(
            [
                "port",
                "change class",
                "ADVM edit",
                "hardwired edit",
                "files saved",
                "suite passes",
            ],
            rows,
        )
    )

    print(
        "\nNote the shape: the ADVM edit is one abstraction-layer block, "
        "constant in suite size;\nthe hardwired edit grows with every "
        "test.  At the paper's industrial suite sizes the\nfactor is the "
        "suite size itself."
    )


if __name__ == "__main__":
    main()
