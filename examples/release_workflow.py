#!/usr/bin/env python3
"""Release labels and frozen regressions (the paper's Section 3).

Demonstrates the ADVM release discipline:

1. a module owner releases a labelled snapshot of their environment;
2. a system release composes sub-labels, owned by one release manager;
3. a regression runs against the frozen system label;
4. meanwhile, live abstraction-layer development continues — and breaks
   things — without perturbing the running regression.

Run:  python examples/release_workflow.py
"""

from repro.core import (
    ReleaseManager,
    make_nvm_environment,
    make_uart_environment,
)
from repro.soc import SC88A


def main() -> None:
    manager = ReleaseManager()

    # 1. Module owners release their environments.
    nvm = make_nvm_environment(2)
    uart = make_uart_environment(2)
    nvm_release = manager.create_label("NVM_R1.0", nvm)
    uart_release = manager.create_label("UART_R1.3", uart)
    print("module releases:")
    print("  ", nvm_release)
    print("  ", uart_release)

    # 2. The release manager composes the system label.
    system = manager.compose_system_label(
        "SYS_2026_06", {"NVM": "NVM_R1.0", "UART": "UART_R1.3"}
    )
    print("system release:", system)

    # 3. A regression starts against the frozen label...
    frozen = manager.frozen_system("SYS_2026_06")
    print("\nfrozen regression, first half:")
    for cell_name, result in frozen["NVM"].run_all(SC88A).items():
        print(f"  NVM/{cell_name}: {result.status.value}")

    # 4. ...while live development mutates (and breaks) the NVM
    #    abstraction layer mid-run.
    nvm.defines.set_extra("TEST1_TARGET_PAGE", 999_999)
    print(
        "\nlive NVM environment mutated mid-regression "
        f"(label dirty: {manager.is_dirty('NVM_R1.0')})"
    )
    live = nvm.run_test("TEST_NVM_PAGE_001", SC88A)
    print(f"live build now: {live.status.value}")

    print("\nfrozen regression, second half (unaffected):")
    for cell_name, result in frozen["UART"].run_all(SC88A).items():
        print(f"  UART/{cell_name}: {result.status.value}")
    rerun = frozen["NVM"].run_test("TEST_NVM_PAGE_001", SC88A)
    print(f"frozen NVM re-run: {rerun.status.value}")
    assert rerun.passed and not live.passed

    print(
        "\nconclusion: 'the test environment is not stable during any "
        "development of the\nabstraction layer, unless frozen via a "
        "release label' — demonstrated."
    )


if __name__ == "__main__":
    main()
