#!/usr/bin/env python3
"""One test suite, six platforms — and divergence means a platform bug.

Reproduces the paper's Section 1 story:

1. run a module regression across all six development platforms
   (golden model, RTL, gate level, accelerator, bondout, product
   silicon) — one binary image per test, loaded verbatim everywhere;
2. inject a netlist fault into the gate-level simulator and re-run: the
   regression attributes the divergence to that platform alone.

Run:  python examples/cross_platform_regression.py
"""

from repro.core import (
    RegressionRunner,
    make_nvm_environment,
    regression_matrix,
)
from repro.isa.instructions import Opcode
from repro.platforms import GateLevelSim, NetlistFault
from repro.soc import SC88A


def main() -> None:
    env = make_nvm_environment(num_tests=3)

    print("=== healthy fleet ===")
    report = RegressionRunner().run_environment(env, SC88A)
    print(regression_matrix(report))
    print(report.summary())

    print("\n=== gate-level netlist fault injected ===")
    fault = NetlistFault(
        opcode=int(Opcode.SETB),
        xor_mask=0x1,
        description="mis-synthesized bit-set unit (output bit 0 crossed)",
    )
    runner = RegressionRunner(
        platform_overrides={"gatelevel": GateLevelSim(fault=fault)}
    )
    faulty_report = runner.run_environment(env, SC88A)
    print(regression_matrix(faulty_report))
    print(faulty_report.summary())

    print("\ndivergences:")
    for divergence in faulty_report.divergences:
        print("  -", divergence)

    suspects = faulty_report.suspect_platforms()
    assert set(suspects) == {"gatelevel"}
    print(
        "\nconclusion: the suite localised the bug to the gate-level "
        "netlist — 'a bug or issue has been found in that particular "
        "simulation domain'."
    )


if __name__ == "__main__":
    main()
