"""repro — reproduction of "An Assembler Driven Verification Methodology
(ADVM)" (MacBeth, Heinz, Gray; DATE 2004).

Layers, bottom-up:

- :mod:`repro.isa` — the SC88 chip-card CPU instruction set;
- :mod:`repro.assembler` — two-pass macro assembler + linker for it;
- :mod:`repro.soc` — the device under test: derivatives, peripherals,
  register maps, embedded-software firmware;
- :mod:`repro.platforms` — the six execution platforms one test image
  runs on (golden model → product silicon);
- :mod:`repro.core` — the ADVM itself: three-layer test environments,
  generated abstraction layers, violation checking, porting metrics,
  release labels, cross-platform regressions, constrained-random
  ``Globals.inc`` generation and functional coverage.

Quickstart::

    from repro.core import make_nvm_environment
    from repro.soc import derivative

    env = make_nvm_environment(num_tests=2)
    result = env.run_test("TEST_NVM_PAGE_001", derivative("sc88a"))
    assert result.passed
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
