"""Restart-proof fleet execution: persistent artifacts + shared work.

Everything warm in this codebase — predecoded entries, superblocks,
observation templates, JIT-chain metadata, warm session pools — lives
in process memory and dies with the process, and a regression matrix
can only be sharded inside one machine.  This package extends the
repo's two proven durability idioms downward and outward:

- :mod:`repro.store.artifacts` — a content-addressed on-disk store of
  :class:`~repro.isa.decodecache.DecodeCache` snapshots (predecode +
  superblock formation + JIT-chain metadata), keyed by image digest,
  region bounds and wait-state profile, in the schema-checksummed
  envelope style of :class:`~repro.core.scheduler.ResultCache`.  A
  fresh process (or a rebooted :class:`ServiceDaemon` pool) warm-starts
  from disk instead of re-paying predecode and formation;
- :mod:`repro.store.worklist` — a shared-directory work-list for
  fleet-sharded :class:`~repro.core.scheduler.RegressionScheduler`
  runs: lease-based cell claims (``O_EXCL`` claim files, heartbeat
  renewal, wall-clock expiry), expired-lease reclaim (work stealing
  from dead workers) and idempotent first-writer-wins result
  publication, so at-least-once execution yields exactly-once
  accounting.

Chaos coverage comes from three store-layer injection sites in
:mod:`repro.core.faults` (``store-read``, ``store-write``,
``lease-renew``).  Every store operation is contained: an unavailable
or corrupt store root degrades the run to local-only execution
(counted, never fatal), and corrupt artifacts are quarantined aside
and re-derived from source — never trusted.
"""

from repro.store.artifacts import (
    STORE_SCHEMA,
    ArtifactStore,
    restore_decode_cache,
    snapshot_decode_cache,
)
from repro.store.worklist import Lease, WorkList

__all__ = [
    "ArtifactStore",
    "Lease",
    "STORE_SCHEMA",
    "WorkList",
    "restore_decode_cache",
    "snapshot_decode_cache",
]
