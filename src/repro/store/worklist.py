"""Shared-directory work-list for fleet-sharded regression runs.

Several scheduler processes — possibly on several machines sharing a
filesystem — divide one regression matrix by racing to *claim* cells
and publishing their results into a common directory.  The protocol is
built from three ordinary-filesystem primitives and one invariant:

- **lease-based claims** — a cell is claimed by creating
  ``leases/<key>.lease`` with ``O_CREAT | O_EXCL`` (atomic on POSIX
  even over NFS v3+ for local-machine fleets, which is what the tests
  exercise).  The file records the owner id, a fresh nonce and a
  wall-clock expiry;
- **heartbeat renewal and expiry** — a healthy worker extends its
  lease (atomic rewrite, same nonce, firing the ``lease-renew`` chaos
  site) while executing; a lease whose expiry passed is *dead* and any
  worker may **steal** it: overwrite-with-own-record, then read back
  and confirm the nonce survived.  SIGKILLed workers therefore delay
  their cells by at most one TTL, never strand them;
- **idempotent first-writer-wins publication** — results are written
  to a temp file and ``os.link``ed to ``results/<key>.json``: the
  first publisher wins atomically, later publishers count a
  ``duplicate`` and adopt the published verdict.  Steal races and
  double executions are therefore *benign*: at-least-once execution,
  exactly-once accounting;
- **corruption is re-derived, never trusted** — published results ride
  the schema-checksummed envelope; a result that fails verification is
  quarantined aside (counted) and its cell returns to the claimable
  pool, so the matrix re-derives the verdict from source.

Every operation is contained: an unavailable work-list root marks the
list :attr:`WorkList.disabled` and the scheduler degrades to ordinary
local execution.  Chaos sites: ``store-read`` (fetch), ``store-write``
(publish), ``lease-renew`` (renewal).
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
import threading
import time
from pathlib import Path

from repro.core.faults import (
    SITE_LEASE_RENEW,
    SITE_STORE_READ,
    SITE_STORE_WRITE,
)
from repro.store.artifacts import quarantine_aside

#: Bump when the published-result envelope changes incompatibly.
WORKLIST_SCHEMA = 1


def cell_key(*parts) -> str:
    """Deterministic cell identity: the SHA-256 over the stringified
    parts (environment, cell, derivative, target, image digest, run
    bounds).  Every fleet worker derives the same key from the same
    work-list entry, with no coordination."""
    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(str(part).encode())
        hasher.update(b"\0")
    return hasher.hexdigest()


class Lease:
    """One held (or stolen) cell claim."""

    __slots__ = ("key", "owner", "nonce", "expires", "stolen", "lost")

    def __init__(
        self, key: str, owner: str, nonce: str, expires: float,
        stolen: bool = False,
    ):
        self.key = key
        self.owner = owner
        self.nonce = nonce
        self.expires = expires
        #: Claimed by taking over a dead worker's expired lease.
        self.stolen = stolen
        #: Ownership could not be maintained (failed/raced renewal);
        #: the holder finishes its execution — publication idempotence
        #: keeps a concurrent re-claim harmless — but stops renewing.
        self.lost = False


class WorkList:
    """Lease/steal/publish protocol over one shared directory.

    Construction never raises: an uncreatable root marks the list
    :attr:`disabled` (counted by the caller as local-only degradation).
    """

    def __init__(
        self,
        directory: str | Path,
        owner: str | None = None,
        lease_ttl: float = 30.0,
        injector=None,
        clock=time.time,
    ):
        self.directory = Path(directory)
        self.owner = owner or f"pid{os.getpid()}-{os.urandom(3).hex()}"
        self.lease_ttl = max(0.05, float(lease_ttl))
        #: Optional :class:`repro.core.faults.FaultInjector`.
        self.injector = injector
        #: Wall clock on purpose: expiries must compare across
        #: processes, which a per-process monotonic clock cannot.
        self._clock = clock
        self.disabled = False
        self.claimed = 0
        self.stolen = 0
        self.released = 0
        self.renewed = 0
        self.lease_lost = 0
        self.claim_errors = 0
        self.published = 0
        self.duplicates = 0
        self.fetched = 0
        self.corrupt = 0
        self.quarantined = 0
        self.write_errors = 0
        try:
            (self.directory / "leases").mkdir(parents=True, exist_ok=True)
            (self.directory / "results").mkdir(parents=True, exist_ok=True)
        except OSError:
            self.disabled = True

    # -- paths -------------------------------------------------------------
    def _lease_path(self, key: str) -> Path:
        return self.directory / "leases" / f"{key}.lease"

    def _result_path(self, key: str) -> Path:
        return self.directory / "results" / f"{key}.json"

    def _read_lease(self, path: Path) -> dict | None:
        """The lease record at *path*, or ``None`` when missing or
        unreadable (a torn lease file is claimable — safe because
        publication, not the lease, decides the cell's verdict)."""
        try:
            record = json.loads(path.read_bytes())
        except (OSError, ValueError):
            return None
        if not isinstance(record, dict):
            return None
        return record

    def _write_lease_record(self, path: Path, record: dict) -> None:
        fd, tmp = tempfile.mkstemp(
            prefix=".lease.", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(json.dumps(record, sort_keys=True))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- claims ------------------------------------------------------------
    def claim(self, key: str) -> Lease | None:
        """Try to claim *key*; returns a :class:`Lease` or ``None``
        (held by a live worker, lost a steal race, or store trouble).

        The steal path overwrites an *expired* record and confirms by
        reading its own nonce back.  Two stealers can both pass the
        expiry check and overwrite in turn; the read-back loser walks
        away, and the residual double-claim window (a re-overwrite
        after the winner's read-back) is benign by publication
        idempotence.
        """
        if self.disabled:
            return None
        path = self._lease_path(key)
        nonce = os.urandom(8).hex()
        expires = self._clock() + self.lease_ttl
        record = {"owner": self.owner, "nonce": nonce, "expires": expires}
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            current = self._read_lease(path)
            if (
                current is not None
                and current.get("expires", 0) > self._clock()
            ):
                return None  # held by a live worker
            try:
                self._write_lease_record(path, record)
            except OSError:
                self.claim_errors += 1
                return None
            confirm = self._read_lease(path)
            if confirm is None or confirm.get("nonce") != nonce:
                return None  # lost the steal race
            self.stolen += 1
            return Lease(key, self.owner, nonce, expires, stolen=True)
        except OSError:
            self.claim_errors += 1
            return None
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(json.dumps(record, sort_keys=True))
        except OSError:
            self.claim_errors += 1
            return None
        self.claimed += 1
        return Lease(key, self.owner, nonce, expires)

    def renew(self, lease: Lease) -> bool:
        """Extend a held lease's expiry (the heartbeat).  Returns
        ``False`` — and marks the lease lost — when ownership is gone
        or the write fails (including injected ``lease-renew`` chaos);
        never raises."""
        if self.disabled or lease.lost:
            return False
        path = self._lease_path(lease.key)
        try:
            if self.injector is not None:
                self.injector.fire(SITE_LEASE_RENEW, lease.key)
            current = self._read_lease(path)
            if current is None or current.get("nonce") != lease.nonce:
                raise PermissionError("lease ownership lost")
            expires = self._clock() + self.lease_ttl
            self._write_lease_record(
                path,
                {
                    "owner": self.owner,
                    "nonce": lease.nonce,
                    "expires": expires,
                },
            )
        except Exception:
            lease.lost = True
            self.lease_lost += 1
            return False
        lease.expires = expires
        self.renewed += 1
        return True

    def release(self, lease: Lease) -> None:
        """Drop a held lease (best effort; only if still ours)."""
        path = self._lease_path(lease.key)
        try:
            current = self._read_lease(path)
            if current is not None and current.get("nonce") == lease.nonce:
                os.unlink(path)
                self.released += 1
        except OSError:
            pass

    @contextlib.contextmanager
    def heartbeat(self, lease: Lease, interval: float | None = None):
        """Context manager renewing *lease* from a daemon thread while
        the body (the cell's execution) runs.  A failed renewal stops
        the heartbeat; the body still completes and publishes — the
        first-writer-wins result file, not the lease, is the truth."""
        if interval is None:
            interval = max(0.02, self.lease_ttl / 3.0)
        stop = threading.Event()

        def beat() -> None:
            while not stop.wait(interval):
                if not self.renew(lease):
                    return

        thread = threading.Thread(
            target=beat, name=f"lease-heartbeat-{lease.key[:8]}", daemon=True
        )
        thread.start()
        try:
            yield lease
        finally:
            stop.set()
            thread.join(timeout=5.0)

    # -- results -----------------------------------------------------------
    def publish(self, key: str, payload: dict) -> bool:
        """Publish *key*'s result, first writer wins.  Returns whether
        *this* call's write became the published file; a lost race
        counts a duplicate, a failed write counts a write error, and
        neither raises."""
        if self.disabled:
            return False
        payload_text = json.dumps(payload, sort_keys=True)
        body = {
            "schema": WORKLIST_SCHEMA,
            "checksum": hashlib.sha256(payload_text.encode()).hexdigest(),
            "payload": payload_text,
        }
        data = json.dumps(body).encode()
        path = self._result_path(key)
        try:
            if self.injector is not None:
                self.injector.fire(SITE_STORE_WRITE, key)
                data = self.injector.mangle(SITE_STORE_WRITE, key, data)
            fd, tmp = tempfile.mkstemp(
                prefix=f".{key[:16]}.", suffix=".tmp", dir=path.parent
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(data)
                try:
                    # Hard link = atomic create-exclusive publication:
                    # os.replace would let a late duplicate clobber the
                    # canonical result other workers already adopted.
                    os.link(tmp, path)
                except FileExistsError:
                    self.duplicates += 1
                    return False
            finally:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
        except Exception:
            self.write_errors += 1
            return False
        self.published += 1
        return True

    def fetch(self, key: str) -> dict | None:
        """The published payload for *key*, or ``None`` (not published
        yet, or counted-and-quarantined corruption).  Never raises."""
        if self.disabled:
            return None
        path = self._result_path(key)
        if not path.exists():
            return None
        try:
            if self.injector is not None:
                self.injector.fire(SITE_STORE_READ, key)
            raw = path.read_bytes()
            if self.injector is not None:
                raw = self.injector.mangle(SITE_STORE_READ, key, raw)
            body = json.loads(raw)
            if body["schema"] != WORKLIST_SCHEMA:
                raise ValueError("work-list schema mismatch")
            payload_text = body["payload"]
            checksum = hashlib.sha256(payload_text.encode()).hexdigest()
            if checksum != body["checksum"]:
                raise ValueError("work-list result checksum mismatch")
            payload = json.loads(payload_text)
        except Exception:
            # Corrupt: quarantine aside so the cell re-enters the
            # claimable pool and is re-derived from source.
            self.corrupt += 1
            if quarantine_aside(path, path.parent):
                self.quarantined += 1
            return None
        self.fetched += 1
        return payload

    def stats(self) -> dict[str, int]:
        return {
            "disabled": int(self.disabled),
            "claimed": self.claimed,
            "stolen": self.stolen,
            "released": self.released,
            "renewed": self.renewed,
            "lease_lost": self.lease_lost,
            "claim_errors": self.claim_errors,
            "published": self.published,
            "duplicates": self.duplicates,
            "fetched": self.fetched,
            "corrupt": self.corrupt,
            "quarantined": self.quarantined,
            "write_errors": self.write_errors,
        }
