"""Content-addressed on-disk store of compiled execution artifacts.

The expensive half of a cold start is deterministic: predecode,
superblock formation and the shape of the compiled JIT chains are pure
functions of the image bytes, the cached region bounds and the fetch
wait-state profile — exactly the tuple the decode-cache registry is
keyed on.  This module persists that derived state so the *next*
process skips the derivation:

- **content-addressed** — one file per registry key, named by the
  SHA-256 of the key tuple, so distinct images/regions/wait profiles
  never collide and a shared store directory needs no index;
- **checksummed envelope** — a JSON header line carrying the schema,
  the registry key and a SHA-256 over the pickled payload, verified on
  *every* read.  Corrupt ≠ miss: a failed verification is counted in
  :attr:`ArtifactStore.corrupt`, the file is renamed aside to a unique
  ``*.corrupt`` name (forensic evidence, off the hot path) and the
  caller re-derives from source — a corrupt artifact is never trusted;
- **atomic writes** — ``tempfile.mkstemp`` + ``os.replace``, the same
  idiom as :class:`~repro.core.scheduler.ResultCache`, so concurrent
  fleet workers sharing a store directory can never observe a torn
  snapshot;
- **contained** — every operation degrades instead of raising: an
  unavailable store root disables the store (counted), a failed write
  is a cold next start, a failed read is a cold build.  The regression
  itself never fails because its accelerator store is broken;
- **bounded** — :meth:`ArtifactStore.prune` applies the familiar
  max-entries/max-age policy over artifacts and quarantined evidence.

What a snapshot contains — and what it deliberately drops
---------------------------------------------------------

:func:`snapshot_decode_cache` pickles the cache's segments, decoded
entries, non-cacheable ``skip`` set and formed superblocks (the pickle
memo preserves entry/block identity, so restored successor pointers
still alias restored blocks).  Compiled JIT chain *functions* are
``compile()``-generated objects that cannot ride a pickle;
``Superblock.__getstate__`` nulls them.  The snapshot instead records,
per chain head, the three variants' *code objects* via :mod:`marshal`
(the ``.pyc`` idiom) together with their exec namespaces — the
namespaces hold only decoded entries, fetch-event/trace tuples and
opcode constants, all of which ride the same pickle memo as the block
graph.  :func:`restore_decode_cache` rebinds those code objects
directly (one ``marshal.loads`` + ``exec`` per variant, no tracing, no
codegen, no ``compile()``), which is what makes a warm process start
cheaper than re-derivation rather than merely different.  Marshal is
interpreter-specific, so the snapshot carries
``sys.implementation.cache_tag``; on any mismatch — or any per-head
restore failure — the head falls back to the eager
:func:`~repro.isa.jit.compile_chain` path.  Every other block's
persisted heat is clamped below :data:`~repro.isa.jit.JIT_THRESHOLD`
(the trigger fires on exact equality, so restoring a past-threshold
heat would permanently disable recompilation for that head).
"""

from __future__ import annotations

import hashlib
import json
import marshal
import os
import pickle
import sys
import tempfile
import threading
import time
import types
from pathlib import Path

from repro.core.faults import SITE_STORE_READ, SITE_STORE_WRITE
from repro.isa import decodecache as _decodecache
from repro.isa.decodecache import DecodeCache
from repro.isa.jit import JIT_THRESHOLD, compile_chain

#: Bump when the snapshot payload or envelope changes incompatibly.
STORE_SCHEMA = 1

_KIND_DECODE = "decode"


# --------------------------------------------------------------------------
# DecodeCache snapshot / restore
# --------------------------------------------------------------------------

def _marshal_chain(block) -> dict | None:
    """The marshalled code objects + exec namespaces of one head's
    three compiled variants, or ``None`` when any variant is missing
    or unmarshalable (the head then recompiles eagerly on restore)."""
    variants = (block.jit_u, block.jit_ot, block.jit_ow)
    if any(fn is None for fn in variants):
        return None
    codes = []
    environments = []
    try:
        for fn in variants:
            codes.append(marshal.dumps(fn.__code__))
            environments.append({
                name: value
                for name, value in fn.__globals__.items()
                if name not in ("_chain", "__builtins__")
            })
    except (ValueError, TypeError):
        return None
    return {"codes": codes, "envs": environments}


def snapshot_decode_cache(cache: DecodeCache) -> bytes:
    """Pickle one cache's derived state (see module docstring).

    The entry/skip structures are copied under the cache's miss lock so
    a concurrent lazy decode cannot mutate a dict mid-pickle; blocks
    are copied outside it (formation is deliberately lock-free and a
    shallow dict copy is atomic under the GIL)."""
    with cache._miss_lock:
        entries = dict(cache._entries)
        skip = set(cache._skip)
    blocks = dict(cache._blocks)
    jit_code = {}
    for pc, block in blocks.items():
        if block.jit_u is None:
            continue
        chain = _marshal_chain(block)
        if chain is not None:
            jit_code[pc] = chain
    snapshot = {
        "segments": list(cache._segments),
        "entries": entries,
        "skip": skip,
        "blocks": blocks,
        "jit_heads": sorted(
            pc for pc, block in blocks.items() if block.jit_u is not None
        ),
        "jit_code": jit_code,
        "code_tag": sys.implementation.cache_tag,
    }
    return pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL)


def _bind_marshalled_chain(head, chain) -> bool:
    """Rebind one head's three variants from marshalled code; returns
    whether the chain was installed (any failure leaves the head clean
    for the eager-recompile fallback)."""
    if not chain:
        return False
    try:
        codes = chain["codes"]
        environments = chain["envs"]
        if len(codes) != 3 or len(environments) != 3:
            return False
        variants = []
        for blob, environment in zip(codes, environments):
            namespace = dict(environment)
            namespace.setdefault("__builtins__", __builtins__)
            variants.append(
                types.FunctionType(marshal.loads(blob), namespace, "_chain")
            )
    except Exception:
        return False
    head.jit_u, head.jit_ot, head.jit_ow = variants
    return True


def restore_decode_cache(payload: bytes) -> DecodeCache:
    """Rebuild a live :class:`DecodeCache` from a snapshot payload.

    Chain heads restore their compiled variants straight from the
    snapshot's marshalled code objects (no codegen, no ``compile()``);
    a head whose marshalled chain is missing, from a different
    interpreter (``code_tag`` mismatch) or unreadable recompiles
    eagerly instead.  Every other persisted heat is clamped to
    ``JIT_THRESHOLD - 1`` so a hot block whose chain could not be
    restored re-triggers compilation on its first warm replay instead
    of never again (the JIT trigger is an exact-equality check)."""
    snapshot = pickle.loads(payload)
    cache = DecodeCache.__new__(DecodeCache)
    cache._segments = snapshot["segments"]
    cache._entries = snapshot["entries"]
    cache._blocks = snapshot["blocks"]
    cache._skip = snapshot["skip"]
    cache._miss_lock = threading.Lock()
    cache.hits = 0
    cache.misses = 0
    cache.jit_chains = 0
    for block in cache._blocks.values():
        if block.heat >= JIT_THRESHOLD:
            block.heat = JIT_THRESHOLD - 1
    jit_code = (
        snapshot.get("jit_code", {})
        if snapshot.get("code_tag") == sys.implementation.cache_tag
        else {}
    )
    for pc in snapshot["jit_heads"]:
        head = cache._blocks.get(pc)
        if head is None:
            continue
        if _bind_marshalled_chain(head, jit_code.get(pc)):
            cache.jit_chains += 1
            head.heat = JIT_THRESHOLD
        elif compile_chain(cache, head):
            head.heat = JIT_THRESHOLD
    return cache


def _cache_stamp(cache: DecodeCache) -> tuple[int, int, int]:
    """Cheap content stamp deciding whether a re-save would change the
    snapshot.  Entries and blocks only ever grow (and chains only
    install) for an immutable image, so size deltas are sufficient."""
    return (len(cache._entries), len(cache._blocks), cache.jit_chains)


# --------------------------------------------------------------------------
# shared quarantine idiom
# --------------------------------------------------------------------------

def quarantine_aside(path: Path, directory: Path) -> bool:
    """Rename a corrupt file to a unique ``*.corrupt`` name (mkstemp
    picks the nonce, so repeated corruption preserves every piece of
    evidence).  Best effort; returns whether a file was set aside."""
    try:
        fd, destination = tempfile.mkstemp(
            prefix=f"{path.stem}.", suffix=".corrupt", dir=directory
        )
        os.close(fd)
    except OSError:
        return False
    try:
        os.replace(path, destination)
    except OSError:
        # Another process quarantined (or removed) it first: drop the
        # placeholder rather than leaving an empty decoy.
        try:
            os.unlink(destination)
        except OSError:
            pass
        return False
    return True


# --------------------------------------------------------------------------
# the store
# --------------------------------------------------------------------------

class ArtifactStore:
    """Content-addressed, checksummed, prunable artifact directory.

    Construction never raises: a root that cannot be created (missing
    volume, permission, a *file* squatting on the path) marks the store
    :attr:`disabled` and every operation becomes a counted no-op — the
    run degrades to local-only cold starts, it does not fail.
    """

    def __init__(self, directory: str | Path, injector=None):
        self.directory = Path(directory)
        #: Optional :class:`repro.core.faults.FaultInjector` driving
        #: the ``store-read``/``store-write`` chaos sites.
        self.injector = injector
        self.disabled = False
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        #: Distinct corrupt files successfully renamed aside.
        self.quarantined = 0
        self.write_errors = 0
        self.saved = 0
        #: Saves skipped because the stamp says the snapshot on disk is
        #: already current.
        self.unchanged = 0
        self.pruned = 0
        #: file stem -> stamp of the snapshot known to be on disk.
        self._stamps: dict[str, tuple] = {}
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError:
            self.disabled = True

    # -- naming ------------------------------------------------------------
    @staticmethod
    def _stem(kind: str, key: tuple) -> str:
        hasher = hashlib.sha256()
        for part in key:
            hasher.update(str(part).encode())
            hasher.update(b"\0")
        return f"{kind}-{hasher.hexdigest()}"

    def _path(self, stem: str) -> Path:
        return self.directory / f"{stem}.art"

    # -- decode-cache artifacts --------------------------------------------
    def save_decode_cache(self, key: tuple, cache: DecodeCache) -> bool:
        """Persist one registry entry; returns whether a file was
        written.  Empty caches (nothing derived yet) and caches whose
        on-disk snapshot is already current are skipped."""
        if self.disabled:
            return False
        if not cache._entries and not cache._blocks:
            return False
        stem = self._stem(_KIND_DECODE, key)
        stamp = _cache_stamp(cache)
        if self._stamps.get(stem) == stamp:
            self.unchanged += 1
            return False
        try:
            payload = snapshot_decode_cache(cache)
        except Exception:
            self.write_errors += 1
            return False
        header = json.dumps(
            {
                "schema": STORE_SCHEMA,
                "kind": _KIND_DECODE,
                "key": list(key),
                "checksum": hashlib.sha256(payload).hexdigest(),
            },
            sort_keys=True,
        ).encode()
        data = header + b"\n" + payload
        path = self._path(stem)
        try:
            if self.injector is not None:
                self.injector.fire(SITE_STORE_WRITE, stem)
                data = self.injector.mangle(SITE_STORE_WRITE, stem, data)
            fd, tmp = tempfile.mkstemp(
                prefix=f".{stem}.", suffix=".tmp", dir=self.directory
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(data)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except Exception:
            self.write_errors += 1
            return False
        self._stamps[stem] = stamp
        self.saved += 1
        return True

    def _read_artifact(
        self, path: Path, stem: str
    ) -> tuple[dict, DecodeCache] | None:
        """Read + verify + restore one artifact file; quarantines and
        returns ``None`` on any failure (corrupt ≠ miss)."""
        try:
            if self.injector is not None:
                self.injector.fire(SITE_STORE_READ, stem)
            raw = path.read_bytes()
            if self.injector is not None:
                raw = self.injector.mangle(SITE_STORE_READ, stem, raw)
            header_line, payload = raw.split(b"\n", 1)
            header = json.loads(header_line)
            if header["schema"] != STORE_SCHEMA:
                raise ValueError("artifact schema mismatch")
            if header["kind"] != _KIND_DECODE:
                raise ValueError("artifact kind mismatch")
            checksum = hashlib.sha256(payload).hexdigest()
            if checksum != header["checksum"]:
                raise ValueError("artifact checksum mismatch")
            cache = restore_decode_cache(payload)
        except Exception:
            self.corrupt += 1
            if quarantine_aside(path, self.directory):
                self.quarantined += 1
            return None
        return header, cache

    def load_decode_cache(self, key: tuple) -> DecodeCache | None:
        """The restored cache for *key*, or ``None`` (miss or counted
        corruption).  Never raises."""
        if self.disabled:
            return None
        stem = self._stem(_KIND_DECODE, key)
        path = self._path(stem)
        if not path.exists():
            self.misses += 1
            return None
        loaded = self._read_artifact(path, stem)
        if loaded is None:
            return None
        header, cache = loaded
        if tuple(header.get("key", ())) != tuple(key):
            # A content-addressed name that disagrees with its own
            # header is corruption by definition.
            self.corrupt += 1
            if quarantine_aside(path, self.directory):
                self.quarantined += 1
            return None
        self.hits += 1
        self._stamps[stem] = _cache_stamp(cache)
        return cache

    def warm_registry(self) -> int:
        """Install every readable decode snapshot into the process-wide
        registry (boot-time rehydration for a restarted daemon pool);
        returns how many caches are now registered from the store."""
        if self.disabled:
            return 0
        installed = 0
        for path in sorted(self.directory.glob(f"{_KIND_DECODE}-*.art")):
            stem = path.name.removesuffix(".art")
            loaded = self._read_artifact(path, stem)
            if loaded is None:
                continue
            header, cache = loaded
            key = tuple(header.get("key", ()))
            if len(key) != 4:
                self.corrupt += 1
                if quarantine_aside(path, self.directory):
                    self.quarantined += 1
                continue
            _decodecache.install_cache(key, cache)
            self._stamps[stem] = _cache_stamp(cache)
            self.hits += 1
            installed += 1
        return installed

    # -- maintenance -------------------------------------------------------
    def prune(
        self,
        max_entries: int | None = None,
        max_age: float | None = None,
        now: float | None = None,
    ) -> int:
        """Bound the store directory; returns how many files were
        removed.  *max_age* reaps artifacts and quarantined evidence
        past the horizon; *max_entries* then drops the oldest-modified
        artifacts beyond the count (evidence is never entry-bounded)."""
        removed = 0
        if self.disabled or (max_entries is None and max_age is None):
            return removed
        if now is None:
            now = time.time()
        entries: list[tuple[float, Path]] = []
        for path in list(self.directory.glob("*.art")) + list(
            self.directory.glob("*.corrupt")
        ):
            try:
                mtime = path.stat().st_mtime
            except OSError:
                continue
            if max_age is not None and now - mtime > max_age:
                removed += self._remove_file(path)
            elif path.suffix == ".art":
                entries.append((mtime, path))
        if max_entries is not None and len(entries) > max_entries:
            entries.sort()
            for _mtime, path in entries[: len(entries) - max_entries]:
                removed += self._remove_file(path)
        self.pruned += removed
        return removed

    def _remove_file(self, path: Path) -> int:
        try:
            os.unlink(path)
        except OSError:
            return 0
        self._stamps.pop(path.name.removesuffix(".art"), None)
        return 1

    def stats(self) -> dict[str, int]:
        """Flat counters, the shape CLI summaries and ``/stats``
        expose."""
        return {
            "disabled": int(self.disabled),
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "quarantined": self.quarantined,
            "write_errors": self.write_errors,
            "saved": self.saved,
            "unchanged": self.unchanged,
            "pruned": self.pruned,
        }
