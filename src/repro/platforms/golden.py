"""Golden reference model.

The paper's first platform: "the software simulator that is supplied to
the customer for software development".  Functionally exact, instruction
timed (no wait states), full visibility.  All other platforms are judged
against its behaviour.
"""

from __future__ import annotations

from repro.platforms.base import Platform


class GoldenModel(Platform):
    name = "golden"
    description = "golden reference software simulator (customer model)"
    sees_registers = True
    sees_memory = True
    sees_uart = True
    sees_trace = True
    cycle_accurate = False
    relative_speed = 1.0
