"""HDL-RTL simulation platform.

Cycle-accurate: charges bus wait states per region and offers full
waveform-style visibility (instruction trace).  Much slower than the
golden model in wall-clock terms — ``relative_speed`` records the
paper-era ratio so benchmark tables can report simulated-speed columns.
"""

from __future__ import annotations

from repro.platforms.base import Platform


class RtlSim(Platform):
    name = "rtl"
    description = "HDL-RTL simulation of the design for silicon"
    sees_registers = True
    sees_memory = True
    sees_uart = True
    sees_trace = True
    cycle_accurate = True
    relative_speed = 1e-3  # ~1000x slower than the golden model
