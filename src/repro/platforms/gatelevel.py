"""Gate-level (post-synthesis) simulation platform.

Same cycle-accurate behaviour as RTL, another order of magnitude slower,
and — uniquely — it can carry **injected netlist faults**.  A fault is a
synthesis/netlist bug that makes this platform's behaviour diverge from
every other platform running the same test image; the ADVM regression
layer must attribute the divergence to this platform (the paper: "if they
don't [execute the code in the same way] then a bug or issue has been
found in that particular simulation domain").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.platforms.base import Platform
from repro.platforms.cpu import CpuCore
from repro.soc.device import SystemOnChip


@dataclass(frozen=True)
class NetlistFault:
    """A stuck-at / wrong-wiring style fault in the synthesized ALU.

    ``opcode`` limits the fault to one operation (e.g. only INSERT results
    are corrupted — a classic mis-synthesized bit-field unit); ``xor_mask``
    flips result bits, modelling crossed wires.
    """

    opcode: int
    xor_mask: int
    description: str = ""

    def apply(self, executed_opcode: int, result: int) -> int:
        if executed_opcode == self.opcode:
            return result ^ self.xor_mask
        return result


class GateLevelSim(Platform):
    name = "gatelevel"
    description = "post-synthesis gate-level simulation"
    sees_registers = True
    sees_memory = True
    sees_uart = True
    sees_trace = True
    cycle_accurate = True
    relative_speed = 1e-4  # ~10x slower again than RTL

    def __init__(self, fault: NetlistFault | None = None):
        self.fault = fault

    def configure_cpu(self, cpu: CpuCore, soc: SystemOnChip) -> None:
        if self.fault is not None:
            cpu.alu_fault_hook = self.fault.apply
