"""Reusable execution sessions: build a platform's device once, run many.

Historically every :meth:`Platform.run` call constructed a fresh
:class:`~repro.soc.device.SystemOnChip` (memory maps, register layouts,
peripherals) and a fresh :class:`~repro.platforms.cpu.CpuCore`.  For a
regression matrix that cost is paid (cells × platforms) times even
though nothing about the device depends on the test cell.

:class:`ExecutionSession` splits the platform's run loop into the three
phases a lab bench actually has — *reset*, *run*, *observe* — over one
long-lived device:

- ``reset``: :meth:`SystemOnChip.full_reset` restores the
  just-constructed state (peripherals, RAM, ROM, NVM) between images;
- ``run``: load an image, attach the shared predecode cache for its ROM,
  and execute to HALT/timeout/fault exactly as ``Platform.run`` did;
- ``observe``: the platform's ``judge``/``collect`` hooks derive the
  verdict from whatever that platform can legitimately see.

The run phase drives the core in **blocks bounded by the SoC's
peripheral event horizon**: instead of ticking every peripheral after
every retired instruction, the SoC reports the cycle distance to the
next observable peripheral event (timer underflow, watchdog expiry,
NVM completion, level-sensitive interrupt re-raise), the core executes
up to that many cycles in one :meth:`CpuCore.run` block with the
per-step invariant checks hoisted out of the inner loop, and the
deferred peripheral time is settled in one linear ``tick`` at the
boundary.  Peripheral register accesses and SoC probes settle the debt
early (and SFR writes end the current block so a moved horizon is
picked up), which makes batched and per-step driving byte-identical —
the legacy step/tick loop survives behind ``use_block_run=False`` as
the reference baseline.

Within a block the core executes superblock-at-a-time (straight-line
fusion, chaining across taken branches, and analytic fast-forward of
idle ``DJNZ`` spins — see :mod:`repro.isa.decodecache` and
:meth:`CpuCore._run_superblocks`); ``use_superblocks=False`` selects
the per-instruction hoisted loop and ``use_fast_forward=False`` just
the warp, both for ablation benchmarks.  Observed runs — instruction
traces, bus-trace recording, wait-state charging — take the same
superblock path through :meth:`CpuCore._run_superblocks_observed`,
which replays each block's precomputed fetch-event and retire-record
templates in bulk, so coverage and cycle-accurate runs no longer drop
to per-instruction execution.  :meth:`ExecutionSession.stats` exposes
the fast-path telemetry (warps, blocks executed, template replays,
legacy fallbacks) so silent fast-path coverage regressions are
visible to tests and benchmarks.

``Platform.run`` now delegates to a throwaway session, so its
fresh-device-per-call semantics (``last_soc``/``last_cpu`` inspection)
are unchanged; the :class:`~repro.core.scheduler.RegressionScheduler`
keeps one session per (target, derivative) alive for the whole matrix.

The batched lock-step engine
----------------------------

:class:`BatchSession` runs N matrix cells — the same image across many
platform instances, or a per-lane stimulus sweep — through **one**
engine pass.  Lanes whose execution is byte-identical by construction
(same derivative, same timing fidelity, same engine flags, no platform
hooks) form a *cohort*: the cohort's leader executes once on the scalar
engine above, every superblock/decoded entry replayed a single time for
the whole cohort, and the converged lanes inherit the leader's
architectural state at sync points through N-wide
:class:`~repro.isa.batch.LaneRows`.

Per-lane stimulus makes lanes differ only in *data*: the differing RAM
bytes are marked **dirty** and the RAM mapping is wrapped so every
access routes through the bus's device path (byte-identical to the
word-buffer fast path: same wait states, same access counting, same
trace records).  A leader **write** to dirty bytes *heals* them — every
converged lane now agrees with the leader — while a leader **read** of
unhealed dirty bytes is the moment lanes truly diverge: the affected
lanes are **peeled** off to the scalar engine, which remains the
byte-identity oracle.  A peel is *surgical* when the divergent read is
a simple load the decode cache can identify unambiguously: the follower
device is cloned from the leader at the fork point (lane-indexed SoC +
core snapshots), the lane's remaining dirty bytes are applied, and the
load's register effect is re-applied lane-wise through
:data:`~repro.isa.batch.BATCH_EXECUTORS` — the shared prefix is
executed once, not N times.  Otherwise (ambiguous site, armed bus
trace, instruction fetch from dirty RAM, faulted leader) the lane
conservatively re-runs from reset with its own stimulus.  Peeled lanes
re-join the batch at the next :meth:`BatchSession.run_batch` boundary —
the reset sync point.
"""

from __future__ import annotations

from repro.assembler.linker import MemoryImage
from repro.isa.batch import (
    BATCH_EXECUTORS,
    LaneRows,
    load_footprint,
)
from repro.isa.decodecache import decode_cache_for
from repro.platforms.cpu import CpuCore, CpuFault
from repro.soc.bus import BusTrace
from repro.soc.derivatives import Derivative

# Injection-site names from :mod:`repro.core.faults` (string literals
# here: importing that module would initialise ``repro.core`` while
# ``repro.platforms`` may itself still be mid-import).
_SITE_SESSION_RUN = "session-run"
_SITE_BATCH_PEEL = "batch-peel"


class _RunContext:
    """State of one in-flight run between the session phases."""

    __slots__ = (
        "image",
        "max_instructions",
        "bus_trace",
        "fault_reason",
        "use_block",
    )

    def __init__(
        self,
        image: MemoryImage,
        max_instructions: int,
        bus_trace: BusTrace | None,
        use_block: bool,
    ):
        self.image = image
        self.max_instructions = max_instructions
        self.bus_trace = bus_trace
        self.fault_reason: str | None = None
        self.use_block = use_block


class ExecutionSession:
    """One (platform, derivative) device reused across many runs."""

    def __init__(
        self,
        platform,
        derivative: Derivative,
        use_decode_cache: bool | None = None,
        use_block_run: bool | None = None,
        use_superblocks: bool | None = None,
        use_fast_forward: bool | None = None,
        use_jit: bool | None = None,
        injector=None,
    ):
        self.platform = platform
        self.derivative = derivative
        #: Optional :class:`repro.core.faults.FaultInjector`; consulted
        #: at run begin so chaos tests can fail a specific run of a
        #: specific platform deterministically.
        self.injector = injector
        self.soc = platform.build_soc(derivative)
        self.cpu = CpuCore(
            self.soc.bus,
            intc=self.soc.intc,
            charge_wait_states=platform.cycle_accurate,
        )
        platform.configure_cpu(self.cpu, self.soc)
        self.use_decode_cache = (
            platform.use_decode_cache
            if use_decode_cache is None
            else use_decode_cache
        )
        self.use_block_run = (
            getattr(platform, "use_block_run", True)
            if use_block_run is None
            else use_block_run
        )
        self.cpu.use_superblocks = (
            getattr(platform, "use_superblocks", True)
            if use_superblocks is None
            else use_superblocks
        )
        self.cpu.use_fast_forward = (
            getattr(platform, "use_fast_forward", True)
            if use_fast_forward is None
            else use_fast_forward
        )
        self.cpu.use_jit = (
            getattr(platform, "use_jit", True)
            if use_jit is None
            else use_jit
        )
        self.runs_completed = 0
        #: Latched when a run escaped through an exception: the device
        #: is in an unknown state, so pools and schedulers must discard
        #: the session instead of reusing it (:meth:`health_check`).
        self.poisoned = False
        #: Batch telemetry of the most recent run this session led
        #: (scalar runs leave all three at zero).
        self.batch_lanes = 0
        self.batch_steps = 0
        self.peel_events = 0
        #: True while the trace was armed beyond the platform's own
        #: visibility (a batch leader observing for its whole cohort).
        self._trace_forced = False

    def stats(self) -> dict:
        """Fast-path telemetry of the most recent :meth:`run`.

        ``ff_warps`` counts analytic idle-spin warps, ``sb_blocks``
        superblocks executed through the block engine, ``sb_replays``
        bulk observation-template replays, and ``sb_fallback_steps``
        legacy per-step fallbacks taken inside the superblock loops —
        a nonzero fallback count on a ROM-resident workload means the
        fast path silently lost coverage.  ``decode_hits`` /
        ``decode_misses`` report the shared (cross-run, cross-platform)
        decode cache.  ``batch_lanes``/``batch_steps``/``peel_events``
        mirror that telemetry for the batched lock-step engine: lanes
        this session led in its last batch cohort, leader blocks driven
        for them, and lanes peeled off to the scalar oracle.
        ``jit_chains`` counts chain compiles this core triggered and
        ``jit_exec_steps`` instructions retired inside compiled chain
        bodies; ``registry_size``/``registry_evictions`` are gauges of
        the shared digest-keyed decode registry (LRU-bounded).
        """
        from repro.isa.decodecache import registry_stats

        cpu = self.cpu
        cache = cpu.decode_cache
        stats = {
            "ff_warps": cpu.ff_warps,
            "sb_blocks": cpu.sb_blocks,
            "sb_replays": cpu.sb_replays,
            "sb_fallback_steps": cpu.sb_fallback_steps,
            "decode_hits": 0 if cache is None else cache.hits,
            "decode_misses": 0 if cache is None else cache.misses,
            "batch_lanes": self.batch_lanes,
            "batch_steps": self.batch_steps,
            "peel_events": self.peel_events,
            "jit_chains": cpu.jit_chains,
            "jit_exec_steps": cpu.jit_exec_steps,
        }
        stats.update(registry_stats())
        return stats

    # -- run phases --------------------------------------------------------
    #
    # ``run`` is begin -> drive -> finish -> observe.  The phases are
    # public so the batch engine can interleave its own work between
    # leader blocks (``drive(on_block=...)``) and materialise per-lane
    # verdicts from one device (``observe(platform=...)``).

    def apply_stimulus(self, stimulus: dict[int, int] | None) -> None:
        """Backdoor-poke per-run stimulus words into RAM (sorted by
        address; later words win on overlap)."""
        if not stimulus:
            return
        soc = self.soc
        ram = soc.memory_map.ram
        for address in sorted(stimulus):
            if not (ram.base <= address and address + 4 <= ram.base + ram.size):
                raise ValueError(
                    f"stimulus word at {address:#010x} is outside RAM"
                )
            soc.bus.poke_word(address, stimulus[address])

    def begin(
        self,
        image: MemoryImage,
        max_instructions: int | None = None,
        entry_symbol: str = "_main",
        stimulus: dict[int, int] | None = None,
        force_trace: bool = False,
        force_bus_trace: bool = False,
    ) -> _RunContext:
        """Reset the device, load *image* (+ optional stimulus), arm
        observation, reset the core and attach the predecode cache.

        ``force_trace``/``force_bus_trace`` arm observation beyond the
        platform's own visibility — a batch leader records whatever any
        lane of its cohort is entitled to see.
        """
        from repro.platforms.base import DEFAULT_MAX_INSTRUCTIONS

        if max_instructions is None:
            max_instructions = DEFAULT_MAX_INSTRUCTIONS
        platform = self.platform
        soc = self.soc
        cpu = self.cpu
        self.batch_lanes = 0
        self.batch_steps = 0
        self.peel_events = 0
        if self.injector is not None:
            self.injector.fire(
                _SITE_SESSION_RUN,
                f"{platform.name}#run{self.runs_completed}",
            )

        if self.runs_completed:
            soc.full_reset()
        soc.load_image(image)
        self.apply_stimulus(stimulus)
        bus_trace: BusTrace | None = None
        if platform.record_bus_trace or force_bus_trace:
            bus_trace = BusTrace()
            soc.bus.trace_buffer = bus_trace
        if platform.sees_trace or force_trace:
            cpu.enable_trace()
            self._trace_forced = not platform.sees_trace
        elif self._trace_forced:
            cpu.trace = None
            self._trace_forced = False
        entry = image.entry
        if entry is None:
            entry = image.symbol(entry_symbol)
        cpu.reset(entry, soc.memory_map.stack_top)

        # The predecode cache stays enabled under tracing: the core
        # replays the elided fetch events into the trace, so coverage
        # collectors and divergence hunts see the same access stream as
        # a real bus fetch — at predecoded speed.
        self._attach_decode_cache(image)

        ctx = _RunContext(image, max_instructions, bus_trace, self.use_block_run)
        if ctx.use_block:
            soc.attach_cpu(cpu)
        return ctx

    def begin_forked(
        self,
        image: MemoryImage,
        max_instructions: int | None,
        soc_state: dict,
        cpu_state: dict,
    ) -> _RunContext:
        """Start a run from a leader's mid-run fork point instead of
        from reset: the device and core are seeded from lane-state
        snapshots (:meth:`SystemOnChip.snapshot_lane_state` /
        :meth:`CpuCore.snapshot_lane_state`) taken at a block boundary.
        """
        from repro.platforms.base import DEFAULT_MAX_INSTRUCTIONS

        if max_instructions is None:
            max_instructions = DEFAULT_MAX_INSTRUCTIONS
        soc = self.soc
        cpu = self.cpu
        self.batch_lanes = 0
        self.batch_steps = 0
        self.peel_events = 0
        if self.injector is not None:
            self.injector.fire(
                _SITE_SESSION_RUN,
                f"{self.platform.name}#run{self.runs_completed}",
            )
        if self.runs_completed:
            soc.full_reset()
        soc.restore_lane_state(soc_state)
        cpu.restore_lane_state(cpu_state)
        self._trace_forced = (
            cpu.trace is not None and not self.platform.sees_trace
        )
        self._attach_decode_cache(image)
        ctx = _RunContext(image, max_instructions, None, self.use_block_run)
        if ctx.use_block:
            soc.attach_cpu(cpu)
        return ctx

    def _attach_decode_cache(self, image: MemoryImage) -> None:
        soc = self.soc
        if self.use_decode_cache:
            rom = soc.memory_map.rom
            mapping = soc.bus.mapping_for(rom.base, 4)
            self.cpu.decode_cache = decode_cache_for(
                image, rom.base, rom.base + rom.size, mapping.wait_states
            )
        else:
            self.cpu.decode_cache = None

    def drive(self, ctx: _RunContext, on_block=None) -> None:
        """Execute until HALT/limit/watchdog/fault.

        *on_block* (block-run mode only) is called after every settled
        core block — the batch engine's hook for servicing lane peels
        between leader blocks.
        """
        soc = self.soc
        cpu = self.cpu
        max_instructions = ctx.max_instructions
        try:
            if ctx.use_block:
                # Event-horizon loop: run the core in blocks bounded by
                # the next observable peripheral event, then settle the
                # deferred peripheral time in one linear tick.  An SFR
                # write that moves the horizon ends the block early.
                while not cpu.halted and (
                    cpu.instructions_retired < max_instructions
                ):
                    cpu.run(soc.run_budget(), max_instructions)
                    soc.flush_ticks()
                    if on_block is not None:
                        on_block()
                    if soc.wdt.expired:
                        break
            else:
                # Reference per-step loop: one instruction, one walk of
                # every peripheral.
                while not cpu.halted:
                    if cpu.instructions_retired >= max_instructions:
                        break
                    consumed = cpu.step()
                    soc.tick(max(consumed, 1))
                    if soc.watchdog_expired:
                        break
        except CpuFault as fault:
            ctx.fault_reason = str(fault)

    def finish(self, ctx: _RunContext) -> None:
        """Detach the core and disarm run-scoped observation."""
        if ctx.use_block:
            self.soc.detach_cpu()
        if ctx.bus_trace is not None:
            self.soc.bus.trace_buffer = None
        self.runs_completed += 1

    def observe(self, ctx: _RunContext, platform=None):
        """Derive a verdict from the finished run through *platform*'s
        visibility (default: the session's own).  A batch cohort calls
        this once per lane against the shared leader device."""
        from repro.platforms.base import RunStatus

        if platform is None:
            platform = self.platform
        soc = self.soc
        cpu = self.cpu
        platform.last_soc = soc
        platform.last_cpu = cpu
        platform.last_bus_trace = (
            ctx.bus_trace if platform.record_bus_trace else None
        )

        if ctx.fault_reason is not None:
            status = RunStatus.FAULT
        elif soc.watchdog_expired:
            status = RunStatus.WATCHDOG
        elif not cpu.halted:
            status = RunStatus.TIMEOUT
        else:
            status = platform.judge(cpu, soc)

        return platform.collect(
            cpu, soc, self.derivative, status, ctx.fault_reason
        )

    def run(
        self,
        image: MemoryImage,
        max_instructions: int | None = None,
        entry_symbol: str = "_main",
        stimulus: dict[int, int] | None = None,
    ):
        """Reset the device, load *image*, execute, observe a verdict."""
        try:
            ctx = self.begin(image, max_instructions, entry_symbol, stimulus)
            try:
                self.drive(ctx)
            finally:
                self.finish(ctx)
            return self.observe(ctx)
        except BaseException:
            # An escaping exception (engine bug, injected chaos, a
            # platform hook blowing up) leaves the device mid-run: mark
            # the session so pool owners rebuild instead of reuse.
            self.poisoned = True
            raise

    # -- pool-visible health/reset hooks -----------------------------------
    #
    # A warm pool (:mod:`repro.service.pool`) keeps sessions alive
    # across requests; these hooks are its contract for telling a
    # reusable device from one wedged or poisoned by a faulting run.

    def health_check(self) -> bool:
        """Cheap liveness probe for pool supervisors.

        A healthy session is not poisoned and its device still resets
        cleanly (a wedged peripheral model that raises out of
        ``full_reset`` fails the probe rather than the next tenant's
        run).  Non-destructive for a healthy session: :meth:`begin`
        resets again before the next run anyway.
        """
        if self.poisoned:
            return False
        try:
            if self.runs_completed:
                self.soc.full_reset()
            return not self.soc.watchdog_expired
        except Exception:
            self.poisoned = True
            return False

    def recycle(self) -> None:
        """Restore the just-constructed device state between tenants.

        Raises if the device cannot be restored — the pool then
        discards the session.  A poisoned session cannot be recycled:
        its device state is unknown by definition.
        """
        if self.poisoned:
            raise RuntimeError("cannot recycle a poisoned session")
        self.soc.full_reset()
        self.cpu.trace = None
        self._trace_forced = False


# --------------------------------------------------------------------------
# batched lock-step engine
# --------------------------------------------------------------------------

class BatchLane:
    """One matrix cell of a batch run."""

    __slots__ = (
        "index",
        "platform",
        "stimulus",
        "dirty",
        "peeled",
        "batched",
        "degraded",
        "quarantined",
        "result",
    )

    def __init__(self, index: int, platform, stimulus: dict[int, int] | None):
        self.index = index
        self.platform = platform
        self.stimulus = dict(stimulus or {})
        #: Absolute byte address -> this lane's byte value, where the
        #: lane's RAM differs from the cohort leader's.  Shrinks as
        #: leader writes heal bytes; consulted on dirty reads to decide
        #: which lanes must peel.
        self.dirty: dict[int, int] = {}
        self.peeled = False
        self.batched = False
        #: The lane hit an execution-layer error and was demoted to a
        #: from-reset scalar run on a fresh device.
        self.degraded = False
        #: Even the degraded run failed; ``result`` is a synthesized
        #: :data:`RunStatus.FAULT` verdict.
        self.quarantined = False
        self.result = None


def _stimulus_bytes(stimulus: dict[int, int]) -> dict[int, int]:
    """Byte-granular overlay of a word stimulus (poke order: sorted by
    address, matching :meth:`ExecutionSession.apply_stimulus`)."""
    overlay: dict[int, int] = {}
    for address in sorted(stimulus):
        word = stimulus[address] & 0xFFFF_FFFF
        for i, byte in enumerate(word.to_bytes(4, "little")):
            overlay[address + i] = byte
    return overlay


class _DirtyWatcher:
    """Tracks unhealed dirty bytes of the converged lanes and turns
    leader accesses into heal/peel decisions."""

    __slots__ = ("cpu", "lanes", "watch", "peels")

    def __init__(self, cpu: CpuCore, lanes: list[BatchLane]):
        self.cpu = cpu
        self.lanes = list(lanes)
        #: Lanes peel-destined since the last service, with the read
        #: that split them: ``(lane, address, size)``.
        self.peels: list[tuple[BatchLane, int, int]] = []
        self.watch: set[int] = set()
        self._recompute()

    def _recompute(self) -> None:
        watch: set[int] = set()
        for lane in self.lanes:
            watch.update(lane.dirty)
        self.watch = watch

    def on_read(self, address: int, size: int) -> None:
        watch = self.watch
        span = [address + i for i in range(size)]
        if not any(a in watch for a in span):
            return
        hit = [
            lane
            for lane in self.lanes
            if any(a in lane.dirty for a in span)
        ]
        self.lanes = [lane for lane in self.lanes if lane not in hit]
        for lane in hit:
            self.peels.append((lane, address, size))
        self._recompute()
        # Two-phase: the leader keeps its own value and merely ends the
        # current block, so peel servicing sees the post-load state.
        self.cpu.cut_block()

    def on_write(self, address: int, size: int) -> None:
        watch = self.watch
        healed = [address + i for i in range(size) if (address + i) in watch]
        if not healed:
            return
        for lane in self.lanes:
            for a in healed:
                lane.dirty.pop(a, None)
        self._recompute()

    def drain(self) -> list[tuple[BatchLane, int, int]]:
        peels, self.peels = self.peels, []
        return peels


class _WatchedMemory:
    """Bus device wrapping a :class:`~repro.soc.bus.Memory` so leader
    accesses are observable.  Not a ``Memory`` subclass on purpose: the
    mapping's word-buffer fast path disables itself (``word_buf`` stays
    ``None`` after ``rebuild_dispatch``) and every access routes through
    the bus's device path, which charges the same wait states, counts
    and traces identically."""

    __slots__ = ("memory", "base", "watcher")

    def __init__(self, memory, base: int, watcher: _DirtyWatcher):
        self.memory = memory
        self.base = base
        self.watcher = watcher

    def read(self, offset: int, size: int) -> int:
        value = self.memory.read(offset, size)
        if self.watcher.watch:
            self.watcher.on_read(self.base + offset, size)
        return value

    def write(self, offset: int, value: int, size: int) -> None:
        self.memory.write(offset, value, size)
        if self.watcher.watch:
            self.watcher.on_write(self.base + offset, size)


class _ArmedWatch:
    """The RAM mapping swap while a cohort watch is armed."""

    __slots__ = ("bus", "mapping", "original", "armed")

    def __init__(self, bus, mapping, original):
        self.bus = bus
        self.mapping = mapping
        self.original = original
        self.armed = True

    def disarm(self) -> None:
        if not self.armed:
            return
        self.mapping.device = self.original
        self.bus.rebuild_dispatch()
        self.armed = False


class BatchSession:
    """Run N matrix cells in lock-step through one engine pass.

    Construct with one platform per lane (all on one derivative); each
    :meth:`run_batch` call executes one image across every lane, with an
    optional per-lane RAM word stimulus.  Results come back in lane
    order and are byte-identical to N scalar
    :meth:`ExecutionSession.run` calls — the scalar engine remains the
    oracle, and any lane the lock-step argument cannot cover is peeled
    onto it.

    Engine-flag keyword arguments are applied uniformly to every lane
    session (leader and peeled), mirroring :class:`ExecutionSession`.
    """

    def __init__(
        self,
        derivative: Derivative,
        platforms,
        use_decode_cache: bool | None = None,
        use_block_run: bool | None = None,
        use_superblocks: bool | None = None,
        use_fast_forward: bool | None = None,
        use_jit: bool | None = None,
        injector=None,
    ):
        self.derivative = derivative
        self.platforms = list(platforms)
        if not self.platforms:
            raise ValueError("BatchSession needs at least one lane")
        self._engine_overrides = {
            "use_decode_cache": use_decode_cache,
            "use_block_run": use_block_run,
            "use_superblocks": use_superblocks,
            "use_fast_forward": use_fast_forward,
            "use_jit": use_jit,
        }
        #: Optional :class:`repro.core.faults.FaultInjector`, shared by
        #: every lane session this batch creates.
        self.injector = injector
        #: lane index -> scalar session (leaders + peeled lanes only;
        #: converged followers never need a device of their own).
        self._sessions: dict[int, ExecutionSession] = {}
        self._leader_sessions: list[ExecutionSession] = []
        self.lane_rows: LaneRows | None = None
        self.last_lanes: list[BatchLane] = []
        self.batch_lanes = 0
        self.batch_steps = 0
        self.peel_events = 0
        self.degraded_lanes = 0

    # -- telemetry ---------------------------------------------------------
    def stats(self) -> dict:
        """Batch + aggregated engine telemetry of the last
        :meth:`run_batch` (engine counters summed over cohort leader
        sessions)."""
        totals = {
            "ff_warps": 0,
            "sb_blocks": 0,
            "sb_replays": 0,
            "sb_fallback_steps": 0,
            "decode_hits": 0,
            "decode_misses": 0,
            "jit_chains": 0,
            "jit_exec_steps": 0,
        }
        for session in self._leader_sessions:
            stats = session.stats()
            for key in totals:
                totals[key] += stats[key]
        from repro.isa.decodecache import registry_stats

        totals.update(registry_stats())
        totals["batch_lanes"] = self.batch_lanes
        totals["batch_steps"] = self.batch_steps
        totals["peel_events"] = self.peel_events
        totals["degraded_lanes"] = self.degraded_lanes
        return totals

    def lane_divergences(self, reference: int = 0) -> dict[int, list[str]]:
        """Per-lane architectural divergence vs the *reference* lane
        after the last batch: lane index -> row names that differ."""
        rows = self.lane_rows
        if rows is None:
            return {}
        return {
            lane.index: rows.lane_divergences(reference, lane.index)
            for lane in self.last_lanes
            if lane.index != reference
        }

    # -- public API --------------------------------------------------------
    def run_batch(
        self,
        image: MemoryImage,
        stimuli=None,
        max_instructions: int | None = None,
        entry_symbol: str = "_main",
    ):
        """Execute *image* on every lane; returns per-lane RunResults.

        *stimuli* is an optional per-lane list of RAM word overlays
        (``{address: word}`` or ``None``), poked after image load —
        the batched equivalent of :meth:`ExecutionSession.run`'s
        ``stimulus`` argument.

        Argument errors (lane/stimulus mismatch, stimulus outside RAM)
        raise up front; past that point ``run_batch`` never raises —
        an execution-layer failure demotes the affected lanes down the
        degradation ladder (lock-step → from-reset scalar run flagged
        ``degraded`` → synthesized FAULT verdict flagged
        ``quarantined``) and the batch still returns a result per lane.
        """
        if stimuli is None:
            stimuli = [None] * len(self.platforms)
        if len(stimuli) != len(self.platforms):
            raise ValueError(
                f"{len(self.platforms)} lanes but {len(stimuli)} stimuli"
            )
        ram = self.derivative.memory_map().ram
        for stimulus in stimuli:
            for address in stimulus or ():
                if not (
                    ram.base <= address
                    and address + 4 <= ram.base + ram.size
                ):
                    raise ValueError(
                        f"stimulus word at {address:#010x} is outside RAM"
                    )
        lanes = [
            BatchLane(i, platform, stimulus)
            for i, (platform, stimulus) in enumerate(
                zip(self.platforms, stimuli)
            )
        ]
        self.last_lanes = lanes
        self.lane_rows = LaneRows(len(lanes))
        self.batch_lanes = len(lanes)
        self.batch_steps = 0
        self.peel_events = 0
        self.degraded_lanes = 0
        self._leader_sessions = []

        cohorts: dict[tuple, list[BatchLane]] = {}
        static_peels: list[BatchLane] = []
        for lane in lanes:
            key = self._cohort_key(lane.platform)
            if key is None:
                static_peels.append(lane)
            else:
                cohorts.setdefault(key, []).append(lane)
        for lane in static_peels:
            # Platform hooks (fault injection, custom devices) make a
            # lane's execution lane-local by definition: scalar oracle.
            try:
                self._peel_from_reset(
                    lane, image, max_instructions, entry_symbol
                )
            except Exception as exc:
                self._degrade_lane(
                    lane, image, max_instructions, entry_symbol, exc
                )
        for cohort in cohorts.values():
            try:
                self._run_cohort(
                    image, cohort, max_instructions, entry_symbol
                )
            except Exception as exc:
                # The shared leader device is in an unknown state:
                # every lane of the cohort that has no verdict yet
                # walks the degradation ladder on its own device.
                for lane in cohort:
                    if lane.result is None:
                        self._degrade_lane(
                            lane, image, max_instructions,
                            entry_symbol, exc,
                        )
        return [lane.result for lane in lanes]

    def _degrade_lane(
        self,
        lane: BatchLane,
        image: MemoryImage,
        max_instructions: int | None,
        entry_symbol: str,
        error: BaseException,
    ) -> None:
        """Bottom half of the degradation ladder: re-run the lane from
        reset on a fresh device (byte-identical to a scalar
        :meth:`ExecutionSession.run`); if even that fails, synthesize a
        quarantined FAULT verdict so the batch always completes."""
        from repro.platforms.base import RunResult, RunStatus

        lane.degraded = True
        self.degraded_lanes += 1
        # The lane's session (if any) saw the failure: its device state
        # is unknown, so it is discarded and rebuilt.
        self._sessions.pop(lane.index, None)
        try:
            session = self._session_for(lane)
            lane.result = session.run(
                image,
                max_instructions=max_instructions,
                entry_symbol=entry_symbol,
                stimulus=lane.stimulus,
            )
            self.lane_rows.capture(lane.index, session.cpu)
        except Exception as exc:
            self._sessions.pop(lane.index, None)
            lane.quarantined = True
            lane.result = RunResult(
                platform=lane.platform.name,
                derivative=self.derivative.name,
                status=RunStatus.FAULT,
                fault_reason=(
                    f"quarantined: batch lane degraded after {error}; "
                    f"degraded re-run failed: {exc}"
                ),
            )

    # -- cohort formation --------------------------------------------------
    def _cohort_key(self, platform):
        """Lanes sharing a key execute byte-identically until data
        diverges; ``None`` marks a lane the lock-step argument cannot
        cover (platform hooks may install fault hooks, trace hooks or
        custom devices)."""
        from repro.platforms.base import Platform

        cls = type(platform)
        if (
            cls.configure_cpu is not Platform.configure_cpu
            or cls.build_soc is not Platform.build_soc
        ):
            return None
        overrides = self._engine_overrides

        def effective(name, default):
            value = overrides[name]
            return default if value is None else value

        return (
            platform.cycle_accurate,
            effective("use_decode_cache", platform.use_decode_cache),
            effective(
                "use_block_run", getattr(platform, "use_block_run", True)
            ),
            effective(
                "use_superblocks",
                getattr(platform, "use_superblocks", True),
            ),
            effective(
                "use_fast_forward",
                getattr(platform, "use_fast_forward", True),
            ),
            effective("use_jit", getattr(platform, "use_jit", True)),
        )

    def _session_for(self, lane: BatchLane) -> ExecutionSession:
        session = self._sessions.get(lane.index)
        if session is None:
            session = ExecutionSession(
                lane.platform,
                self.derivative,
                injector=self.injector,
                **self._engine_overrides,
            )
            self._sessions[lane.index] = session
        return session

    # -- cohort execution --------------------------------------------------
    def _run_cohort(
        self,
        image: MemoryImage,
        cohort: list[BatchLane],
        max_instructions: int | None,
        entry_symbol: str,
    ) -> None:
        leader = cohort[0]
        followers = cohort[1:]
        session = self._session_for(leader)
        self._leader_sessions.append(session)
        ctx = session.begin(
            image,
            max_instructions,
            entry_symbol,
            stimulus=None,
            force_trace=any(l.platform.sees_trace for l in cohort),
            force_bus_trace=any(l.platform.record_bus_trace for l in cohort),
        )
        soc = session.soc

        watcher: _DirtyWatcher | None = None
        armed: _ArmedWatch | None = None
        if any(lane.stimulus for lane in cohort):
            # Stimulus bounds were validated up front in run_batch.
            ram = soc.memory_map.ram
            baseline = bytes(soc.ram.data)
            session.apply_stimulus(leader.stimulus)
            leader_ram = soc.ram.data
            leader_overlay = _stimulus_bytes(leader.stimulus)
            for lane in followers:
                overlay = _stimulus_bytes(lane.stimulus)
                dirty: dict[int, int] = {}
                for a in set(overlay) | set(leader_overlay):
                    byte = overlay.get(a, baseline[a - ram.base])
                    if byte != leader_ram[a - ram.base]:
                        dirty[a] = byte
                lane.dirty = dirty
            watcher = _DirtyWatcher(
                session.cpu, [l for l in followers if l.dirty]
            )
            if watcher.watch:
                mapping = soc.bus.mapping_for(ram.base, 1)
                original = mapping.device
                mapping.device = _WatchedMemory(
                    original, mapping.base, watcher
                )
                soc.bus.rebuild_dispatch()
                armed = _ArmedWatch(soc.bus, mapping, original)

        def on_block():
            self.batch_steps += 1
            session.batch_steps += 1
            if watcher is not None and watcher.peels:
                self._service_peels(
                    session,
                    ctx,
                    watcher,
                    armed,
                    image,
                    max_instructions,
                    entry_symbol,
                )

        try:
            session.drive(ctx, on_block=on_block)
        finally:
            session.finish(ctx)
            if armed is not None:
                armed.disarm()

        # Peels the drive loop could not service in-line (a leader
        # fault aborts mid-block; the per-step reference loop has no
        # block boundaries): sound but conservative from-reset re-runs.
        if watcher is not None:
            for lane, _address, _size in watcher.drain():
                self._peel_from_reset(
                    lane, image, max_instructions, entry_symbol
                )

        rows = self.lane_rows
        for lane in cohort:
            if lane.peeled:
                continue
            lane.result = session.observe(ctx, platform=lane.platform)
            lane.batched = True
            rows.capture(lane.index, session.cpu)
        session.batch_lanes = len(cohort)
        session.peel_events = sum(1 for lane in cohort if lane.peeled)

    # -- peeling -----------------------------------------------------------
    def _service_peels(
        self,
        session: ExecutionSession,
        ctx: _RunContext,
        watcher: _DirtyWatcher,
        armed: _ArmedWatch | None,
        image: MemoryImage,
        max_instructions: int | None,
        entry_symbol: str,
    ) -> None:
        peels = watcher.drain()
        cpu = session.cpu
        entry = self._identify_load(cpu)
        footprint = (
            None if entry is None else load_footprint(cpu.regs, entry)
        )
        surgical: list[tuple[BatchLane, int, int]] = []
        fallback: list[BatchLane] = []
        for lane, address, size in peels:
            if (
                entry is not None
                and ctx.bus_trace is None
                and footprint == (address, size)
            ):
                surgical.append((lane, address, size))
            else:
                fallback.append(lane)
        if surgical:
            soc_state = session.soc.snapshot_lane_state()
            cpu_state = cpu.snapshot_lane_state()
            for lane, address, size in surgical:
                self._surgical_fork(
                    lane,
                    entry,
                    address,
                    size,
                    image,
                    max_instructions,
                    soc_state,
                    cpu_state,
                )
        for lane in fallback:
            self._peel_from_reset(lane, image, max_instructions, entry_symbol)
        if armed is not None and not watcher.watch:
            armed.disarm()

    def _identify_load(self, cpu: CpuCore):
        """The decoded simple load that just retired on the leader, or
        ``None`` when the site is not unambiguously identifiable (the
        fork then falls back to a from-reset re-run).

        After the divergent read the leader sits right behind the
        instruction that made it (the dirty trip cut the block at the
        retire boundary), so the entry is found by looking back one
        instruction width (4 bytes, 8 with a literal word) and
        requiring ``next_pc`` to land on the current pc."""
        cache = cpu.decode_cache
        if cache is None:
            return None
        pc = cpu.regs.pc
        candidates = []
        for back in (4, 8):
            entry = cache.get(pc - back)
            if entry is None or entry.next_pc != pc:
                continue
            if entry.mem_kind not in BATCH_EXECUTORS:
                continue
            candidates.append(entry)
        if len(candidates) == 1:
            return candidates[0]
        return None

    def _surgical_fork(
        self,
        lane: BatchLane,
        entry,
        address: int,
        size: int,
        image: MemoryImage,
        max_instructions: int | None,
        soc_state: dict,
        cpu_state: dict,
    ) -> None:
        """Clone the leader at the fork point, apply the lane's dirty
        bytes, re-apply the divergent load lane-wise, run on."""
        if self.injector is not None:
            self.injector.fire(
                _SITE_BATCH_PEEL,
                f"{lane.platform.name}#lane{lane.index}",
            )
        session = self._session_for(lane)
        ctx = session.begin_forked(
            image, max_instructions, soc_state, cpu_state
        )
        try:
            soc = session.soc
            ram = soc.memory_map.ram
            data = soc.ram.data
            for a, byte in lane.dirty.items():
                data[a - ram.base] = byte
            offset = address - ram.base
            value = int.from_bytes(data[offset : offset + size], "little")
            rows = self.lane_rows
            rows.capture(lane.index, session.cpu)
            BATCH_EXECUTORS[entry.mem_kind](rows, lane.index, entry, value)
            rows.restore(lane.index, session.cpu)
            session.drive(ctx)
        finally:
            session.finish(ctx)
        lane.result = session.observe(ctx)
        lane.peeled = True
        lane.batched = True  # rode the cohort up to the fork point
        self.peel_events += 1
        self.lane_rows.capture(lane.index, session.cpu)

    def _peel_from_reset(
        self,
        lane: BatchLane,
        image: MemoryImage,
        max_instructions: int | None,
        entry_symbol: str,
    ) -> None:
        if self.injector is not None:
            self.injector.fire(
                _SITE_BATCH_PEEL,
                f"{lane.platform.name}#lane{lane.index}",
            )
        session = self._session_for(lane)
        lane.result = session.run(
            image,
            max_instructions=max_instructions,
            entry_symbol=entry_symbol,
            stimulus=lane.stimulus,
        )
        lane.peeled = True
        self.peel_events += 1
        self.lane_rows.capture(lane.index, session.cpu)
