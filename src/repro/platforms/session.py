"""Reusable execution sessions: build a platform's device once, run many.

Historically every :meth:`Platform.run` call constructed a fresh
:class:`~repro.soc.device.SystemOnChip` (memory maps, register layouts,
peripherals) and a fresh :class:`~repro.platforms.cpu.CpuCore`.  For a
regression matrix that cost is paid (cells × platforms) times even
though nothing about the device depends on the test cell.

:class:`ExecutionSession` splits the platform's run loop into the three
phases a lab bench actually has — *reset*, *run*, *observe* — over one
long-lived device:

- ``reset``: :meth:`SystemOnChip.full_reset` restores the
  just-constructed state (peripherals, RAM, ROM, NVM) between images;
- ``run``: load an image, attach the shared predecode cache for its ROM,
  and execute to HALT/timeout/fault exactly as ``Platform.run`` did;
- ``observe``: the platform's ``judge``/``collect`` hooks derive the
  verdict from whatever that platform can legitimately see.

The run phase drives the core in **blocks bounded by the SoC's
peripheral event horizon**: instead of ticking every peripheral after
every retired instruction, the SoC reports the cycle distance to the
next observable peripheral event (timer underflow, watchdog expiry,
NVM completion, level-sensitive interrupt re-raise), the core executes
up to that many cycles in one :meth:`CpuCore.run` block with the
per-step invariant checks hoisted out of the inner loop, and the
deferred peripheral time is settled in one linear ``tick`` at the
boundary.  Peripheral register accesses and SoC probes settle the debt
early (and SFR writes end the current block so a moved horizon is
picked up), which makes batched and per-step driving byte-identical —
the legacy step/tick loop survives behind ``use_block_run=False`` as
the reference baseline.

Within a block the core executes superblock-at-a-time (straight-line
fusion, chaining across taken branches, and analytic fast-forward of
idle ``DJNZ`` spins — see :mod:`repro.isa.decodecache` and
:meth:`CpuCore._run_superblocks`); ``use_superblocks=False`` selects
the per-instruction hoisted loop and ``use_fast_forward=False`` just
the warp, both for ablation benchmarks.  Observed runs — instruction
traces, bus-trace recording, wait-state charging — take the same
superblock path through :meth:`CpuCore._run_superblocks_observed`,
which replays each block's precomputed fetch-event and retire-record
templates in bulk, so coverage and cycle-accurate runs no longer drop
to per-instruction execution.  :meth:`ExecutionSession.stats` exposes
the fast-path telemetry (warps, blocks executed, template replays,
legacy fallbacks) so silent fast-path coverage regressions are
visible to tests and benchmarks.

``Platform.run`` now delegates to a throwaway session, so its
fresh-device-per-call semantics (``last_soc``/``last_cpu`` inspection)
are unchanged; the :class:`~repro.core.scheduler.RegressionScheduler`
keeps one session per (target, derivative) alive for the whole matrix.
"""

from __future__ import annotations

from repro.assembler.linker import MemoryImage
from repro.isa.decodecache import decode_cache_for
from repro.platforms.cpu import CpuCore, CpuFault
from repro.soc.bus import BusTrace
from repro.soc.derivatives import Derivative


class ExecutionSession:
    """One (platform, derivative) device reused across many runs."""

    def __init__(
        self,
        platform,
        derivative: Derivative,
        use_decode_cache: bool | None = None,
        use_block_run: bool | None = None,
        use_superblocks: bool | None = None,
        use_fast_forward: bool | None = None,
    ):
        self.platform = platform
        self.derivative = derivative
        self.soc = platform.build_soc(derivative)
        self.cpu = CpuCore(
            self.soc.bus,
            intc=self.soc.intc,
            charge_wait_states=platform.cycle_accurate,
        )
        platform.configure_cpu(self.cpu, self.soc)
        self.use_decode_cache = (
            platform.use_decode_cache
            if use_decode_cache is None
            else use_decode_cache
        )
        self.use_block_run = (
            getattr(platform, "use_block_run", True)
            if use_block_run is None
            else use_block_run
        )
        self.cpu.use_superblocks = (
            getattr(platform, "use_superblocks", True)
            if use_superblocks is None
            else use_superblocks
        )
        self.cpu.use_fast_forward = (
            getattr(platform, "use_fast_forward", True)
            if use_fast_forward is None
            else use_fast_forward
        )
        self.runs_completed = 0

    def stats(self) -> dict:
        """Fast-path telemetry of the most recent :meth:`run`.

        ``ff_warps`` counts analytic idle-spin warps, ``sb_blocks``
        superblocks executed through the block engine, ``sb_replays``
        bulk observation-template replays, and ``sb_fallback_steps``
        legacy per-step fallbacks taken inside the superblock loops —
        a nonzero fallback count on a ROM-resident workload means the
        fast path silently lost coverage.  ``decode_hits`` /
        ``decode_misses`` report the shared (cross-run, cross-platform)
        decode cache.
        """
        cpu = self.cpu
        cache = cpu.decode_cache
        return {
            "ff_warps": cpu.ff_warps,
            "sb_blocks": cpu.sb_blocks,
            "sb_replays": cpu.sb_replays,
            "sb_fallback_steps": cpu.sb_fallback_steps,
            "decode_hits": 0 if cache is None else cache.hits,
            "decode_misses": 0 if cache is None else cache.misses,
        }

    def run(
        self,
        image: MemoryImage,
        max_instructions: int | None = None,
        entry_symbol: str = "_main",
    ):
        """Reset the device, load *image*, execute, observe a verdict."""
        from repro.platforms.base import (
            DEFAULT_MAX_INSTRUCTIONS,
            RunStatus,
        )

        if max_instructions is None:
            max_instructions = DEFAULT_MAX_INSTRUCTIONS
        platform = self.platform
        soc = self.soc
        cpu = self.cpu

        # -- reset ---------------------------------------------------------
        if self.runs_completed:
            soc.full_reset()
        soc.load_image(image)
        bus_trace: BusTrace | None = None
        if platform.record_bus_trace:
            bus_trace = BusTrace()
            soc.bus.trace_buffer = bus_trace
        if platform.sees_trace:
            cpu.enable_trace()
        entry = image.entry
        if entry is None:
            entry = image.symbol(entry_symbol)
        cpu.reset(entry, soc.memory_map.stack_top)

        # The predecode cache stays enabled under tracing: the core
        # replays the elided fetch events into the trace, so coverage
        # collectors and divergence hunts see the same access stream as
        # a real bus fetch — at predecoded speed.
        if self.use_decode_cache:
            rom = soc.memory_map.rom
            mapping = soc.bus.mapping_for(rom.base, 4)
            cpu.decode_cache = decode_cache_for(
                image, rom.base, rom.base + rom.size, mapping.wait_states
            )
        else:
            cpu.decode_cache = None

        # -- run -----------------------------------------------------------
        fault_reason: str | None = None
        use_block = self.use_block_run
        if use_block:
            soc.attach_cpu(cpu)
        try:
            if use_block:
                # Event-horizon loop: run the core in blocks bounded by
                # the next observable peripheral event, then settle the
                # deferred peripheral time in one linear tick.  An SFR
                # write that moves the horizon ends the block early.
                while not cpu.halted and (
                    cpu.instructions_retired < max_instructions
                ):
                    cpu.run(soc.run_budget(), max_instructions)
                    soc.flush_ticks()
                    if soc.wdt.expired:
                        break
            else:
                # Reference per-step loop: one instruction, one walk of
                # every peripheral.
                while not cpu.halted:
                    if cpu.instructions_retired >= max_instructions:
                        break
                    consumed = cpu.step()
                    soc.tick(max(consumed, 1))
                    if soc.watchdog_expired:
                        break
        except CpuFault as fault:
            fault_reason = str(fault)
        finally:
            if use_block:
                soc.detach_cpu()
            if bus_trace is not None:
                soc.bus.trace_buffer = None
        self.runs_completed += 1

        # -- observe -------------------------------------------------------
        platform.last_soc = soc
        platform.last_cpu = cpu
        platform.last_bus_trace = bus_trace

        if fault_reason is not None:
            status = RunStatus.FAULT
        elif soc.watchdog_expired:
            status = RunStatus.WATCHDOG
        elif not cpu.halted:
            status = RunStatus.TIMEOUT
        else:
            status = platform.judge(cpu, soc)

        return platform.collect(
            cpu, soc, self.derivative, status, fault_reason
        )
