"""Product silicon platform.

The final customer device: no debug access at all.  The only verdict
sources are the GPIO done/pass pins the ADVM base functions drive and
whatever the test printed over the UART.  Tests that never call the
reporting base functions come back ``NO_DATA`` here — which is itself a
methodology signal the regression layer surfaces (a directed test that
cannot report on silicon is a broken test).
"""

from __future__ import annotations

from repro.platforms.base import Platform


class ProductSilicon(Platform):
    name = "silicon"
    description = "final product silicon (pin-level visibility only)"
    sees_registers = False
    sees_memory = False
    sees_uart = True
    sees_trace = False
    cycle_accurate = False
    relative_speed = 100.0
