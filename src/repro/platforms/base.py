"""Execution-platform interface.

The paper lists six development platforms that all run the same compiled
test code: golden reference model, HDL-RTL simulation, gate-level
simulation, hardware accelerator, bondout silicon and product silicon.
Each platform here implements :class:`Platform` and differs along the
axes real platforms differ:

=================  ========  ==========  =========================
platform           timing    visibility  special
=================  ========  ==========  =========================
golden model       instr     full        reference semantics
rtl                cycles    full        wait states, traces
gate level         cycles    full        slow factor, fault inject
accelerator        instr     memory      no register/trace access
bondout            instr     debug port  post-run register reads
product silicon    instr     pins only   pass/fail via GPIO + UART
=================  ========  ==========  =========================

A :class:`RunResult` carries only what the platform can legitimately
observe — the regression layer treats missing observability as "no data",
exactly as a real lab bring-up would.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.assembler.linker import MemoryImage
from repro.platforms.cpu import CpuCore, CpuFault, InstructionTrace, TraceEntry
from repro.soc.bus import BusTrace
from repro.soc.derivatives import Derivative
from repro.soc.device import FAIL_MAGIC, PASS_MAGIC, SystemOnChip

DEFAULT_MAX_INSTRUCTIONS = 1_000_000


class RunStatus(enum.Enum):
    PASS = "pass"
    FAIL = "fail"
    TIMEOUT = "timeout"
    FAULT = "fault"
    WATCHDOG = "watchdog-reset"
    NO_DATA = "no-data"  # platform cannot observe a verdict source


@dataclass
class RunResult:
    """Outcome of one test image on one platform."""

    platform: str
    derivative: str
    status: RunStatus
    instructions: int = 0
    cycles: int = 0
    #: d0 signature, where register visibility exists.
    signature: int | None = None
    #: RAM result word, where memory visibility exists.
    result_word: int | None = None
    uart_output: str | None = None
    done_pin: int | None = None
    pass_pin: int | None = None
    fault_reason: str | None = None
    #: Retired-instruction log where trace visibility exists: the live
    #: ``InstructionTrace`` from a run, or a ``list[TraceEntry]`` when
    #: rehydrated from the result cache.
    trace: InstructionTrace | list[TraceEntry] | None = None
    #: Register snapshot, where a debug port exists.
    registers: dict[str, int] | None = None

    @property
    def passed(self) -> bool:
        return self.status is RunStatus.PASS

    def verdict_key(self) -> tuple:
        """The cross-platform comparison key used by divergence checks:
        only fields every platform can report."""
        return (self.status.value,)


class Platform(ABC):
    """One execution platform.

    Each ``run`` call builds a fresh device; the previous run's device and
    core remain inspectable via :attr:`last_soc` / :attr:`last_cpu` (the
    software equivalent of walking up to the bench after the test), which
    the functional-coverage collector uses on platforms with visibility.
    """

    name: str = "platform"
    description: str = ""
    #: Visibility axes (drive what RunResult fields get populated).
    sees_registers: bool = True
    sees_memory: bool = True
    sees_uart: bool = True
    sees_trace: bool = False
    #: Timing fidelity: charge bus wait states cycle-accurately.
    cycle_accurate: bool = False
    #: Relative wall-clock cost of simulating one instruction (the paper's
    #: platforms span orders of magnitude; benches report this).
    relative_speed: float = 1.0
    #: When True, ``run`` records every bus access into
    #: :attr:`last_bus_trace` (a flat :class:`~repro.soc.bus.BusTrace`
    #: ring buffer; coverage drains it lazily).
    record_bus_trace: bool = False
    #: When True, runs consume the shared per-image predecode cache
    #: (:mod:`repro.isa.decodecache`) for ROM execution.  The cache
    #: stays enabled while a bus trace is recorded — the core replays
    #: the elided instruction-fetch events into the trace.
    use_decode_cache: bool = True
    #: When True, the session drives the core in blocks bounded by the
    #: SoC's peripheral event horizon (:meth:`CpuCore.run` +
    #: :meth:`SystemOnChip.flush_ticks`) instead of the per-step
    #: step/tick loop.  Both paths retire byte-identical results; the
    #: per-step loop is kept as the reference baseline.
    use_block_run: bool = True
    #: When True, the core's block loop executes superblock-at-a-time
    #: (straight-line fusion + chaining across taken branches); False
    #: selects the ISSUE 3 per-instruction hoisted loop, which
    #: benchmarks use as the pre-superblock baseline.  Observed runs
    #: (instruction trace, bus trace, wait-state charging) stay on the
    #: superblock path, replaying precomputed block templates in bulk.
    use_superblocks: bool = True
    #: When True, idle ``DJNZ`` self-loops are fast-forwarded
    #: analytically (clamped to the event horizon), including under
    #: traces and wait-state charging — the warped retire/fetch records
    #: are synthesized closed-form.  Self-disables only with the block
    #: engine itself: fault hooks, per-access ``trace_hooks`` and
    #: ``use_block_run=False`` run the reference per-instruction
    #: stream.
    use_fast_forward: bool = True
    #: When True, hot pc-validated superblock chains are promoted to
    #: generated Python closures (:mod:`repro.isa.jit`) with operands,
    #: branch targets and cycle costs baked in as constants — one
    #: interrupt/limit/horizon probe per block boundary preserved
    #: exactly.  False keeps the ISSUE 5 superblock engine as the
    #: byte-identity reference baseline.
    use_jit: bool = True

    last_soc: SystemOnChip | None = None
    last_cpu: CpuCore | None = None
    #: Bus-access recording of the last run (``BusTrace`` from ``run``;
    #: any iterable of ``BusAccess`` is accepted by consumers).
    last_bus_trace: "BusTrace | list | None" = None

    def build_soc(self, derivative: Derivative) -> SystemOnChip:
        return SystemOnChip(derivative)

    def configure_cpu(self, cpu: CpuCore, soc: SystemOnChip) -> None:
        """Hook for subclasses (fault injection, tracing)."""

    def run(
        self,
        image: MemoryImage,
        derivative: Derivative,
        max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
        entry_symbol: str = "_main",
    ) -> RunResult:
        """Load *image* into a fresh device and execute until HALT.

        Implemented as a single-use
        :class:`~repro.platforms.session.ExecutionSession`; callers that
        run many images on one platform should hold a session themselves
        to amortise device construction.
        """
        from repro.platforms.session import ExecutionSession

        return ExecutionSession(self, derivative).run(
            image,
            max_instructions=max_instructions,
            entry_symbol=entry_symbol,
        )

    # -- overridable observation points -----------------------------------
    def judge(self, cpu: CpuCore, soc: SystemOnChip) -> RunStatus:
        """Derive the verdict from what this platform can see."""
        if self.sees_registers:
            signature = cpu.regs.data[0]
        elif self.sees_memory:
            signature = soc.result_word()
        else:
            if soc.done_pin():
                return (
                    RunStatus.PASS if soc.pass_pin() else RunStatus.FAIL
                )
            return RunStatus.NO_DATA
        if signature == PASS_MAGIC:
            return RunStatus.PASS
        if signature == FAIL_MAGIC:
            return RunStatus.FAIL
        return RunStatus.FAIL

    def collect(
        self,
        cpu: CpuCore,
        soc: SystemOnChip,
        derivative: Derivative,
        status: RunStatus,
        fault_reason: str | None,
    ) -> RunResult:
        return RunResult(
            platform=self.name,
            derivative=derivative.name,
            status=status,
            instructions=cpu.instructions_retired,
            cycles=cpu.cycles,
            signature=cpu.regs.data[0] if self.sees_registers else None,
            result_word=soc.result_word() if self.sees_memory else None,
            uart_output=soc.uart_output() if self.sees_uart else None,
            done_pin=soc.done_pin(),
            pass_pin=soc.pass_pin(),
            fault_reason=fault_reason,
            trace=cpu.trace if self.sees_trace else None,
            registers=cpu.regs.snapshot() if self.sees_registers else None,
        )
