"""SC88 CPU core: the shared instruction executor.

Every execution platform — golden model, RTL, gate level, accelerator,
bondout, product silicon — runs this same core, because the paper's
premise is that one assembler test suite executes identically across all
platforms; platforms differ in *timing*, *visibility* and *fidelity*
(fault injection), not in instruction semantics.

Timing model: each instruction has a base cycle cost; bus wait states are
added on top when the platform enables them (``charge_wait_states``).
Functional platforms run with zero wait states; the cycle-accurate "RTL"
and "gate-level" platforms charge them.

Trap model: vectors live at the bottom of ROM, one 32-bit handler address
per vector.  Trap entry pushes the return PC then the PSW and clears the
interrupt-enable bit; ``RETI`` unwinds in reverse.  A trap whose vector
is zero is *unhandled* and raises :class:`CpuFault`, ending the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.isa.decodecache import (
    BASE_CYCLES,
    DecodeCache,
    MEM_LAST_WORD_KIND,
    MEM_LD_W,
    MEM_LDABS_A,
    MEM_LDABS_D,
    MEM_POP_A,
    MEM_POP_D,
    MEM_PUSH_A,
    MEM_PUSH_D,
    MEM_ST_W,
    MEM_STABS_A,
    MEM_STABS_D,
)
from repro.isa.encoding import decode_word, opcode_of, sign_extend_16
from repro.isa.instructions import Opcode, lookup_opcode
from repro.isa.jit import (
    JIT_THRESHOLD as _JIT_THRESHOLD,
    compile_chain as _jit_compile_chain,
)
from repro.isa.registers import (
    RegisterFile,
    STACK_POINTER_INDEX,
    WORD_MASK,
)
from repro.soc.bus import (
    Bus,
    BusError,
    PAGE_SHIFT,
    u16_pack_into as _u16_pack_into,
    u16_unpack_from as _u16_unpack_from,
    u32_pack_into as _u32_pack_into,
    u32_unpack_from as _u32_unpack_from,
)
from repro.soc.memorymap import (
    IRQ_VECTOR_BASE,
    TRAP_BUS_ERROR,
    TRAP_DIV_ZERO,
    TRAP_ILLEGAL_OPCODE,
    TRAP_MISALIGNED,
    VECTOR_BASE,
    VECTOR_COUNT,
)
from repro.soc.peripherals.intc import InterruptController


class CpuFault(Exception):
    """Unrecoverable CPU condition (unhandled trap, bad vector)."""

    def __init__(self, reason: str, pc: int):
        super().__init__(f"{reason} at pc={pc:#010x}")
        self.reason = reason
        self.pc = pc


@dataclass
class TraceEntry:
    """One retired instruction, for platforms with waveform visibility."""

    pc: int
    opcode: int
    mnemonic: str
    cycles: int


class InstructionTrace:
    """Flat retire log: ``(pc, opcode, mnemonic, cycles)`` tuples.

    Recording appends one tuple per retired instruction instead of a
    :class:`TraceEntry` object; consumers that want objects get them
    lazily through the sequence protocol, and bulk consumers
    (:mod:`repro.core.tracediff`) destructure :meth:`raw` directly."""

    __slots__ = ("_events", "_limit")

    def __init__(self, limit: int = 100_000):
        self._events: list[tuple[int, int, str, int]] = []
        self._limit = limit

    def record(self, pc: int, opcode: int, mnemonic: str, cycles: int) -> None:
        if len(self._events) < self._limit:
            self._events.append((pc, opcode, mnemonic, cycles))

    def extend_raw(
        self, records: "list[tuple] | tuple[tuple, ...]"
    ) -> None:
        """Bulk append: identical to one :meth:`record` call per record
        (records past the limit are dropped), in one ``list.extend``.
        The superblock engine emits a whole block's retire records from
        its precomputed template this way."""
        events = self._events
        space = self._limit - len(events)
        if space <= 0:
            return
        if len(records) <= space:
            events.extend(records)
        else:
            events.extend(records[:space])

    def extend_repeat(
        self, record: tuple[int, int, str, int], count: int
    ) -> None:
        """Append *record* *count* times — the retire stream of a warped
        idle spin, synthesized closed-form and clamped to the limit so a
        huge warp costs at most one buffer's worth of work."""
        events = self._events
        space = self._limit - len(events)
        if space <= 0 or count <= 0:
            return
        events.extend([record] * min(count, space))

    def raw(self) -> list[tuple[int, int, str, int]]:
        """The event list, oldest first — treat as read-only."""
        return self._events

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        for event in self._events:
            yield TraceEntry(*event)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [TraceEntry(*event) for event in self._events[index]]
        return TraceEntry(*self._events[index])


#: Base cycle cost per opcode — owned by the ISA decode layer so decode
#: and cycle lookup cache together; re-exported here for compatibility.
_BASE_CYCLES = BASE_CYCLES

_JUMP_TAKEN_EXTRA = 1


class CpuCore:
    """One SC88 core attached to a bus and an interrupt controller."""

    def __init__(
        self,
        bus: Bus,
        intc: InterruptController | None = None,
        charge_wait_states: bool = False,
    ):
        self.bus = bus
        self.intc = intc
        self.charge_wait_states = charge_wait_states
        self.regs = RegisterFile()
        self.halted = False
        self.instructions_retired = 0
        self.cycles = 0
        self.brk_events: list[int] = []
        self.trace: InstructionTrace | None = None
        self._pending_waits = 0
        #: Optional fault-injection hook: called with (opcode, result) and
        #: may return a corrupted result.  Used by the gate-level platform.
        self.alu_fault_hook: Callable[[int, int], int] | None = None
        #: Predecoded-instruction cache over the loaded image's ROM; when
        #: set, fetch/decode for cached addresses skips the bus entirely
        #: (a traced bus gets the elided fetch events replayed instead).
        #: RAM execution and self-modifying code miss it and take the
        #: legacy per-step decode path below.
        self.decode_cache: DecodeCache | None = None
        #: When True (the default), cached entries execute through the
        #: per-opcode executor table bound at decode time
        #: (``entry.exec(self, entry)`` — computed-goto-style dispatch).
        #: When False, cached entries run the pre-dispatch paths (the
        #: inline word micro-op branch plus the ``_execute`` chain),
        #: which benchmarks use as the pre-PR baseline.
        self.use_exec_table = True
        #: When True (the default), the hoisted block loop executes
        #: decoded instructions superblock-at-a-time (straight-line
        #: bodies fused, successors chained across taken branches) with
        #: idle ``DJNZ`` self-loops fast-forwarded analytically.  When
        #: False, :meth:`run` uses the per-instruction hoisted loop —
        #: the ISSUE 3 engine, kept as the benchmark baseline.
        self.use_superblocks = True
        #: Gates the idle-spin fast-forward independently of superblock
        #: fusion (ablation / debugging).  The superblock engine —
        #: including the warp — runs under instruction traces, bus
        #: traces and wait-state charging (replaying each block's
        #: precomputed observation templates in bulk); only fault hooks,
        #: per-access ``trace_hooks`` callbacks and
        #: ``use_block_run=False`` sessions still take the reference
        #: per-instruction retire stream.
        self.use_fast_forward = True
        #: When True (the default), hot superblock chains are promoted
        #: to compiled template-JIT functions (``isa/jit.py``): operand
        #: fields, branch targets and cycle costs baked as constants,
        #: one deadline/limit/interrupt probe per block boundary.  When
        #: False, the superblock loops run every block entry-by-entry —
        #: the ISSUE 5 engine, kept as the byte-identity reference.
        self.use_jit = True
        #: JIT chains compiled on this core's trigger (telemetry).
        self.jit_chains = 0
        #: Instructions retired inside compiled JIT chains (telemetry:
        #: nonzero proves chains actually executed, not just compiled).
        self.jit_exec_steps = 0
        #: Idle-spin warps performed (telemetry for tests/benchmarks).
        self.ff_warps = 0
        #: Superblocks executed through the block engine (telemetry:
        #: nonzero proves the fast path engaged, not a silent fallback).
        self.sb_blocks = 0
        #: Bulk observation-template replays performed by the observed
        #: block engine (body template emissions + warped spin
        #: syntheses).
        self.sb_replays = 0
        #: Legacy per-step fallbacks taken inside the superblock loops
        #: (RAM execution / uncacheable addresses) — fast-path coverage
        #: regressions show up here as silent nonzero counts.
        self.sb_fallback_steps = 0
        #: Cycle deadline of the current :meth:`run` block; peripheral
        #: scheduling shortens it via :meth:`cut_block` when an SFR
        #: write may have moved the next event horizon.
        self._block_deadline: int | None = None
        #: Superblock chain memo carried between :meth:`run` blocks:
        #: ``(decode_cache, predicted_next_block)``.  Validated against
        #: the live cache and pc before use; flushed by
        #: :meth:`cut_block` (an SFR write may have rescheduled the
        #: world) and by :meth:`reset`.
        self._sb_resume: tuple | None = None
        #: Bumped by :meth:`cut_block`; a runner that observes a bump
        #: mid-run discards its chain instead of persisting it.
        self._sb_epoch = 0

    # -- lifecycle ---------------------------------------------------------
    def reset(self, entry: int, stack_pointer: int) -> None:
        self.regs.reset(sp_init=stack_pointer)
        self.regs.pc = entry
        self.halted = False
        self.instructions_retired = 0
        self.cycles = 0
        self.brk_events = []
        self._pending_waits = 0
        self.ff_warps = 0
        self.sb_blocks = 0
        self.sb_replays = 0
        self.sb_fallback_steps = 0
        self.jit_chains = 0
        self.jit_exec_steps = 0
        self._sb_resume = None
        self._sb_epoch += 1

    def enable_trace(self, limit: int = 100_000) -> None:
        self.trace = InstructionTrace(limit)

    # -- lane state (batched lock-step engine) ------------------------------
    def snapshot_lane_state(self) -> dict:
        """Architectural + bookkeeping state for a batch lane fork.

        Captured at a block boundary (no instruction in flight); the
        engine-internal block deadline and superblock chain memo are
        deliberately not part of it — a restored core starts a fresh
        block and re-resolves its chain from the decode cache.
        """
        regs = self.regs
        trace = self.trace
        return {
            "data": list(regs.data),
            "address": list(regs.address),
            "pc": regs.pc,
            "psw": regs.psw.value,
            "halted": self.halted,
            "retired": self.instructions_retired,
            "cycles": self.cycles,
            "brk_events": list(self.brk_events),
            "pending_waits": self._pending_waits,
            "ff_warps": self.ff_warps,
            "sb_blocks": self.sb_blocks,
            "sb_replays": self.sb_replays,
            "sb_fallback_steps": self.sb_fallback_steps,
            "jit_chains": self.jit_chains,
            "jit_exec_steps": self.jit_exec_steps,
            "trace": (
                None
                if trace is None
                else (trace._limit, list(trace.raw()))
            ),
        }

    def restore_lane_state(self, state: dict) -> None:
        """Load a :meth:`snapshot_lane_state` snapshot (reusable: the
        snapshot is not consumed)."""
        regs = self.regs
        regs.data[:] = state["data"]
        regs.address[:] = state["address"]
        regs.pc = state["pc"]
        regs.psw.value = state["psw"]
        self.halted = state["halted"]
        self.instructions_retired = state["retired"]
        self.cycles = state["cycles"]
        self.brk_events = list(state["brk_events"])
        self._pending_waits = state["pending_waits"]
        self.ff_warps = state["ff_warps"]
        self.sb_blocks = state["sb_blocks"]
        self.sb_replays = state["sb_replays"]
        self.sb_fallback_steps = state["sb_fallback_steps"]
        self.jit_chains = state["jit_chains"]
        self.jit_exec_steps = state["jit_exec_steps"]
        if state["trace"] is None:
            self.trace = None
        else:
            limit, events = state["trace"]
            trace = InstructionTrace(limit)
            trace.extend_raw(events)
            self.trace = trace
        self._block_deadline = None
        self._sb_resume = None
        self._sb_epoch += 1

    # -- bus helpers -----------------------------------------------------------
    # Word accesses (fetch fallback, stack, word loads/stores) take the
    # bus's word-specialised fast path; other sizes use the generic one.
    def _read(self, address: int, size: int) -> int:
        if size == 4:
            value, waits = self.bus.read_word(address)
        else:
            value, waits = self.bus.read(address, size)
        if self.charge_wait_states:
            self._pending_waits += waits
        return value

    def _write(self, address: int, value: int, size: int) -> None:
        if size == 4:
            waits = self.bus.write_word(address, value)
        else:
            waits = self.bus.write(address, value, size)
        if self.charge_wait_states:
            self._pending_waits += waits

    def _push(self, value: int) -> None:
        sp = (self.regs.sp - 4) & WORD_MASK
        self.regs.sp = sp
        waits = self.bus.write_word(sp, value & WORD_MASK)
        if self.charge_wait_states:
            self._pending_waits += waits

    def _pop(self) -> int:
        value, waits = self.bus.read_word(self.regs.sp)
        if self.charge_wait_states:
            self._pending_waits += waits
        self.regs.sp = (self.regs.sp + 4) & WORD_MASK
        return value

    # Direct word accessors for the predecoded memory micro-ops: when
    # the access is untraced, aligned and lands on a Memory-backed page,
    # read/write the mapping's byte buffer in place — no bus method
    # call, no (value, waits) tuple.  Anything else (peripherals,
    # partial pages, active tracing, misalignment) takes the bus's word
    # path, which preserves full semantics.
    def _read_word_fast(self, address: int) -> int:
        bus = self.bus
        if (
            bus.trace_buffer is None
            and not bus.trace_hooks
            and not address & 3
        ):
            mapping = bus.page_table.get(address >> PAGE_SHIFT)
            if mapping is not None and mapping.word_buf is not None:
                bus.access_count += 1
                if self.charge_wait_states:
                    self._pending_waits += mapping.wait_states
                return _u32_unpack_from(
                    mapping.word_buf, address - mapping.base
                )[0]
        value, waits = bus.read_word(address)
        if self.charge_wait_states:
            self._pending_waits += waits
        return value

    def _write_word_fast(self, address: int, value: int) -> None:
        bus = self.bus
        if (
            bus.trace_buffer is None
            and not bus.trace_hooks
            and not address & 3
        ):
            mapping = bus.page_table.get(address >> PAGE_SHIFT)
            if mapping is not None and mapping.word_wbuf is not None:
                bus.access_count += 1
                if self.charge_wait_states:
                    self._pending_waits += mapping.wait_states
                _u32_pack_into(
                    mapping.word_wbuf,
                    address - mapping.base,
                    value & 0xFFFF_FFFF,
                )
                return
        waits = self.bus.write_word(address, value)
        if self.charge_wait_states:
            self._pending_waits += waits

    # Halfword/byte flavours for the LD.H/LD.B/ST.H/ST.B micro-ops.
    # An aligned halfword (or any byte) can never straddle a 256-byte
    # page, so a page-table hit proves the access is inside the
    # mapping's buffer.  Loads zero-extend, stores truncate — matching
    # the bus's generic sized access exactly.
    def _read_half_fast(self, address: int) -> int:
        bus = self.bus
        if (
            bus.trace_buffer is None
            and not bus.trace_hooks
            and not address & 1
        ):
            mapping = bus.page_table.get(address >> PAGE_SHIFT)
            if mapping is not None and mapping.word_buf is not None:
                bus.access_count += 1
                if self.charge_wait_states:
                    self._pending_waits += mapping.wait_states
                return _u16_unpack_from(
                    mapping.word_buf, address - mapping.base
                )[0]
        value, waits = bus.read(address, 2)
        if self.charge_wait_states:
            self._pending_waits += waits
        return value

    def _write_half_fast(self, address: int, value: int) -> None:
        bus = self.bus
        if (
            bus.trace_buffer is None
            and not bus.trace_hooks
            and not address & 1
        ):
            mapping = bus.page_table.get(address >> PAGE_SHIFT)
            if mapping is not None and mapping.word_wbuf is not None:
                bus.access_count += 1
                if self.charge_wait_states:
                    self._pending_waits += mapping.wait_states
                _u16_pack_into(
                    mapping.word_wbuf,
                    address - mapping.base,
                    value & 0xFFFF,
                )
                return
        waits = bus.write(address, value, 2)
        if self.charge_wait_states:
            self._pending_waits += waits

    def _read_byte_fast(self, address: int) -> int:
        bus = self.bus
        if bus.trace_buffer is None and not bus.trace_hooks:
            mapping = bus.page_table.get(address >> PAGE_SHIFT)
            if mapping is not None and mapping.word_buf is not None:
                bus.access_count += 1
                if self.charge_wait_states:
                    self._pending_waits += mapping.wait_states
                return mapping.word_buf[address - mapping.base]
        value, waits = bus.read(address, 1)
        if self.charge_wait_states:
            self._pending_waits += waits
        return value

    def _write_byte_fast(self, address: int, value: int) -> None:
        bus = self.bus
        if bus.trace_buffer is None and not bus.trace_hooks:
            mapping = bus.page_table.get(address >> PAGE_SHIFT)
            if mapping is not None and mapping.word_wbuf is not None:
                bus.access_count += 1
                if self.charge_wait_states:
                    self._pending_waits += mapping.wait_states
                mapping.word_wbuf[address - mapping.base] = value & 0xFF
                return
        waits = bus.write(address, value, 1)
        if self.charge_wait_states:
            self._pending_waits += waits

    # -- traps / interrupts --------------------------------------------------
    def take_trap(self, number: int, return_pc: int) -> None:
        if not 0 <= number < VECTOR_COUNT:
            raise CpuFault(f"trap number {number} out of range", return_pc)
        vector_address = VECTOR_BASE + 4 * number
        handler = self._read(vector_address, 4)
        if handler == 0:
            raise CpuFault(f"unhandled trap {number}", return_pc)
        try:
            self._push(return_pc)
            self._push(self.regs.psw.value)
        except BusError as exc:
            # Trap-frame push failed (stack ran off mapped memory): a
            # double fault — unrecoverable by architecture.
            raise CpuFault(
                f"double fault: cannot push trap {number} frame "
                f"({exc})",
                return_pc,
            ) from exc
        self.regs.psw.interrupt_enable = False
        self.regs.pc = handler

    def _check_interrupts(self) -> bool:
        if self.intc is None or not self.regs.psw.interrupt_enable:
            return False
        line = self.intc.pending_line()
        if line is None:
            return False
        self.take_trap(IRQ_VECTOR_BASE + line, self.regs.pc)
        self.cycles += 4  # interrupt entry latency
        return True

    # -- main step -----------------------------------------------------------
    def step(self) -> int:
        """Execute one instruction; returns cycles consumed (including
        interrupt entry if one was taken first)."""
        if self.halted:
            return 0
        start_cycles = self.cycles
        self._pending_waits = 0
        self._check_interrupts()

        pc = self.regs.pc
        entry = (
            self.decode_cache.get(pc)
            if self.decode_cache is not None
            else None
        )
        if entry is None:
            # Legacy path: bus fetch + per-step decode + if/elif chain.
            # Kept for RAM execution, self-modifying code and fault/trap
            # cases.
            return self._step_uncached(pc, start_cycles)

        # Predecoded fast path: fetch, decode and base-cycle lookup
        # were done once for this address; charge the wait states a
        # real fetch would have cost so timing stays identical, and
        # replay the fetch bus events when someone is watching the
        # bus so traced runs observe the same access stream.
        if self.charge_wait_states:
            self._pending_waits += entry.fetch_waits
        bus = self.bus
        if bus.trace_buffer is not None or bus.trace_hooks:
            bus.emit_fetches(entry.fetch_events)
        next_pc = entry.next_pc
        try:
            if self.use_exec_table and (
                self.alu_fault_hook is None or entry.mem_kind
            ):
                # Table dispatch: one indirect call to the per-opcode
                # executor bound at decode time.  Memory micro-ops
                # never touch the fault hook, so they stay on the
                # table even under fault injection; everything else
                # drops to the reference chain when a hook is armed.
                taken = entry.exec(self, entry)
            elif entry.mem_kind and entry.mem_kind <= MEM_LAST_WORD_KIND:
                taken = self._exec_mem_inline(entry, next_pc)
            else:
                taken = self._execute(
                    entry.op, entry.fields, entry.literal, next_pc
                )
        except BusError:
            # Convert data-access failures into the architectural trap.
            self.take_trap(TRAP_BUS_ERROR, next_pc)
            self.cycles += 2
            self.instructions_retired += 1
            return self.cycles - start_cycles

        self.instructions_retired += 1
        cost = entry.base_cycles + self._pending_waits
        if taken:
            cost += _JUMP_TAKEN_EXTRA
        self.cycles += cost

        if self.trace is not None:
            self.trace.record(pc, entry.opcode, entry.mnemonic, cost)
        return self.cycles - start_cycles

    def _step_uncached(self, pc: int, start_cycles: int) -> int:
        """Fetch/decode through the bus and execute via the reference
        chain — the pre-predecode interpreter, kept for cache misses."""
        try:
            word = self._read(pc, 4)
        except BusError:
            self.take_trap(TRAP_BUS_ERROR, pc)
            self.cycles += 2
            return self.cycles - start_cycles

        opcode = opcode_of(word)
        try:
            spec = lookup_opcode(opcode)
        except KeyError:
            self.take_trap(TRAP_ILLEGAL_OPCODE, pc + 4)
            self.cycles += 2
            return self.cycles - start_cycles

        literal = None
        if spec.fmt.has_literal:
            try:
                literal = self._read(pc + 4, 4)
            except BusError:
                # Truncated two-word instruction at the end of
                # mapped memory: same architectural outcome as a
                # failed opcode-word fetch.
                self.take_trap(TRAP_BUS_ERROR, pc)
                self.cycles += 2
                return self.cycles - start_cycles
        next_pc = pc + spec.size_bytes
        fields = decode_word(spec.fmt, word)

        try:
            taken = self._execute(Opcode(opcode), fields, literal, next_pc)
        except BusError:
            self.take_trap(TRAP_BUS_ERROR, next_pc)
            self.cycles += 2
            self.instructions_retired += 1
            return self.cycles - start_cycles

        self.instructions_retired += 1
        cost = _BASE_CYCLES[opcode] + self._pending_waits
        if taken:
            cost += _JUMP_TAKEN_EXTRA
        self.cycles += cost

        if self.trace is not None:
            self.trace.record(pc, opcode, spec.mnemonic, cost)
        return self.cycles - start_cycles

    def _exec_mem_inline(self, entry, next_pc: int) -> bool:
        """Pre-dispatch execution of the word-memory micro-ops: the
        inline branch the executor table replaced, kept verbatim as the
        ``use_exec_table=False`` baseline."""
        mem_kind = entry.mem_kind
        regs = self.regs
        regs.pc = next_pc
        r1 = entry.r1
        if mem_kind == MEM_LD_W:
            regs.data[r1] = self._read_word_fast(
                (regs.address[entry.r2] + entry.mem_disp) & WORD_MASK
            )
        elif mem_kind == MEM_ST_W:
            self._write_word_fast(
                (regs.address[entry.r2] + entry.mem_disp) & WORD_MASK,
                regs.data[r1],
            )
        elif mem_kind == MEM_PUSH_D:
            sp = (regs.address[STACK_POINTER_INDEX] - 4) & WORD_MASK
            regs.address[STACK_POINTER_INDEX] = sp
            self._write_word_fast(sp, regs.data[r1])
        elif mem_kind == MEM_POP_D:
            regs.data[r1] = self._read_word_fast(
                regs.address[STACK_POINTER_INDEX]
            )
            regs.address[STACK_POINTER_INDEX] = (
                regs.address[STACK_POINTER_INDEX] + 4
            ) & WORD_MASK
        elif mem_kind == MEM_PUSH_A:
            value = regs.address[r1]  # before sp update (PUSH sp)
            sp = (regs.address[STACK_POINTER_INDEX] - 4) & WORD_MASK
            regs.address[STACK_POINTER_INDEX] = sp
            self._write_word_fast(sp, value)
        elif mem_kind == MEM_POP_A:
            value = self._read_word_fast(regs.address[STACK_POINTER_INDEX])
            regs.address[STACK_POINTER_INDEX] = (
                regs.address[STACK_POINTER_INDEX] + 4
            ) & WORD_MASK
            regs.address[r1] = value
        elif mem_kind == MEM_LDABS_D:
            regs.data[r1] = self._read_word_fast(entry.mem_disp)
        elif mem_kind == MEM_LDABS_A:
            regs.address[r1] = self._read_word_fast(entry.mem_disp)
        elif mem_kind == MEM_STABS_D:
            self._write_word_fast(entry.mem_disp, regs.data[r1])
        else:  # MEM_STABS_A
            self._write_word_fast(entry.mem_disp, regs.address[r1])
        return False

    # -- block execution ------------------------------------------------------
    def cut_block(self) -> None:
        """End the current :meth:`run` block after the instruction in
        flight (peripheral scheduling calls this when an SFR write may
        have moved the next event horizon).  Also flushes the cached
        superblock successor chain: the store that cut the block may
        have rescheduled the world, so the next block must re-resolve
        from the decode cache rather than ride a stale prediction."""
        self._block_deadline = self.cycles
        self._sb_resume = None
        self._sb_epoch += 1

    def run(
        self,
        cycle_budget: int | None = None,
        instruction_limit: int | None = None,
    ) -> int:
        """Execute a block of instructions; returns cycles consumed.

        Stops at HALT, when *instruction_limit* (an absolute
        ``instructions_retired`` ceiling) is reached, or — checked after
        each retired instruction, exactly where the per-step loop
        ticked peripherals — once *cycle_budget* cycles have been
        consumed or :meth:`cut_block` fired.  Engine selection: the
        superblock loops run whenever a decode cache and the executor
        table are available and no fault hook or per-access
        ``trace_hooks`` callback is armed — observation (instruction
        trace, bus trace buffer, wait-state charging) selects the
        template-replaying observed variant instead of disabling the
        engine.  With ``use_superblocks=False``, observation still
        drops to the per-step reference loop (the pre-superblock
        baseline), while the unobserved case keeps the per-instruction
        hoisted loop: interrupt check, cache probe and one executor
        call per instruction.
        """
        if self.halted:
            return 0
        start_cycles = self.cycles
        self._block_deadline = (
            None if cycle_budget is None else start_cycles + cycle_budget
        )
        limit = instruction_limit
        cache = self.decode_cache
        bus = self.bus
        hoistable = (
            cache is not None
            and self.use_exec_table
            and self.alu_fault_hook is None
            and not bus.trace_hooks
        )
        observed = (
            self.trace is not None
            or self.charge_wait_states
            or bus.trace_buffer is not None
        )
        if hoistable and self.use_superblocks:
            if observed:
                self._run_superblocks_observed(limit)
            else:
                self._run_superblocks(limit)
            return self.cycles - start_cycles

        if not hoistable or observed:
            while not self.halted:
                if limit is not None and self.instructions_retired >= limit:
                    break
                self.step()
                deadline = self._block_deadline
                if deadline is not None and self.cycles >= deadline:
                    break
            return self.cycles - start_cycles

        # Hoisted hot loop: every iteration is at most an interrupt
        # probe, a cache probe and one executor call.
        self._pending_waits = 0
        regs = self.regs
        psw = regs.psw
        intc = self.intc
        get = cache.get
        while not self.halted:
            if limit is not None and self.instructions_retired >= limit:
                break
            if intc is not None and psw.interrupt_enable:
                self._check_interrupts()
            entry = get(regs.pc)
            if entry is None:
                # RAM execution / trap-prone address: one reference
                # step (interrupts were already serviced above; the
                # re-check inside is a no-op because trap entry clears
                # the interrupt-enable bit).
                self._step_uncached(regs.pc, self.cycles)
            else:
                try:
                    taken = entry.exec(self, entry)
                except BusError:
                    self.take_trap(TRAP_BUS_ERROR, entry.next_pc)
                    self.cycles += 2
                    self.instructions_retired += 1
                else:
                    self.instructions_retired += 1
                    self.cycles += (
                        entry.base_cycles + _JUMP_TAKEN_EXTRA
                        if taken
                        else entry.base_cycles
                    )
            deadline = self._block_deadline
            if deadline is not None and self.cycles >= deadline:
                break
        return self.cycles - start_cycles

    def _run_superblocks(self, limit: int | None) -> None:
        """Superblock execution loop (the hoisted invariants hold).

        Retires instructions block-at-a-time: the interrupt probe and
        the limit check run once per superblock (sound because body
        instructions are pure-register — they cannot raise bus traffic,
        flush peripheral time, take traps, or arm the interrupt-enable
        bit), the straight-line body executes as one fused loop with
        cycles and retire counts batched, and the terminator chains
        directly to its cached successor block.  Near a cycle deadline
        or retire limit the body falls back to single-instruction
        stepping so stop points stay exactly where the per-instruction
        loops put them.

        Idle spins (``DJNZ rX, .``) are fast-forwarded: the remaining
        taken iterations are warped analytically — counter, logic
        flags, cycle counter and retire count all land exactly where
        per-instruction execution would put them — clamped to the
        block deadline (the SoC's event horizon) and the retire limit
        so interrupt delivery and stop points are byte-identical.  The
        final, not-taken iteration always executes normally.

        :meth:`_run_superblocks_observed` is this loop plus bulk
        observation-template replay, kept separate so the unobserved
        hot path carries no per-block observation branches.  Any
        change to the control flow here (warp clamps, stop rules,
        chaining, fallback handling) must be mirrored there.
        """
        regs = self.regs
        psw = regs.psw
        intc = self.intc
        cache = self.decode_cache
        block_at = cache.block_at
        fast_forward = self.use_fast_forward
        use_jit = self.use_jit
        epoch = self._sb_epoch
        resume = self._sb_resume
        sb = resume[1] if resume is not None and resume[0] is cache else None
        self._pending_waits = 0
        while not self.halted:
            retired = self.instructions_retired
            if limit is not None and retired >= limit:
                break
            if intc is not None and psw.interrupt_enable:
                self._check_interrupts()
            pc = regs.pc
            if sb is None or sb.start != pc:
                sb = block_at(pc)
                if sb is None:
                    # RAM execution / trap-prone address: one reference
                    # step through the legacy bus-fetch path.
                    self.sb_fallback_steps += 1
                    self._step_uncached(pc, self.cycles)
                    deadline = self._block_deadline
                    if deadline is not None and self.cycles >= deadline:
                        break
                    continue
            if use_jit:
                fn = sb.jit_u
                if fn is None:
                    heat = sb.heat + 1
                    sb.heat = heat
                    if heat == _JIT_THRESHOLD:
                        self.jit_chains += _jit_compile_chain(cache, sb)
                        fn = sb.jit_u
                if fn is not None:
                    blocks = fn(self, limit)
                    if blocks:
                        self.sb_blocks += blocks
                        delta = self.instructions_retired - retired
                        self.jit_exec_steps += delta
                        cache.hits += delta
                        sb = None
                        deadline = self._block_deadline
                        if deadline is not None and self.cycles >= deadline:
                            break
                        continue
                    # Zero blocks: the entry precheck refused to start
                    # (window narrower than the head's body) — take the
                    # interpreter's narrow path below.
            self.sb_blocks += 1
            if fast_forward and sb.spin_reg >= 0:
                counter = regs.data[sb.spin_reg]
                warp = (counter - 1) & WORD_MASK
                if limit is not None and warp > limit - retired:
                    warp = limit - retired
                deadline = self._block_deadline
                if deadline is not None:
                    room = deadline - self.cycles
                    cost = sb.spin_cost
                    # First iteration count whose retire lands at or
                    # past the deadline — exactly where per-instruction
                    # stepping stops.
                    boundary = -(-room // cost) if room > 0 else 0
                    if warp > boundary:
                        warp = boundary
                if warp > 0:
                    value = (counter - warp) & WORD_MASK
                    regs.data[sb.spin_reg] = value
                    psw.set_logic_flags(value)
                    self.instructions_retired = retired + warp
                    self.cycles += warp * sb.spin_cost
                    cache.hits += warp
                    self.ff_warps += 1
                    if deadline is not None and self.cycles >= deadline:
                        break
                    continue  # remaining iterations retire normally
            body = sb.body
            if body:
                deadline = self._block_deadline
                if (limit is None or retired + sb.body_count <= limit) and (
                    deadline is None
                    or self.cycles + sb.body_cycles < deadline
                ):
                    for entry in body:
                        entry.exec(self, entry)
                    retired += sb.body_count
                    self.instructions_retired = retired
                    self.cycles += sb.body_cycles
                    cache.hits += sb.body_count
                else:
                    # Within a limit/deadline window narrower than the
                    # body: retire one instruction and re-resolve, so
                    # the stop point matches per-instruction stepping.
                    entry = body[0]
                    entry.exec(self, entry)
                    self.instructions_retired = retired + 1
                    self.cycles += entry.base_cycles
                    cache.hits += 1
                    sb = None
                    if deadline is not None and self.cycles >= deadline:
                        break
                    continue
                if limit is not None and retired >= limit:
                    break  # retire ceiling reached before the terminator
            term = sb.terminator
            if term is None:
                # Next address not cacheable: resolve it at the top of
                # the loop (legacy step or a fresh block).
                sb = None
                deadline = self._block_deadline
                if deadline is not None and self.cycles >= deadline:
                    break
                continue
            try:
                taken = term.exec(self, term)
            except BusError:
                self.take_trap(TRAP_BUS_ERROR, term.next_pc)
                self.cycles += 2
                self.instructions_retired += 1
                sb = None
            else:
                self.instructions_retired += 1
                self.cycles += (
                    term.base_cycles + _JUMP_TAKEN_EXTRA
                    if taken
                    else term.base_cycles
                )
                cache.hits += 1
                # Chain: ride the cached successor when it matches the
                # live pc, otherwise resolve and memoise it.
                succ = sb.succ_taken if taken else sb.succ_fall
                next_pc = regs.pc
                if succ is None or succ.start != next_pc:
                    succ = block_at(next_pc)
                    if succ is not None:
                        if taken:
                            sb.succ_taken = succ
                        else:
                            sb.succ_fall = succ
                sb = succ
            deadline = self._block_deadline
            if deadline is not None and self.cycles >= deadline:
                break
        # Persist the predicted chain for the next block run — unless a
        # cut_block() mid-run flushed it (the cut wins: re-resolve).
        if self._sb_epoch == epoch:
            self._sb_resume = None if sb is None else (cache, sb)

    def _run_superblocks_observed(self, limit: int | None) -> None:
        """Superblock execution under observation: an instruction trace,
        a bus trace buffer and/or wait-state charging is active (no
        fault hook, no per-access ``trace_hooks``).

        Retires the same block-at-a-time stream as
        :meth:`_run_superblocks`, replaying each block's precomputed
        observation templates in bulk: the body's concatenated fetch
        events land in the bus trace through one wrap-correct slice
        append, its retire-trace records come from the block's static
        template (cost = base cycles, with fetch waits folded in the
        cycle-accurate variant), and a warped ``DJNZ`` spin synthesizes
        its repeated fetch/retire records closed-form, clamped to each
        ring's capacity.  Fetch wait states are folded into the block
        cycle totals at formation; only data-access waits are charged
        inline (and only terminators can incur them — body entries are
        pure-register).

        Byte-identical to the per-step reference by construction: the
        cost formula, stop rules and event order all match
        :meth:`step`.  The one asymmetry is wait debt left by an
        interrupt entry (vector read + frame pushes): ``step`` folds it
        into the next instruction's cost, which a static template
        cannot carry, so that first instruction retires through the
        single-entry path below.

        Control flow deliberately mirrors :meth:`_run_superblocks`
        (kept separate so the unobserved hot path pays no observation
        branches) — changes to either loop's warp clamps, stop rules,
        chaining or fallback handling must land in both.
        """
        regs = self.regs
        psw = regs.psw
        intc = self.intc
        cache = self.decode_cache
        block_at = cache.block_at
        fast_forward = self.use_fast_forward
        use_jit = self.use_jit
        epoch = self._sb_epoch
        resume = self._sb_resume
        sb = resume[1] if resume is not None and resume[0] is cache else None
        bus = self.bus
        bus_trace = bus.trace_buffer
        trace = self.trace
        charge = self.charge_wait_states
        while not self.halted:
            retired = self.instructions_retired
            if limit is not None and retired >= limit:
                break
            self._pending_waits = 0
            if intc is not None and psw.interrupt_enable:
                self._check_interrupts()
            pc = regs.pc
            if sb is None or sb.start != pc:
                sb = block_at(pc)
                if sb is None:
                    # RAM execution / trap-prone address: one reference
                    # step (it records its own trace entry and charges
                    # its own waits, interrupt-entry debt included).
                    self.sb_fallback_steps += 1
                    self._step_uncached(pc, self.cycles)
                    deadline = self._block_deadline
                    if deadline is not None and self.cycles >= deadline:
                        break
                    continue
            if use_jit and not self._pending_waits:
                # Interrupt-entry wait debt takes the single-entry path
                # below (a baked template cannot carry it), exactly as
                # the template-replay fast path requires.
                fn = sb.jit_ow if charge else sb.jit_ot
                if fn is None:
                    heat = sb.heat + 1
                    sb.heat = heat
                    if heat == _JIT_THRESHOLD:
                        self.jit_chains += _jit_compile_chain(cache, sb)
                        fn = sb.jit_ow if charge else sb.jit_ot
                if fn is not None:
                    blocks = fn(self, limit)
                    if blocks:
                        self.sb_blocks += blocks
                        delta = self.instructions_retired - retired
                        self.jit_exec_steps += delta
                        cache.hits += delta
                        sb = None
                        deadline = self._block_deadline
                        if deadline is not None and self.cycles >= deadline:
                            break
                        continue
                    # Zero blocks: the entry precheck refused to start —
                    # take the narrow path below.
            self.sb_blocks += 1
            pending = self._pending_waits
            if fast_forward and sb.spin_reg >= 0 and not pending:
                counter = regs.data[sb.spin_reg]
                warp = (counter - 1) & WORD_MASK
                if limit is not None and warp > limit - retired:
                    warp = limit - retired
                cost = sb.spin_cost_w if charge else sb.spin_cost
                deadline = self._block_deadline
                if deadline is not None:
                    room = deadline - self.cycles
                    # First iteration count whose retire lands at or
                    # past the deadline — exactly where per-instruction
                    # stepping stops.
                    boundary = -(-room // cost) if room > 0 else 0
                    if warp > boundary:
                        warp = boundary
                if warp > 0:
                    term = sb.terminator
                    value = (counter - warp) & WORD_MASK
                    regs.data[sb.spin_reg] = value
                    psw.set_logic_flags(value)
                    self.instructions_retired = retired + warp
                    self.cycles += warp * cost
                    cache.hits += warp
                    self.ff_warps += 1
                    self.sb_replays += 1
                    if bus_trace is not None:
                        bus.access_count += warp * len(term.fetch_events)
                        bus_trace.extend_repeat(term.fetch_events, warp)
                    if trace is not None:
                        trace.extend_repeat(
                            (term.pc, term.opcode, term.mnemonic, cost),
                            warp,
                        )
                    if deadline is not None and self.cycles >= deadline:
                        break
                    continue  # remaining iterations retire normally
            body = sb.body
            if body:
                deadline = self._block_deadline
                body_cycles = sb.body_cycles_w if charge else sb.body_cycles
                if (
                    not pending
                    and (limit is None or retired + sb.body_count <= limit)
                    and (
                        deadline is None
                        or self.cycles + body_cycles < deadline
                    )
                ):
                    for entry in body:
                        entry.exec(self, entry)
                    retired += sb.body_count
                    self.instructions_retired = retired
                    self.cycles += body_cycles
                    cache.hits += sb.body_count
                    self.sb_replays += 1
                    if bus_trace is not None:
                        bus.access_count += len(sb.fetch_events)
                        bus_trace.extend_raw(sb.fetch_events)
                    if trace is not None:
                        trace.extend_raw(
                            sb.trace_tmpl_w if charge else sb.trace_tmpl
                        )
                else:
                    # Window narrower than the body, or interrupt-entry
                    # wait debt the static template cannot carry: retire
                    # one instruction the per-step way and re-resolve.
                    entry = body[0]
                    if charge:
                        self._pending_waits = pending + entry.fetch_waits
                    if bus_trace is not None:
                        bus.access_count += len(entry.fetch_events)
                        bus_trace.extend_raw(entry.fetch_events)
                    entry.exec(self, entry)
                    cost = entry.base_cycles + self._pending_waits
                    self.instructions_retired = retired + 1
                    self.cycles += cost
                    cache.hits += 1
                    if trace is not None:
                        trace.record(
                            entry.pc, entry.opcode, entry.mnemonic, cost
                        )
                    sb = None
                    if deadline is not None and self.cycles >= deadline:
                        break
                    continue
                if limit is not None and retired >= limit:
                    break  # retire ceiling reached before the terminator
            term = sb.terminator
            if term is None:
                # Next address not cacheable: resolve it at the top of
                # the loop (legacy step or a fresh block).
                sb = None
                deadline = self._block_deadline
                if deadline is not None and self.cycles >= deadline:
                    break
                continue
            # Terminator: per-instruction, step()-equivalent.  Data
            # accesses route through the traced bus (recording their
            # own events and charging their own waits); fetch events
            # are replayed first, exactly as step() emits them.
            if charge:
                self._pending_waits += term.fetch_waits
            if bus_trace is not None:
                bus.access_count += len(term.fetch_events)
                bus_trace.extend_raw(term.fetch_events)
            try:
                taken = term.exec(self, term)
            except BusError:
                self.take_trap(TRAP_BUS_ERROR, term.next_pc)
                self.cycles += 2
                self.instructions_retired += 1
                sb = None
            else:
                self.instructions_retired += 1
                cost = term.base_cycles + self._pending_waits
                if taken:
                    cost += _JUMP_TAKEN_EXTRA
                self.cycles += cost
                cache.hits += 1
                if trace is not None:
                    trace.record(term.pc, term.opcode, term.mnemonic, cost)
                # Chain: ride the cached successor when it matches the
                # live pc, otherwise resolve and memoise it.
                succ = sb.succ_taken if taken else sb.succ_fall
                next_pc = regs.pc
                if succ is None or succ.start != next_pc:
                    succ = block_at(next_pc)
                    if succ is not None:
                        if taken:
                            sb.succ_taken = succ
                        else:
                            sb.succ_fall = succ
                sb = succ
            deadline = self._block_deadline
            if deadline is not None and self.cycles >= deadline:
                break
        # Persist the predicted chain for the next block run — unless a
        # cut_block() mid-run flushed it (the cut wins: re-resolve).
        if self._sb_epoch == epoch:
            self._sb_resume = None if sb is None else (cache, sb)

    # -- execution ---------------------------------------------------------
    def _execute(
        self,
        opcode: Opcode,
        fields: dict[str, int],
        literal: int | None,
        next_pc: int,
    ) -> bool:
        """Execute; returns True when a branch was taken (extra cycle)."""
        regs = self.regs
        data = regs.data
        addr = regs.address
        psw = regs.psw
        regs.pc = next_pc  # default fall-through; control flow overrides
        r1 = fields.get("r1", 0)
        r2 = fields.get("r2", 0)
        r3 = fields.get("r3", 0)

        def alu_result(value: int) -> int:
            value &= WORD_MASK
            if self.alu_fault_hook is not None:
                value = self.alu_fault_hook(int(opcode), value) & WORD_MASK
            return value

        if opcode is Opcode.NOP:
            return False
        if opcode is Opcode.HALT:
            self.halted = True
            return False
        if opcode is Opcode.BRK:
            self.brk_events.append(next_pc - 4)
            return False
        if opcode is Opcode.DI:
            psw.interrupt_enable = False
            return False
        if opcode is Opcode.EI:
            psw.interrupt_enable = True
            return False
        if opcode is Opcode.RET:
            regs.pc = self._pop()
            return True
        if opcode is Opcode.RETI:
            psw.value = self._pop()
            regs.pc = self._pop()
            return True

        # -- moves ------------------------------------------------------------
        if opcode is Opcode.MOV_DD:
            data[r1] = alu_result(data[r2])
            psw.set_logic_flags(data[r1])
            return False
        if opcode is Opcode.MOV_AA:
            addr[r1] = addr[r2]
            return False
        if opcode is Opcode.MOV_DA:
            data[r1] = addr[r2]
            return False
        if opcode is Opcode.MOV_AD:
            addr[r1] = data[r2]
            return False
        if opcode in (Opcode.LOAD_D, Opcode.LOAD_A):
            assert literal is not None
            bank = data if opcode is Opcode.LOAD_D else addr
            bank[r1] = literal & WORD_MASK
            return False
        if opcode is Opcode.MOVI:
            data[r1] = sign_extend_16(fields["imm16"]) & WORD_MASK
            return False
        if opcode is Opcode.MOVHI:
            data[r1] = (fields["imm16"] << 16) & WORD_MASK
            return False

        # -- memory ---------------------------------------------------------
        if opcode in (Opcode.LD_W, Opcode.LD_H, Opcode.LD_B):
            size = {Opcode.LD_W: 4, Opcode.LD_H: 2, Opcode.LD_B: 1}[opcode]
            address = (addr[r2] + sign_extend_16(fields["imm16"])) & WORD_MASK
            data[r1] = self._read(address, size)
            return False
        if opcode in (Opcode.ST_W, Opcode.ST_H, Opcode.ST_B):
            size = {Opcode.ST_W: 4, Opcode.ST_H: 2, Opcode.ST_B: 1}[opcode]
            address = (addr[r2] + sign_extend_16(fields["imm16"])) & WORD_MASK
            self._write(address, data[r1], size)
            return False
        if opcode is Opcode.LDABS_D:
            assert literal is not None
            data[r1] = self._read(literal & WORD_MASK, 4)
            return False
        if opcode is Opcode.LDABS_A:
            assert literal is not None
            addr[r1] = self._read(literal & WORD_MASK, 4)
            return False
        if opcode is Opcode.STABS_D:
            assert literal is not None
            self._write(literal & WORD_MASK, data[r1], 4)
            return False
        if opcode is Opcode.STABS_A:
            assert literal is not None
            self._write(literal & WORD_MASK, addr[r1], 4)
            return False

        # -- ALU ----------------------------------------------------------------
        if opcode is Opcode.ADD:
            raw = data[r2] + data[r3]
            psw.set_add_flags(data[r2], data[r3], raw)
            data[r1] = alu_result(raw)
            return False
        if opcode is Opcode.SUB:
            psw.set_sub_flags(data[r2], data[r3])
            data[r1] = alu_result(data[r2] - data[r3])
            return False
        if opcode is Opcode.AND:
            data[r1] = alu_result(data[r2] & data[r3])
            psw.set_logic_flags(data[r1])
            return False
        if opcode is Opcode.OR:
            data[r1] = alu_result(data[r2] | data[r3])
            psw.set_logic_flags(data[r1])
            return False
        if opcode is Opcode.XOR:
            data[r1] = alu_result(data[r2] ^ data[r3])
            psw.set_logic_flags(data[r1])
            return False
        if opcode in (Opcode.SHL, Opcode.SHR, Opcode.SAR):
            amount = data[r3] & 31
            data[r1] = alu_result(self._shift(opcode, data[r2], amount))
            return False
        if opcode in (Opcode.SHLI, Opcode.SHRI, Opcode.SARI):
            amount = fields["imm16"] & 31
            mapped = {
                Opcode.SHLI: Opcode.SHL,
                Opcode.SHRI: Opcode.SHR,
                Opcode.SARI: Opcode.SAR,
            }[opcode]
            data[r1] = alu_result(self._shift(mapped, data[r2], amount))
            return False
        if opcode is Opcode.MUL:
            data[r1] = alu_result(data[r2] * data[r3])
            psw.set_logic_flags(data[r1])
            return False
        if opcode is Opcode.NOT:
            data[r1] = alu_result(~data[r2])
            psw.set_logic_flags(data[r1])
            return False
        if opcode is Opcode.NEG:
            psw.set_sub_flags(0, data[r2])
            data[r1] = alu_result(-data[r2])
            return False
        if opcode is Opcode.ADDI:
            imm = sign_extend_16(fields["imm16"])
            raw = data[r2] + imm
            psw.set_add_flags(data[r2], imm & WORD_MASK, raw)
            data[r1] = alu_result(raw)
            return False
        if opcode is Opcode.ANDI:
            data[r1] = alu_result(data[r2] & fields["imm16"])
            psw.set_logic_flags(data[r1])
            return False
        if opcode is Opcode.ORI:
            data[r1] = alu_result(data[r2] | fields["imm16"])
            psw.set_logic_flags(data[r1])
            return False
        if opcode is Opcode.XORI:
            data[r1] = alu_result(data[r2] ^ fields["imm16"])
            psw.set_logic_flags(data[r1])
            return False
        if opcode is Opcode.ADDA:
            addr[r1] = (addr[r2] + sign_extend_16(fields["imm16"])) & WORD_MASK
            return False
        if opcode is Opcode.DIVU:
            if data[r3] == 0:
                self.take_trap(TRAP_DIV_ZERO, next_pc)
                return True
            data[r1] = alu_result(data[r2] // data[r3])
            psw.set_logic_flags(data[r1])
            return False
        if opcode is Opcode.CMP:
            psw.set_sub_flags(data[r1], data[r2])
            return False
        if opcode is Opcode.CMPI:
            psw.set_sub_flags(data[r1], sign_extend_16(fields["imm16"]) & WORD_MASK)
            return False

        # -- bit fields -------------------------------------------------------
        if opcode is Opcode.INSERT:
            assert literal is not None
            data[r1] = alu_result(
                self._insert(data[r2], literal, fields["pos"], fields["width"])
            )
            psw.set_logic_flags(data[r1])
            return False
        if opcode is Opcode.INSERTR:
            data[r1] = alu_result(
                self._insert(data[r2], data[r3], fields["pos"], fields["width"])
            )
            psw.set_logic_flags(data[r1])
            return False
        if opcode in (Opcode.EXTRU, Opcode.EXTRS):
            pos, width = fields["pos"], fields["width"]
            mask = ((1 << width) - 1) if width < 32 else WORD_MASK
            value = (data[r2] >> pos) & mask
            if opcode is Opcode.EXTRS and width < 32 and value & (
                1 << (width - 1)
            ):
                value |= WORD_MASK & ~mask
            data[r1] = alu_result(value)
            psw.set_logic_flags(data[r1])
            return False
        if opcode in (Opcode.SETB, Opcode.CLRB, Opcode.TGLB, Opcode.TSTB):
            bit = fields["imm16"] & 31
            if opcode is Opcode.SETB:
                data[r1] = alu_result(data[r1] | (1 << bit))
                psw.set_logic_flags(data[r1])
            elif opcode is Opcode.CLRB:
                data[r1] = alu_result(data[r1] & ~(1 << bit))
                psw.set_logic_flags(data[r1])
            elif opcode is Opcode.TGLB:
                data[r1] = alu_result(data[r1] ^ (1 << bit))
                psw.set_logic_flags(data[r1])
            else:  # TSTB
                psw.zero = not (data[r1] >> bit) & 1
            return False

        # -- control flow -------------------------------------------------------
        if opcode is Opcode.JMP:
            assert literal is not None
            regs.pc = literal & WORD_MASK
            return True
        condition = self._condition(opcode)
        if condition is not None:
            assert literal is not None
            if condition:
                regs.pc = literal & WORD_MASK
                return True
            return False
        if opcode is Opcode.CALL_ABS:
            assert literal is not None
            self._push(next_pc)
            regs.pc = literal & WORD_MASK
            return True
        if opcode is Opcode.CALL_IND:
            self._push(next_pc)
            regs.pc = addr[r1]
            return True
        if opcode is Opcode.DJNZ:
            assert literal is not None
            data[r1] = (data[r1] - 1) & WORD_MASK
            psw.set_logic_flags(data[r1])
            if data[r1] != 0:
                regs.pc = literal & WORD_MASK
                return True
            return False

        # -- stack ---------------------------------------------------------------
        if opcode is Opcode.PUSH_D:
            self._push(data[r1])
            return False
        if opcode is Opcode.PUSH_A:
            self._push(addr[r1])
            return False
        if opcode is Opcode.POP_D:
            data[r1] = self._pop()
            return False
        if opcode is Opcode.POP_A:
            addr[r1] = self._pop()
            return False

        # -- system ---------------------------------------------------------------
        if opcode is Opcode.TRAP:
            self.take_trap(fields["imm8"], next_pc)
            return True
        if opcode is Opcode.RDPSW:
            data[r1] = psw.value
            return False
        if opcode is Opcode.WRPSW:
            psw.value = data[r1]
            return False

        raise CpuFault(f"unimplemented opcode {opcode!r}", next_pc - 4)

    # -- helpers -----------------------------------------------------------
    def _shift(self, opcode: Opcode, value: int, amount: int) -> int:
        psw = self.regs.psw
        if amount == 0:
            psw.set_logic_flags(value)
            return value
        if opcode is Opcode.SHL:
            result = (value << amount) & WORD_MASK
            carry = bool((value >> (32 - amount)) & 1)
        elif opcode is Opcode.SHR:
            result = (value >> amount) & WORD_MASK
            carry = bool((value >> (amount - 1)) & 1)
        else:  # SAR
            signed = value - (1 << 32) if value & 0x8000_0000 else value
            result = (signed >> amount) & WORD_MASK
            carry = bool((value >> (amount - 1)) & 1)
        psw.set_logic_flags(result)
        psw.carry = carry
        return result

    @staticmethod
    def _insert(base: int, value: int, pos: int, width: int) -> int:
        mask = ((1 << width) - 1) if width < 32 else WORD_MASK
        mask_shifted = (mask << pos) & WORD_MASK
        return (base & ~mask_shifted) | ((value & mask) << pos) & WORD_MASK

    def _condition(self, opcode: Opcode) -> bool | None:
        psw = self.regs.psw
        table: dict[Opcode, Callable[[], bool]] = {
            Opcode.JZ: lambda: psw.zero,
            Opcode.JNZ: lambda: not psw.zero,
            Opcode.JC: lambda: psw.carry,
            Opcode.JNC: lambda: not psw.carry,
            Opcode.JN: lambda: psw.negative,
            Opcode.JNN: lambda: not psw.negative,
            Opcode.JV: lambda: psw.overflow,
            Opcode.JNV: lambda: not psw.overflow,
            Opcode.JGE: lambda: psw.negative == psw.overflow,
            Opcode.JLT: lambda: psw.negative != psw.overflow,
            Opcode.JGT: lambda: not psw.zero
            and psw.negative == psw.overflow,
            Opcode.JLE: lambda: psw.zero or psw.negative != psw.overflow,
        }
        checker = table.get(opcode)
        return checker() if checker is not None else None
