"""Hardware-accelerator / emulator platform (Quickturn, IKOS era).

Fast (near-functional speed) but with poor runtime visibility: no
register or trace access while running; after the run the host can dump
memory, so the verdict comes from the RAM result word, and UART output is
captured by the emulation host's pod.
"""

from __future__ import annotations

from repro.platforms.base import Platform


class Accelerator(Platform):
    name = "accelerator"
    description = "hardware emulator used for firmware sign-off"
    sees_registers = False
    sees_memory = True
    sees_uart = True
    sees_trace = False
    cycle_accurate = False
    relative_speed = 0.1
