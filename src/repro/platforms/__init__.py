"""Execution platforms for SC88 test images.

Six platforms mirror the paper's Section 1 list; all execute the same
:class:`~repro.platforms.cpu.CpuCore` semantics and differ in timing,
visibility and fidelity.  :func:`all_platforms` builds the healthy
default fleet; the gate-level platform additionally accepts a
:class:`~repro.platforms.gatelevel.NetlistFault` for divergence
experiments.
"""

from repro.platforms.accelerator import Accelerator
from repro.platforms.base import (
    DEFAULT_MAX_INSTRUCTIONS,
    Platform,
    RunResult,
    RunStatus,
)
from repro.platforms.bondout import Bondout
from repro.platforms.cpu import CpuCore, CpuFault, InstructionTrace, TraceEntry
from repro.platforms.gatelevel import GateLevelSim, NetlistFault
from repro.platforms.golden import GoldenModel
from repro.platforms.rtl import RtlSim
from repro.platforms.session import BatchLane, BatchSession, ExecutionSession
from repro.platforms.silicon import ProductSilicon

PLATFORM_CLASSES: dict[str, type[Platform]] = {
    cls.name: cls
    for cls in (
        GoldenModel,
        RtlSim,
        GateLevelSim,
        Accelerator,
        Bondout,
        ProductSilicon,
    )
}


def make_platform(name: str, **kwargs) -> Platform:
    """Instantiate a platform by its registry name."""
    try:
        cls = PLATFORM_CLASSES[name]
    except KeyError:
        raise KeyError(
            f"unknown platform {name!r}; available: {sorted(PLATFORM_CLASSES)}"
        ) from None
    return cls(**kwargs)


def all_platforms() -> list[Platform]:
    """One healthy instance of every platform, golden first."""
    return [cls() for cls in PLATFORM_CLASSES.values()]


__all__ = [
    "Accelerator",
    "BatchLane",
    "BatchSession",
    "Bondout",
    "CpuCore",
    "CpuFault",
    "DEFAULT_MAX_INSTRUCTIONS",
    "ExecutionSession",
    "GateLevelSim",
    "GoldenModel",
    "InstructionTrace",
    "NetlistFault",
    "PLATFORM_CLASSES",
    "Platform",
    "ProductSilicon",
    "RtlSim",
    "RunResult",
    "RunStatus",
    "TraceEntry",
    "all_platforms",
    "make_platform",
]
