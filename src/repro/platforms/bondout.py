"""Bondout silicon platform.

Silicon-speed software development part with extra debugging hardware: a
debug port allows post-run register and memory reads, but there is no
instruction trace.
"""

from __future__ import annotations

from repro.platforms.base import Platform


class Bondout(Platform):
    name = "bondout"
    description = "bondout silicon with hardware debug port"
    sees_registers = True
    sees_memory = True
    sees_uart = True
    sees_trace = False
    cycle_accurate = False
    relative_speed = 10.0
