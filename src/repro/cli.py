"""``advm`` — command-line driver for on-disk ADVM workspaces.

The paper's workflow is file-based: module owners edit trees shaped like
Figures 3/5, run regressions, cut release labels.  This CLI drives that
workflow over a real directory tree:

=============  ============================================================
command        effect
=============  ============================================================
``init``       write the default Figure 5 system tree into a directory
``validate``   structural conformance check of a system tree
``run``        build one test cell off the tree and execute it
``regress``    run a module (or the whole system) across targets,
               print the verdict matrix and any divergence attribution
``port``       measure the ADVM-vs-hardwired porting effort to a
               derivative (the paper's headline claim, from the shell)
``grep-plan``  search the plain-text test plans (the paper's stated
               reason for TESTPLAN.TXT being plain text)
``check``      run the Figure 2 abuse checker over a module environment
``serve``      run the always-available regression daemon (warm session
               pools, crash-safe journal, NDJSON streaming)
``submit``     submit a scenario pack to a running daemon and stream
               the per-cell verdicts back
=============  ============================================================

Examples::

    python -m repro.cli init  ./workspace
    python -m repro.cli run   ./workspace/ADVM_System_Verification_Environment \
                              NVM TEST_NVM_PAGE_001 --derivative sc88b
    python -m repro.cli regress ./workspace/... NVM --targets golden,rtl
    python -m repro.cli port --suite 6 --to sc88c
    python -m repro.cli grep-plan ./workspace/... PAGE
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.porting import compare_nvm_port
from repro.core.reporting import regression_matrix, render_table
from repro.core.scheduler import RegressionScheduler, ResultCache
from repro.core.system_env import make_default_system
from repro.core.targets import all_targets, target as lookup_target
from repro.core.testplan import TestPlan
from repro.core.violations import check_environment
from repro.core.workspace import (
    DiskBuilder,
    SYSTEM_DIR_NAME,
    TESTPLAN_FILE,
    load_module_environment,
    validate_system_tree,
    write_system_environment,
)
from repro.soc.derivatives import all_derivatives, derivative as lookup_derivative


def _system_dir(path: str) -> Path:
    candidate = Path(path)
    if candidate.name != SYSTEM_DIR_NAME and (
        candidate / SYSTEM_DIR_NAME
    ).is_dir():
        candidate = candidate / SYSTEM_DIR_NAME
    return candidate


# --------------------------------------------------------------------------
# commands
# --------------------------------------------------------------------------

def cmd_init(args: argparse.Namespace) -> int:
    system = make_default_system(
        nvm_tests=args.nvm_tests, uart_tests=args.uart_tests
    )
    system_dir = write_system_environment(system, args.directory)
    print(f"wrote {system_dir}")
    print(
        f"{len(system.environments)} module environments, "
        f"{system.total_tests} test cells"
    )
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    issues = validate_system_tree(_system_dir(args.directory))
    if not issues:
        print("tree OK")
        return 0
    for issue in issues:
        print(f"issue: {issue}")
    return 1


def cmd_run(args: argparse.Namespace) -> int:
    builder = DiskBuilder(_system_dir(args.directory))
    deriv = lookup_derivative(args.derivative)
    tgt = lookup_target(args.target)
    result = builder.run(args.module, args.test, deriv, tgt)
    print(
        f"{args.module}/{args.test} on {tgt.name}/{deriv.name}: "
        f"{result.status.value}"
    )
    if result.signature is not None:
        print(f"signature: {result.signature:#010x}")
    print(f"instructions: {result.instructions}, cycles: {result.cycles}")
    if result.uart_output:
        print(f"uart: {result.uart_output!r}")
    if result.fault_reason:
        print(f"fault: {result.fault_reason}")
    return 0 if result.passed else 1


def _load_modules(system_dir: Path, module: str | None):
    names = (
        [module]
        if module
        else [
            p.name
            for p in sorted(system_dir.iterdir())
            if p.is_dir() and p.name != "Global_Libraries"
        ]
    )
    return {
        name: load_module_environment(system_dir / name) for name in names
    }


def cmd_regress(args: argparse.Namespace) -> int:
    if args.fleet and not args.store_dir:
        print("--fleet requires --store-dir", file=sys.stderr)
        return 2
    system_dir = _system_dir(args.directory)
    environments = _load_modules(system_dir, args.module)
    deriv = lookup_derivative(args.derivative)
    targets = (
        [lookup_target(name) for name in args.targets.split(",")]
        if args.targets
        else all_targets()
    )
    cache = None
    if args.cache_dir and not args.no_cache:
        cache = ResultCache(args.cache_dir)
    store = None
    worklist = None
    if args.store_dir:
        from repro.isa.decodecache import set_artifact_store
        from repro.store import ArtifactStore, WorkList

        store = ArtifactStore(Path(args.store_dir) / "artifacts")
        set_artifact_store(store)
        if args.fleet:
            worklist = WorkList(
                Path(args.store_dir) / "worklist",
                lease_ttl=args.lease_ttl,
            )
    scheduler = RegressionScheduler(
        targets=targets,
        jobs=args.jobs,
        executor=args.executor,
        cache=cache,
        run_timeout=args.run_timeout,
        retries=args.retries,
        worklist=worklist,
    )
    report = scheduler.run_system(environments, deriv)
    print(regression_matrix(report))
    print(report.summary())
    if args.engine_stats:
        stats = scheduler.engine_stats
        line = " ".join(f"{key}={stats[key]}" for key in sorted(stats))
        print(f"engine-stats: {line or '(no runs executed)'}")
    if store is not None:
        stats = store.stats()
        line = " ".join(f"{key}={stats[key]}" for key in sorted(stats))
        print(f"store-stats: {line}")
    if worklist is not None:
        stats = worklist.stats()
        line = " ".join(f"{key}={stats[key]}" for key in sorted(stats))
        print(f"worklist-stats: {line}")
    if cache is not None and args.cache_prune:
        removed = cache.prune(
            max_entries=args.cache_max_entries, max_age=args.cache_max_age
        )
        stats = cache.stats()
        line = " ".join(f"{key}={stats[key]}" for key in sorted(stats))
        print(f"cache-prune: removed {removed} file(s); {line}")
    return 0 if report.clean else 1


def cmd_port(args: argparse.Namespace) -> int:
    known = [lookup_derivative(args.base)]
    new = lookup_derivative(args.to)
    comparison = compare_nvm_port(args.suite, known, new)
    print(comparison.summary())
    return 0 if comparison.advm.all_pass else 1


def cmd_grep_plan(args: argparse.Namespace) -> int:
    system_dir = _system_dir(args.directory)
    hits = 0
    for plan_path in sorted(system_dir.glob(f"*/{TESTPLAN_FILE}")):
        plan = TestPlan.from_text(plan_path.read_text())
        for item in plan.grep(args.pattern):
            print(f"{plan_path.parent.name}: {item.render()}")
            hits += 1
    if not hits:
        print(f"no test plan items match {args.pattern!r}")
    return 0 if hits else 1


def cmd_check(args: argparse.Namespace) -> int:
    system_dir = _system_dir(args.directory)
    env = load_module_environment(system_dir / args.module)
    deriv = lookup_derivative(args.derivative)
    tgt = lookup_target(args.target)
    violations = check_environment(env, deriv, tgt)
    if not violations:
        print(f"{args.module}: no abstraction-layer violations")
        return 0
    for violation in violations:
        print(f"violation: {violation}")
    return 1


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import JobJournal, RegressionService, WarmSessionPool
    from repro.service.daemon import run_daemon

    system_dir = _system_dir(args.directory)
    journal = JobJournal(args.journal_dir) if args.journal_dir else None
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    store = None
    if args.store_dir:
        from repro.store import ArtifactStore

        store = ArtifactStore(Path(args.store_dir) / "artifacts")
    service = RegressionService(
        system_dir,
        pool=WarmSessionPool(max_idle=args.pool_size),
        journal=journal,
        cache=cache,
        max_pending=args.max_pending,
        max_active=args.max_active,
        default_deadline=args.deadline,
        store=store,
    )
    return asyncio.run(run_daemon(service, args.host, args.port))


def _build_pack(args: argparse.Namespace) -> dict:
    import json

    if args.pack:
        return json.loads(Path(args.pack).read_text())
    pack: dict = {"schema": 1, "name": args.name}
    if args.module:
        pack["modules"] = [args.module]
    if args.cells:
        pack["cells"] = args.cells.split(",")
    if args.targets:
        pack["targets"] = args.targets.split(",")
    if args.deadline is not None:
        pack["deadline"] = args.deadline
    pack["derivative"] = args.derivative
    pack["executor"] = args.executor
    return pack


def cmd_submit(args: argparse.Namespace) -> int:
    """Stream one scenario pack through a running daemon (the CI serve
    smoke test is exactly this command)."""
    import http.client
    import json

    body = json.dumps(_build_pack(args)).encode()
    connection = http.client.HTTPConnection(
        args.host, args.port, timeout=args.timeout
    )
    try:
        connection.request(
            "POST",
            "/submit",
            body=body,
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        if response.status != 200:
            detail = response.read().decode(errors="replace").strip()
            retry_after = response.getheader("Retry-After")
            suffix = f" (Retry-After: {retry_after}s)" if retry_after else ""
            print(
                f"submit rejected: HTTP {response.status} {detail}{suffix}",
                file=sys.stderr,
            )
            return 1
        verdict = 1
        for raw in response:
            line = raw.strip()
            if not line:
                continue
            event = json.loads(line)
            print(json.dumps(event))
            if event.get("event") == "done":
                verdict = 0 if event.get("clean") else 1
            elif event.get("event") == "error":
                verdict = 1
        return verdict
    finally:
        connection.close()


def cmd_derivatives(args: argparse.Namespace) -> int:
    rows = [
        [
            deriv.name,
            deriv.title,
            f"pos={deriv.page_field_pos} width={deriv.page_field_width}",
            f"v{deriv.es_version}",
            deriv.description,
        ]
        for deriv in all_derivatives()
    ]
    print(
        render_table(
            ["name", "title", "NVM PAGE field", "firmware", "change class"],
            rows,
        )
    )
    return 0


# --------------------------------------------------------------------------
# argument parsing
# --------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="advm",
        description="drive ADVM verification workspaces (DATE 2004)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_init = sub.add_parser("init", help="write the default system tree")
    p_init.add_argument("directory")
    p_init.add_argument("--nvm-tests", type=int, default=4)
    p_init.add_argument("--uart-tests", type=int, default=3)
    p_init.set_defaults(func=cmd_init)

    p_validate = sub.add_parser("validate", help="validate a system tree")
    p_validate.add_argument("directory")
    p_validate.set_defaults(func=cmd_validate)

    p_run = sub.add_parser("run", help="build + run one test cell")
    p_run.add_argument("directory")
    p_run.add_argument("module")
    p_run.add_argument("test")
    p_run.add_argument("--derivative", default="sc88a")
    p_run.add_argument("--target", default="golden")
    p_run.set_defaults(func=cmd_run)

    p_regress = sub.add_parser("regress", help="run a regression")
    p_regress.add_argument("directory")
    p_regress.add_argument("module", nargs="?", default=None)
    p_regress.add_argument("--derivative", default="sc88a")
    p_regress.add_argument(
        "--targets", default=None, help="comma-separated target names"
    )
    p_regress.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker count for the pooled executors (default: serial)",
    )
    p_regress.add_argument(
        "--executor",
        choices=["auto", "serial", "thread", "process", "batch"],
        default="auto",
        help=(
            "how matrix entries execute (auto: process pool when "
            "--jobs > 1; batch: lock-step lanes across each cell's "
            "platform matrix)"
        ),
    )
    p_regress.add_argument(
        "--cache-dir",
        default=None,
        help="persistent result cache; unchanged cells are not re-run",
    )
    p_regress.add_argument(
        "--run-timeout",
        type=float,
        default=None,
        help=(
            "wall-clock seconds per pooled payload before the run is "
            "failed and retried (default: no deadline)"
        ),
    )
    p_regress.add_argument(
        "--retries",
        type=int,
        default=2,
        help=(
            "failed attempts per payload before its cell is "
            "quarantined as a FAULT verdict (default: 2)"
        ),
    )
    p_regress.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore --cache-dir and execute every matrix entry",
    )
    p_regress.add_argument(
        "--store-dir",
        default=None,
        help=(
            "persistent artifact store root; warmed decode/superblock/"
            "JIT state is saved there and fresh processes warm-start "
            "from it instead of re-predecoding"
        ),
    )
    p_regress.add_argument(
        "--fleet",
        action="store_true",
        help=(
            "shard the matrix with peer processes through a shared "
            "work-list under --store-dir (lease claims, work stealing, "
            "first-writer-wins results)"
        ),
    )
    p_regress.add_argument(
        "--lease-ttl",
        type=float,
        default=30.0,
        help=(
            "fleet cell-lease expiry in seconds; a worker dead longer "
            "than this has its cells stolen by survivors (default: 30)"
        ),
    )
    p_regress.add_argument(
        "--engine-stats",
        action="store_true",
        help=(
            "append aggregated engine telemetry (sb_replays, ff_warps, "
            "jit_chains, jit_exec_steps, batch/peel counters) to the "
            "report summary"
        ),
    )
    p_regress.add_argument(
        "--cache-prune",
        action="store_true",
        help=(
            "after the run, prune the result cache per --cache-max-* "
            "and print the cache accounting"
        ),
    )
    p_regress.add_argument(
        "--cache-max-entries",
        type=int,
        default=None,
        help="prune: keep at most this many cached results (oldest go)",
    )
    p_regress.add_argument(
        "--cache-max-age",
        type=float,
        default=None,
        help="prune: drop cached results older than this many seconds",
    )
    p_regress.set_defaults(func=cmd_regress)

    p_port = sub.add_parser(
        "port", help="measure ADVM vs hardwired porting effort"
    )
    p_port.add_argument("--suite", type=int, default=4)
    p_port.add_argument("--base", default="sc88a")
    p_port.add_argument("--to", required=True)
    p_port.set_defaults(func=cmd_port)

    p_grep = sub.add_parser("grep-plan", help="search the test plans")
    p_grep.add_argument("directory")
    p_grep.add_argument("pattern")
    p_grep.set_defaults(func=cmd_grep_plan)

    p_check = sub.add_parser(
        "check", help="run the Figure 2 abuse checker on a module"
    )
    p_check.add_argument("directory")
    p_check.add_argument("module")
    p_check.add_argument("--derivative", default="sc88a")
    p_check.add_argument("--target", default="golden")
    p_check.set_defaults(func=cmd_check)

    p_serve = sub.add_parser(
        "serve", help="run the always-available regression daemon"
    )
    p_serve.add_argument("directory")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8787, help="0 picks a free port"
    )
    p_serve.add_argument(
        "--journal-dir",
        default=None,
        help=(
            "crash-safe job journal; accepted jobs replay from here "
            "after a restart"
        ),
    )
    p_serve.add_argument(
        "--cache-dir", default=None, help="shared persistent result cache"
    )
    p_serve.add_argument(
        "--store-dir",
        default=None,
        help=(
            "persistent artifact store root; the daemon rehydrates its "
            "decode/superblock/JIT state from it at boot and persists "
            "what jobs warm up"
        ),
    )
    p_serve.add_argument(
        "--pool-size",
        type=int,
        default=12,
        help="max idle warm sessions kept between requests",
    )
    p_serve.add_argument(
        "--max-pending",
        type=int,
        default=8,
        help="admission bound; beyond it submissions shed with 503",
    )
    p_serve.add_argument(
        "--max-active",
        type=int,
        default=1,
        help="jobs executing concurrently (the rest wait admitted)",
    )
    p_serve.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="default per-job wall-clock deadline in seconds",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="submit a scenario pack to a running daemon"
    )
    p_submit.add_argument("--host", default="127.0.0.1")
    p_submit.add_argument("--port", type=int, default=8787)
    p_submit.add_argument(
        "--pack", default=None, help="JSON scenario-pack file to submit"
    )
    p_submit.add_argument("--name", default="cli-submit")
    p_submit.add_argument("--module", default=None)
    p_submit.add_argument(
        "--cells", default=None, help="comma-separated test cell names"
    )
    p_submit.add_argument(
        "--targets", default=None, help="comma-separated target names"
    )
    p_submit.add_argument("--derivative", default="sc88a")
    p_submit.add_argument(
        "--executor",
        choices=["auto", "serial", "thread", "process", "batch"],
        default="serial",
    )
    p_submit.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="per-job wall-clock deadline in seconds",
    )
    p_submit.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        help="client-side socket timeout in seconds",
    )
    p_submit.set_defaults(func=cmd_submit)

    p_derivatives = sub.add_parser(
        "derivatives", help="list the derivative catalogue"
    )
    p_derivatives.set_defaults(func=cmd_derivatives)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
