"""SC88 memory map.

The map mirrors the address-space shape of a chip-card controller: boot/
code ROM (with the trap vector table at its base and the embedded-software
library at a fixed offset), working RAM, the NVM array, and the special-
function-register (SFR) space where peripherals live.  Derivatives may
re-base peripherals and resize the NVM — both are change classes the
ADVM abstraction layer must absorb.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class MemoryRegion:
    """One contiguous address range."""

    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int, length: int = 1) -> bool:
        return self.base <= address and address + length <= self.end


# Architectural constants shared by all derivatives.
VECTOR_BASE = 0x0000_0000
VECTOR_COUNT = 32
VECTOR_TABLE_BYTES = VECTOR_COUNT * 4
DEFAULT_TEXT_BASE = 0x0000_0200
ES_ROM_BASE = 0x0004_0000
NVM_PAGE_BYTES = 128

#: Well-known software trap numbers raised by the core itself.
TRAP_DIV_ZERO = 1
TRAP_ILLEGAL_OPCODE = 2
TRAP_MISALIGNED = 3
TRAP_BUS_ERROR = 4
TRAP_WATCHDOG = 5
#: Hardware interrupt lines map to vectors 8 + line.
IRQ_VECTOR_BASE = 8


@dataclass(frozen=True)
class MemoryMap:
    """Complete address map for one derivative."""

    rom: MemoryRegion = MemoryRegion("rom", 0x0000_0000, 0x0008_0000)
    ram: MemoryRegion = MemoryRegion("ram", 0x1000_0000, 0x0001_0000)
    nvm: MemoryRegion = MemoryRegion("nvm", 0x2000_0000, 32 * NVM_PAGE_BYTES)
    sfr: MemoryRegion = MemoryRegion("sfr", 0xF000_0000, 0x0001_0000)

    @property
    def text_base(self) -> int:
        """Where floating code sections are linked (after the vectors)."""
        return self.rom.base + DEFAULT_TEXT_BASE

    @property
    def data_base(self) -> int:
        return self.ram.base

    @property
    def stack_top(self) -> int:
        """Initial stack pointer (stack grows down, below the result area)."""
        return self.ram.end - 0x200

    @property
    def result_address(self) -> int:
        """RAM word where tests deposit their result signature; every
        platform, even limited-visibility ones, can dump this word."""
        return self.ram.end - 0x100

    def regions(self) -> list[MemoryRegion]:
        return [self.rom, self.ram, self.nvm, self.sfr]

    def region_of(self, address: int) -> MemoryRegion | None:
        for region in self.regions():
            if region.contains(address):
                return region
        return None


def make_memory_map(nvm_pages: int) -> MemoryMap:
    """Memory map with an NVM region sized for *nvm_pages* pages."""
    return MemoryMap(
        nvm=MemoryRegion("nvm", 0x2000_0000, nvm_pages * NVM_PAGE_BYTES)
    )
