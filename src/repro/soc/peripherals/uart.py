"""UART peripheral.

The paper's system environment includes a "UART Test Environment" as one
of its module environments (Figure 5); this model gives those tests real
behaviour to check: a transmit path captured by the host platform, a
loopback mode that reflects transmitted bytes into the receive FIFO, a
baud-rate divisor, receive-interrupt generation and an overrun flag.
"""

from __future__ import annotations

from collections import deque

from repro.soc.peripherals.base import Peripheral
from repro.soc.registers import (
    Access,
    Field,
    PeripheralLayout,
    RegisterDef,
)

RX_FIFO_DEPTH = 8


def make_uart_layout(
    ctrl_name: str = "UART_CTRL",
    stat_name: str = "UART_STAT",
    data_name: str = "UART_DATA",
    baud_name: str = "UART_BAUD",
) -> PeripheralLayout:
    """UART register block; register *names* are derivative-controlled."""
    return PeripheralLayout(
        name="UART",
        doc="asynchronous serial port with loopback test mode",
        registers=(
            RegisterDef(
                ctrl_name,
                0x00,
                fields=(
                    Field("EN", 0, 1, doc="block enable"),
                    Field("LOOP", 1, 1, doc="loopback tx -> rx"),
                    Field("TXEN", 2, 1, doc="transmitter enable"),
                    Field("RXEN", 3, 1, doc="receiver enable"),
                    Field("RXIE", 4, 1, doc="receive interrupt enable"),
                ),
            ),
            RegisterDef(
                stat_name,
                0x04,
                access=Access.RO,
                fields=(
                    Field("TXRDY", 0, 1, Access.RO, "transmitter idle"),
                    Field("RXAVL", 1, 1, Access.RO, "receive data available"),
                    Field("OVR", 2, 1, Access.RO, "receive overrun occurred"),
                ),
            ),
            RegisterDef(data_name, 0x08, doc="tx on write, rx on read"),
            RegisterDef(baud_name, 0x0C, reset=0x0010, doc="baud divisor"),
        ),
    )


class Uart(Peripheral):
    """Behavioural UART with host-visible transmit log."""

    def __init__(self, layout: PeripheralLayout | None = None):
        layout = layout or make_uart_layout()
        regs = layout.register_names()
        self._ctrl, self._stat, self._data, self._baud = regs
        super().__init__(layout, name="UART")
        self.tx_log: list[int] = []
        self.rx_fifo: deque[int] = deque()
        self.overrun = False

    def reset(self) -> None:
        super().reset()
        self.tx_log = []
        self.rx_fifo = deque()
        self.overrun = False

    # -- host-side API (platforms inject received bytes here) -------------
    def host_receive(self, byte: int) -> None:
        """A byte arrives on the wire from the outside world."""
        if self.field_value(self._ctrl, "RXEN") != 1:
            return
        if len(self.rx_fifo) >= RX_FIFO_DEPTH:
            self.overrun = True
            return
        self.rx_fifo.append(byte & 0xFF)

    def transmitted_text(self) -> str:
        return bytes(self.tx_log).decode("latin-1")

    # -- register behaviour ----------------------------------------------------
    def on_write(self, reg, value: int) -> None:
        if reg.name != self._data:
            return
        ctrl = self.reg_value(self._ctrl)
        layout_ctrl = self.layout.register_named(self._ctrl)
        enabled = layout_ctrl.field_named("EN").extract(ctrl)
        txen = layout_ctrl.field_named("TXEN").extract(ctrl)
        if not (enabled and txen):
            return
        byte = value & 0xFF
        self.tx_log.append(byte)
        if layout_ctrl.field_named("LOOP").extract(ctrl):
            if len(self.rx_fifo) >= RX_FIFO_DEPTH:
                self.overrun = True
            else:
                self.rx_fifo.append(byte)

    def on_read(self, reg, value: int) -> int:
        if reg.name == self._stat:
            status = 0
            layout_stat = self.layout.register_named(self._stat)
            status = layout_stat.field_named("TXRDY").insert(status, 1)
            status = layout_stat.field_named("RXAVL").insert(
                status, int(bool(self.rx_fifo))
            )
            status = layout_stat.field_named("OVR").insert(
                status, int(self.overrun)
            )
            return status
        if reg.name == self._data:
            if self.rx_fifo:
                return self.rx_fifo.popleft()
            return 0
        return value

    def event_horizon(self) -> int | None:
        # The receive interrupt is level-sensitive on FIFO occupancy:
        # while data is pending with RXIE set, every tick re-raises the
        # line; otherwise ticking changes nothing (the FIFO only moves
        # on register accesses, which settle deferred time themselves).
        if self.rx_fifo and self.field_value(self._ctrl, "RXIE") == 1:
            return 1
        return None

    def tick(self, cycles: int = 1) -> None:
        rxie = self.field_value(self._ctrl, "RXIE")
        self.irq = bool(rxie and self.rx_fifo)
