"""Down-counting timer with interrupt generation.

Derivatives differ in counter width (a later SC88 widens it from 24 to 32
bits), which is published to tests through the global defines as
``TIMER_COUNTER_WIDTH`` / ``TIMER_MAX_COUNT``.
"""

from __future__ import annotations

from repro.soc.peripherals.base import Peripheral
from repro.soc.registers import (
    Access,
    Field,
    PeripheralLayout,
    RegisterDef,
)


def make_timer_layout(
    counter_width: int = 24,
    ctrl_name: str = "TIM_CTRL",
    count_name: str = "TIM_CNT",
    reload_name: str = "TIM_RELOAD",
    stat_name: str = "TIM_STAT",
) -> PeripheralLayout:
    return PeripheralLayout(
        name="TIMER",
        doc=f"{counter_width}-bit down counter",
        registers=(
            RegisterDef(
                ctrl_name,
                0x00,
                fields=(
                    Field("EN", 0, 1, doc="count enable"),
                    Field("IE", 1, 1, doc="underflow interrupt enable"),
                    Field("ONESHOT", 2, 1, doc="stop after first underflow"),
                ),
            ),
            RegisterDef(
                count_name,
                0x04,
                access=Access.RO,
                fields=(Field("COUNT", 0, counter_width, Access.RO),),
            ),
            RegisterDef(
                reload_name,
                0x08,
                fields=(Field("RELOAD", 0, counter_width),),
            ),
            RegisterDef(
                stat_name,
                0x0C,
                access=Access.W1C,
                fields=(Field("OVF", 0, 1, Access.W1C, "underflow seen"),),
            ),
        ),
    )


class Timer(Peripheral):
    """Cycle-driven down counter."""

    def __init__(self, layout: PeripheralLayout | None = None):
        layout = layout or make_timer_layout()
        regs = layout.register_names()
        self._ctrl, self._count, self._reload, self._stat = regs
        counter_field = layout.register_named(self._count).field_named("COUNT")
        self.max_count = counter_field.max_value
        super().__init__(layout, name="TIMER")
        self.underflows = 0

    def reset(self) -> None:
        super().reset()
        self.underflows = 0

    def on_write(self, reg, value: int) -> None:
        if reg.name == self._reload:
            # Writing the reload also primes the counter, like most MCUs.
            self.set_reg(self._count, value & self.max_count)
        elif reg.name == self._ctrl:
            pass  # EN/IE take effect on the next tick

    def event_horizon(self) -> int | None:
        if self.field_value(self._ctrl, "EN") != 1:
            return None  # disabled: ticking is a no-op
        if (
            self.field_value(self._ctrl, "IE") == 1
            and self.field_value(self._stat, "OVF") == 1
        ):
            # Level-sensitive: every tick re-raises the line until the
            # handler clears OVF, so ticking cannot be deferred.
            return 1
        if self.field_value(self._ctrl, "IE") != 1:
            return None  # counts, but can never raise an interrupt
        # Underflow fires on the cycle after the counter hits zero.
        return self.reg_value(self._count) + 1

    def tick(self, cycles: int = 1) -> None:
        # Closed-form advance: one batched tick must cost O(1), not
        # O(underflows) — event-horizon scheduling and idle fast-forward
        # can hand a free-running timer millions of deferred cycles in a
        # single flush.  The first underflow consumes ``count + 1``
        # cycles; every further reload period consumes ``reload + 1``.
        if self.field_value(self._ctrl, "EN") != 1:
            self.irq = False
            return
        count = self.reg_value(self._count)
        if cycles <= count:
            count -= cycles
        else:
            self.underflows += 1
            self.set_field(self._stat, "OVF", 1)
            if self.field_value(self._ctrl, "ONESHOT"):
                self.set_field(self._ctrl, "EN", 0)
                count = 0
            else:
                reload = self.reg_value(self._reload) & self.max_count
                extra, leftover = divmod(cycles - (count + 1), reload + 1)
                self.underflows += extra
                count = reload - leftover
        self.set_reg(self._count, count)
        interrupt_enabled = self.field_value(self._ctrl, "IE") == 1
        overflow = self.field_value(self._stat, "OVF") == 1
        self.irq = interrupt_enabled and overflow
