"""SC88 peripheral models.

Each peripheral module exports a layout factory (parameterised by the
derivative-specific facts: field positions, register names, counter
widths) and a behavioural model class.  The ADVM global-defines generator
reads the layouts; the execution platforms run the models.
"""

from repro.soc.peripherals.base import Peripheral
from repro.soc.peripherals.gpio import DONE_PIN, Gpio, PASS_PIN, make_gpio_layout
from repro.soc.peripherals.intc import (
    InterruptController,
    LINE_GPIO,
    LINE_NVM,
    LINE_TIMER,
    LINE_UART,
    LINE_WDT,
    make_intc_layout,
)
from repro.soc.peripherals.nvm import (
    CMD_ERASE,
    CMD_IDLE,
    CMD_PROG,
    NvmController,
    make_nvm_layout,
)
from repro.soc.peripherals.timer import Timer, make_timer_layout
from repro.soc.peripherals.uart import Uart, make_uart_layout
from repro.soc.peripherals.watchdog import Watchdog, make_wdt_layout

__all__ = [
    "CMD_ERASE",
    "CMD_IDLE",
    "CMD_PROG",
    "DONE_PIN",
    "Gpio",
    "InterruptController",
    "LINE_GPIO",
    "LINE_NVM",
    "LINE_TIMER",
    "LINE_UART",
    "LINE_WDT",
    "NvmController",
    "PASS_PIN",
    "Peripheral",
    "Timer",
    "Uart",
    "Watchdog",
    "make_gpio_layout",
    "make_intc_layout",
    "make_nvm_layout",
    "make_timer_layout",
    "make_uart_layout",
    "make_wdt_layout",
]
