"""Interrupt controller.

Collects the peripheral interrupt lines, masks them with the enable
register and presents the highest-priority (lowest-numbered) pending line
to the CPU, which vectors through ``IRQ_VECTOR_BASE + line``.  The global
layer's trap-handler library installs the vector table; module test
environments enable only the lines they exercise.
"""

from __future__ import annotations

from repro.soc.peripherals.base import Peripheral
from repro.soc.registers import (
    Access,
    Field,
    PeripheralLayout,
    RegisterDef,
)

#: Interrupt line assignment (fixed across derivatives).
LINE_UART = 0
LINE_TIMER = 1
LINE_NVM = 2
LINE_GPIO = 3
LINE_WDT = 4
NUM_LINES = 8


def make_intc_layout(
    enable_name: str = "INT_EN",
    pending_name: str = "INT_PEND",
    vector_name: str = "INT_VECT",
) -> PeripheralLayout:
    return PeripheralLayout(
        name="INTC",
        doc="level-sensitive interrupt controller",
        registers=(
            RegisterDef(
                enable_name,
                0x00,
                fields=(Field("LINES", 0, NUM_LINES),),
            ),
            RegisterDef(
                pending_name,
                0x04,
                access=Access.W1C,
                fields=(Field("LINES", 0, NUM_LINES, Access.W1C),),
            ),
            RegisterDef(
                vector_name,
                0x08,
                access=Access.RO,
                fields=(
                    Field("LINE", 0, 4, Access.RO, "lowest pending line"),
                    Field("VALID", 31, 1, Access.RO),
                ),
            ),
        ),
    )


class InterruptController(Peripheral):
    def __init__(self, layout: PeripheralLayout | None = None):
        layout = layout or make_intc_layout()
        regs = layout.register_names()
        self._enable, self._pending, self._vector = regs
        super().__init__(layout, name="INTC")

    def raise_line(self, line: int) -> None:
        if 0 <= line < NUM_LINES:
            self.set_reg(
                self._pending, self.reg_value(self._pending) | (1 << line)
            )

    def pending_line(self) -> int | None:
        """Lowest-numbered line that is both pending and enabled."""
        active = self.reg_value(self._pending) & self.reg_value(self._enable)
        if not active:
            return None
        return (active & -active).bit_length() - 1

    def acknowledge(self, line: int) -> None:
        self.set_reg(
            self._pending, self.reg_value(self._pending) & ~(1 << line)
        )

    def on_read(self, reg, value: int) -> int:
        if reg.name == self._vector:
            line = self.pending_line()
            if line is None:
                return 0
            vector_def = self.layout.register_named(self._vector)
            out = vector_def.field_named("LINE").insert(0, line)
            return vector_def.field_named("VALID").insert(out, 1)
        return value
