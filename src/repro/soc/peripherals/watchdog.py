"""Watchdog timer.

Chip-card firmware must service the watchdog periodically; tests that run
long (NVM programming waits) use the base-function wrapper
``Base_WDT_Service`` rather than touching the service register directly —
derivative D changes the service key, and only the abstraction layer
needs to know.
"""

from __future__ import annotations

from repro.soc.peripherals.base import Peripheral
from repro.soc.registers import (
    Access,
    Field,
    PeripheralLayout,
    RegisterDef,
)

DEFAULT_SERVICE_KEY = 0xA5
DEFAULT_TIMEOUT = 100_000


def make_wdt_layout(
    ctrl_name: str = "WDT_CTRL",
    service_name: str = "WDT_SERVICE",
    count_name: str = "WDT_CNT",
) -> PeripheralLayout:
    return PeripheralLayout(
        name="WDT",
        doc="windowless watchdog; write the service key to reload",
        registers=(
            RegisterDef(
                ctrl_name,
                0x00,
                fields=(
                    Field("EN", 0, 1, doc="enable (sticky until reset)"),
                    Field("TIMEOUT", 8, 20, doc="reload value in cycles"),
                ),
            ),
            RegisterDef(
                service_name,
                0x04,
                access=Access.WO,
                fields=(Field("KEY", 0, 8, Access.WO),),
            ),
            RegisterDef(
                count_name,
                0x08,
                access=Access.RO,
                fields=(Field("COUNT", 0, 32, Access.RO),),
            ),
        ),
    )


class Watchdog(Peripheral):
    def __init__(
        self,
        layout: PeripheralLayout | None = None,
        service_key: int = DEFAULT_SERVICE_KEY,
    ):
        layout = layout or make_wdt_layout()
        regs = layout.register_names()
        self._ctrl, self._service, self._count = regs
        self.service_key = service_key
        super().__init__(layout, name="WDT")
        self.expired = False
        self.services = 0

    def reset(self) -> None:
        super().reset()
        self.expired = False
        self.services = 0
        self.set_reg(self._count, DEFAULT_TIMEOUT)

    def _timeout(self) -> int:
        configured = self.field_value(self._ctrl, "TIMEOUT")
        return configured if configured else DEFAULT_TIMEOUT

    def on_write(self, reg, value: int) -> None:
        if reg.name == self._service:
            if (value & 0xFF) == self.service_key:
                self.set_reg(self._count, self._timeout())
                self.services += 1
            # A wrong key is ignored: real watchdogs treat it as a miss.
        elif reg.name == self._ctrl:
            self.set_reg(self._count, self._timeout())

    def event_horizon(self) -> int | None:
        if self.expired or self.field_value(self._ctrl, "EN") != 1:
            return None
        # Expiry latches once cumulative ticking reaches the count.
        return max(self.reg_value(self._count), 1)

    def tick(self, cycles: int = 1) -> None:
        if self.field_value(self._ctrl, "EN") != 1 or self.expired:
            return
        count = self.reg_value(self._count)
        if count > cycles:
            self.set_reg(self._count, count - cycles)
            return
        self.set_reg(self._count, 0)
        self.expired = True
        self.irq = True
