"""Peripheral base class.

A peripheral owns a :class:`~repro.soc.registers.PeripheralLayout` and a
value per register; the base class implements bus access with the layout's
access semantics (read-only registers ignore writes, write-1-to-clear
status registers clear on write).  Subclasses hook :meth:`on_write` /
:meth:`on_read` for side effects and :meth:`tick` for time-based
behaviour, and raise their interrupt line via :attr:`irq`.
"""

from __future__ import annotations

from repro.soc.bus import BusError
from repro.soc.registers import Access, PeripheralLayout, RegisterDef


class Peripheral:
    """Register-block device with layout-driven access semantics."""

    def __init__(self, layout: PeripheralLayout, name: str | None = None):
        self.layout = layout
        self.name = name or layout.name
        self.values: dict[str, int] = {}
        self.irq = False
        self.reset()

    # -- lifecycle -----------------------------------------------------------
    def reset(self) -> None:
        self.values = {r.name: r.reset for r in self.layout.registers}
        self.irq = False

    # -- lane state (batched lock-step engine) ------------------------------
    #
    # A surgical lane fork clones the leader device mid-run; peripheral
    # state is value-like throughout the tree (ints, strings, byte
    # buffers, flat containers of those), so a generic deep copy of the
    # instance dict captures it.  Excluded: the shared immutable layout,
    # and any attribute that is a bus-attached device (the NVM
    # controller's array Memory stays identity-bound to its bus mapping;
    # the SoC snapshots its bytes separately).
    _LANE_STATE_SKIP = ("layout",)

    def lane_state(self) -> dict:
        """Deep-copied mutable state for a lane fork."""
        import copy

        from repro.soc.bus import Memory

        return copy.deepcopy(
            {
                key: value
                for key, value in self.__dict__.items()
                if key not in self._LANE_STATE_SKIP
                and not isinstance(value, Memory)
            }
        )

    def load_lane_state(self, state: dict) -> None:
        """Restore state captured by :meth:`lane_state`.  The snapshot
        is deep-copied on the way in, so one captured state can seed
        any number of forked lanes without aliasing."""
        import copy

        self.__dict__.update(copy.deepcopy(state))

    # -- bus protocol ----------------------------------------------------------
    def read(self, offset: int, size: int) -> int:
        if size != 4:
            raise BusError(
                f"{self.name}: registers require word access", offset
            )
        reg = self.layout.register_at(offset)
        if reg is None:
            raise BusError(
                f"{self.name}: no register at offset {offset:#x}", offset
            )
        if reg.access == Access.WO:
            return 0
        value = self.on_read(reg, self.values[reg.name])
        return value & 0xFFFF_FFFF

    def write(self, offset: int, value: int, size: int) -> None:
        if size != 4:
            raise BusError(
                f"{self.name}: registers require word access", offset
            )
        reg = self.layout.register_at(offset)
        if reg is None:
            raise BusError(
                f"{self.name}: no register at offset {offset:#x}", offset
            )
        value &= 0xFFFF_FFFF
        if reg.access == Access.RO:
            return  # writes to read-only registers are ignored
        if reg.access == Access.W1C:
            self.values[reg.name] &= ~value
            self.on_write(reg, value)
            return
        self.values[reg.name] = value
        self.on_write(reg, value)

    # -- subclass hooks -----------------------------------------------------
    def on_read(self, reg: RegisterDef, value: int) -> int:
        """Override to compute read side effects; returns the visible value."""
        return value

    def on_write(self, reg: RegisterDef, value: int) -> None:
        """Override for write side effects (after the store)."""

    def tick(self, cycles: int = 1) -> None:
        """Advance model time by *cycles* core clocks."""

    def event_horizon(self) -> int | None:
        """Core cycles until this peripheral's ticking next changes
        externally *observable* state — raises its interrupt line or
        trips a latched condition (watchdog expiry) — or ``None`` when
        no amount of ticking can (the SoC then defers ticking it until
        a register access or probe settles the debt).  Register values
        that merely count down are not events: the SFR ports flush
        pending time before any read, so they are never seen stale.
        Must be exact or an *underestimate*; flushing early is always
        equivalent, flushing late is not."""
        return None

    # -- register/field helpers for subclasses -----------------------------
    def reg_value(self, name: str) -> int:
        return self.values[name]

    def set_reg(self, name: str, value: int) -> None:
        self.values[name] = value & 0xFFFF_FFFF

    def field_value(self, register: str, field: str) -> int:
        reg = self.layout.register_named(register)
        return reg.field_named(field).extract(self.values[register])

    def set_field(self, register: str, field: str, value: int) -> None:
        reg = self.layout.register_named(register)
        fld = reg.field_named(field)
        self.values[register] = fld.insert(self.values[register], value)
