"""NVM (non-volatile memory) page-program controller.

This is the peripheral behind the paper's Figure 6 example: a control
register carries a ``PAGE`` field whose **position and width differ
between derivatives** (the paper's example widens it from 5 to 6 bits for
a derivative with more pages and discusses a specification change shifting
its position).  The layout factory takes both as parameters, and the
register's *name* is also parameterised because a later derivative renames
it — all three are change classes the ADVM abstraction layer absorbs.

Programming model (chip-card style page flash):

1. write the target page number into the ``PAGE`` field of the control
   register,
2. fill the 128-byte page buffer via ``NVM_ADDR``/``NVM_DATA``,
3. set ``CMD`` to PROG (or ERASE) and pulse ``START``,
4. poll ``BUSY`` / wait for ``DONE`` in the status register.

The NVM array itself is memory-mapped read-only; only the controller can
alter it, after a programming delay in core cycles (so cycle-accurate
platforms observe a realistic busy window).
"""

from __future__ import annotations

from repro.soc.bus import Memory
from repro.soc.memorymap import NVM_PAGE_BYTES
from repro.soc.peripherals.base import Peripheral
from repro.soc.registers import (
    Access,
    Field,
    PeripheralLayout,
    RegisterDef,
)

CMD_IDLE = 0
CMD_PROG = 1
CMD_ERASE = 2

PROGRAM_CYCLES = 64
ERASE_CYCLES = 96


def make_nvm_layout(
    page_pos: int = 0,
    page_width: int = 5,
    ctrl_name: str = "NVM_CTRL",
    stat_name: str = "NVM_STAT",
    addr_name: str = "NVM_ADDR",
    data_name: str = "NVM_DATA",
) -> PeripheralLayout:
    """NVM controller block with a derivative-specific PAGE field."""
    cmd_pos = max(page_pos + page_width, 16)
    return PeripheralLayout(
        name="NVM",
        doc="page-programmable non-volatile memory controller",
        registers=(
            RegisterDef(
                ctrl_name,
                0x00,
                fields=(
                    Field("PAGE", page_pos, page_width, doc="target page"),
                    Field("CMD", cmd_pos, 2, doc="0=idle 1=prog 2=erase"),
                    Field("START", 31, 1, doc="pulse to start operation"),
                ),
            ),
            RegisterDef(
                stat_name,
                0x04,
                access=Access.RO,
                fields=(
                    Field("BUSY", 0, 1, Access.RO, "operation in progress"),
                    Field("DONE", 1, 1, Access.RO, "operation finished"),
                    Field("ERR", 2, 1, Access.RO, "bad page or command"),
                ),
            ),
            RegisterDef(addr_name, 0x08, doc="byte offset into page buffer"),
            RegisterDef(
                data_name,
                0x0C,
                doc="write: store word at NVM_ADDR, auto-increment by 4",
            ),
        ),
    )


class NvmController(Peripheral):
    """Behavioural page-flash controller bound to its array."""

    def __init__(
        self,
        layout: PeripheralLayout | None = None,
        pages: int = 32,
        array: Memory | None = None,
    ):
        layout = layout or make_nvm_layout()
        regs = layout.register_names()
        self._ctrl, self._stat, self._addr, self._data = regs
        self.pages = pages
        self.array = array or Memory(pages * NVM_PAGE_BYTES, read_only=True)
        super().__init__(layout, name="NVM")
        self.page_buffer = bytearray(NVM_PAGE_BYTES)
        self.busy_cycles = 0
        self.pending_cmd = CMD_IDLE
        self.pending_page = 0
        self.done = False
        self.error = False
        #: Pages programmed/erased since reset — functional coverage reads it.
        self.operation_log: list[tuple[str, int]] = []

    def reset(self) -> None:
        super().reset()
        self.page_buffer = bytearray(NVM_PAGE_BYTES)
        self.busy_cycles = 0
        self.pending_cmd = CMD_IDLE
        self.pending_page = 0
        self.done = False
        self.error = False
        self.operation_log = []

    # -- register behaviour ---------------------------------------------------
    def on_write(self, reg, value: int) -> None:
        if reg.name == self._data:
            offset = self.reg_value(self._addr) % NVM_PAGE_BYTES
            offset &= ~3
            self.page_buffer[offset : offset + 4] = (
                value & 0xFFFF_FFFF
            ).to_bytes(4, "little")
            self.set_reg(self._addr, offset + 4)
            return
        if reg.name != self._ctrl:
            return
        ctrl_def = self.layout.register_named(self._ctrl)
        if not ctrl_def.field_named("START").extract(value):
            return
        # START pulse: capture page + command, go busy.
        page = ctrl_def.field_named("PAGE").extract(value)
        cmd = ctrl_def.field_named("CMD").extract(value)
        # Clear the self-clearing START bit.
        self.set_field(self._ctrl, "START", 0)
        if self.busy_cycles > 0:
            self.error = True
            return
        if cmd not in (CMD_PROG, CMD_ERASE) or page >= self.pages:
            self.error = True
            return
        self.pending_cmd = cmd
        self.pending_page = page
        self.busy_cycles = (
            PROGRAM_CYCLES if cmd == CMD_PROG else ERASE_CYCLES
        )
        self.done = False
        self.error = False

    def on_read(self, reg, value: int) -> int:
        if reg.name == self._stat:
            stat_def = self.layout.register_named(self._stat)
            status = 0
            status = stat_def.field_named("BUSY").insert(
                status, int(self.busy_cycles > 0)
            )
            status = stat_def.field_named("DONE").insert(
                status, int(self.done)
            )
            status = stat_def.field_named("ERR").insert(
                status, int(self.error)
            )
            return status
        return value

    def event_horizon(self) -> int | None:
        # The only tick-driven event is operation completion (DONE +
        # interrupt + array update) after the programming delay.
        return self.busy_cycles if self.busy_cycles > 0 else None

    def tick(self, cycles: int = 1) -> None:
        if self.busy_cycles <= 0:
            return
        self.busy_cycles -= cycles
        if self.busy_cycles > 0:
            return
        self.busy_cycles = 0
        base = self.pending_page * NVM_PAGE_BYTES
        if self.pending_cmd == CMD_PROG:
            self.array.load(base, bytes(self.page_buffer))
            self.operation_log.append(("prog", self.pending_page))
        elif self.pending_cmd == CMD_ERASE:
            self.array.load(base, b"\xff" * NVM_PAGE_BYTES)
            self.operation_log.append(("erase", self.pending_page))
        self.pending_cmd = CMD_IDLE
        self.done = True
        self.irq = True  # NVM-done interrupt line

    def page_bytes(self, page: int) -> bytes:
        """Backdoor page read for checkers and coverage."""
        base = page * NVM_PAGE_BYTES
        return bytes(self.array.data[base : base + NVM_PAGE_BYTES])
