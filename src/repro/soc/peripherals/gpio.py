"""GPIO block.

Besides being a test target itself, GPIO is the **product-silicon
reporting channel**: on platforms with no debug visibility (the paper's
final product silicon) a test can only signal pass/fail by driving pins.
The ADVM base functions drive ``DONE_PIN`` and ``PASS_PIN`` here, and the
:class:`~repro.platforms.silicon.ProductSilicon` platform reads only these
pins to produce its verdict.
"""

from __future__ import annotations

from repro.soc.peripherals.base import Peripheral
from repro.soc.registers import (
    Access,
    Field,
    PeripheralLayout,
    RegisterDef,
)

DONE_PIN = 0
PASS_PIN = 1
NUM_PINS = 16


def make_gpio_layout(
    out_name: str = "GPIO_OUT",
    in_name: str = "GPIO_IN",
    dir_name: str = "GPIO_DIR",
) -> PeripheralLayout:
    return PeripheralLayout(
        name="GPIO",
        doc="general-purpose I/O; pins 0/1 report test done/pass",
        registers=(
            RegisterDef(
                out_name, 0x00, fields=(Field("PINS", 0, NUM_PINS),)
            ),
            RegisterDef(
                in_name,
                0x04,
                access=Access.RO,
                fields=(Field("PINS", 0, NUM_PINS, Access.RO),),
            ),
            RegisterDef(
                dir_name,
                0x08,
                fields=(Field("PINS", 0, NUM_PINS),),
                doc="1 = output",
            ),
        ),
    )


class Gpio(Peripheral):
    def __init__(self, layout: PeripheralLayout | None = None):
        layout = layout or make_gpio_layout()
        regs = layout.register_names()
        self._out, self._in, self._dir = regs
        super().__init__(layout, name="GPIO")
        #: History of OUT values, newest last (platform probes sample it).
        self.out_history: list[int] = []

    def reset(self) -> None:
        super().reset()
        self.out_history = []

    def on_write(self, reg, value: int) -> None:
        if reg.name == self._out:
            self.out_history.append(value & 0xFFFF)

    # -- host-side helpers ---------------------------------------------------
    def drive_input(self, pins: int) -> None:
        self.set_reg(self._in, pins & 0xFFFF)

    def pin(self, index: int) -> int:
        """Sample an output pin as the outside world sees it (respects
        the direction register: inputs read as 0 from outside)."""
        out = self.reg_value(self._out)
        direction = self.reg_value(self._dir)
        return (out & direction) >> index & 1
