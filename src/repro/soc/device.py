"""The assembled SC88 device: CPU-visible bus with all peripherals.

:class:`SystemOnChip` wires one derivative's memories and peripherals
onto a bus and offers the services every execution platform needs: image
loading, peripheral ticking with interrupt collection, and the
result-reporting probes (result word in RAM, GPIO pass/fail pins, UART
output).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.assembler.linker import MemoryImage
from repro.soc.bus import Bus, Memory
from repro.soc.derivatives import Derivative
from repro.soc.memorymap import MemoryMap
from repro.soc.peripherals.gpio import DONE_PIN, Gpio, PASS_PIN
from repro.soc.peripherals.intc import (
    InterruptController,
    LINE_GPIO,
    LINE_NVM,
    LINE_TIMER,
    LINE_UART,
    LINE_WDT,
)
from repro.soc.peripherals.nvm import NvmController
from repro.soc.peripherals.timer import Timer
from repro.soc.peripherals.uart import Uart
from repro.soc.peripherals.watchdog import Watchdog

#: Result signatures written by tests (also published via Globals.inc).
PASS_MAGIC = 0x600D_C0DE
FAIL_MAGIC = 0xBAD0_BAD0

#: Wait states charged by the cycle-accurate platforms, per region.
ROM_WAIT_STATES = 1
RAM_WAIT_STATES = 0
NVM_WAIT_STATES = 3
SFR_WAIT_STATES = 1


@dataclass
class IrqLine:
    line: int
    device: object  # Peripheral with an ``irq`` attribute


class SfrPort:
    """Bus port wrapping one peripheral register block.

    Under event-horizon scheduling the SoC defers peripheral ticking
    until the next observable event; this port settles the pending
    cycle debt *before* any register access, so software (and probes)
    never observe stale peripheral state.  Writes additionally end the
    core's current block-run: a store may reconfigure the peripheral
    (enable a timer, start an NVM operation) and move the event
    horizon, which the scheduler must recompute before running on.

    When no core is bound (legacy per-tick driving, direct SoC use)
    both hooks are no-ops and the port is a transparent pass-through.
    """

    __slots__ = ("soc", "peripheral")

    def __init__(self, soc: "SystemOnChip", peripheral):
        self.soc = soc
        self.peripheral = peripheral

    def read(self, offset: int, size: int) -> int:
        self.soc.flush_ticks()
        return self.peripheral.read(offset, size)

    def write(self, offset: int, value: int, size: int) -> None:
        soc = self.soc
        soc.flush_ticks()
        self.peripheral.write(offset, value, size)
        soc.horizon_changed()


class SystemOnChip:
    """One SC88 device instance for a given derivative."""

    def __init__(self, derivative: Derivative):
        self.derivative = derivative
        self.memory_map: MemoryMap = derivative.memory_map()
        self.register_map = derivative.register_map()
        self.bus = Bus()

        memory_map = self.memory_map
        self.rom = Memory(memory_map.rom.size, read_only=True)
        self.ram = Memory(memory_map.ram.size)
        self.bus.attach(
            "rom",
            memory_map.rom.base,
            memory_map.rom.size,
            self.rom,
            ROM_WAIT_STATES,
        )
        self.bus.attach(
            "ram",
            memory_map.ram.base,
            memory_map.ram.size,
            self.ram,
            RAM_WAIT_STATES,
        )

        self.nvm = NvmController(
            layout=derivative.nvm_layout(), pages=derivative.nvm_pages
        )
        self.bus.attach(
            "nvm_array",
            memory_map.nvm.base,
            memory_map.nvm.size,
            self.nvm.array,
            NVM_WAIT_STATES,
        )

        self.intc = InterruptController(derivative.intc_layout())
        self.uart = Uart(derivative.uart_layout())
        self.timer = Timer(derivative.timer_layout())
        self.gpio = Gpio(derivative.gpio_layout())
        self.wdt = Watchdog(
            derivative.wdt_layout(), service_key=derivative.wdt_service_key
        )

        register_map = self.register_map
        for instance_name, device in (
            ("INTC", self.intc),
            ("UART", self.uart),
            ("NVM", self.nvm),
            ("TIMER", self.timer),
            ("GPIO", self.gpio),
            ("WDT", self.wdt),
        ):
            instance = register_map.instance(instance_name)
            self.bus.attach(
                instance_name.lower(),
                instance.base,
                instance.layout.size,
                SfrPort(self, device),
                SFR_WAIT_STATES,
            )

        self.irq_lines = [
            IrqLine(LINE_UART, self.uart),
            IrqLine(LINE_TIMER, self.timer),
            IrqLine(LINE_NVM, self.nvm),
            IrqLine(LINE_GPIO, self.gpio),
            IrqLine(LINE_WDT, self.wdt),
        ]

        #: Event-horizon scheduling state: the bound core whose cycle
        #: counter peripheral time follows (None = legacy per-tick
        #: driving), the cycle count peripherals have been ticked
        #: through, and the cycles-after-that of the next observable
        #: peripheral event (None = no event pending).
        self._cpu = None
        self._ticked_cycles = 0
        self._horizon: int | None = None

    # -- lifecycle ------------------------------------------------------------
    def reset(self) -> None:
        for peripheral in (
            self.intc,
            self.uart,
            self.nvm,
            self.timer,
            self.gpio,
            self.wdt,
        ):
            peripheral.reset()
        self.ram.load(0, bytes(self.memory_map.ram.size))

    def full_reset(self) -> None:
        """Return the device to its just-constructed state.

        Beyond :meth:`reset` (peripherals + RAM), this also clears ROM
        and the NVM array and the bus bookkeeping, so one SoC instance
        can host many independent runs — an
        :class:`~repro.platforms.session.ExecutionSession` calls this
        between images instead of rebuilding the whole device.
        """
        self.reset()
        self.rom.load(0, bytes(self.memory_map.rom.size))
        self.nvm.array.load(0, bytes(len(self.nvm.array.data)))
        self.bus.access_count = 0
        self.bus.rebuild_dispatch()
        self._cpu = None
        self._ticked_cycles = 0
        self._horizon = None

    def load_image(self, image: MemoryImage) -> None:
        """Backdoor-load a linked image into ROM/RAM/NVM."""
        for segment in image.segments:
            region = self.memory_map.region_of(segment.base)
            if region is None:
                raise ValueError(
                    f"image segment {segment.name!r} at {segment.base:#010x} "
                    "is outside every memory region"
                )
            offset = segment.base - region.base
            if region.name == "rom":
                self.rom.load(offset, segment.data)
            elif region.name == "ram":
                self.ram.load(offset, segment.data)
            elif region.name == "nvm":
                self.nvm.array.load(offset, segment.data)
            else:
                raise ValueError(
                    f"cannot load image segment into region {region.name!r}"
                )

    # -- lane-indexed state snapshots (batched lock-step engine) -----------
    #
    # A batch run executes one leader device for every converged lane;
    # when a lane peels off mid-run its follower device is seeded from
    # the leader's state at the peel point.  The snapshot is taken with
    # peripheral time settled, so restoring it and then binding a core
    # whose cycle counter matches the snapshot reproduces the leader's
    # deferred-ticking state exactly (attach_cpu re-anchors
    # ``_ticked_cycles`` and recomputes the horizon from the restored
    # peripherals).

    def _named_peripherals(self):
        return (
            ("intc", self.intc),
            ("uart", self.uart),
            ("nvm", self.nvm),
            ("timer", self.timer),
            ("gpio", self.gpio),
            ("wdt", self.wdt),
        )

    def snapshot_lane_state(self) -> dict:
        """Deep snapshot of all mutable device state (memories,
        peripherals, bus bookkeeping), reusable across many restores."""
        self.flush_ticks()
        return {
            "rom": bytes(self.rom.data),
            "ram": bytes(self.ram.data),
            "nvm_array": bytes(self.nvm.array.data),
            "peripherals": {
                name: peripheral.lane_state()
                for name, peripheral in self._named_peripherals()
            },
            "access_count": self.bus.access_count,
        }

    def restore_lane_state(self, state: dict) -> None:
        """Load a :meth:`snapshot_lane_state` snapshot into this device
        (no core may be attached; attach one with a matching cycle
        counter afterwards)."""
        self.rom.load(0, state["rom"])
        self.ram.load(0, state["ram"])
        self.nvm.array.load(0, state["nvm_array"])
        peripherals = state["peripherals"]
        for name, peripheral in self._named_peripherals():
            peripheral.load_lane_state(peripherals[name])
        self.bus.access_count = state["access_count"]

    # -- time -------------------------------------------------------------------
    def tick(self, cycles: int = 1) -> None:
        """Advance peripheral time and collect interrupt lines."""
        for irq_line in self.irq_lines:
            irq_line.device.tick(cycles)
            if irq_line.device.irq:
                self.intc.raise_line(irq_line.line)
                irq_line.device.irq = False

    # -- event-horizon scheduling ---------------------------------------------
    #
    # Per-instruction peripheral ticking walks every peripheral on every
    # retire even though almost all ticks change nothing observable.
    # With a core bound, the SoC instead *defers* ticking: peripherals
    # report the cycle distance to their next observable event (timer
    # underflow, watchdog expiry, level-sensitive interrupt re-raise,
    # NVM completion), the session runs the core in blocks bounded by
    # that horizon, and the accumulated cycle debt is settled in one
    # linear ``tick`` at the boundary.  Every peripheral ``tick``
    # implementation is linear in the sense ``tick(a); tick(b)`` ==
    # ``tick(a + b)`` between observable events, so batched and
    # per-instruction ticking retire byte-identical state; the SFR
    # ports and the probes below settle the debt before any read, so
    # observed register state is never stale.

    def attach_cpu(self, cpu) -> None:
        """Bind *cpu* as the cycle source for deferred ticking; the
        caller must have reset the core first."""
        self._cpu = cpu
        self._ticked_cycles = cpu.cycles
        self._horizon = self._compute_horizon()

    def detach_cpu(self) -> None:
        """Return to legacy per-tick driving (flushing any debt)."""
        self.flush_ticks()
        self._cpu = None

    def flush_ticks(self) -> None:
        """Settle deferred peripheral time up to the bound core's
        current cycle count, then recompute the event horizon.

        With zero debt the flush is a no-op: no peripheral saw new
        cycles, so the horizon computed at the last settle (or by
        :meth:`horizon_changed` after the last register write) still
        holds.  Skipping the recompute keeps back-to-back probes and
        polls from paying a full peripheral walk each.
        """
        cpu = self._cpu
        if cpu is None:
            return
        debt = cpu.cycles - self._ticked_cycles
        if debt <= 0:
            return
        self._ticked_cycles += debt
        self.tick(debt)
        self._horizon = self._compute_horizon()

    def horizon_changed(self) -> None:
        """Recompute the event horizon after a peripheral register
        write and end the core's current block so the session picks up
        the new bound (a store may have armed a nearer event)."""
        cpu = self._cpu
        if cpu is None:
            return
        self._horizon = self._compute_horizon()
        cpu.cut_block()

    def run_budget(self) -> int | None:
        """Cycles the bound core may execute before peripheral time
        must be settled; ``None`` when no observable event is pending."""
        horizon = self._horizon
        if horizon is None:
            return None
        debt = self._cpu.cycles - self._ticked_cycles
        remaining = horizon - debt
        return remaining if remaining > 0 else 1

    def _compute_horizon(self) -> int | None:
        horizon: int | None = None
        for irq_line in self.irq_lines:
            distance = irq_line.device.event_horizon()
            if distance is not None and (
                horizon is None or distance < horizon
            ):
                horizon = distance
        return horizon

    # -- probes -------------------------------------------------------------
    #
    # Every probe settles pending peripheral time first, so state
    # observed mid-run (watchdog polling, interleaved host checks) is
    # never stale under deferred ticking.

    def result_word(self) -> int:
        """The test-result signature word in RAM."""
        self.flush_ticks()
        return self.bus.peek_word(self.memory_map.result_address)

    def done_pin(self) -> int:
        self.flush_ticks()
        return self.gpio.pin(DONE_PIN)

    def pass_pin(self) -> int:
        self.flush_ticks()
        return self.gpio.pin(PASS_PIN)

    def uart_output(self) -> str:
        self.flush_ticks()
        return self.uart.transmitted_text()

    @property
    def watchdog_expired(self) -> bool:
        self.flush_ticks()
        return self.wdt.expired
