"""Named control/status register and bit-field model.

The ADVM paper's Figure 6 turns on exactly this information: a control
register has a named field at a position and width that may move or grow
between derivatives, and the abstraction layer publishes those facts as
assembler defines.  This module is the single source of truth the ADVM
``Globals.inc`` generator reads.

A :class:`PeripheralLayout` describes one peripheral's register block
(offsets, fields, access modes).  A :class:`RegisterMap` binds layouts to
base addresses for one concrete derivative and answers queries like
"address of NVM_CTRL" or "position/width of its PAGE field".
"""

from __future__ import annotations

from dataclasses import dataclass, field


class Access:
    """Register/field access modes."""

    RW = "rw"
    RO = "r"
    WO = "w"
    W1C = "w1c"  # write-1-to-clear (status registers)


@dataclass(frozen=True)
class Field:
    """A named bit field inside a register."""

    name: str
    pos: int
    width: int
    access: str = Access.RW
    doc: str = ""

    def __post_init__(self) -> None:
        if not 0 <= self.pos < 32:
            raise ValueError(f"field {self.name}: pos out of range")
        if not 1 <= self.width <= 32 or self.pos + self.width > 32:
            raise ValueError(f"field {self.name}: width out of range")

    @property
    def mask(self) -> int:
        return ((1 << self.width) - 1) << self.pos

    @property
    def max_value(self) -> int:
        return (1 << self.width) - 1

    def extract(self, register_value: int) -> int:
        return (register_value & self.mask) >> self.pos

    def insert(self, register_value: int, field_value: int) -> int:
        return (register_value & ~self.mask) | (
            (field_value << self.pos) & self.mask
        )


@dataclass(frozen=True)
class RegisterDef:
    """One register inside a peripheral block."""

    name: str
    offset: int
    fields: tuple[Field, ...] = ()
    access: str = Access.RW
    reset: int = 0
    doc: str = ""

    def __post_init__(self) -> None:
        if self.offset % 4:
            raise ValueError(f"register {self.name}: offset must be aligned")
        seen: set[str] = set()
        used_bits = 0
        for fld in self.fields:
            if fld.name in seen:
                raise ValueError(
                    f"register {self.name}: duplicate field {fld.name}"
                )
            seen.add(fld.name)
            if used_bits & fld.mask:
                raise ValueError(
                    f"register {self.name}: field {fld.name} overlaps"
                )
            used_bits |= fld.mask

    def field_named(self, name: str) -> Field:
        for fld in self.fields:
            if fld.name == name:
                return fld
        raise KeyError(f"register {self.name} has no field {name!r}")


@dataclass(frozen=True)
class PeripheralLayout:
    """A peripheral's register block: the *version-controlled* interface.

    Derivatives carry different layout versions — renamed registers,
    moved fields — and the ADVM global defines absorb the difference.
    """

    name: str
    registers: tuple[RegisterDef, ...]
    size: int = 0x100
    doc: str = ""

    def __post_init__(self) -> None:
        seen_names: set[str] = set()
        seen_offsets: set[int] = set()
        for reg in self.registers:
            if reg.name in seen_names:
                raise ValueError(f"{self.name}: duplicate register {reg.name}")
            if reg.offset in seen_offsets:
                raise ValueError(
                    f"{self.name}: duplicate offset {reg.offset:#x}"
                )
            if reg.offset >= self.size:
                raise ValueError(
                    f"{self.name}: register {reg.name} outside block"
                )
            seen_names.add(reg.name)
            seen_offsets.add(reg.offset)

    def register_named(self, name: str) -> RegisterDef:
        for reg in self.registers:
            if reg.name == name:
                return reg
        raise KeyError(f"peripheral {self.name} has no register {name!r}")

    def register_at(self, offset: int) -> RegisterDef | None:
        for reg in self.registers:
            if reg.offset == offset:
                return reg
        return None

    def register_names(self) -> list[str]:
        return [r.name for r in self.registers]


@dataclass(frozen=True)
class Instance:
    """A peripheral layout bound to a base address."""

    name: str
    layout: PeripheralLayout
    base: int

    def register_address(self, register_name: str) -> int:
        return self.base + self.layout.register_named(register_name).offset


@dataclass
class RegisterMap:
    """All register instances of one derivative, queryable by name.

    Names use ``INSTANCE.REGISTER`` (``NVM.NVM_CTRL``) or, when
    unambiguous, the bare register name (``NVM_CTRL``) — the latter is
    what assembler defines are generated from.
    """

    instances: dict[str, Instance] = field(default_factory=dict)

    def add(self, instance: Instance) -> None:
        if instance.name in self.instances:
            raise ValueError(f"duplicate instance {instance.name!r}")
        self.instances[instance.name] = instance

    def instance(self, name: str) -> Instance:
        try:
            return self.instances[name]
        except KeyError:
            raise KeyError(f"no peripheral instance {name!r}") from None

    def _split(self, name: str) -> tuple[Instance, str]:
        if "." in name:
            instance_name, register_name = name.split(".", 1)
            return self.instance(instance_name), register_name
        matches = [
            inst
            for inst in self.instances.values()
            if register_name_in(inst.layout, name)
        ]
        if not matches:
            raise KeyError(f"no register named {name!r} in any peripheral")
        if len(matches) > 1:
            names = [m.name for m in matches]
            raise KeyError(f"register {name!r} is ambiguous across {names}")
        return matches[0], name

    def register_address(self, name: str) -> int:
        instance, register_name = self._split(name)
        return instance.register_address(register_name)

    def register_def(self, name: str) -> RegisterDef:
        instance, register_name = self._split(name)
        return instance.layout.register_named(register_name)

    def field_of(self, register_name: str, field_name: str) -> Field:
        return self.register_def(register_name).field_named(field_name)

    def all_register_addresses(self) -> dict[str, int]:
        """Flat ``INSTANCE.REGISTER -> address`` view (for coverage and
        for generating complete register-test environments)."""
        out: dict[str, int] = {}
        for inst in self.instances.values():
            for reg in inst.layout.registers:
                out[f"{inst.name}.{reg.name}"] = inst.base + reg.offset
        return out


def register_name_in(layout: PeripheralLayout, name: str) -> bool:
    return any(r.name == name for r in layout.registers)
