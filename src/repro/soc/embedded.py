"""Embedded-software ROM library (the paper's global layer).

The paper's Figure 7 shows a test needing a function that lives in the
embedded software — code the verification team does **not** control.  Its
worked example is a function whose *input registers get swapped around*
by a firmware rewrite; the abstraction layer absorbs the change by
wrapping the function in ``Base_Functions.asm``.

This module provides that embedded software as real SC88 assembler
source, in two versions:

- **version 1** (derivatives A/B/C): ``ES_Init_Register`` takes the
  target address in ``a4`` and the value in ``d4``;
- **version 2** (derivative D): the function is *renamed* to
  ``ES_InitRegister`` and its inputs are *swapped* to ``a5``/``d5`` —
  exactly the change classes §4 of the paper enumerates.

The ABI description (:class:`EsAbi`) is what the ADVM base-functions
generator consults to build the correct wrapper for each derivative.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.assembler.assembler import Assembler
from repro.assembler.objectfile import ObjectFile
from repro.soc.memorymap import ES_ROM_BASE


@dataclass(frozen=True)
class EsAbi:
    """Calling convention of the embedded-software entry points."""

    version: int
    init_register_symbol: str
    init_addr_reg: str
    init_value_reg: str
    delay_count_reg: str
    checksum_src_reg: str
    checksum_count_reg: str
    checksum_out_reg: str


ES_ABI_V1 = EsAbi(
    version=1,
    init_register_symbol="ES_Init_Register",
    init_addr_reg="a4",
    init_value_reg="d4",
    delay_count_reg="d4",
    checksum_src_reg="a4",
    checksum_count_reg="d4",
    checksum_out_reg="d2",
)

#: Version 2: renamed entry point and swapped input registers (Figure 7's
#: "input registers have been swapped around" scenario).
ES_ABI_V2 = EsAbi(
    version=2,
    init_register_symbol="ES_InitRegister",
    init_addr_reg="a5",
    init_value_reg="d5",
    delay_count_reg="d5",
    checksum_src_reg="a5",
    checksum_count_reg="d5",
    checksum_out_reg="d2",
)


def es_abi(version: int) -> EsAbi:
    if version == 1:
        return ES_ABI_V1
    if version == 2:
        return ES_ABI_V2
    raise ValueError(f"unknown embedded-software version {version}")


def es_source(version: int) -> str:
    """Assembler source of the embedded-software ROM for *version*."""
    abi = es_abi(version)
    return f"""\
;; Embedded_Software.asm -- firmware library, version {abi.version}
;; NOT under verification-team control (global layer).
.SECTION estext
.ORG {ES_ROM_BASE:#x}

;; Initialise a register: address in {abi.init_addr_reg}, value in {abi.init_value_reg}.
{abi.init_register_symbol}:
    ST.W [{abi.init_addr_reg}], {abi.init_value_reg}
    RETURN

;; Report the firmware version in d2.
ES_Get_Version:
    LOAD d2, {abi.version}
    RETURN

;; Busy-wait: loop count in {abi.delay_count_reg} (clobbers it).
ES_Delay:
ES_Delay_loop:
    DJNZ {abi.delay_count_reg}, ES_Delay_loop
    RETURN

;; XOR checksum over words: src in {abi.checksum_src_reg}, word count in
;; {abi.checksum_count_reg}; result in {abi.checksum_out_reg}.
ES_Checksum:
    LOAD {abi.checksum_out_reg}, 0
ES_Checksum_loop:
    LD.W d3, [{abi.checksum_src_reg}]
    XOR {abi.checksum_out_reg}, {abi.checksum_out_reg}, d3
    ADDA {abi.checksum_src_reg}, {abi.checksum_src_reg}, 4
    DJNZ {abi.checksum_count_reg}, ES_Checksum_loop
    RETURN
"""


def assemble_embedded_software(
    version: int, assembler: Assembler | None = None
) -> ObjectFile:
    """Assemble the embedded-software ROM object for *version*.

    The object's ``estext`` section carries ``.ORG`` at the fixed ES ROM
    base, so linking it with any test image places the firmware exactly
    where real silicon would have it.
    """
    asm = assembler or Assembler()
    return asm.assemble_source(
        es_source(version), name=f"Embedded_Software_v{version}.asm"
    )
