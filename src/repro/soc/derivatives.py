"""The SC88 derivative catalogue.

A *derivative* is a concrete chip variant.  The paper's Section 4 walks
through the change classes derivatives introduce; each SC88 derivative
below embodies at least one of them, so the reproduction can measure how
the abstraction layer absorbs every class:

========  =============================================================
sc88a     baseline device (paper's starting point)
sc88b     NVM ``PAGE`` field **widened 5 -> 6 bits** (more pages) —
          Figure 6's derivative change
sc88c     ``PAGE`` field **shifted by one bit** (Figure 6's
          specification change), ``NVM_CTRL`` **renamed** to
          ``NVM_CONTROL``, UART **re-based** in SFR space
sc88d     embedded software **rewritten** (entry point renamed, input
          registers swapped — Figure 7's scenario), timer counter
          widened 24 -> 32 bits, watchdog service key changed
========  =============================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.soc.embedded import EsAbi, es_abi
from repro.soc.memorymap import MemoryMap, make_memory_map
from repro.soc.registers import Instance, PeripheralLayout, RegisterMap
from repro.soc.peripherals.gpio import make_gpio_layout
from repro.soc.peripherals.intc import make_intc_layout
from repro.soc.peripherals.nvm import make_nvm_layout
from repro.soc.peripherals.timer import make_timer_layout
from repro.soc.peripherals.uart import make_uart_layout
from repro.soc.peripherals.watchdog import make_wdt_layout

SFR_BASE = 0xF000_0000


@dataclass(frozen=True)
class Derivative:
    """Static description of one chip variant."""

    name: str
    title: str
    description: str
    #: NVM geometry (Figure 6's moving parts).
    page_field_pos: int
    page_field_width: int
    #: Register naming (sc88c renames the NVM control register).
    nvm_ctrl_name: str
    #: Peripheral base offsets within SFR space.
    intc_offset: int
    uart_offset: int
    nvm_offset: int
    timer_offset: int
    gpio_offset: int
    wdt_offset: int
    timer_counter_width: int
    wdt_service_key: int
    #: Embedded-software (global layer firmware) version.
    es_version: int

    @property
    def nvm_pages(self) -> int:
        return 1 << self.page_field_width

    @property
    def predefine(self) -> str:
        """Assembler predefine selecting this derivative
        (``DERIVATIVE_SC88A`` style, the paper's derivative macro)."""
        return f"DERIVATIVE_{self.name.upper()}"

    @property
    def es_abi(self) -> EsAbi:
        return es_abi(self.es_version)

    def memory_map(self) -> MemoryMap:
        return make_memory_map(self.nvm_pages)

    # -- layouts -----------------------------------------------------------
    def nvm_layout(self) -> PeripheralLayout:
        return make_nvm_layout(
            page_pos=self.page_field_pos,
            page_width=self.page_field_width,
            ctrl_name=self.nvm_ctrl_name,
        )

    def uart_layout(self) -> PeripheralLayout:
        return make_uart_layout()

    def timer_layout(self) -> PeripheralLayout:
        return make_timer_layout(counter_width=self.timer_counter_width)

    def intc_layout(self) -> PeripheralLayout:
        return make_intc_layout()

    def gpio_layout(self) -> PeripheralLayout:
        return make_gpio_layout()

    def wdt_layout(self) -> PeripheralLayout:
        return make_wdt_layout()

    def register_map(self) -> RegisterMap:
        """Bind every peripheral layout to its base for this derivative."""
        register_map = RegisterMap()
        register_map.add(
            Instance("INTC", self.intc_layout(), SFR_BASE + self.intc_offset)
        )
        register_map.add(
            Instance("UART", self.uart_layout(), SFR_BASE + self.uart_offset)
        )
        register_map.add(
            Instance("NVM", self.nvm_layout(), SFR_BASE + self.nvm_offset)
        )
        register_map.add(
            Instance(
                "TIMER", self.timer_layout(), SFR_BASE + self.timer_offset
            )
        )
        register_map.add(
            Instance("GPIO", self.gpio_layout(), SFR_BASE + self.gpio_offset)
        )
        register_map.add(
            Instance("WDT", self.wdt_layout(), SFR_BASE + self.wdt_offset)
        )
        return register_map


SC88A = Derivative(
    name="sc88a",
    title="SC88-A",
    description="baseline chip-card controller",
    page_field_pos=0,
    page_field_width=5,
    nvm_ctrl_name="NVM_CTRL",
    intc_offset=0x0000,
    uart_offset=0x1000,
    nvm_offset=0x2000,
    timer_offset=0x3000,
    gpio_offset=0x4000,
    wdt_offset=0x5000,
    timer_counter_width=24,
    wdt_service_key=0xA5,
    es_version=1,
)

SC88B = Derivative(
    name="sc88b",
    title="SC88-B",
    description="more NVM pages: PAGE field widened 5 -> 6 bits (Fig. 6)",
    page_field_pos=0,
    page_field_width=6,
    nvm_ctrl_name="NVM_CTRL",
    intc_offset=0x0000,
    uart_offset=0x1000,
    nvm_offset=0x2000,
    timer_offset=0x3000,
    gpio_offset=0x4000,
    wdt_offset=0x5000,
    timer_counter_width=24,
    wdt_service_key=0xA5,
    es_version=1,
)

SC88C = Derivative(
    name="sc88c",
    title="SC88-C",
    description=(
        "spec change: PAGE field shifted by one bit, NVM control register "
        "renamed, UART re-based"
    ),
    page_field_pos=1,
    page_field_width=5,
    nvm_ctrl_name="NVM_CONTROL",
    intc_offset=0x0000,
    uart_offset=0x6000,
    nvm_offset=0x2000,
    timer_offset=0x3000,
    gpio_offset=0x4000,
    wdt_offset=0x5000,
    timer_counter_width=24,
    wdt_service_key=0xA5,
    es_version=1,
)

SC88D = Derivative(
    name="sc88d",
    title="SC88-D",
    description=(
        "firmware rewrite: ES entry renamed + input registers swapped "
        "(Fig. 7), 32-bit timer, new watchdog key"
    ),
    page_field_pos=0,
    page_field_width=6,
    nvm_ctrl_name="NVM_CTRL",
    intc_offset=0x0000,
    uart_offset=0x1000,
    nvm_offset=0x2000,
    timer_offset=0x3000,
    gpio_offset=0x4000,
    wdt_offset=0x5000,
    timer_counter_width=32,
    wdt_service_key=0x5A,
    es_version=2,
)

CATALOGUE: dict[str, Derivative] = {
    d.name: d for d in (SC88A, SC88B, SC88C, SC88D)
}


def derivative(name: str) -> Derivative:
    """Look up a derivative by name (``sc88a`` .. ``sc88d``)."""
    try:
        return CATALOGUE[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown derivative {name!r}; available: {sorted(CATALOGUE)}"
        ) from None


def all_derivatives() -> list[Derivative]:
    return list(CATALOGUE.values())
