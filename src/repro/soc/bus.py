"""System bus: routes CPU accesses to memories and peripherals.

The bus is deliberately simple — single master, flat decode — but it
models the two properties the execution platforms differ on:

- **wait states** per device (the cycle-accurate "RTL" platform charges
  them; the functional golden model ignores them), and
- an **access trace** hook used by functional coverage and by the
  platforms with bus visibility.

Unmapped or misaligned accesses raise :class:`BusError`; the CPU converts
them into the architectural bus-error trap so a runaway test dies the
same way on every platform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol


class BusError(Exception):
    """Unmapped or malformed bus access."""

    def __init__(self, message: str, address: int):
        super().__init__(message)
        self.address = address


class BusDevice(Protocol):
    """Anything mappable on the bus."""

    def read(self, offset: int, size: int) -> int: ...

    def write(self, offset: int, value: int, size: int) -> None: ...


@dataclass
class Mapping:
    name: str
    base: int
    size: int
    device: BusDevice
    wait_states: int = 0

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int, length: int) -> bool:
        return self.base <= address and address + length <= self.end


@dataclass(frozen=True)
class BusAccess:
    """One observed bus transaction (for traces and coverage)."""

    kind: str  # "read" | "write"
    address: int
    size: int
    value: int


class Memory:
    """Plain byte-addressable memory device (RAM, ROM, NVM array)."""

    def __init__(self, size: int, read_only: bool = False, fill: int = 0x00):
        self.data = bytearray([fill]) * 1  # placate type checkers
        self.data = bytearray([fill] * size)
        self.read_only = read_only

    def read(self, offset: int, size: int) -> int:
        return int.from_bytes(self.data[offset : offset + size], "little")

    def write(self, offset: int, value: int, size: int) -> None:
        if self.read_only:
            raise BusError("write to read-only memory", offset)
        self.data[offset : offset + size] = (
            value & ((1 << (8 * size)) - 1)
        ).to_bytes(size, "little")

    def load(self, offset: int, payload: bytes) -> None:
        """Backdoor load (image loading bypasses read-only protection)."""
        self.data[offset : offset + len(payload)] = payload


class Bus:
    """Single-master system bus with device decode and tracing."""

    def __init__(self) -> None:
        self.mappings: list[Mapping] = []
        self.trace_hooks: list[Callable[[BusAccess], None]] = []
        self.access_count = 0

    def attach(
        self,
        name: str,
        base: int,
        size: int,
        device: BusDevice,
        wait_states: int = 0,
    ) -> Mapping:
        mapping = Mapping(name, base, size, device, wait_states)
        for existing in self.mappings:
            if mapping.base < existing.end and existing.base < mapping.end:
                raise ValueError(
                    f"bus mapping {name!r} overlaps {existing.name!r}"
                )
        self.mappings.append(mapping)
        self.mappings.sort(key=lambda m: m.base)
        return mapping

    def mapping_for(self, address: int, length: int) -> Mapping:
        for mapping in self.mappings:
            if mapping.contains(address, length):
                return mapping
        raise BusError(f"unmapped address {address:#010x}", address)

    # -- access API -------------------------------------------------------
    def read(self, address: int, size: int) -> tuple[int, int]:
        """Read *size* bytes; returns ``(value, wait_states)``."""
        if address % size:
            raise BusError(f"misaligned read at {address:#010x}", address)
        mapping = self.mapping_for(address, size)
        value = mapping.device.read(address - mapping.base, size)
        self.access_count += 1
        if self.trace_hooks:
            access = BusAccess("read", address, size, value)
            for hook in self.trace_hooks:
                hook(access)
        return value, mapping.wait_states

    def write(self, address: int, value: int, size: int) -> int:
        """Write *size* bytes; returns wait states charged."""
        if address % size:
            raise BusError(f"misaligned write at {address:#010x}", address)
        mapping = self.mapping_for(address, size)
        mapping.device.write(address - mapping.base, value, size)
        self.access_count += 1
        if self.trace_hooks:
            access = BusAccess("write", address, size, value)
            for hook in self.trace_hooks:
                hook(access)
        return mapping.wait_states

    # Convenience word accessors used by platforms/debug ports; they do
    # not charge wait states or fire trace hooks.
    def peek_word(self, address: int) -> int:
        mapping = self.mapping_for(address, 4)
        return mapping.device.read(address - mapping.base, 4)

    def poke_word(self, address: int, value: int) -> None:
        mapping = self.mapping_for(address, 4)
        mapping.device.write(address - mapping.base, value, 4)
