"""System bus: routes CPU accesses to memories and peripherals.

The bus is deliberately simple — single master, flat decode — but it
models the two properties the execution platforms differ on:

- **wait states** per device (the cycle-accurate "RTL" platform charges
  them; the functional golden model ignores them), and
- an **access trace** used by functional coverage and by the platforms
  with bus visibility.

Routing is O(1): :meth:`Bus.attach` precomputes a page-granular dispatch
table (page index → :class:`Mapping`) for every page a mapping fully
covers, so the hot path is one shift and one dict probe.  Accesses that
land on a page no mapping fully covers — partial pages of an unaligned
test mapping, or straddles past a region end — fall back to a binary
search over the sorted mapping list.  Mappings backed by a plain
:class:`Memory` additionally expose their byte buffer to the bus, which
reads/writes aligned words with :mod:`struct` directly instead of paying
a method call plus a bytes-slice allocation per access.

Tracing is allocation-free on the hot path: when a :class:`BusTrace`
buffer is installed, each access appends one ``(kind, address, size,
value)`` tuple; consumers drain the buffer lazily into
:class:`BusAccess` views.  The legacy ``trace_hooks`` callback list is
still honoured (each hook receives a :class:`BusAccess`), but costs an
object per access and is kept for tests and ad-hoc probes.

Unmapped or misaligned accesses raise :class:`BusError`; the CPU converts
them into the architectural bus-error trap so a runaway test dies the
same way on every platform.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from struct import Struct
from typing import Callable, Iterator, Protocol

#: Dispatch-table granularity.  256-byte pages cover every real mapping
#: exactly (memory regions are 64 KiB-aligned and SFR peripheral blocks
#: are 0x100-sized at 0x100-aligned bases), while keeping the table a
#: few thousand entries even for the 512 KiB ROM.
PAGE_SHIFT = 8
PAGE_SIZE = 1 << PAGE_SHIFT

_U32 = Struct("<I")
_U16 = Struct("<H")
#: Shared little-endian word/halfword codecs — the bus, the Memory
#: device and the core's inline accessors all read/write buffers
#: through these.
u32_unpack_from = _U32.unpack_from
u32_pack_into = _U32.pack_into
u16_unpack_from = _U16.unpack_from
u16_pack_into = _U16.pack_into


class BusError(Exception):
    """Unmapped or malformed bus access."""

    def __init__(self, message: str, address: int):
        super().__init__(message)
        self.address = address


class BusDevice(Protocol):
    """Anything mappable on the bus."""

    def read(self, offset: int, size: int) -> int: ...

    def write(self, offset: int, value: int, size: int) -> None: ...


@dataclass
class Mapping:
    name: str
    base: int
    size: int
    device: BusDevice
    wait_states: int = 0
    #: Derived routing state, filled in ``__post_init__``: the exclusive
    #: end address, and — for plain :class:`Memory` devices — the raw
    #: byte buffer the bus may read/write words from directly
    #: (``word_wbuf`` stays ``None`` for read-only memories so writes
    #: route through :meth:`Memory.write` and raise).
    end: int = field(init=False, repr=False)
    word_buf: bytearray | None = field(init=False, default=None, repr=False)
    word_wbuf: bytearray | None = field(init=False, default=None, repr=False)

    def __post_init__(self) -> None:
        # Re-entrant: rebuild_dispatch re-runs this after a device swap,
        # so stale word buffers must be dropped, not just overwritten —
        # a non-Memory device (e.g. a watching wrapper) must route every
        # access through its read/write methods.
        self.end = self.base + self.size
        self.word_buf = None
        self.word_wbuf = None
        if type(self.device) is Memory:
            self.word_buf = self.device.data
            if not self.device.read_only:
                self.word_wbuf = self.device.data

    def contains(self, address: int, length: int) -> bool:
        return self.base <= address and address + length <= self.end


@dataclass(frozen=True)
class BusAccess:
    """One observed bus transaction (for traces and coverage)."""

    kind: str  # "read" | "write"
    address: int
    size: int
    value: int


class BusTrace:
    """Flat ring buffer of bus events: ``(kind, address, size, value)``.

    Recording appends one small tuple per access — no dataclass, no
    ``__dict__`` — so a traced run stays close to untraced speed.
    Consumers that want object views iterate the buffer, which yields
    :class:`BusAccess` lazily; bulk consumers (coverage) read
    :meth:`raw` and destructure tuples directly.

    With a *capacity*, the buffer wraps: the oldest events are
    overwritten and counted in :attr:`dropped`.  The default is
    unbounded, which coverage and trace-equivalence checks rely on.
    """

    __slots__ = ("_events", "_capacity", "_head", "dropped")

    def __init__(self, capacity: int | None = None):
        if capacity is not None and capacity <= 0:
            raise ValueError("BusTrace capacity must be positive")
        self._events: list[tuple[str, int, int, int]] = []
        self._capacity = capacity
        self._head = 0
        self.dropped = 0

    def record(self, kind: str, address: int, size: int, value: int) -> None:
        events = self._events
        capacity = self._capacity
        if capacity is None or len(events) < capacity:
            events.append((kind, address, size, value))
        else:
            events[self._head] = (kind, address, size, value)
            self._head = (self._head + 1) % capacity
            self.dropped += 1

    def extend_raw(
        self, events: "list[tuple] | tuple[tuple, ...]"
    ) -> None:
        """Bulk append: semantically identical to calling :meth:`record`
        once per event, but O(1) Python-level operations — one
        ``list.extend`` on the unbounded/filling path, at most two slice
        assignments on the wrap path.  The superblock engine uses this
        to emit a whole block's replayed fetch events in one shot."""
        n = len(events)
        if n == 0:
            return
        evs = self._events
        capacity = self._capacity
        if capacity is None:
            evs.extend(events)
            return
        fill = capacity - len(evs)
        if fill:
            if fill >= n:
                evs.extend(events)
                return
            evs.extend(events[:fill])
            events = events[fill:]
            n -= fill
        # Ring is full: overwrite n events starting at the head.
        head = self._head
        self.dropped += n
        if n >= capacity:
            # Only the last ring's worth survives; everything earlier
            # is a pure head rotation plus the dropped count above.
            tail = events[n - capacity :]
            head = (head + n) % capacity
            split = capacity - head
            evs[head:] = tail[:split]
            evs[:head] = tail[split:]
            self._head = head
        else:
            first = capacity - head
            if first >= n:
                evs[head : head + n] = events
            else:
                evs[head:] = events[:first]
                evs[: n - first] = events[first:]
            self._head = (head + n) % capacity

    def extend_repeat(
        self, events: tuple[tuple, ...], count: int
    ) -> None:
        """Append *events* repeated *count* times — the access stream a
        warped idle spin would have produced one iteration at a time.
        Identical to ``count`` :meth:`record` loops over *events*, but
        clamped so a huge warp costs at most one ring's worth of
        work: with a capacity, only the surviving tail window is
        synthesized; unbounded buffers take one C-level repetition."""
        unit = len(events)
        if unit == 0 or count <= 0:
            return
        capacity = self._capacity
        evs = self._events
        total = unit * count
        if capacity is None:
            evs.extend(events * count)
            return
        if total <= 2 * capacity:
            self.extend_raw(events * count)
            return
        # Huge warp: all but the final ring's worth of events is pure
        # head rotation + dropped accounting.  Synthesize the surviving
        # window (the last *capacity* events of the repeated stream) and
        # lay it down rotated so slot order matches a per-event replay.
        space = capacity - len(evs)
        if space > 0:
            head0 = 0
            overwrites = total - space
        else:
            head0 = self._head
            overwrites = total
        new_head = (head0 + overwrites) % capacity
        start = total - capacity  # stream index of the oldest survivor
        offset = start % unit
        reps = -(-(capacity + offset) // unit)
        window = (list(events) * reps)[offset : offset + capacity]
        split = capacity - new_head
        self._events = window[split:] + window[:split]
        self._head = new_head
        self.dropped += overwrites

    def raw(self) -> list[tuple[str, int, int, int]]:
        """Events oldest-first as raw tuples.  When the buffer has not
        wrapped this is the live list — treat it as read-only."""
        head = self._head
        if head:
            return self._events[head:] + self._events[:head]
        return self._events

    def clear(self) -> None:
        self._events.clear()
        self._head = 0
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[BusAccess]:
        for kind, address, size, value in self.raw():
            yield BusAccess(kind, address, size, value)

    def __getitem__(self, index):
        raw = self.raw()[index]
        if isinstance(index, slice):
            return [BusAccess(*event) for event in raw]
        return BusAccess(*raw)


class Memory:
    """Plain byte-addressable memory device (RAM, ROM, NVM array)."""

    def __init__(self, size: int, read_only: bool = False, fill: int = 0x00):
        self.data: bytearray = bytearray([fill]) * size
        self.read_only = read_only

    def read(self, offset: int, size: int) -> int:
        return int.from_bytes(self.data[offset : offset + size], "little")

    def write(self, offset: int, value: int, size: int) -> None:
        if self.read_only:
            raise BusError("write to read-only memory", offset)
        self.data[offset : offset + size] = (
            value & ((1 << (8 * size)) - 1)
        ).to_bytes(size, "little")

    def load(self, offset: int, payload: bytes) -> None:
        """Backdoor load (image loading bypasses read-only protection)."""
        self.data[offset : offset + len(payload)] = payload


class Bus:
    """Single-master system bus with O(1) device decode and tracing."""

    def __init__(self) -> None:
        self.mappings: list[Mapping] = []
        self.trace_hooks: list[Callable[[BusAccess], None]] = []
        #: Allocation-free access recording; ``None`` when not tracing.
        self.trace_buffer: BusTrace | None = None
        self.access_count = 0
        self._bases: list[int] = []
        self.page_table: dict[int, Mapping] = {}

    def attach(
        self,
        name: str,
        base: int,
        size: int,
        device: BusDevice,
        wait_states: int = 0,
    ) -> Mapping:
        mapping = Mapping(name, base, size, device, wait_states)
        # The mapping list is kept sorted by base, so only the two
        # neighbours of the insertion point can overlap.
        index = bisect_right(self._bases, mapping.base)
        if index and self.mappings[index - 1].end > mapping.base:
            raise ValueError(
                f"bus mapping {name!r} overlaps "
                f"{self.mappings[index - 1].name!r}"
            )
        if index < len(self.mappings) and (
            mapping.end > self.mappings[index].base
        ):
            raise ValueError(
                f"bus mapping {name!r} overlaps {self.mappings[index].name!r}"
            )
        self.mappings.insert(index, mapping)
        self._bases.insert(index, mapping.base)
        self._index_mapping(mapping)
        return mapping

    def _index_mapping(self, mapping: Mapping) -> None:
        """Add *mapping*'s fully covered pages to the dispatch table."""
        first = (mapping.base + PAGE_SIZE - 1) >> PAGE_SHIFT
        last = mapping.end >> PAGE_SHIFT
        table = self.page_table
        for page in range(first, last):
            table[page] = mapping

    def rebuild_dispatch(self) -> None:
        """Recompute the page dispatch table from the mapping list
        (device full reset; mappings whose buffers were swapped)."""
        self.page_table.clear()
        for mapping in self.mappings:
            mapping.__post_init__()  # refresh end + word buffers
            self._index_mapping(mapping)

    def mapping_for(self, address: int, length: int) -> Mapping:
        """The mapping containing ``[address, address+length)``.

        Binary search over the sorted mapping list — the slow path
        behind the page table, and the API for one-off queries."""
        index = bisect_right(self._bases, address) - 1
        if index >= 0:
            mapping = self.mappings[index]
            if address + length <= mapping.end:
                return mapping
        raise BusError(f"unmapped address {address:#010x}", address)

    # -- access API -------------------------------------------------------
    #
    # An aligned 4-byte access can never cross a 256-byte page, so a
    # page-table hit proves the whole word is inside the mapping — the
    # word-specialised accessors need no end check.  The generic
    # accessors keep one for exotic sizes.

    def read(self, address: int, size: int) -> tuple[int, int]:
        """Read *size* bytes; returns ``(value, wait_states)``."""
        if address % size:
            raise BusError(f"misaligned read at {address:#010x}", address)
        mapping = self.page_table.get(address >> PAGE_SHIFT)
        if mapping is None or address + size > mapping.end:
            mapping = self.mapping_for(address, size)
        buf = mapping.word_buf
        if buf is not None and size == 4:
            value = u32_unpack_from(buf, address - mapping.base)[0]
        else:
            value = mapping.device.read(address - mapping.base, size)
        self.access_count += 1
        trace = self.trace_buffer
        if trace is not None:
            trace.record("read", address, size, value)
        if self.trace_hooks:
            access = BusAccess("read", address, size, value)
            for hook in self.trace_hooks:
                hook(access)
        return value, mapping.wait_states

    def write(self, address: int, value: int, size: int) -> int:
        """Write *size* bytes; returns wait states charged."""
        if address % size:
            raise BusError(f"misaligned write at {address:#010x}", address)
        mapping = self.page_table.get(address >> PAGE_SHIFT)
        if mapping is None or address + size > mapping.end:
            mapping = self.mapping_for(address, size)
        buf = mapping.word_wbuf
        if buf is not None and size == 4:
            u32_pack_into(buf, address - mapping.base, value & 0xFFFF_FFFF)
        else:
            mapping.device.write(address - mapping.base, value, size)
        self.access_count += 1
        trace = self.trace_buffer
        if trace is not None:
            trace.record("write", address, size, value)
        if self.trace_hooks:
            access = BusAccess("write", address, size, value)
            for hook in self.trace_hooks:
                hook(access)
        return mapping.wait_states

    # Word-specialised accessors for the CPU's hottest operations
    # (fetch fallback, stack pushes/pops, word loads/stores).
    def read_word(self, address: int) -> tuple[int, int]:
        """:meth:`read` specialised for a 4-byte access."""
        if address & 3:
            raise BusError(f"misaligned read at {address:#010x}", address)
        mapping = self.page_table.get(address >> PAGE_SHIFT)
        if mapping is None:
            mapping = self.mapping_for(address, 4)
        buf = mapping.word_buf
        if buf is not None:
            value = u32_unpack_from(buf, address - mapping.base)[0]
        else:
            value = mapping.device.read(address - mapping.base, 4)
        self.access_count += 1
        trace = self.trace_buffer
        if trace is not None:
            trace.record("read", address, 4, value)
        if self.trace_hooks:
            access = BusAccess("read", address, 4, value)
            for hook in self.trace_hooks:
                hook(access)
        return value, mapping.wait_states

    def write_word(self, address: int, value: int) -> int:
        """:meth:`write` specialised for a 4-byte access."""
        if address & 3:
            raise BusError(f"misaligned write at {address:#010x}", address)
        mapping = self.page_table.get(address >> PAGE_SHIFT)
        if mapping is None:
            mapping = self.mapping_for(address, 4)
        buf = mapping.word_wbuf
        if buf is not None:
            u32_pack_into(buf, address - mapping.base, value & 0xFFFF_FFFF)
        else:
            mapping.device.write(address - mapping.base, value, 4)
        self.access_count += 1
        trace = self.trace_buffer
        if trace is not None:
            trace.record("write", address, 4, value)
        if self.trace_hooks:
            access = BusAccess("write", address, 4, value)
            for hook in self.trace_hooks:
                hook(access)
        return mapping.wait_states

    def emit_fetches(
        self, events: tuple[tuple[str, int, int, int], ...]
    ) -> None:
        """Replay predecoded instruction fetches into the trace.

        The decode cache elides fetch bus reads; when someone is
        watching the bus, the core calls this with the exact events a
        real fetch would have produced, so traced runs see an identical
        access stream with the cache on or off."""
        self.access_count += len(events)
        trace = self.trace_buffer
        if trace is not None:
            trace.extend_raw(events)
        if self.trace_hooks:
            for event in events:
                access = BusAccess(*event)
                for hook in self.trace_hooks:
                    hook(access)

    # Convenience word accessors used by platforms/debug ports; they do
    # not charge wait states, count accesses, or record trace events.
    def peek_word(self, address: int) -> int:
        mapping = self.page_table.get(address >> PAGE_SHIFT)
        if mapping is None or address + 4 > mapping.end:
            mapping = self.mapping_for(address, 4)
        buf = mapping.word_buf
        if buf is not None:
            return u32_unpack_from(buf, address - mapping.base)[0]
        return mapping.device.read(address - mapping.base, 4)

    def poke_word(self, address: int, value: int) -> None:
        mapping = self.page_table.get(address >> PAGE_SHIFT)
        if mapping is None or address + 4 > mapping.end:
            mapping = self.mapping_for(address, 4)
        buf = mapping.word_wbuf
        if buf is not None:
            u32_pack_into(buf, address - mapping.base, value & 0xFFFF_FFFF)
        else:
            mapping.device.write(address - mapping.base, value, 4)
