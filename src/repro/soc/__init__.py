"""SC88 system-on-chip model (the device under test).

The paper verified an Infineon SLE88 chip-card controller; this package
provides the equivalent substrate: a catalogue of chip *derivatives*
(:mod:`repro.soc.derivatives`) over a common peripheral set (UART, NVM
page controller, timer, interrupt controller, GPIO, watchdog), a register
model with named bit fields (:mod:`repro.soc.registers`), and the
embedded-software ROM that plays the paper's "global layer" firmware
(:mod:`repro.soc.embedded`).
"""

from repro.soc.bus import Bus, BusAccess, BusError, BusTrace, Memory
from repro.soc.derivatives import (
    CATALOGUE,
    Derivative,
    SC88A,
    SC88B,
    SC88C,
    SC88D,
    all_derivatives,
    derivative,
)
from repro.soc.device import (
    FAIL_MAGIC,
    PASS_MAGIC,
    SystemOnChip,
)
from repro.soc.embedded import (
    ES_ABI_V1,
    ES_ABI_V2,
    EsAbi,
    assemble_embedded_software,
    es_abi,
    es_source,
)
from repro.soc.memorymap import (
    IRQ_VECTOR_BASE,
    MemoryMap,
    MemoryRegion,
    NVM_PAGE_BYTES,
    TRAP_BUS_ERROR,
    TRAP_DIV_ZERO,
    TRAP_ILLEGAL_OPCODE,
    TRAP_MISALIGNED,
    TRAP_WATCHDOG,
    VECTOR_BASE,
    VECTOR_COUNT,
    make_memory_map,
)
from repro.soc.registers import (
    Access,
    Field,
    Instance,
    PeripheralLayout,
    RegisterDef,
    RegisterMap,
)

__all__ = [
    "Access",
    "Bus",
    "BusAccess",
    "BusError",
    "BusTrace",
    "CATALOGUE",
    "Derivative",
    "ES_ABI_V1",
    "ES_ABI_V2",
    "EsAbi",
    "FAIL_MAGIC",
    "Field",
    "IRQ_VECTOR_BASE",
    "Instance",
    "Memory",
    "MemoryMap",
    "MemoryRegion",
    "NVM_PAGE_BYTES",
    "PASS_MAGIC",
    "PeripheralLayout",
    "RegisterDef",
    "RegisterMap",
    "SC88A",
    "SC88B",
    "SC88C",
    "SC88D",
    "SystemOnChip",
    "TRAP_BUS_ERROR",
    "TRAP_DIV_ZERO",
    "TRAP_ILLEGAL_OPCODE",
    "TRAP_MISALIGNED",
    "TRAP_WATCHDOG",
    "VECTOR_BASE",
    "VECTOR_COUNT",
    "all_derivatives",
    "assemble_embedded_software",
    "derivative",
    "es_abi",
    "es_source",
    "make_memory_map",
]
