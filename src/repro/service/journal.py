"""Crash-safe write-ahead journal of accepted serving jobs.

The daemon's durability contract is small and absolute: once a
submission has been acknowledged as *accepted*, a crash — up to and
including ``kill -9`` — must not silently lose it.  The journal is the
whole of that contract:

- **accept before ack** — :meth:`JobJournal.accept` appends a
  checksummed record and fsyncs it *before* the daemon acknowledges the
  job; an append that fails refuses the submission explicitly instead
  of accepting a job it cannot remember;
- **settle after verdict** — :meth:`JobJournal.settle` appends the
  job's terminal record (``completed`` or ``failed``); a job with an
  accept record and no settle record is *pending* and is re-executed
  on restart (:meth:`pending_jobs`), giving at-least-once semantics —
  re-running an idempotent regression is cheap (the result cache makes
  it nearly free), losing one is not;
- **corruption is counted, never trusted** — every record rides in the
  schema-2 :class:`~repro.core.scheduler.ResultCache` envelope style
  (``{"schema", "checksum", "payload"}`` with a SHA-256 over the
  payload text), so torn writes, bit rot and injected
  ``journal-write`` chaos are detected line-by-line on replay,
  counted in :attr:`corrupt_records` and surfaced in ``/stats`` —
  an unreadable accept record degrades to an *explicit* loss report,
  never a silent one;
- **bounded segments** — records append to ``journal-<n>.ndjson``;
  when a segment fills, the journal *compacts*: still-pending accept
  records are rewritten into a fresh segment through the atomic
  tempfile + ``os.replace`` idiom and older segments are deleted, so
  a long-lived daemon's journal is bounded by its in-flight work, not
  its uptime.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
import threading
from pathlib import Path

#: Bump when record semantics change incompatibly.
JOURNAL_SCHEMA = 1

_SEGMENT_RE = re.compile(r"journal-(\d{8})\.ndjson$")

KIND_ACCEPTED = "accepted"
KIND_COMPLETED = "completed"
KIND_FAILED = "failed"


class JournalError(RuntimeError):
    """The journal could not durably record an event."""


def _envelope(payload_text: str) -> bytes:
    body = {
        "schema": JOURNAL_SCHEMA,
        "checksum": hashlib.sha256(payload_text.encode()).hexdigest(),
        "payload": payload_text,
    }
    return json.dumps(body).encode() + b"\n"


def _open_envelope(line: bytes) -> dict | None:
    """Parse + verify one journal line; ``None`` when corrupt."""
    try:
        body = json.loads(line)
        payload_text = body["payload"]
        if body["schema"] != JOURNAL_SCHEMA:
            return None
        checksum = hashlib.sha256(payload_text.encode()).hexdigest()
        if checksum != body["checksum"]:
            return None
        payload = json.loads(payload_text)
        if not isinstance(payload, dict) or "kind" not in payload:
            return None
        return payload
    except Exception:
        return None


class JobJournal:
    """Append-only, checksummed, segment-compacting job journal."""

    def __init__(
        self,
        directory: str | Path,
        injector=None,
        segment_records: int = 256,
        fsync: bool = True,
    ):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        #: Optional :class:`repro.core.faults.FaultInjector` driving
        #: the ``journal-write`` chaos site.
        self.injector = injector
        self.segment_records = max(1, int(segment_records))
        self.fsync = fsync
        #: job id -> accepted payload dict, in acceptance order.
        self._pending: dict[str, dict] = {}
        self.corrupt_records = 0
        self.replayed_jobs = 0
        self.accepted_jobs = 0
        self.settled_jobs = 0
        self.compactions = 0
        self.compaction_failures = 0
        self._seq = 0
        self._lock = threading.Lock()
        self._segment_index = 0
        self._records_in_segment = 0
        self._handle = None
        self._replay_and_open()

    # -- lifecycle ---------------------------------------------------------
    def _segment_path(self, index: int) -> Path:
        return self.directory / f"journal-{index:08d}.ndjson"

    def _segments(self) -> list[tuple[int, Path]]:
        found = []
        for path in self.directory.iterdir():
            match = _SEGMENT_RE.fullmatch(path.name)
            if match:
                found.append((int(match.group(1)), path))
        return sorted(found)

    def _replay_and_open(self) -> None:
        """Rebuild the pending set from disk, then open a compacted
        active segment — the ``kill -9`` recovery path."""
        for _index, path in self._segments():
            try:
                raw = path.read_bytes()
            except OSError:
                self.corrupt_records += 1
                continue
            for line in raw.splitlines():
                if not line.strip():
                    continue
                payload = _open_envelope(line)
                if payload is None:
                    self.corrupt_records += 1
                    continue
                kind = payload.get("kind")
                job_id = payload.get("job")
                if kind == KIND_ACCEPTED:
                    self._pending[job_id] = payload.get("data", {})
                elif kind in (KIND_COMPLETED, KIND_FAILED):
                    self._pending.pop(job_id, None)
        self.replayed_jobs = len(self._pending)
        self._compact()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
                self._handle = None

    # -- append path -------------------------------------------------------
    def _append(self, kind: str, job_id: str, data: dict) -> None:
        """One durable record; raises :class:`JournalError` on any
        failure so callers refuse work they cannot remember."""
        self._seq += 1
        payload_text = json.dumps(
            {"kind": kind, "job": job_id, "seq": self._seq, "data": data},
            sort_keys=True,
        )
        line = _envelope(payload_text)
        try:
            if self.injector is not None:
                self.injector.fire("journal-write", job_id)
                line = self.injector.mangle("journal-write", job_id, line)
            if self._handle is None:
                raise JournalError("journal is closed")
            self._handle.write(line)
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())
        except JournalError:
            raise
        except Exception as exc:
            raise JournalError(f"journal append failed: {exc}") from exc
        self._records_in_segment += 1

    def _maybe_compact(self) -> None:
        """Compact when the active segment is full.

        Must run only *after* :attr:`_pending` reflects the record just
        appended — compaction rewrites exactly the pending set, so
        triggering it from inside :meth:`_append` would drop the
        freshly-fsynced record (an accept vanishing from the rewritten
        segment, or a settle being un-done by re-persisting the job as
        pending).  A failed compaction is tolerated, not raised: the
        append itself is already durable, the old segments still hold
        the truth, and the next threshold crossing retries.
        """
        if self._records_in_segment < self.segment_records:
            return
        try:
            self._compact()
        except Exception:
            self.compaction_failures += 1

    def accept(self, job_id: str, pack_data: dict) -> None:
        """Durably record an accepted job *before* it is acknowledged."""
        with self._lock:
            self._append(KIND_ACCEPTED, job_id, pack_data)
            self._pending[job_id] = pack_data
            self.accepted_jobs += 1
            self._maybe_compact()

    def settle(self, job_id: str, status: str, summary: dict) -> bool:
        """Record a job's terminal verdict (``completed``/``failed``).

        Returns ``False`` instead of raising when the settle record
        cannot be written: the job *did* finish, and the only cost of a
        lost settle is a redundant re-run after a restart.
        """
        kind = KIND_COMPLETED if status == KIND_COMPLETED else KIND_FAILED
        with self._lock:
            try:
                self._append(kind, job_id, summary)
            except JournalError:
                self._pending.pop(job_id, None)
                return False
            self._pending.pop(job_id, None)
            self.settled_jobs += 1
            self._maybe_compact()
            return True

    # -- recovery / maintenance --------------------------------------------
    def pending_jobs(self) -> list[tuple[str, dict]]:
        """Accepted-but-unsettled jobs in acceptance order."""
        with self._lock:
            return list(self._pending.items())

    def _compact(self) -> None:
        """Rewrite pending records into a fresh segment atomically and
        drop the history (tempfile + ``os.replace``, so a crash
        mid-compaction leaves either the old segments or the new one —
        never a torn journal)."""
        segments = self._segments()
        next_index = (segments[-1][0] + 1) if segments else 0
        path = self._segment_path(next_index)
        fd, tmp = tempfile.mkstemp(
            prefix=".journal.", suffix=".tmp", dir=self.directory
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                for job_id, data in self._pending.items():
                    self._seq += 1
                    payload_text = json.dumps(
                        {
                            "kind": KIND_ACCEPTED,
                            "job": job_id,
                            "seq": self._seq,
                            "data": data,
                        },
                        sort_keys=True,
                    )
                    handle.write(_envelope(payload_text))
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
        for _index, old in segments:
            if old != path:
                try:
                    os.unlink(old)
                except OSError:
                    pass
        self._handle = open(path, "ab")
        self._segment_index = next_index
        self._records_in_segment = len(self._pending)
        self.compactions += 1

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "pending": len(self._pending),
                "accepted": self.accepted_jobs,
                "settled": self.settled_jobs,
                "replayed": self.replayed_jobs,
                "corrupt_records": self.corrupt_records,
                "compactions": self.compactions,
                "compaction_failures": self.compaction_failures,
                "segment_index": self._segment_index,
            }
