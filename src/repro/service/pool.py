"""Warm :class:`ExecutionSession` pools for the serving daemon.

Cold-start is the tax the service exists to amortise: device
construction, predecode, superblock formation and JIT warm-up are all
paid by the first run and free afterwards.  The pool keeps finished
sessions *warm* between requests, keyed the way
:meth:`BatchSession._cohort_key` keys lock-step cohorts — platform
target, derivative and the engine-flag tuple — because those are
exactly the axes along which a session is interchangeable.  The
image-digest half of the warmth (predecoded entries, superblock chains,
observation templates, compiled JIT chains) lives in the shared
digest-keyed registry of :mod:`repro.isa.decodecache` and survives
across leases of *any* session, so a warm pool plus the registry give a
request the same hot path the tail of a long batch run enjoys.

Robustness over throughput:

- **lease/return checkout** — a leased session belongs to exactly one
  job; :meth:`release` returns it warm only when the job vouches for it
  *and* the session's own :meth:`ExecutionSession.health_check` passes.
  A session poisoned by a faulting run (the PR 7 degradation ladder
  marks it) is discarded and rebuilt cold, never re-leased;
- **supervision** — :meth:`sweep` health-checks every idle session and
  recycles the wedged ones, so a daemon's pool self-heals between
  requests instead of handing a broken device to the next tenant;
- **bounded** — idle capacity is LRU-bounded like the decode-cache
  digest registry: returning a session beyond ``max_idle`` evicts the
  least-recently-used idle session, so a traffic spike cannot grow the
  pool without limit;
- **observable** — :meth:`probe` performs a real lease + health-check
  + return, which is what ``/readyz`` reports: a pool that cannot
  produce a healthy session (including under injected ``pool-lease``
  chaos) is *not ready*, full stop.
"""

from __future__ import annotations

import threading

from repro.core.faults import SITE_POOL_LEASE
from repro.platforms.session import ExecutionSession
from repro.soc.derivatives import Derivative


class WarmSessionPool:
    """Keyed warm pools with checkout, supervision and LRU bounds.

    Implements the scheduler's ``session_provider`` protocol
    (``lease(target, derivative)`` / ``release(session, healthy)``), so
    a :class:`~repro.core.scheduler.RegressionScheduler` built with
    ``session_provider=pool`` runs its serial executor on warm devices.
    """

    def __init__(
        self,
        max_idle: int = 12,
        injector=None,
        engine_flags: dict | None = None,
    ):
        self.max_idle = max(1, int(max_idle))
        #: Optional :class:`repro.core.faults.FaultInjector` driving
        #: the ``pool-lease`` chaos site.
        self.injector = injector
        #: Engine-flag overrides applied to every pooled session
        #: (``use_jit`` etc.), part of the pool key by construction.
        self.engine_flags = dict(engine_flags or {})
        self._lock = threading.Lock()
        #: key -> stack of idle sessions (most recently returned last).
        self._idle: dict[tuple, list[ExecutionSession]] = {}
        #: Idle sessions in return order, oldest first (LRU eviction).
        self._order: list[ExecutionSession] = []
        #: id(session) -> pool key, for every live session we built.
        self._keys: dict[int, tuple] = {}
        self._leased: set[int] = set()
        self.warm_hits = 0
        self.cold_builds = 0
        self.recycled = 0
        self.evicted = 0
        self.lease_failures = 0
        self._closed = False

    # -- keys --------------------------------------------------------------
    def _key(self, target, derivative: Derivative) -> tuple:
        return (
            target.name,
            derivative.name,
            tuple(sorted(self.engine_flags.items())),
        )

    # -- checkout ----------------------------------------------------------
    def lease(self, target, derivative: Derivative) -> ExecutionSession:
        """Check a healthy session out, warm when possible.

        Raises whatever the cold build raises (after firing the
        ``pool-lease`` chaos site); callers with a retry ladder — the
        scheduler's supervised serial executor — treat that like any
        other attempt failure.
        """
        key = self._key(target, derivative)
        try:
            if self.injector is not None:
                self.injector.fire(
                    SITE_POOL_LEASE, f"{target.name}/{derivative.name}"
                )
            with self._lock:
                stack = self._idle.get(key, [])
                while stack:
                    session = stack.pop()
                    self._order.remove(session)
                    if session.health_check():
                        self.warm_hits += 1
                        self._leased.add(id(session))
                        return session
                    # Wedged or poisoned while idle: drop it here
                    # rather than lease a broken device.
                    self.recycled += 1
                    self._keys.pop(id(session), None)
            session = ExecutionSession(
                target.make_platform(),
                derivative,
                injector=self.injector,
                **self.engine_flags,
            )
        except Exception:
            with self._lock:
                self.lease_failures += 1
            raise
        with self._lock:
            self.cold_builds += 1
            self._keys[id(session)] = key
            self._leased.add(id(session))
        return session

    def release(self, session: ExecutionSession, healthy: bool = True) -> None:
        """Return a leased session; unhealthy or poisoned ones are
        discarded (the next lease rebuilds cold)."""
        with self._lock:
            self._leased.discard(id(session))
            key = self._keys.get(id(session))
            if (
                self._closed
                or key is None
                or not healthy
                or session.poisoned
            ):
                self.recycled += 1
                self._keys.pop(id(session), None)
                return
            self._idle.setdefault(key, []).append(session)
            self._order.append(session)
            self._evict_to_bound_locked()

    def _evict_to_bound_locked(self) -> None:
        """Drop least-recently-returned idle sessions past ``max_idle``.
        Caller holds :attr:`_lock`."""
        while len(self._order) > self.max_idle:
            victim = self._order.pop(0)
            victim_key = self._keys.pop(id(victim), None)
            if victim_key is not None:
                try:
                    self._idle[victim_key].remove(victim)
                except (KeyError, ValueError):
                    pass
            self.evicted += 1

    # -- supervision -------------------------------------------------------
    def sweep(self) -> int:
        """Health-check every idle session; recycle the broken ones.
        Returns how many were recycled.

        Idle sessions are detached under the lock before being probed,
        so a concurrent lease can never receive a device the sweep is
        mid-way through resetting.
        """
        with self._lock:
            candidates = list(self._order)
            self._order.clear()
            self._idle.clear()
        recycled = 0
        for session in candidates:
            if session.health_check():
                with self._lock:
                    key = self._keys.get(id(session))
                    if key is not None and not self._closed:
                        self._idle.setdefault(key, []).append(session)
                        self._order.append(session)
                        continue
            with self._lock:
                self._keys.pop(id(session), None)
                self.recycled += 1
            recycled += 1
        # Survivors were re-added without bound checks (and concurrent
        # releases may have refilled the pool while candidates were
        # detached): re-enforce the LRU cap before returning.
        with self._lock:
            self._evict_to_bound_locked()
        return recycled

    def probe(self, target, derivative: Derivative) -> bool:
        """Readiness: can the pool produce one healthy session right
        now?  A real lease + health-check + return, so injected
        ``pool-lease`` chaos and broken device builds report not-ready
        instead of being discovered by the next tenant."""
        try:
            session = self.lease(target, derivative)
        except Exception:
            return False
        try:
            return session.health_check()
        finally:
            self.release(session)

    def prewarm(self, targets, derivative: Derivative) -> int:
        """Build (or verify) one warm session per target; returns how
        many are now idle.  Boot-time hook so the first request after a
        restart doesn't pay the whole matrix's cold-start."""
        for target in targets:
            try:
                session = self.lease(target, derivative)
            except Exception:
                continue
            self.release(session)
        with self._lock:
            return len(self._order)

    def close(self) -> None:
        """Drop every idle session and refuse to warm new ones."""
        with self._lock:
            self._closed = True
            self._idle.clear()
            self._order.clear()
            self._keys = {
                sid: key
                for sid, key in self._keys.items()
                if sid in self._leased
            }

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "idle": len(self._order),
                "leased": len(self._leased),
                "warm_hits": self.warm_hits,
                "cold_builds": self.cold_builds,
                "recycled": self.recycled,
                "evicted": self.evicted,
                "lease_failures": self.lease_failures,
            }
