"""Declarative scenario-pack submissions for the serving daemon.

A *scenario pack* is the wire format of one regression job: a small
versioned JSON document naming what to run (modules, test cells), where
to run it (derivative, targets) and how (executor, jobs, retry budget,
per-request deadline).  Packs are declarative on purpose — the daemon,
the CLI client and the journal all pass the same plain dict around, and
:func:`resolve_pack` is the single place a pack turns into concrete
:class:`~repro.core.scheduler.RegressionScheduler` inputs against an
on-disk workspace.

Example::

    {
      "schema": 1,
      "name": "nvm-smoke",
      "modules": ["NVM"],
      "derivative": "sc88a",
      "targets": ["golden", "rtl"],
      "executor": "serial",
      "deadline": 30.0
    }

Validation is strict: unknown keys, wrong types and unresolvable names
raise :class:`PackError` with a message naming the offending field, so
a malformed submission is a 400 with a reason — never a daemon-side
traceback mid-job.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, fields
from pathlib import Path

from repro.core.targets import all_targets, target as lookup_target
from repro.core.workspace import load_module_environment
from repro.soc.derivatives import derivative as lookup_derivative

#: Bump when pack semantics change incompatibly.  Parsers reject other
#: schemas outright: a daemon must never guess at a job's meaning.
PACK_SCHEMA = 1

#: Executors a pack may request (mirrors the ``regress`` CLI choices).
PACK_EXECUTORS = ("auto", "serial", "thread", "process", "batch")


class PackError(ValueError):
    """A scenario pack failed validation or resolution."""


@dataclass(frozen=True)
class ScenarioPack:
    """One parsed, validated scenario-pack submission."""

    name: str
    #: Module environment names under the workspace system tree;
    #: ``None`` means every module.
    modules: tuple[str, ...] | None = None
    derivative: str = "sc88a"
    #: Target names; ``None`` means the full platform matrix.
    targets: tuple[str, ...] | None = None
    #: Test-cell names to keep; ``None`` means every cell of the
    #: selected modules.
    cells: tuple[str, ...] | None = None
    executor: str = "serial"
    jobs: int = 1
    retries: int = 2
    run_timeout: float | None = None
    max_instructions: int | None = None
    #: Wall-clock seconds the whole job may take before the daemon
    #: fails it explicitly and reclaims its leased sessions.
    deadline: float | None = None


_PACK_FIELDS = {f.name for f in fields(ScenarioPack)} | {"schema"}


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise PackError(message)


def _str_tuple(data: dict, key: str) -> tuple[str, ...] | None:
    value = data.get(key)
    if value is None:
        return None
    _require(
        isinstance(value, (list, tuple))
        and value
        and all(isinstance(item, str) and item for item in value),
        f"pack field {key!r} must be a non-empty list of names",
    )
    return tuple(value)


def _number(data: dict, key: str, default=None):
    value = data.get(key, default)
    if value is None:
        return None
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool)
        and value > 0,
        f"pack field {key!r} must be a positive number",
    )
    return value


def parse_pack(data) -> ScenarioPack:
    """Validate a submission dict into a :class:`ScenarioPack`."""
    _require(isinstance(data, dict), "scenario pack must be a JSON object")
    unknown = sorted(set(data) - _PACK_FIELDS)
    _require(not unknown, f"unknown pack field(s): {', '.join(unknown)}")
    schema = data.get("schema")
    _require(
        schema == PACK_SCHEMA,
        f"unsupported pack schema {schema!r} (this daemon speaks "
        f"schema {PACK_SCHEMA})",
    )
    name = data.get("name")
    _require(
        isinstance(name, str) and name.strip(),
        "pack field 'name' must be a non-empty string",
    )
    executor = data.get("executor", "serial")
    _require(
        executor in PACK_EXECUTORS,
        f"pack field 'executor' must be one of {PACK_EXECUTORS}",
    )
    derivative = data.get("derivative", "sc88a")
    _require(
        isinstance(derivative, str) and derivative,
        "pack field 'derivative' must be a name",
    )
    jobs = data.get("jobs", 1)
    _require(
        isinstance(jobs, int) and not isinstance(jobs, bool) and jobs >= 1,
        "pack field 'jobs' must be an integer >= 1",
    )
    retries = data.get("retries", 2)
    _require(
        isinstance(retries, int) and not isinstance(retries, bool)
        and retries >= 0,
        "pack field 'retries' must be an integer >= 0",
    )
    max_instructions = data.get("max_instructions")
    if max_instructions is not None:
        _require(
            isinstance(max_instructions, int)
            and not isinstance(max_instructions, bool)
            and max_instructions > 0,
            "pack field 'max_instructions' must be a positive integer",
        )
    return ScenarioPack(
        name=name.strip(),
        modules=_str_tuple(data, "modules"),
        derivative=derivative,
        targets=_str_tuple(data, "targets"),
        cells=_str_tuple(data, "cells"),
        executor=executor,
        jobs=jobs,
        retries=retries,
        run_timeout=_number(data, "run_timeout"),
        max_instructions=max_instructions,
        deadline=_number(data, "deadline"),
    )


def pack_to_dict(pack: ScenarioPack) -> dict:
    """The journal/wire form of a pack (round-trips through
    :func:`parse_pack`)."""
    data: dict = {"schema": PACK_SCHEMA, "name": pack.name}
    for key in (
        "modules",
        "targets",
        "cells",
        "run_timeout",
        "max_instructions",
        "deadline",
    ):
        value = getattr(pack, key)
        if value is not None:
            data[key] = list(value) if isinstance(value, tuple) else value
    data["derivative"] = pack.derivative
    data["executor"] = pack.executor
    data["jobs"] = pack.jobs
    data["retries"] = pack.retries
    return data


def resolve_pack(pack: ScenarioPack, system_dir: str | Path, env_cache=None):
    """Resolve a pack against a workspace into scheduler inputs.

    Returns ``(environments, derivative, targets)``; every name is
    checked here so a dangling module/derivative/target/cell fails the
    submission up front instead of mid-matrix.

    *env_cache* (a plain dict the caller owns) is the serving daemon's
    warm-environment store: module sources are re-read from disk every
    time (cheap, and a daemon must notice edits), but when their
    fingerprint matches the cached environment the cached instance is
    reused — carrying its memoised image/object build caches, which is
    most of a small request's cold cost.  A changed fingerprint
    replaces the cache entry, so stale builds can never serve.
    """
    system_dir = Path(system_dir)
    try:
        derivative = lookup_derivative(pack.derivative)
    except KeyError:
        raise PackError(f"unknown derivative {pack.derivative!r}") from None
    if pack.targets is None:
        targets = all_targets()
    else:
        targets = []
        for name in pack.targets:
            try:
                targets.append(lookup_target(name))
            except KeyError:
                raise PackError(f"unknown target {name!r}") from None

    if pack.modules is None:
        module_names = sorted(
            path.name
            for path in system_dir.iterdir()
            if path.is_dir() and path.name != "Global_Libraries"
        )
    else:
        module_names = list(pack.modules)
    environments = {}
    for name in module_names:
        module_dir = system_dir / name
        if not module_dir.is_dir():
            raise PackError(f"unknown module {name!r}")
        env = load_module_environment(module_dir)
        if env_cache is not None:
            fingerprint = env._files_fingerprint(env._source_files())
            cached = env_cache.get(name)
            if cached is not None and cached[0] == fingerprint:
                env = cached[1]
            else:
                env_cache[name] = (fingerprint, env)
        environments[name] = env

    if pack.cells is not None:
        wanted = set(pack.cells)
        found: set[str] = set()
        for name in list(environments):
            env = environments[name]
            keep = {
                cell_name: cell
                for cell_name, cell in env.cells.items()
                if cell_name in wanted
            }
            found.update(keep)
            if keep:
                # Shallow clone: the filtered view must not mutate a
                # (possibly cached and shared) environment; the clone
                # still shares the warm build caches.
                filtered = copy.copy(env)
                filtered.cells = keep
                environments[name] = filtered
            else:
                del environments[name]
        missing = sorted(wanted - found)
        _require(not missing, f"unknown test cell(s): {', '.join(missing)}")
    _require(bool(environments), "pack selects no test cells")
    return environments, derivative, targets
