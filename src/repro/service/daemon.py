"""The always-available regression daemon (stdlib asyncio, HTTP/JSON).

Two layers, deliberately separable:

- :class:`RegressionService` is the transport-independent core:
  admission control, the warm pool, the write-ahead journal and the
  bridge onto :class:`~repro.core.scheduler.RegressionScheduler`.
  Tests drive it directly with asyncio, no sockets involved.
- :class:`ServiceDaemon` is a thin HTTP/1.1 front end over
  ``asyncio.start_server``: request parsing, status-code mapping and
  NDJSON streaming.  No third-party framework — the container's
  stdlib is the whole dependency budget.

Robustness contract (the chaos tests hold the daemon to every line):

- **bounded admission** — at most ``max_pending`` accepted-but-
  unfinished jobs; past that, submissions are *shed* with an explicit
  503 + ``Retry-After`` instead of buffered without bound;
- **accept is durable** — a job is acknowledged only after its accept
  record hit the journal; a journal that cannot write refuses the job
  (503) rather than accepting what it cannot remember.  On restart,
  accepted-but-unsettled jobs replay automatically;
- **every accepted job terminates** — the scheduler's supervision
  ladder turns engine faults into quarantined FAULT verdicts; daemon-
  level failures (resolution errors, injected chaos, deadlines)
  surface as an explicit terminal ``error`` event and a ``failed``
  journal settle.  Nothing hangs silently and nothing disappears;
- **deadlines reclaim sessions** — a job past its deadline is failed
  explicitly and its leased sessions are released *unhealthy*, so the
  pool rebuilds them instead of handing a mid-run device to the next
  tenant (the engine thread itself winds down at its instruction
  budget — pure-Python engines cannot be preempted);
- **probes tell the truth** — ``/healthz`` is process liveness;
  ``/readyz`` performs a real pool probe (lease + health-check +
  return) and reports 503 while draining or while the pool cannot
  produce a healthy session;
- **graceful drain** — SIGTERM stops admission (503s), finishes the
  in-flight jobs, settles the journal and only then exits; anything
  still unsettled at a hard kill is exactly what the journal replays.

Results stream back incrementally: one NDJSON object per completed
matrix cell as the scheduler's progress callback fires, then a
terminal ``done``/``error`` object — a client watching a thousand-cell
matrix sees verdicts from the first second, not after the last cell.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import time
from pathlib import Path

from repro.core.faults import FaultInjector, FaultPlan, SITE_SERVICE_ACCEPT
from repro.core.scheduler import (
    DEFAULT_MAX_INSTRUCTIONS,
    RegressionScheduler,
    ResultCache,
    RunOutcome,
)
from repro.core.targets import target as lookup_target
from repro.service.journal import JobJournal, JournalError
from repro.service.pool import WarmSessionPool
from repro.service.protocol import (
    PackError,
    ScenarioPack,
    pack_to_dict,
    parse_pack,
    resolve_pack,
)
from repro.soc.derivatives import derivative as lookup_derivative


class ServiceError(RuntimeError):
    """A submission failed daemon-side for an explicit, reported reason."""


class ServiceUnavailable(ServiceError):
    """Load shed / drain / journal outage: try again later (503)."""

    def __init__(self, reason: str, retry_after: float = 1.0):
        super().__init__(reason)
        self.retry_after = retry_after


class _JobSessionProvider:
    """Per-job facade over the shared pool.

    Carries the job's cancellation latch: once the daemon has failed
    the job (deadline), sessions the still-running engine thread
    returns go back *unhealthy* — the reclaim half of deadline
    enforcement.
    """

    def __init__(self, pool: WarmSessionPool):
        self.pool = pool
        self.cancelled = False

    def lease(self, target, derivative):
        return self.pool.lease(target, derivative)

    def release(self, session, healthy: bool = True) -> None:
        self.pool.release(session, healthy=healthy and not self.cancelled)


class _Job:
    """One accepted submission's lifecycle state."""

    __slots__ = (
        "id",
        "origin",
        "pack",
        "pack_data",
        "status",
        "summary",
        "provider",
        "subscribers",
    )

    def __init__(self, job_id: str, pack: ScenarioPack, pack_data: dict):
        self.id = job_id
        #: Journal id this job settles under — differs from :attr:`id`
        #: only for journal-replayed jobs, which settle the original.
        self.origin = job_id
        self.pack = pack
        self.pack_data = pack_data
        self.status = "pending"
        self.summary: dict | None = None
        self.provider: _JobSessionProvider | None = None
        #: Live subscriber queues; every published event fans out.
        self.subscribers: list[asyncio.Queue] = []


def _outcome_event(job_id: str, outcome: RunOutcome) -> dict:
    result = outcome.result
    return {
        "event": "cell",
        "job": job_id,
        "environment": outcome.request.environment,
        "cell": outcome.request.cell,
        "target": outcome.request.target,
        "derivative": outcome.request.derivative,
        "status": result.status.value,
        "cached": outcome.cached,
        "batched": outcome.batched,
        "retried": outcome.retried,
        "degraded": outcome.degraded,
        "quarantined": outcome.quarantined,
        "fault_reason": result.fault_reason,
    }


def _report_summary(report) -> dict:
    return {
        "total_runs": report.total_runs,
        "passing_runs": report.passing_runs,
        "executed_runs": report.executed_runs,
        "cached_runs": report.cached_runs,
        "retried_runs": report.retried_runs,
        "quarantined_runs": report.quarantined_runs,
        "degraded_runs": report.degraded_runs,
        "divergences": len(report.divergences),
        "clean": report.clean,
    }


class RegressionService:
    """Admission, execution and durability core of the daemon."""

    def __init__(
        self,
        system_dir: str | Path,
        pool: WarmSessionPool | None = None,
        journal: JobJournal | None = None,
        cache: ResultCache | None = None,
        max_pending: int = 8,
        max_active: int = 1,
        default_deadline: float | None = None,
        retry_after: float = 1.0,
        fault_plan: FaultPlan | None = None,
        probe_target: str = "golden",
        probe_derivative: str = "sc88a",
        clock=time.monotonic,
        store=None,
    ):
        self.system_dir = Path(system_dir)
        self.fault_plan = fault_plan
        self._injector = (
            FaultInjector(fault_plan) if fault_plan is not None else None
        )
        self.pool = pool or WarmSessionPool(injector=self._injector)
        if self.pool.injector is None:
            self.pool.injector = self._injector
        self.journal = journal
        if journal is not None and journal.injector is None:
            journal.injector = self._injector
        self.cache = cache
        if (
            cache is not None
            and self._injector is not None
            and cache.injector is None
        ):
            cache.injector = self._injector
        #: Optional :class:`repro.store.artifacts.ArtifactStore`.
        #: Installing it makes every scheduler run persist its warmed
        #: decode/superblock/JIT state and every registry miss try the
        #: store first; :meth:`rehydrate` bulk-loads it at boot so a
        #: restarted daemon's pool skips predecode entirely.
        self.store = store
        if store is not None:
            if store.injector is None and self._injector is not None:
                store.injector = self._injector
            from repro.isa.decodecache import set_artifact_store

            set_artifact_store(store)
        self.max_pending = max(1, int(max_pending))
        self.max_active = max(1, int(max_active))
        self.default_deadline = default_deadline
        self.retry_after = retry_after
        self._probe_target = lookup_target(probe_target)
        self._probe_derivative = lookup_derivative(probe_derivative)
        self._clock = clock
        self._slots = asyncio.Semaphore(self.max_active)
        self._seq = itertools.count(1)
        #: Warm module environments keyed by name; validated against
        #: the on-disk source fingerprint on every resolve, so the
        #: daemon reuses assembled/linked build artifacts across
        #: requests yet never serves a stale build after an edit.
        self._env_cache: dict = {}
        self._jobs: dict[str, _Job] = {}
        self._active = 0
        #: Slots reserved by submissions awaiting their journal accept;
        #: counted against admission so concurrent submits cannot all
        #: pass the bound check during the await.
        self._reserved = 0
        self._tasks: set[asyncio.Task] = set()
        self.draining = False
        self.jobs_accepted = 0
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.jobs_shed = 0
        self.jobs_replayed = 0

    # -- admission ---------------------------------------------------------
    async def submit(self, pack_data, deadline: float | None = None):
        """Admit and run one submission; an async generator of event
        dicts (``accepted`` → ``cell``* → ``done``/``error``).

        Admission failures raise before the first event:
        :class:`ServiceUnavailable` (shed/drain/journal outage — 503),
        :class:`PackError` (malformed — 400) or :class:`ServiceError`
        (explicit daemon-side refusal — 500).  Disconnecting mid-stream
        abandons the *stream*, not the job: an accepted job always runs
        to a journaled verdict.
        """
        job_id = f"job-{next(self._seq):06d}"
        if self.draining:
            raise ServiceUnavailable("draining", self.retry_after)
        if self._active + self._reserved >= self.max_pending:
            self.jobs_shed += 1
            raise ServiceUnavailable(
                f"admission queue full ({self._active} jobs pending)",
                self.retry_after,
            )
        if self._injector is not None:
            try:
                self._injector.fire(SITE_SERVICE_ACCEPT, job_id)
            except Exception as exc:
                raise ServiceError(f"admission fault: {exc}") from exc
        pack = parse_pack(pack_data)
        if deadline is None:
            deadline = (
                pack.deadline
                if pack.deadline is not None
                else self.default_deadline
            )
        # Hold an admission slot across the journal await: the bound
        # check above and _start_job's _active increment are separated
        # by a suspension point, so without the reservation concurrent
        # submits could all pass the check and exceed max_pending.
        self._reserved += 1
        try:
            if self.journal is not None:
                try:
                    await asyncio.get_running_loop().run_in_executor(
                        None, self.journal.accept, job_id, pack_to_dict(pack)
                    )
                except JournalError as exc:
                    raise ServiceUnavailable(
                        f"journal unavailable: {exc}", self.retry_after
                    ) from exc
            job = self._start_job(job_id, pack, pack_to_dict(pack), deadline)
        finally:
            self._reserved -= 1
        queue: asyncio.Queue = asyncio.Queue()
        job.subscribers.append(queue)
        try:
            yield {
                "event": "accepted",
                "job": job_id,
                "name": pack.name,
                "deadline": deadline,
            }
            while True:
                event = await queue.get()
                yield event
                if event["event"] in ("done", "error"):
                    return
        finally:
            if queue in job.subscribers:
                job.subscribers.remove(queue)

    def _start_job(
        self,
        job_id: str,
        pack: ScenarioPack,
        pack_data: dict,
        deadline: float | None,
    ) -> _Job:
        job = _Job(job_id, pack, pack_data)
        self._jobs[job_id] = job
        self._active += 1
        self.jobs_accepted += 1
        task = asyncio.get_running_loop().create_task(
            self._run_job(job, deadline)
        )
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return job

    # -- execution ---------------------------------------------------------
    def _publish(self, job: _Job, event: dict) -> None:
        for queue in list(job.subscribers):
            queue.put_nowait(event)

    async def _run_job(self, job: _Job, deadline: float | None) -> None:
        loop = asyncio.get_running_loop()
        provider = _JobSessionProvider(self.pool)
        job.provider = provider
        started = self._clock()

        def on_outcome(outcome: RunOutcome) -> None:
            if provider.cancelled:
                return
            loop.call_soon_threadsafe(
                self._publish, job, _outcome_event(job.id, outcome)
            )

        def execute():
            environments, derivative, targets = resolve_pack(
                job.pack, self.system_dir, env_cache=self._env_cache
            )
            scheduler = RegressionScheduler(
                targets=targets,
                jobs=job.pack.jobs,
                executor=job.pack.executor,
                cache=self.cache,
                max_instructions=(
                    job.pack.max_instructions
                    if job.pack.max_instructions is not None
                    else DEFAULT_MAX_INSTRUCTIONS
                ),
                run_timeout=job.pack.run_timeout,
                retries=job.pack.retries,
                fault_plan=self.fault_plan,
                session_provider=provider,
            )
            return scheduler.run_system(
                environments, derivative, on_outcome=on_outcome
            )

        await self._slots.acquire()
        job.status = "running"
        future = loop.run_in_executor(None, execute)
        future.add_done_callback(lambda _f: self._slots.release())
        try:
            if deadline is not None:
                report = await asyncio.wait_for(
                    asyncio.shield(future), timeout=deadline
                )
            else:
                report = await future
        except asyncio.TimeoutError:
            # The engine thread cannot be preempted; what we *can* do
            # is fail the job explicitly, stop streaming, and make
            # sure its sessions never re-enter the warm pool.
            provider.cancelled = True
            await self._finish_job(
                job,
                "failed",
                {
                    "error": (
                        f"deadline exceeded after "
                        f"{self._clock() - started:.3f}s"
                    ),
                    "deadline": deadline,
                },
            )
            # Swallow the eventual thread result/exception detached.
            future.add_done_callback(lambda f: f.exception())
            return
        except Exception as exc:
            await self._finish_job(
                job, "failed", {"error": f"{type(exc).__name__}: {exc}"}
            )
            return
        summary = _report_summary(report)
        summary["elapsed_s"] = round(self._clock() - started, 6)
        await self._finish_job(job, "completed", summary)

    async def _finish_job(self, job: _Job, status: str, summary: dict) -> None:
        job.status = status
        job.summary = summary
        self._active -= 1
        if status == "completed":
            self.jobs_completed += 1
            event = {"event": "done", "job": job.id, **summary}
        else:
            self.jobs_failed += 1
            event = {"event": "error", "job": job.id, **summary}
        if self.journal is not None:
            # settle() does a blocking write + fsync (and possibly a
            # whole-segment compaction); keep it off the event loop so
            # one verdict cannot stall every other stream and probe.
            await asyncio.get_running_loop().run_in_executor(
                None, self.journal.settle, job.origin, status, summary
            )
        self._publish(job, event)

    # -- recovery / lifecycle ----------------------------------------------
    async def rehydrate(self) -> int:
        """Warm the process-wide decode-cache registry from the
        artifact store (the warm-state half of boot recovery, next to
        :meth:`replay_pending`'s journal half).  Returns how many
        caches were installed; 0 without a store.  Restores are
        blocking unpickle + JIT recompile work, so they run off the
        event loop."""
        if self.store is None:
            return 0
        return await asyncio.get_running_loop().run_in_executor(
            None, self.store.warm_registry
        )

    async def replay_pending(self) -> int:
        """Re-run jobs the journal accepted but never settled (the
        restart half of the durability contract).  Returns how many
        jobs were replayed."""
        if self.journal is None:
            return 0
        replayed = 0
        for job_id, pack_data in self.journal.pending_jobs():
            try:
                pack = parse_pack(pack_data)
            except PackError:
                # An unparseable journaled pack is reported and
                # settled, not retried forever.
                await asyncio.get_running_loop().run_in_executor(
                    None,
                    self.journal.settle,
                    job_id,
                    "failed",
                    {"error": "unreplayable pack"},
                )
                continue
            job = self._start_job(
                f"{job_id}-replay",
                pack,
                pack_data,
                pack.deadline or self.default_deadline,
            )
            # Settle under the *original* id: the replayed run is the
            # original job's completion.
            job.origin = job_id
            replayed += 1
        self.jobs_replayed = replayed
        return replayed

    async def drain(self) -> None:
        """Stop admitting, finish in-flight jobs, close the journal."""
        self.draining = True
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        if self.store is not None:
            # Final flush of warm decode state; stamps make this a
            # no-op for anything the per-run persists already wrote.
            from repro.isa.decodecache import persist_registry

            await asyncio.get_running_loop().run_in_executor(
                None, persist_registry
            )
        self.pool.close()
        if self.journal is not None:
            self.journal.close()

    # -- probes ------------------------------------------------------------
    async def ready(self) -> tuple[bool, str]:
        """The ``/readyz`` truth: accepting and pool demonstrably able
        to produce a healthy session."""
        if self.draining:
            return False, "draining"
        ok = await asyncio.get_running_loop().run_in_executor(
            None, self.pool.probe, self._probe_target, self._probe_derivative
        )
        if not ok:
            return False, "session pool cannot produce a healthy session"
        return True, "ready"

    def stats(self) -> dict:
        data = {
            "jobs": {
                "accepted": self.jobs_accepted,
                "completed": self.jobs_completed,
                "failed": self.jobs_failed,
                "shed": self.jobs_shed,
                "replayed": self.jobs_replayed,
                "active": self._active,
            },
            "admission": {
                "max_pending": self.max_pending,
                "max_active": self.max_active,
                "draining": self.draining,
            },
            "pool": self.pool.stats(),
        }
        if self.journal is not None:
            data["journal"] = self.journal.stats()
        if self.cache is not None:
            data["cache"] = self.cache.stats()
        if self.store is not None:
            data["store"] = self.store.stats()
        return data


# --------------------------------------------------------------------------
# HTTP front end
# --------------------------------------------------------------------------

_MAX_BODY = 1 << 20  # a scenario pack measured in megabytes is an attack
_MAX_HEADER = 64 << 10


class ServiceDaemon:
    """Minimal HTTP/1.1 front end for a :class:`RegressionService`."""

    def __init__(
        self,
        service: RegressionService,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> None:
        rehydrated = await self.service.rehydrate()
        if rehydrated:
            print(
                f"artifact store: {rehydrated} decode cache(s) rehydrated"
            )
        replayed = await self.service.replay_pending()
        if replayed:
            print(f"journal replay: {replayed} pending job(s) restarted")
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop_accepting(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    async def shutdown(self) -> None:
        """SIGTERM path: stop accepting, drain, settle, exit."""
        await self.stop_accepting()
        await self.service.drain()

    # -- request plumbing --------------------------------------------------
    async def _handle(self, reader, writer) -> None:
        try:
            try:
                head = await reader.readuntil(b"\r\n\r\n")
            except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
                return
            if len(head) > _MAX_HEADER:
                await self._respond(writer, 431, {"error": "headers too large"})
                return
            request_line, *header_lines = head.decode(
                "latin-1"
            ).split("\r\n")
            parts = request_line.split(" ")
            if len(parts) != 3:
                await self._respond(writer, 400, {"error": "bad request line"})
                return
            method, path, _version = parts
            headers = {}
            for line in header_lines:
                if ":" in line:
                    key, _, value = line.partition(":")
                    headers[key.strip().lower()] = value.strip()
            body = b""
            length = int(headers.get("content-length", "0") or "0")
            if length:
                if length > _MAX_BODY:
                    await self._respond(
                        writer, 413, {"error": "body too large"}
                    )
                    return
                body = await reader.readexactly(length)
            await self._route(writer, method, path.split("?", 1)[0], body)
        except ConnectionError:
            pass
        except Exception as exc:
            try:
                await self._respond(
                    writer, 500, {"error": f"{type(exc).__name__}: {exc}"}
                )
            except Exception:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _route(self, writer, method: str, path: str, body: bytes):
        service = self.service
        if method == "GET" and path == "/healthz":
            await self._respond(writer, 200, {"status": "alive"})
        elif method == "GET" and path == "/readyz":
            ok, reason = await service.ready()
            await self._respond(
                writer,
                200 if ok else 503,
                {"ready": ok, "reason": reason},
                retry_after=None if ok else service.retry_after,
            )
        elif method == "GET" and path == "/stats":
            await self._respond(writer, 200, service.stats())
        elif method == "POST" and path == "/submit":
            await self._submit(writer, body)
        else:
            await self._respond(
                writer, 404, {"error": f"no route {method} {path}"}
            )

    async def _submit(self, writer, body: bytes) -> None:
        try:
            pack_data = json.loads(body or b"null")
        except ValueError:
            await self._respond(writer, 400, {"error": "body is not JSON"})
            return
        stream = self.service.submit(pack_data)
        try:
            first = await anext(stream)
        except ServiceUnavailable as exc:
            await self._respond(
                writer,
                503,
                {"error": str(exc)},
                retry_after=exc.retry_after,
            )
            return
        except PackError as exc:
            await self._respond(writer, 400, {"error": str(exc)})
            return
        except ServiceError as exc:
            await self._respond(writer, 500, {"error": str(exc)})
            return
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n\r\n"
        )
        try:
            writer.write(json.dumps(first).encode() + b"\n")
            await writer.drain()
            async for event in stream:
                writer.write(json.dumps(event).encode() + b"\n")
                await writer.drain()
        except ConnectionError:
            # Client went away; the job finishes and journals anyway.
            await stream.aclose()

    async def _respond(
        self,
        writer,
        status: int,
        payload: dict,
        retry_after: float | None = None,
    ) -> None:
        reasons = {
            200: "OK",
            400: "Bad Request",
            404: "Not Found",
            413: "Payload Too Large",
            431: "Request Header Fields Too Large",
            500: "Internal Server Error",
            503: "Service Unavailable",
        }
        body = json.dumps(payload).encode() + b"\n"
        head = (
            f"HTTP/1.1 {status} {reasons.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
        )
        if retry_after is not None:
            head += f"Retry-After: {max(1, round(retry_after))}\r\n"
        head += "Connection: close\r\n\r\n"
        writer.write(head.encode() + body)
        await writer.drain()


async def run_daemon(
    service: RegressionService,
    host: str,
    port: int,
    ready_line=print,
) -> int:
    """Run a daemon until SIGTERM/SIGINT, then drain gracefully."""
    import signal

    daemon = ServiceDaemon(service, host, port)
    await daemon.start()
    ready_line(f"serving on http://{daemon.host}:{daemon.port}", flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):
            pass
    await stop.wait()
    ready_line("drain: stopped accepting, finishing in-flight jobs", flush=True)
    await daemon.shutdown()
    ready_line("drain: complete", flush=True)
    return 0
