"""Regression-as-a-service: the always-available serving layer.

Everything below :mod:`repro.core` is one-shot — every CLI invocation
pays cold-start (device construction, predecode, superblock formation,
JIT warm-up) and an interrupted process loses all in-flight work.  This
package turns the regression engine into a long-lived daemon whose
headline property is robustness:

- :mod:`repro.service.protocol` — versioned, declarative scenario-pack
  submissions (JSON naming modules/derivative/targets/engine flags)
  resolved into :class:`~repro.core.scheduler.RegressionScheduler`
  work-lists;
- :mod:`repro.service.pool` — warm :class:`ExecutionSession` pools
  keyed like batch cohorts, with lease/return checkout, health-checked
  recycling of wedged or poisoned sessions and bounded LRU eviction;
- :mod:`repro.service.journal` — a crash-safe append-only write-ahead
  journal of accepted jobs (checksummed records, atomic segment
  compaction) replayed on restart, so an accepted job is never
  silently lost;
- :mod:`repro.service.daemon` — the stdlib-asyncio HTTP/JSON daemon:
  bounded admission with explicit load-shedding (503 + ``Retry-After``)
  instead of unbounded buffering, per-request deadlines that reclaim
  the leased sessions, NDJSON result streaming as cells complete,
  ``/healthz``/``/readyz`` probes and graceful SIGTERM drain.

Chaos coverage comes from three service-layer injection sites in
:mod:`repro.core.faults` (``service-accept``, ``pool-lease``,
``journal-write``) on top of the five execution-layer sites from the
fault-tolerance PR: under injected crashes, hangs and corruption every
accepted request terminates with a result or an explicit FAULT, and the
readiness probe never reports ready over a broken pool.
"""

from repro.service.daemon import (
    RegressionService,
    ServiceDaemon,
    ServiceError,
    ServiceUnavailable,
)
from repro.service.journal import JobJournal, JournalError
from repro.service.pool import WarmSessionPool
from repro.service.protocol import (
    PACK_SCHEMA,
    PackError,
    ScenarioPack,
    pack_to_dict,
    parse_pack,
    resolve_pack,
)

__all__ = [
    "JobJournal",
    "JournalError",
    "PACK_SCHEMA",
    "PackError",
    "RegressionService",
    "ScenarioPack",
    "ServiceDaemon",
    "ServiceError",
    "ServiceUnavailable",
    "WarmSessionPool",
    "pack_to_dict",
    "parse_pack",
    "resolve_pack",
]
