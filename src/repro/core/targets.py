"""Simulation/emulation targets as the abstraction layer sees them.

A *target* is the ADVM-side name for an execution platform.  The global
defines file adapts the test environment per target (the paper: "the
control of the test environment can be changed depending on the target
simulation platform using the same technique") — e.g. polling limits are
shorter on slow cycle-accurate simulators.

Each target carries the assembler predefine that selects its conditional
blocks and the name of the platform class that executes it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.platforms import Platform, make_platform


@dataclass(frozen=True)
class Target:
    """One simulation/emulation target."""

    name: str
    platform_name: str
    #: Relative patience: polling/delay budgets are scaled by this in the
    #: generated defines (slow simulators get small budgets).
    poll_limit: int
    delay_loops: int

    @property
    def predefine(self) -> str:
        return f"TARGET_{self.name.upper()}"

    def make_platform(self, **kwargs) -> Platform:
        return make_platform(self.platform_name, **kwargs)


TARGET_GOLDEN = Target("golden", "golden", poll_limit=50_000, delay_loops=256)
TARGET_RTL = Target("rtl", "rtl", poll_limit=5_000, delay_loops=32)
TARGET_GATELEVEL = Target(
    "gatelevel", "gatelevel", poll_limit=2_000, delay_loops=16
)
TARGET_ACCELERATOR = Target(
    "accelerator", "accelerator", poll_limit=50_000, delay_loops=256
)
TARGET_BONDOUT = Target(
    "bondout", "bondout", poll_limit=100_000, delay_loops=1024
)
TARGET_SILICON = Target(
    "silicon", "silicon", poll_limit=100_000, delay_loops=1024
)

ALL_TARGETS: dict[str, Target] = {
    t.name: t
    for t in (
        TARGET_GOLDEN,
        TARGET_RTL,
        TARGET_GATELEVEL,
        TARGET_ACCELERATOR,
        TARGET_BONDOUT,
        TARGET_SILICON,
    )
}


def target(name: str) -> Target:
    try:
        return ALL_TARGETS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown target {name!r}; available: {sorted(ALL_TARGETS)}"
        ) from None


def all_targets() -> list[Target]:
    return list(ALL_TARGETS.values())
