"""Instruction-trace comparison: debugging a platform divergence.

When the regression layer attributes a divergence to a platform (C2),
the next engineering step on platforms with waveform visibility is to
find *where* execution forked.  This module runs the same image on two
platforms with tracing enabled and reports the first architectural
divergence point: the PC where the instruction streams part ways, with
disassembled context.

Only trace-capable platforms (golden, RTL, gate level) participate —
exactly the visibility split the paper's platform list implies.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Sequence

from repro.assembler.linker import MemoryImage
from repro.platforms.base import Platform
from repro.platforms.cpu import InstructionTrace, TraceEntry
from repro.soc.derivatives import Derivative


@dataclass(frozen=True)
class DivergencePoint:
    """First index where two instruction traces disagree."""

    index: int
    reference_entry: TraceEntry | None
    subject_entry: TraceEntry | None

    def describe(self) -> str:
        def fmt(entry: TraceEntry | None) -> str:
            if entry is None:
                return "<trace ended>"
            return f"pc={entry.pc:#010x} {entry.mnemonic}"

        return (
            f"traces diverge at instruction #{self.index}: "
            f"reference {fmt(self.reference_entry)} vs "
            f"subject {fmt(self.subject_entry)}"
        )


@dataclass
class TraceComparison:
    """Outcome of comparing a subject platform against the reference."""

    reference_platform: str
    subject_platform: str
    #: Sequences of :class:`TraceEntry` — the live ``InstructionTrace``
    #: from a run (entries materialise lazily on indexing) or plain
    #: lists.
    reference_trace: Sequence[TraceEntry]
    subject_trace: Sequence[TraceEntry]
    divergence: DivergencePoint | None

    @property
    def identical(self) -> bool:
        return self.divergence is None

    def context(self, window: int = 3) -> list[str]:
        """Disassembled context around the divergence point."""
        if self.divergence is None:
            return []
        start = max(0, self.divergence.index - window)
        lines = []
        for index in range(start, self.divergence.index + 1):
            ref = (
                self.reference_trace[index]
                if index < len(self.reference_trace)
                else None
            )
            sub = (
                self.subject_trace[index]
                if index < len(self.subject_trace)
                else None
            )
            ref_text = (
                f"{ref.pc:#010x} {ref.mnemonic}" if ref else "<ended>"
            )
            sub_text = (
                f"{sub.pc:#010x} {sub.mnemonic}" if sub else "<ended>"
            )
            marker = "  <-- fork" if index == self.divergence.index else ""
            lines.append(f"#{index:5d}  {ref_text:<28} | {sub_text}{marker}")
        return lines


def _raw_events(trace: Sequence[TraceEntry]) -> Sequence:
    """(pc, opcode, ...)-indexable events without materialising views."""
    if isinstance(trace, InstructionTrace):
        return trace.raw()
    return trace


def _entry_of(event) -> TraceEntry | None:
    if event is None or isinstance(event, TraceEntry):
        return event
    return TraceEntry(*event)


def _key(event) -> tuple[int, int]:
    """The (pc, opcode) identity of a raw tuple or TraceEntry."""
    if type(event) is tuple:
        return event[0], event[1]
    return event.pc, event.opcode


def _first_divergence(
    reference: Sequence[TraceEntry], subject: Sequence[TraceEntry]
) -> DivergencePoint | None:
    # Compare the flat (pc, opcode, ...) events; only the fork point is
    # materialised into TraceEntry views.
    ref_events = _raw_events(reference)
    sub_events = _raw_events(subject)
    for index in range(max(len(ref_events), len(sub_events))):
        ref = ref_events[index] if index < len(ref_events) else None
        sub = sub_events[index] if index < len(sub_events) else None
        if ref is None or sub is None:
            return DivergencePoint(index, _entry_of(ref), _entry_of(sub))
        if _key(ref) != _key(sub):
            return DivergencePoint(index, _entry_of(ref), _entry_of(sub))
    return None


def compare_traces(
    image: MemoryImage,
    derivative: Derivative,
    reference: Platform,
    subject: Platform,
    max_instructions: int = 200_000,
) -> TraceComparison:
    """Run *image* on both platforms and locate the first fork.

    Raises :class:`ValueError` when either platform lacks trace
    visibility — the caller should fall back to end-state comparison.
    """
    for platform in (reference, subject):
        if not platform.sees_trace:
            raise ValueError(
                f"platform {platform.name!r} has no trace visibility"
            )
    reference.run(image, derivative, max_instructions=max_instructions)
    subject.run(image, derivative, max_instructions=max_instructions)
    reference_trace = reference.last_cpu.trace or []
    subject_trace = subject.last_cpu.trace or []
    return TraceComparison(
        reference_platform=reference.name,
        subject_platform=subject.name,
        reference_trace=reference_trace,
        subject_trace=subject_trace,
        divergence=_first_divergence(reference_trace, subject_trace),
    )
