"""Constrained-random generation of ``Globals.inc`` instances.

The paper's forward-looking Section 2: *"this test environment structure
provides the ability to generate constrained-random instances of the
'Global Defines' file from a higher level language such as Specman e,
Perl or even C/Cpp"*.  Python is that higher-level language here.

A :class:`DefineConstraint` bounds one module define; the generator draws
a full consistent assignment per seed, instantiates the module
environment with those extras and (optionally) runs the suite.  Because
the abstraction layer is the *only* thing randomised, every generated
instance exercises the same test code — randomisation at the control
plane, exactly the paper's proposal.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.core.environment import ModuleTestEnvironment
from repro.core.targets import TARGET_GOLDEN, Target
from repro.platforms.base import RunResult, RunStatus
from repro.soc.derivatives import Derivative


@dataclass(frozen=True)
class DefineConstraint:
    """Bounds for one randomised define."""

    name: str
    low: int
    high: int  # inclusive
    #: Optional filter, e.g. alignment or exclusion of reserved values.
    predicate: Callable[[int], bool] | None = None

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ValueError(
                f"constraint {self.name}: empty range [{self.low}, {self.high}]"
            )

    def draw(self, rng: random.Random) -> int:
        for _ in range(1000):
            value = rng.randint(self.low, self.high)
            if self.predicate is None or self.predicate(value):
                return value
        raise ValueError(
            f"constraint {self.name}: predicate rejected 1000 draws "
            f"in [{self.low}, {self.high}]"
        )


@dataclass
class RandomInstance:
    """One drawn Globals configuration and its run outcome."""

    seed: int
    assignment: dict[str, int]
    results: dict[str, RunResult] = field(default_factory=dict)

    @property
    def all_pass(self) -> bool:
        return bool(self.results) and all(
            r.status is RunStatus.PASS for r in self.results.values()
        )


class RandomGlobalsGenerator:
    """Draws constrained-random abstraction-layer configurations.

    ``build_env(extras)`` constructs the module environment with the
    drawn defines (same tests, different control plane).
    """

    def __init__(
        self,
        build_env: Callable[[dict[str, int]], ModuleTestEnvironment],
        constraints: list[DefineConstraint],
        seed: int = 0,
    ):
        names = [c.name for c in constraints]
        if len(set(names)) != len(names):
            raise ValueError("duplicate constraint names")
        self.build_env = build_env
        self.constraints = list(constraints)
        self.master_seed = seed

    def draw(self, index: int) -> dict[str, int]:
        rng = random.Random(f"{self.master_seed}:{index}")
        return {c.name: c.draw(rng) for c in self.constraints}

    def instance(
        self,
        index: int,
        derivative: Derivative,
        tgt: Target = TARGET_GOLDEN,
        run: bool = True,
    ) -> RandomInstance:
        assignment = self.draw(index)
        instance = RandomInstance(seed=index, assignment=assignment)
        env = self.build_env(assignment)
        if run:
            instance.results = env.run_all(derivative, tgt.name)
        return instance

    def campaign(
        self,
        count: int,
        derivative: Derivative,
        tgt: Target = TARGET_GOLDEN,
    ) -> list[RandomInstance]:
        """Run *count* random instances (the C6 experiment)."""
        return [
            self.instance(index, derivative, tgt) for index in range(count)
        ]


def coverage_of_campaign(
    instances: list[RandomInstance], define_name: str
) -> set[int]:
    """Distinct values a define took across a campaign — the coverage
    growth the paper's 'more complex test scenarios' argument predicts."""
    return {
        instance.assignment[define_name]
        for instance in instances
        if define_name in instance.assignment
    }
