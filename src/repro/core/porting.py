"""The porting engine: measuring "rapid porting to new derivatives".

The paper's primary advantage claim: re-targeting existing test code to a
new derivative needs only abstraction-layer changes, while the
conventional (hardwired) style needs every affected test re-factored.

This module measures both sides mechanically:

- **ADVM port**: the edit is the difference in the *generated*
  abstraction layer between "environment knowing derivatives D" and
  "environment knowing derivatives D + new" — the new ``.IFDEF`` block
  in ``Globals.inc`` (and, when firmware changed, ``Base_Functions.asm``).
  Test sources are untouched **by construction**, and the engine proves
  it by running the same cells on the new derivative.

- **baseline port**: the hardwired suite is regenerated for the new
  derivative and diffed test by test; every value that moved shows up as
  an edit in every test that used it.

Both sides end with a functional check: the ported suite must pass on
the new derivative's golden model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.assembler.assembler import Assembler
from repro.assembler.linker import Linker
from repro.core.defines import GlobalDefines
from repro.core.environment import (
    BASE_FUNCTIONS_FILENAME,
    GLOBALS_FILENAME,
    GlobalLayer,
    ModuleTestEnvironment,
)
from repro.core.metrics import EffortReport, compare_effort, diff_files
from repro.core.targets import Target, TARGET_GOLDEN
from repro.core.workloads import (
    make_nvm_environment,
    nvm_test_hardwired,
)
from repro.platforms.base import RunResult, RunStatus
from repro.soc.derivatives import Derivative
from repro.soc.embedded import assemble_embedded_software


@dataclass
class PortOutcome:
    """Result of porting one suite to a new derivative."""

    effort: EffortReport
    #: cell name -> run result on the new derivative (after the port).
    results: dict[str, RunResult] = field(default_factory=dict)

    @property
    def all_pass(self) -> bool:
        return bool(self.results) and all(
            r.status is RunStatus.PASS for r in self.results.values()
        )


def port_advm_environment(
    build_env,
    known: list[Derivative],
    new: Derivative,
    tgt: Target = TARGET_GOLDEN,
) -> PortOutcome:
    """Port an ADVM environment to *new*; measure abstraction-layer edits.

    ``build_env(derivatives)`` must construct the same module environment
    for a given derivative list (test sources identical by construction).
    """
    env_before: ModuleTestEnvironment = build_env(list(known))
    env_after: ModuleTestEnvironment = build_env(list(known) + [new])

    effort = EffortReport(label=f"ADVM port to {new.name}")
    effort.add(
        diff_files(
            GLOBALS_FILENAME,
            env_before.globals_text(),
            env_after.globals_text(),
        )
    )
    effort.add(
        diff_files(
            BASE_FUNCTIONS_FILENAME,
            env_before.base_functions_text(),
            env_after.base_functions_text(),
        )
    )
    # Test sources: identical by construction — include them in the file
    # count to show 0 touched out of N.
    for name, cell in env_after.cells.items():
        before_cell = env_before.cells[name]
        effort.add(diff_files(cell.filename, before_cell.source, cell.source))

    results = env_after.run_all(new, tgt.name)
    return PortOutcome(effort=effort, results=results)


# --------------------------------------------------------------------------
# Hardwired baseline
# --------------------------------------------------------------------------

@dataclass
class HardwiredSuite:
    """A hardwired (non-ADVM) test suite for one derivative/target."""

    derivative: Derivative
    tgt: Target
    #: test name -> full hardwired source
    sources: dict[str, str]

    def run_all(self, global_layer: GlobalLayer) -> dict[str, RunResult]:
        """Hardwired tests still need the firmware in ROM (they call it
        directly); vectors come from the global trap handlers."""
        results: dict[str, RunResult] = {}
        memory_map = self.derivative.memory_map()
        for name, source in self.sources.items():
            assembler = Assembler(
                predefines={self.derivative.predefine: 1}
            )
            objects = [assembler.assemble_source(source, f"{name}.asm")]
            objects.append(
                assembler.assemble_source(
                    global_layer.trap_handlers_text, "Trap_Handlers.asm"
                )
            )
            objects.append(
                assemble_embedded_software(
                    self.derivative.es_version, assembler
                )
            )
            image = Linker(
                text_base=memory_map.text_base,
                data_base=memory_map.data_base,
            ).link(objects)
            platform = self.tgt.make_platform()
            results[name] = platform.run(image, self.derivative)
        return results


def make_hardwired_nvm_suite(
    num_tests: int,
    derivative: Derivative,
    tgt: Target = TARGET_GOLDEN,
) -> HardwiredSuite:
    """The hardwired twin of :func:`make_nvm_environment`."""
    defines = make_nvm_environment(num_tests, derivatives=[derivative]).defines
    sources = {
        f"TEST_NVM_PAGE_{index:03d}": nvm_test_hardwired(
            index, defines, derivative, tgt
        )
        for index in range(1, num_tests + 1)
    }
    return HardwiredSuite(derivative=derivative, tgt=tgt, sources=sources)


def port_hardwired_suite(
    num_tests: int,
    old: Derivative,
    new: Derivative,
    tgt: Target = TARGET_GOLDEN,
) -> PortOutcome:
    """Port the hardwired suite by regenerating for *new* and diffing —
    the mechanical equivalent of an engineer editing every test."""
    before = make_hardwired_nvm_suite(num_tests, old, tgt)
    after = make_hardwired_nvm_suite(num_tests, new, tgt)
    effort = EffortReport(label=f"hardwired port {old.name} -> {new.name}")
    for name in before.sources:
        effort.add(
            diff_files(
                f"{name}.asm", before.sources[name], after.sources[name]
            )
        )
    results = after.run_all(GlobalLayer([new]))
    return PortOutcome(effort=effort, results=results)


@dataclass
class PortComparison:
    """Side-by-side ADVM vs hardwired port of the same suite."""

    advm: PortOutcome
    baseline: PortOutcome

    @property
    def factors(self) -> dict[str, float]:
        return compare_effort(self.advm.effort, self.baseline.effort)

    def summary(self) -> str:
        lines = [
            self.advm.effort.summary()
            + f" (suite passes: {self.advm.all_pass})",
            self.baseline.effort.summary()
            + f" (suite passes: {self.baseline.all_pass})",
        ]
        factors = self.factors
        lines.append(
            "saving factor: "
            f"{factors['files_factor']:.1f}x files, "
            f"{factors['lines_factor']:.1f}x lines"
        )
        return "\n".join(lines)


def compare_nvm_port(
    num_tests: int,
    known: list[Derivative],
    new: Derivative,
    tgt: Target = TARGET_GOLDEN,
) -> PortComparison:
    """The C3 experiment: port the NVM suite both ways and compare."""
    advm = port_advm_environment(
        lambda derivatives: make_nvm_environment(
            num_tests, derivatives=derivatives
        ),
        known,
        new,
        tgt,
    )
    baseline = port_hardwired_suite(num_tests, known[0], new, tgt)
    return PortComparison(advm=advm, baseline=baseline)
