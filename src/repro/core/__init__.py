"""ADVM core: the paper's methodology as an executable library.

The pieces map one-to-one onto the paper's figures and claims:

- :mod:`~repro.core.environment` — the three-layer module test
  environment (Figure 1) and the shared global layer;
- :mod:`~repro.core.defines` / :mod:`~repro.core.basefuncs` — the
  abstraction layer generators (``Globals.inc``, ``Base_Functions.asm``,
  Figures 6 and 7);
- :mod:`~repro.core.violations` — the Figure 2 abuse checker;
- :mod:`~repro.core.workspace` — the Figure 3/5 directory trees;
- :mod:`~repro.core.system_env` — the complete environment (Figure 4);
- :mod:`~repro.core.porting` — rapid-porting measurement (the headline
  claim) with a hardwired baseline;
- :mod:`~repro.core.release` — §3's frozen release labels;
- :mod:`~repro.core.regression` — cross-platform regressions and
  divergence attribution;
- :mod:`~repro.core.crg` — §2's constrained-random ``Globals.inc``
  generation;
- :mod:`~repro.core.coverage` / :mod:`~repro.core.testplan` — what the
  suite exercised vs what was planned.
"""

from repro.core.basefuncs import generate_base_functions
from repro.core.coverage import CoverageCollector, CoverageReport
from repro.core.crg import (
    DefineConstraint,
    RandomGlobalsGenerator,
    RandomInstance,
    coverage_of_campaign,
)
from repro.core.defines import DefineEntry, GlobalDefines
from repro.core.environment import (
    BuildArtifacts,
    GlobalLayer,
    ModuleTestEnvironment,
    TestCell,
)
from repro.core.metrics import (
    EffortReport,
    FileDiff,
    compare_effort,
    diff_files,
    loc,
)
from repro.core.porting import (
    PortComparison,
    PortOutcome,
    compare_nvm_port,
    make_hardwired_nvm_suite,
    port_advm_environment,
    port_hardwired_suite,
)
from repro.core.regression import (
    Divergence,
    RegressionReport,
    RegressionRunner,
    quick_regression,
)
from repro.core.release import (
    EnvironmentLabel,
    FrozenEnvironment,
    ReleaseManager,
    SystemLabel,
)
from repro.core.reporting import regression_matrix, render_table
from repro.core.system_env import (
    IsolationViolation,
    SystemEnvironment,
    make_default_system,
)
from repro.core.targets import (
    ALL_TARGETS,
    Target,
    all_targets,
    target,
)
from repro.core.testplan import PlanItem, TestPlan
from repro.core.violations import (
    Violation,
    ViolationKind,
    check_cell,
    check_environment,
)
from repro.core.workloads import (
    make_datapath_environment,
    make_nvm_environment,
    make_register_environment,
    make_reginit_environment,
    make_timer_environment,
    make_uart_environment,
)
from repro.core.workspace import (
    DiskBuilder,
    load_module_environment,
    validate_module_tree,
    validate_system_tree,
    write_module_environment,
    write_system_environment,
)

__all__ = [
    "ALL_TARGETS",
    "BuildArtifacts",
    "CoverageCollector",
    "CoverageReport",
    "DefineConstraint",
    "DefineEntry",
    "DiskBuilder",
    "Divergence",
    "EffortReport",
    "EnvironmentLabel",
    "FileDiff",
    "FrozenEnvironment",
    "GlobalDefines",
    "GlobalLayer",
    "IsolationViolation",
    "ModuleTestEnvironment",
    "PlanItem",
    "PortComparison",
    "PortOutcome",
    "RandomGlobalsGenerator",
    "RandomInstance",
    "RegressionReport",
    "RegressionRunner",
    "ReleaseManager",
    "SystemEnvironment",
    "SystemLabel",
    "Target",
    "TestCell",
    "TestPlan",
    "Violation",
    "ViolationKind",
    "all_targets",
    "check_cell",
    "check_environment",
    "compare_effort",
    "compare_nvm_port",
    "coverage_of_campaign",
    "diff_files",
    "generate_base_functions",
    "load_module_environment",
    "loc",
    "make_datapath_environment",
    "make_default_system",
    "make_hardwired_nvm_suite",
    "make_nvm_environment",
    "make_register_environment",
    "make_reginit_environment",
    "make_timer_environment",
    "make_uart_environment",
    "port_advm_environment",
    "port_hardwired_suite",
    "quick_regression",
    "regression_matrix",
    "render_table",
    "target",
    "validate_module_tree",
    "validate_system_tree",
    "write_module_environment",
    "write_system_environment",
]
