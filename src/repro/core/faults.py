"""Deterministic fault injection for the regression execution layer.

The paper's regression matrix is only useful unattended if a single
faulty cell cannot take the whole matrix down.  This module provides
the *chaos half* of that contract: a seeded, fully deterministic fault
plan that the scheduler, the execution sessions and the result cache
consult at a small catalogue of **named injection sites**, so every
fault-tolerance test reproduces bit-for-bit from its seed.

Design constraints (mirrored by the supervision layer in
:mod:`repro.core.scheduler`):

- **zero overhead when disabled** — every call site guards with
  ``if injector is not None``; a scheduler without a fault plan never
  constructs an injector, so the hot path pays one attribute load;
- **deterministic per seed** — which occurrence of a site fires is
  fixed by the spec (``after``/``times`` windows over per-spec hit
  counters) and payload corruption bytes derive from
  ``(seed, site, key)``, never from wall clock or global RNG state;
- **picklable** — a :class:`FaultPlan` is plain data, so process-pool
  workers rebuild their own :class:`FaultInjector` from the plan that
  rode along in the payload (hit counters are per-process by design:
  a respawned worker sees the same deterministic world).

Injection sites
---------------

=================  ========================================================
site               fired from
=================  ========================================================
``worker-boot``    ``_run_target_batch`` (pool worker entry), key
                   ``{target}#{attempt}``
``session-run``    :meth:`ExecutionSession.begin` / ``begin_forked``,
                   key ``{platform}#run{n}``
``batch-peel``     :class:`BatchSession` peel servicing, key
                   ``{platform}#lane{i}``
``cache-read``     :meth:`ResultCache.get`, key = cache key
``cache-write``    :meth:`ResultCache.put`, key = cache key
``service-accept`` :meth:`RegressionService.submit` (admission), key
                   ``{job id}``
``pool-lease``     :meth:`WarmSessionPool.lease` (checkout), key
                   ``{target}/{derivative}``
``journal-write``  :meth:`JobJournal.append` (durable accept/settle
                   records), key ``{job id}``
``store-read``     :meth:`ArtifactStore.load_decode_cache` /
                   :meth:`WorkList.fetch` (shared-store reads), key =
                   artifact file stem / cell key
``store-write``    :meth:`ArtifactStore.save_decode_cache` /
                   :meth:`WorkList.publish` (shared-store writes), key =
                   artifact file stem / cell key
``lease-renew``    :meth:`WorkList.renew` (heartbeat extension of a
                   held cell lease), key = cell key
=================  ========================================================

Actions
-------

``raise`` raises :class:`InjectedFault`; ``hang`` sleeps
``hang_seconds`` (simulating a wedged simulator — the supervisor's
``--run-timeout`` is what reclaims it); ``kill`` SIGKILLs the current
*worker* process (in the main process it degrades to ``raise`` so a
mis-targeted spec cannot take the scheduler down); ``corrupt`` mangles
payload bytes at the payload sites (cache read/write, store
read/write) through :meth:`FaultInjector.mangle`.
"""

from __future__ import annotations

import hashlib
import os
import random
import signal
import time
from dataclasses import dataclass, field

SITE_WORKER_BOOT = "worker-boot"
SITE_SESSION_RUN = "session-run"
SITE_BATCH_PEEL = "batch-peel"
SITE_CACHE_READ = "cache-read"
SITE_CACHE_WRITE = "cache-write"
SITE_SERVICE_ACCEPT = "service-accept"
SITE_POOL_LEASE = "pool-lease"
SITE_JOURNAL_WRITE = "journal-write"
SITE_STORE_READ = "store-read"
SITE_STORE_WRITE = "store-write"
SITE_LEASE_RENEW = "lease-renew"

ALL_SITES = (
    SITE_WORKER_BOOT,
    SITE_SESSION_RUN,
    SITE_BATCH_PEEL,
    SITE_CACHE_READ,
    SITE_CACHE_WRITE,
    SITE_SERVICE_ACCEPT,
    SITE_POOL_LEASE,
    SITE_JOURNAL_WRITE,
    SITE_STORE_READ,
    SITE_STORE_WRITE,
    SITE_LEASE_RENEW,
)

ACTION_RAISE = "raise"
ACTION_HANG = "hang"
ACTION_KILL = "kill"
ACTION_CORRUPT = "corrupt"

ALL_ACTIONS = (ACTION_RAISE, ACTION_HANG, ACTION_KILL, ACTION_CORRUPT)


class InjectedFault(RuntimeError):
    """An exception deliberately raised by a fault plan."""

    def __init__(self, site: str, key: str):
        super().__init__(f"injected fault at {site} ({key})")
        self.site = site
        self.key = key

    def __reduce__(self):
        # args holds the rendered message, not (site, key); without
        # this a worker-raised InjectedFault fails to unpickle on its
        # way back through a process pool.
        return (InjectedFault, (self.site, self.key))


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault: fire *action* at *site* on the hits
    selected by the ``after``/``times`` window.

    ``match`` is a substring filter over the site key (``None`` matches
    every key); the spec's hit counter only advances on matching hits,
    so ``after=2, times=1`` means "the third matching occurrence, once".
    """

    site: str
    action: str
    match: str | None = None
    after: int = 0
    times: int = 1
    hang_seconds: float = 30.0
    #: How many payload bytes a ``corrupt`` spec flips.
    corrupt_bytes: int = 4

    def __post_init__(self):
        if self.site not in ALL_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; known: {ALL_SITES}"
            )
        if self.action not in ALL_ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; known: {ALL_ACTIONS}"
            )

    def matches(self, key: str) -> bool:
        return self.match is None or self.match in key


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, picklable set of :class:`FaultSpec`\\ s.

    The seed pins payload-corruption bytes (and nothing else: firing
    windows are explicit in the specs), so two runs of the same plan
    inject byte-identical chaos.
    """

    seed: int = 0
    specs: tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self):
        # Accept any iterable of specs but store a hashable tuple.
        object.__setattr__(self, "specs", tuple(self.specs))

    def with_spec(self, *specs: FaultSpec) -> "FaultPlan":
        return FaultPlan(seed=self.seed, specs=self.specs + specs)


def _in_worker_process() -> bool:
    """True when running inside a multiprocessing child — the only
    place a ``kill`` action is allowed to SIGKILL."""
    try:
        import multiprocessing

        return multiprocessing.parent_process() is not None
    except Exception:
        return False


class FaultInjector:
    """Runtime evaluator of a :class:`FaultPlan`.

    Holds one hit counter per spec; :meth:`fire` services the
    control-flow actions (raise/hang/kill) and :meth:`mangle` the
    payload-corruption action.  Both are deterministic: call order at
    each site is fixed by the (deterministic) execution order of the
    scheduler, and corruption bytes derive from ``(seed, site, key)``.
    """

    def __init__(self, plan: FaultPlan, sleep=time.sleep):
        self.plan = plan
        self._sleep = sleep
        self._hits = [0] * len(plan.specs)
        #: (site, key, action) log of every fault performed, for tests.
        self.fired: list[tuple[str, str, str]] = []

    def _due(self, index: int, spec: FaultSpec, key: str) -> bool:
        if not spec.matches(key):
            return False
        self._hits[index] += 1
        hit = self._hits[index]
        return spec.after < hit <= spec.after + spec.times

    def fire(self, site: str, key: str) -> None:
        """Service raise/hang/kill specs armed at *site* for *key*.

        A due ``hang`` sleeps before any due ``raise`` propagates, so a
        spec pair can model "wedge, then die".  Raises at most once.
        """
        due_raise: FaultSpec | None = None
        for index, spec in enumerate(self.plan.specs):
            if spec.site != site or spec.action == ACTION_CORRUPT:
                continue
            if not self._due(index, spec, key):
                continue
            self.fired.append((site, key, spec.action))
            if spec.action == ACTION_HANG:
                self._sleep(spec.hang_seconds)
            elif spec.action == ACTION_KILL:
                if _in_worker_process():
                    os.kill(os.getpid(), signal.SIGKILL)
                # Outside a worker a kill degrades to a contained raise:
                # chaos must never take the supervising process down.
                due_raise = spec
            elif due_raise is None:
                due_raise = spec
        if due_raise is not None:
            raise InjectedFault(site, key)

    def mangle(self, site: str, key: str, data: bytes) -> bytes:
        """Pass payload *data* through any due ``corrupt`` specs."""
        for index, spec in enumerate(self.plan.specs):
            if spec.site != site or spec.action != ACTION_CORRUPT:
                continue
            if not self._due(index, spec, key):
                continue
            self.fired.append((site, key, spec.action))
            data = corrupt_bytes(
                data, self.plan.seed, site, key, spec.corrupt_bytes
            )
        return data


def corrupt_bytes(
    data: bytes, seed: int, site: str, key: str, count: int
) -> bytes:
    """Flip *count* deterministically chosen bytes of *data*.

    The RNG is seeded from ``(seed, site, key)`` so the same plan
    corrupts the same payload identically on every run — chaos tests
    replay bit-for-bit.  Empty payloads gain one poison byte so the
    corruption is never a silent no-op.
    """
    digest = hashlib.sha256(
        f"{seed}\0{site}\0{key}".encode()
    ).digest()
    rng = random.Random(int.from_bytes(digest[:8], "big"))
    if not data:
        return bytes([rng.randrange(1, 256)])
    mangled = bytearray(data)
    for _ in range(max(1, count)):
        position = rng.randrange(len(mangled))
        mangled[position] ^= rng.randrange(1, 256)
    return bytes(mangled)
