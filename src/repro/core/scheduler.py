"""Regression scheduling: explicit work-lists, pluggable executors, a
persistent result cache for incremental re-regression, and supervised
fault-tolerant execution.

The paper's regression is a (cells × platforms) matrix over one linked
image per build input.  The original runner walked that matrix with
nested loops, rebuilding the platform and the image for every entry.
This module makes the matrix explicit:

1. **work-list** — every matrix entry becomes a :class:`RunRequest`
   carrying its pre-built image (builds are shared through the module
   environment's build cache, so targets with identical build inputs
   share one image);
2. **cache probe** — a :class:`ResultCache` keyed by (image digest,
   target, derivative, platform fingerprint) satisfies entries whose
   inputs have not changed since the last regression — the lab's
   incremental re-run: touch one test cell and only its column of the
   matrix re-executes.  Entries are checksummed; corrupt files are
   counted, quarantined aside and re-executed rather than replayed;
3. **execution** — remaining entries run on a pluggable executor:
   serial (one long-lived :class:`ExecutionSession` per target), a
   ``concurrent.futures`` thread/process pool batched by target, or the
   lock-step batch engine — all **supervised**: a worker exception,
   crash or wall-clock overrun fails only its own payload, which is
   retried with capped deterministic backoff and, after the attempt
   budget, **quarantined** as a synthesized :data:`RunStatus.FAULT`
   result.  The matrix always completes;
4. **report** — the familiar :class:`RegressionReport`, with
   executed/cached/batched/peeled bookkeeping plus the fault-tolerance
   counters (``retried_runs``/``quarantined_runs``/``degraded_runs``)
   and the golden-reference divergence attribution unchanged
   (quarantined cells are infrastructure faults, not platform bugs, so
   they are excluded from divergence attribution).

Supervision state machine (per pooled payload)::

    queued -> submitted -> ok
                 |-> exception / timeout -> attempt+1 -> backoff -> queued
                 |          (attempt > retries, multi-cell) -> split per cell
                 |          (attempt > retries, one cell)   -> quarantined
                 `-> pool broke (collateral) -> queued, cautious mode

After a :class:`BrokenProcessPool` the supervisor rebuilds the pool and
enters **cautious mode** — payloads run one at a time, so the next
breakage is unambiguously attributed to the payload that was running
(collateral victims of a parallel-mode breakage are requeued without
burning an attempt).  Deterministic chaos for all of this comes from
:mod:`repro.core.faults`: a seeded :class:`FaultPlan` rides into pool
workers inside the payload, and the scheduler/sessions/cache consult
the injector at named sites with zero overhead when no plan is set.

Targets with injected platform overrides (fault-injection experiments)
always execute serially in-process and bypass the cache: an override's
behaviour is arbitrary Python state that neither pickles reliably nor
fingerprints honestly.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from pathlib import Path

from repro.assembler.linker import MemoryImage
from repro.core.environment import ModuleTestEnvironment
from repro.core.faults import (
    FaultInjector,
    FaultPlan,
    SITE_CACHE_READ,
    SITE_CACHE_WRITE,
    SITE_WORKER_BOOT,
)
from repro.core.regression import (
    RegressionReport,
    detect_divergences,
)
from repro.core.targets import (
    Target,
    all_targets,
    target as lookup_target,
)
from repro.platforms.base import (
    DEFAULT_MAX_INSTRUCTIONS,
    Platform,
    RunResult,
    RunStatus,
)
from repro.platforms.cpu import TraceEntry
from repro.platforms.session import BatchSession, ExecutionSession
from repro.soc.derivatives import Derivative, derivative as lookup_derivative

#: Bump when run semantics change in a way that invalidates old caches.
#: 2: checksummed cache entries (corrupt files detected, not replayed).
CACHE_SCHEMA = 2

#: How often the pooled supervisor wakes to check deadlines/backoffs.
_POLL_INTERVAL = 0.05


@dataclass(frozen=True)
class RunRequest:
    """One (environment, cell, derivative, target) matrix entry."""

    environment: str
    cell: str
    derivative: str
    target: str


@dataclass
class RunOutcome:
    """A request plus how its result was obtained.

    ``batched`` marks results materialised from a lock-step batch
    cohort (see :class:`~repro.platforms.session.BatchSession`);
    ``peeled`` marks lanes that ran (at least partly) on their own
    scalar engine because the lock-step argument could not cover them.
    ``retried`` marks runs that needed more than one submission,
    ``degraded`` runs demoted from the lock-step fast path to a
    from-reset scalar run after an execution-layer error, and
    ``quarantined`` cells whose result is a synthesized
    :data:`RunStatus.FAULT` because every attempt failed.  In a
    fleet-sharded run, ``fetched`` marks verdicts adopted from a peer
    worker's publication in the shared work-list and ``stolen`` runs
    executed under a lease reclaimed from a dead worker.
    """

    request: RunRequest
    result: RunResult
    cached: bool = False
    batched: bool = False
    peeled: bool = False
    retried: bool = False
    degraded: bool = False
    quarantined: bool = False
    fetched: bool = False
    stolen: bool = False


# --------------------------------------------------------------------------
# result (de)serialisation for the persistent cache
# --------------------------------------------------------------------------

def result_to_payload(result: RunResult) -> dict:
    return {
        "platform": result.platform,
        "derivative": result.derivative,
        "status": result.status.value,
        "instructions": result.instructions,
        "cycles": result.cycles,
        "signature": result.signature,
        "result_word": result.result_word,
        "uart_output": result.uart_output,
        "done_pin": result.done_pin,
        "pass_pin": result.pass_pin,
        "fault_reason": result.fault_reason,
        "trace": (
            None
            if result.trace is None
            else [
                [t.pc, t.opcode, t.mnemonic, t.cycles]
                for t in result.trace
            ]
        ),
        "registers": result.registers,
    }


def result_from_payload(payload: dict) -> RunResult:
    trace = payload["trace"]
    return RunResult(
        platform=payload["platform"],
        derivative=payload["derivative"],
        status=RunStatus(payload["status"]),
        instructions=payload["instructions"],
        cycles=payload["cycles"],
        signature=payload["signature"],
        result_word=payload["result_word"],
        uart_output=payload["uart_output"],
        done_pin=payload["done_pin"],
        pass_pin=payload["pass_pin"],
        fault_reason=payload["fault_reason"],
        trace=(
            None
            if trace is None
            else [TraceEntry(pc, op, mn, cy) for pc, op, mn, cy in trace]
        ),
        registers=payload["registers"],
    )


def quarantine_result(
    platform_name: str,
    derivative_name: str,
    reason: str,
) -> RunResult:
    """The synthesized verdict of a cell whose every attempt failed.

    ``fault_reason`` is structured as ``quarantined: <detail>`` so
    report consumers can tell an infrastructure fault from a genuine
    :class:`~repro.platforms.cpu.CpuFault` raised by the core.
    """
    return RunResult(
        platform=platform_name,
        derivative=derivative_name,
        status=RunStatus.FAULT,
        fault_reason=f"quarantined: {reason}",
    )


class ResultCache:
    """Persistent (image digest, target, derivative) -> result store.

    One JSON file per key under *directory*.  The key includes a schema
    version and the platform's behavioural fingerprint, so platform
    changes invalidate rather than replay stale verdicts.  Every entry
    carries a SHA-256 checksum of its payload: a torn write, bit rot or
    injected corruption is detected on read, counted in :attr:`corrupt`
    (distinct from clean :attr:`misses`) and the bad file is renamed
    aside to a unique ``<key>.<nonce>.corrupt`` name so it is never
    re-parsed — and re-failed — on subsequent regressions, while
    repeated corruption of the same key preserves every quarantined
    file as forensic evidence (:attr:`quarantined` counts the distinct
    files set aside).  Write failures are contained and counted in
    :attr:`write_errors`: a cache that cannot persist a verdict
    degrades to a cold cache, never to a failed regression.  A
    long-lived owner (the serving daemon) bounds the directory with
    :meth:`prune`.
    """

    def __init__(self, directory: str | Path, injector: FaultInjector | None = None):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.write_errors = 0
        #: Distinct corrupt files successfully renamed aside.
        self.quarantined = 0
        #: Entries removed by :meth:`prune` over this cache's lifetime.
        self.pruned = 0
        #: Optional chaos hook (:mod:`repro.core.faults`).
        self.injector = injector

    @staticmethod
    def _platform_fingerprint(tgt: Target) -> str:
        platform_cls = type(tgt.make_platform())
        return "|".join(
            str(part)
            for part in (
                platform_cls.__name__,
                platform_cls.sees_registers,
                platform_cls.sees_memory,
                platform_cls.sees_uart,
                platform_cls.sees_trace,
                platform_cls.cycle_accurate,
            )
        )

    def key_for(
        self,
        image: MemoryImage,
        tgt: Target,
        derivative: Derivative,
        max_instructions: int,
    ) -> str:
        hasher = hashlib.sha256()
        for part in (
            f"schema={CACHE_SCHEMA}",
            image.digest(),
            tgt.name,
            derivative.name,
            self._platform_fingerprint(tgt),
            str(max_instructions),
        ):
            hasher.update(part.encode())
            hasher.update(b"\0")
        return hasher.hexdigest()

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def _quarantine_file(self, path: Path) -> None:
        """Move a corrupt entry off the hot path (best effort).

        The destination name is unique per quarantine (mkstemp picks
        the nonce), so a key that corrupts twice sets *two* files
        aside instead of the second ``os.replace`` silently destroying
        the first — the forensic evidence of the earlier corruption.
        """
        try:
            fd, destination = tempfile.mkstemp(
                prefix=f"{path.stem}.", suffix=".corrupt", dir=self.directory
            )
            os.close(fd)
        except OSError:
            return
        try:
            os.replace(path, destination)
        except OSError:
            # Another process got there first (shared cache dirs):
            # drop the placeholder rather than leaving an empty decoy.
            try:
                os.unlink(destination)
            except OSError:
                pass
            return
        self.quarantined += 1

    def stats(self) -> dict[str, int]:
        """Hit/miss/corruption/maintenance counters, one flat dict —
        the shape the CLI summary and the serving daemon's ``/stats``
        endpoint expose."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "quarantined": self.quarantined,
            "write_errors": self.write_errors,
            "pruned": self.pruned,
        }

    def prune(
        self,
        max_entries: int | None = None,
        max_age: float | None = None,
        now: float | None = None,
    ) -> int:
        """Bound the on-disk cache; returns how many files were removed.

        *max_age* (seconds) removes entries (and quarantined files)
        older than the horizon; *max_entries* then removes the
        oldest-modified entries beyond the count.  Either bound alone
        is fine; with neither this is a no-op.  Removal races with
        concurrent writers are benign: a vanished file is simply
        skipped, and a just-rewritten entry has a fresh mtime that
        keeps it.
        """
        removed = 0
        if max_entries is None and max_age is None:
            return removed
        if now is None:
            now = time.time()
        entries: list[tuple[float, Path]] = []
        for path in list(self.directory.glob("*.json")) + list(
            self.directory.glob("*.corrupt")
        ):
            try:
                mtime = path.stat().st_mtime
            except OSError:
                continue
            if max_age is not None and now - mtime > max_age:
                removed += self._remove_file(path)
            elif path.suffix == ".json":
                entries.append((mtime, path))
        if max_entries is not None and len(entries) > max_entries:
            entries.sort()
            for _mtime, path in entries[: len(entries) - max_entries]:
                removed += self._remove_file(path)
        self.pruned += removed
        return removed

    def _remove_file(self, path: Path) -> int:
        try:
            os.unlink(path)
        except OSError:
            return 0
        return 1

    def get(self, key: str) -> RunResult | None:
        path = self._path(key)
        if not path.exists():
            self.misses += 1
            return None
        try:
            if self.injector is not None:
                self.injector.fire(SITE_CACHE_READ, key)
            raw = path.read_bytes()
            if self.injector is not None:
                raw = self.injector.mangle(SITE_CACHE_READ, key, raw)
            body = json.loads(raw)
            payload_text = body["payload"]
            checksum = hashlib.sha256(payload_text.encode()).hexdigest()
            if checksum != body["checksum"]:
                raise ValueError("cache entry checksum mismatch")
            result = result_from_payload(json.loads(payload_text))
        except Exception:
            # Corrupt, unreadable or injected-faulty: quarantine the
            # file aside and report a (counted) non-clean miss.
            self.corrupt += 1
            self._quarantine_file(path)
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: RunResult) -> bool:
        payload_text = json.dumps(result_to_payload(result), sort_keys=True)
        body = {
            "schema": CACHE_SCHEMA,
            "checksum": hashlib.sha256(payload_text.encode()).hexdigest(),
            "payload": payload_text,
        }
        data = json.dumps(body).encode()
        path = self._path(key)
        try:
            if self.injector is not None:
                self.injector.fire(SITE_CACHE_WRITE, key)
                data = self.injector.mangle(SITE_CACHE_WRITE, key, data)
            # Unique tmp name: concurrent regressions may share a cache
            # dir, and a fixed tmp path would let one writer replace
            # another's half-written file (or race os.replace into
            # FileNotFoundError).
            fd, tmp = tempfile.mkstemp(
                prefix=f".{key}.", suffix=".tmp", dir=self.directory
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(data)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except Exception:
            self.write_errors += 1
            return False
        return True


# --------------------------------------------------------------------------
# executors
# --------------------------------------------------------------------------

#: ``stats()`` keys whose sources are cumulative (shared decode caches)
#: or global (the digest registry): merged as gauges, not summed.
_ENGINE_GAUGES = ("decode_hits", "decode_misses")


def merge_engine_stats(totals: dict, stats: dict) -> dict:
    """Accumulate one engine ``stats()`` snapshot into *totals*.

    Per-run counters (``sb_replays``, ``ff_warps``, ``jit_chains``,
    ``jit_exec_steps``, batch/peel counters) sum; shared-cache and
    registry keys are gauges where the last observation wins."""
    for key, value in stats.items():
        if key in _ENGINE_GAUGES or key.startswith("registry_"):
            totals[key] = value
        else:
            totals[key] = totals.get(key, 0) + value
    return totals


def _run_target_batch(payload):
    """Worker: run one target's batch of images on one shared session.

    Module-level so process pools can pickle it; thread pools use it
    too, giving every worker its own platform/device to mutate.  The
    fault plan (if any) rides along in the payload and a fresh injector
    is built per call — worker hit counters are per-process by design,
    so a respawned worker replays the same deterministic chaos, and
    the ``{target}#{attempt}`` key lets plans distinguish first runs
    from retries.
    """
    (
        target_name,
        derivative_name,
        max_instructions,
        batch,
        attempt,
        fault_plan,
    ) = payload
    injector = FaultInjector(fault_plan) if fault_plan is not None else None
    if injector is not None:
        injector.fire(SITE_WORKER_BOOT, f"{target_name}#{attempt}")
    tgt = lookup_target(target_name)
    derivative = lookup_derivative(derivative_name)
    session = ExecutionSession(
        tgt.make_platform(), derivative, injector=injector
    )
    pairs = []
    totals: dict = {}
    for request, image in batch:
        pairs.append(
            (request, session.run(image, max_instructions=max_instructions))
        )
        merge_engine_stats(totals, session.stats())
    return pairs, totals


@dataclass
class _PoolJob:
    """One supervised pooled payload: a target's batch of cells."""

    target: str
    requests: list  #: [(RunRequest, MemoryImage)]
    attempt: int = 0
    retried: bool = False
    #: Monotonic-clock time before which the job must not resubmit
    #: (the deterministic backoff window).
    not_before: float = 0.0


class RegressionScheduler:
    """Runs the regression matrix with sharing, pooling, caching and
    supervised fault-tolerant execution."""

    def __init__(
        self,
        targets: list[Target] | None = None,
        platform_overrides: dict[str, Platform] | None = None,
        jobs: int = 1,
        executor: str = "auto",
        cache: ResultCache | None = None,
        max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
        run_timeout: float | None = None,
        retries: int = 2,
        backoff_base: float = 0.05,
        backoff_cap: float = 1.0,
        clock=time.monotonic,
        sleep=time.sleep,
        fault_plan: FaultPlan | None = None,
        session_provider=None,
        worklist=None,
    ):
        if executor not in ("auto", "serial", "thread", "process", "batch"):
            raise ValueError(f"unknown executor {executor!r}")
        self.targets = list(targets or all_targets())
        self.platform_overrides = dict(platform_overrides or {})
        self.jobs = max(1, int(jobs))
        self.executor = executor
        self.cache = cache
        self.max_instructions = max_instructions
        #: Wall-clock budget per pooled payload; ``None`` disables the
        #: deadline.  Enforced preemptively on the pooled executors
        #: (a wedged process worker is killed and its payload retried);
        #: the in-process executors cannot preempt a running core, so
        #: there the budget only shapes retry/quarantine decisions.
        self.run_timeout = run_timeout
        #: Failed attempts a payload may burn before quarantine.
        self.retries = max(0, int(retries))
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        #: Injectable time sources so chaos tests run without real
        #: sleeping and with reproducible deadlines.
        self._clock = clock
        self._sleep = sleep
        #: Optional warm-session source (``lease(target, derivative)``
        #: / ``release(session, healthy=...)``) used by the serial
        #: executor instead of constructing its own sessions — the
        #: serving daemon's pool hook
        #: (:class:`repro.service.pool.WarmSessionPool`).  Sessions the
        #: executor saw fail are released unhealthy so the pool
        #: rebuilds them instead of handing the wreck to the next
        #: tenant.
        self.session_provider = session_provider
        #: Optional shared :class:`repro.store.worklist.WorkList`:
        #: several scheduler processes pointed at the same directory
        #: divide the matrix by racing cell claims, adopting each
        #: other's published verdicts and stealing expired leases from
        #: dead workers.  A disabled (uncreatable) work-list degrades
        #: the run to ordinary local execution.
        self.worklist = worklist
        #: Set for the duration of :meth:`run_system` when the caller
        #: wants outcomes streamed as they materialise.
        self._on_outcome = None
        self.fault_plan = fault_plan
        self._injector = (
            FaultInjector(fault_plan) if fault_plan is not None else None
        )
        if (
            self._injector is not None
            and cache is not None
            and cache.injector is None
        ):
            cache.injector = self._injector
        if (
            self._injector is not None
            and worklist is not None
            and worklist.injector is None
        ):
            worklist.injector = self._injector
        #: (derivative, target tuple) -> pooled BatchSession, so the
        #: batch executor amortises device construction across cells
        #: exactly like the serial executor's per-target sessions.
        self._batch_sessions: dict[tuple, BatchSession] = {}
        #: Aggregated engine telemetry (``ExecutionSession.stats()``
        #: merged via :func:`merge_engine_stats`) over every run this
        #: scheduler executed — ``regress --engine-stats`` dumps it.
        self.engine_stats: dict[str, int] = {}

    # -- public API -----------------------------------------------------------
    def run_environment(
        self,
        env: ModuleTestEnvironment,
        derivative: Derivative,
    ) -> RegressionReport:
        return self.run_system({env.name: env}, derivative)

    def run_system(
        self,
        environments: dict[str, ModuleTestEnvironment],
        derivative: Derivative,
        on_outcome=None,
    ) -> RegressionReport:
        """Run the matrix; *on_outcome* (if given) receives each
        :class:`RunOutcome` as it materialises — cache hits up front,
        executed cells in completion order — so a serving layer can
        stream incremental results instead of waiting for the report.
        The callback runs on the executing thread and must not raise.
        """
        work = self._work_list(environments, derivative)
        outcomes: dict[RunRequest, RunOutcome] = {}

        self._on_outcome = on_outcome
        try:
            pending: list[tuple[RunRequest, MemoryImage, Target]] = []
            cache_keys: dict[RunRequest, str] = {}
            for request, image, tgt in work:
                cached = self._probe_cache(request, image, tgt, derivative,
                                           cache_keys)
                if cached is not None:
                    outcomes[request] = self._emit(cached)
                else:
                    pending.append((request, image, tgt))

            for outcome in self._execute(pending, derivative):
                outcomes[outcome.request] = outcome
                key = cache_keys.get(outcome.request)
                # Quarantined verdicts are infrastructure faults;
                # replaying them from a warm cache would make one bad
                # day permanent.
                if key is not None and not outcome.quarantined:
                    self.cache.put(key, outcome.result)
        finally:
            self._on_outcome = None
            # Persist whatever decode/superblock/JIT state this run
            # warmed up.  One stamp-sized check per registered image
            # when an artifact store is installed, a constant-time
            # no-op otherwise.
            from repro.isa.decodecache import persist_registry

            persist_registry()

        return self._assemble_report(work, outcomes, derivative)

    def _emit(self, outcome: RunOutcome) -> RunOutcome:
        """Stream one materialised outcome to the run's callback."""
        if self._on_outcome is not None:
            self._on_outcome(outcome)
        return outcome

    # -- work-list ---------------------------------------------------------
    def _work_list(
        self,
        environments: dict[str, ModuleTestEnvironment],
        derivative: Derivative,
    ) -> list[tuple[RunRequest, MemoryImage, Target]]:
        work: list[tuple[RunRequest, MemoryImage, Target]] = []
        for env in environments.values():
            for cell_name in env.cells:
                for tgt in self.targets:
                    artifacts = env.build_image(cell_name, derivative, tgt)
                    request = RunRequest(
                        environment=env.name,
                        cell=cell_name,
                        derivative=derivative.name,
                        target=tgt.name,
                    )
                    work.append((request, artifacts.image, tgt))
        return work

    # -- caching -----------------------------------------------------------
    def _probe_cache(
        self,
        request: RunRequest,
        image: MemoryImage,
        tgt: Target,
        derivative: Derivative,
        cache_keys: dict[RunRequest, str],
    ) -> RunOutcome | None:
        if self.cache is None or tgt.name in self.platform_overrides:
            return None
        key = self.cache.key_for(
            image, tgt, derivative, self.max_instructions
        )
        cache_keys[request] = key
        result = self.cache.get(key)
        if result is None:
            return None
        return RunOutcome(request, result, cached=True)

    # -- supervision helpers -----------------------------------------------
    def _backoff(self, attempt: int) -> float:
        """Deterministic capped exponential backoff before a retry."""
        return min(
            self.backoff_base * (2 ** max(0, attempt - 1)),
            self.backoff_cap,
        )

    def _quarantine_outcome(
        self,
        request: RunRequest,
        derivative: Derivative,
        reason: str,
        retried: bool,
    ) -> RunOutcome:
        return RunOutcome(
            request,
            quarantine_result(request.target, derivative.name, reason),
            retried=retried,
            quarantined=True,
        )

    # -- execution ---------------------------------------------------------
    def _execute(
        self,
        pending: list[tuple[RunRequest, MemoryImage, Target]],
        derivative: Derivative,
    ) -> list[RunOutcome]:
        overridden = [
            item
            for item in pending
            if item[2].name in self.platform_overrides
        ]
        normal = [
            item
            for item in pending
            if item[2].name not in self.platform_overrides
        ]

        results: list[RunOutcome] = []
        results.extend(self._run_overridden(overridden, derivative))

        if self.worklist is not None and not self.worklist.disabled:
            # Fleet-sharded run: divide the remaining matrix with peer
            # processes through the shared work-list.  Cells execute
            # in-process (the fleet is the parallelism); overridden
            # platforms above stayed local — their state is arbitrary
            # experiment Python no peer could reproduce.
            results.extend(self._run_fleet(normal, derivative))
            return results

        executor = self.executor
        if executor == "auto":
            executor = "serial" if self.jobs <= 1 else "process"
        if executor == "batch":
            results.extend(self._run_batched(normal, derivative))
        elif executor == "serial" or self.jobs <= 1 or len(normal) <= 1:
            results.extend(self._run_serial(normal, derivative))
        else:
            results.extend(self._run_pooled(normal, derivative, executor))
        return results

    def _run_fleet(
        self,
        items: list[tuple[RunRequest, MemoryImage, Target]],
        derivative: Derivative,
    ) -> list[RunOutcome]:
        """Run *items* cooperatively with peer workers over the shared
        work-list.

        Per cell: adopt an already-published verdict (``fetched``),
        otherwise claim the cell's lease — stealing it when its holder's
        expiry passed (``stolen``) — and execute under a heartbeat with
        the ordinary retry/quarantine ladder, then publish.  Cells held
        by live peers are polled until their verdict appears or their
        lease expires, so the matrix completes even when peers are
        SIGKILLed mid-shard: every cell is eventually published by its
        lease holder or reclaimed by a survivor.

        Publication is first-writer-wins; losing the race adopts the
        peer's canonical verdict so every worker accounts identical
        results.  Quarantined verdicts are never published — they are
        this process's infrastructure failure, and a healthy peer (or a
        lease steal after ours lapses) can still derive the real one.
        A store that fails mid-run degrades that cell to the local
        verdict; the work-list counts the error and the run continues.
        """
        from repro.store.worklist import cell_key

        worklist = self.worklist
        sessions: dict[str, ExecutionSession] = {}
        out: list[RunOutcome] = []
        # One run-scoped heartbeat thread renewing whichever lease is
        # currently being executed (cells run one at a time here — the
        # fleet is the parallelism).  A thread per cell would cost more
        # than a short cell's execution; a thread per run is free.
        held: list = [None]
        stop_beat = threading.Event()

        def _beat() -> None:
            interval = max(0.02, worklist.lease_ttl / 3.0)
            while not stop_beat.wait(interval):
                lease = held[0]
                if lease is not None and not lease.lost:
                    worklist.renew(lease)

        keeper = threading.Thread(
            target=_beat, name="fleet-heartbeat", daemon=True
        )
        keeper.start()
        remaining: list[tuple[RunRequest, MemoryImage, Target, str]] = [
            (
                request,
                image,
                tgt,
                cell_key(
                    request.environment,
                    request.cell,
                    request.derivative,
                    request.target,
                    image.digest(),
                    self.max_instructions,
                ),
            )
            for request, image, tgt in items
        ]
        try:
            while remaining:
                deferred = []
                progressed = False
                errors_before = worklist.claim_errors
                for request, image, tgt, key in remaining:
                    payload = worklist.fetch(key)
                    if payload is not None:
                        out.append(
                            self._emit(
                                RunOutcome(
                                    request,
                                    result_from_payload(payload),
                                    fetched=True,
                                )
                            )
                        )
                        progressed = True
                        continue
                    lease = worklist.claim(key)
                    if lease is None:
                        # Held by a live peer (or claim trouble): poll
                        # again — its result will publish, or its lease
                        # will expire and we steal it.
                        deferred.append((request, image, tgt, key))
                        continue
                    held[0] = lease
                    try:
                        outcome = self._supervised_scalar_run(
                            sessions, request, image, tgt, derivative
                        )
                    finally:
                        held[0] = None
                    outcome.stolen = lease.stolen
                    if not outcome.quarantined:
                        published = worklist.publish(
                            key, result_to_payload(outcome.result)
                        )
                        if not published:
                            peer = worklist.fetch(key)
                            if peer is not None:
                                # Lost the publication race: adopt the
                                # canonical verdict so every fleet
                                # worker accounts identical results.
                                outcome.result = result_from_payload(peer)
                    worklist.release(lease)
                    out.append(self._emit(outcome))
                    progressed = True
                remaining = deferred
                if remaining and not progressed:
                    if worklist.claim_errors > errors_before:
                        # Store root gone bad mid-run: degrade the
                        # leftover cells to ordinary local execution
                        # (the errors are counted on the work-list) —
                        # never let a broken share wedge the matrix.
                        for request, image, tgt, _key in remaining:
                            out.append(
                                self._emit(
                                    self._supervised_scalar_run(
                                        sessions, request, image, tgt,
                                        derivative,
                                    )
                                )
                            )
                        break
                    self._sleep(_POLL_INTERVAL)
        finally:
            stop_beat.set()
            keeper.join(timeout=5.0)
            if self.session_provider is not None:
                for session in sessions.values():
                    self.session_provider.release(session, healthy=True)
        return out

    def _run_overridden(
        self,
        items: list[tuple[RunRequest, MemoryImage, Target]],
        derivative: Derivative,
    ) -> list[RunOutcome]:
        """Injected platforms run unsupervised-but-contained: their
        state is arbitrary experiment Python, so a failure is
        quarantined immediately instead of retried (a retry would
        re-enter the experiment's mutated state)."""
        sessions: dict[str, ExecutionSession] = {}
        out = []
        for request, image, tgt in items:
            session = sessions.get(tgt.name)
            if session is None:
                session = ExecutionSession(
                    self.platform_overrides[tgt.name], derivative
                )
                sessions[tgt.name] = session
            try:
                result = session.run(
                    image, max_instructions=self.max_instructions
                )
            except Exception as exc:
                sessions.pop(tgt.name, None)
                out.append(
                    self._emit(
                        self._quarantine_outcome(
                            request,
                            derivative,
                            f"overridden platform failed: {exc}",
                            retried=False,
                        )
                    )
                )
                continue
            merge_engine_stats(self.engine_stats, session.stats())
            out.append(self._emit(RunOutcome(request, result)))
        return out

    def _run_serial(
        self,
        items: list[tuple[RunRequest, MemoryImage, Target]],
        derivative: Derivative,
    ) -> list[RunOutcome]:
        sessions: dict[str, ExecutionSession] = {}
        out = []
        try:
            for request, image, tgt in items:
                out.append(
                    self._emit(
                        self._supervised_scalar_run(
                            sessions, request, image, tgt, derivative
                        )
                    )
                )
        finally:
            # Sessions that survived the whole run go back to the warm
            # pool healthy; failed ones were already released unhealthy
            # by _discard_session.
            if self.session_provider is not None:
                for session in sessions.values():
                    self.session_provider.release(session, healthy=True)
        return out

    def _checkout_session(
        self,
        sessions: dict[str, ExecutionSession],
        tgt: Target,
        derivative: Derivative,
    ) -> ExecutionSession:
        session = sessions.get(tgt.name)
        if session is None:
            if self.session_provider is not None:
                session = self.session_provider.lease(tgt, derivative)
            else:
                session = ExecutionSession(
                    tgt.make_platform(), derivative, injector=self._injector
                )
            sessions[tgt.name] = session
        return session

    def _discard_session(
        self, sessions: dict[str, ExecutionSession], tgt: Target
    ) -> None:
        session = sessions.pop(tgt.name, None)
        if session is not None and self.session_provider is not None:
            self.session_provider.release(session, healthy=False)

    def _supervised_scalar_run(
        self,
        sessions: dict[str, ExecutionSession],
        request: RunRequest,
        image: MemoryImage,
        tgt: Target,
        derivative: Derivative,
    ) -> RunOutcome:
        """One cell with the full retry/quarantine ladder, in-process.

        A failed attempt discards the target's session (the device is
        in an unknown state — a provider-leased session goes back
        unhealthy so the pool rebuilds it) and acquires a fresh one for
        the retry.  A failing *checkout* (injected ``pool-lease``
        chaos, a provider that cannot build a device) walks the same
        ladder: the cell quarantines instead of the whole run dying.
        """
        attempt = 0
        retried = False
        while True:
            try:
                session = self._checkout_session(sessions, tgt, derivative)
                result = session.run(
                    image, max_instructions=self.max_instructions
                )
            except Exception as exc:
                self._discard_session(sessions, tgt)
                attempt += 1
                if attempt > self.retries:
                    return self._quarantine_outcome(
                        request,
                        derivative,
                        f"{attempt} attempt(s) failed, last: {exc}",
                        retried=retried,
                    )
                retried = True
                self._sleep(self._backoff(attempt))
                continue
            merge_engine_stats(self.engine_stats, session.stats())
            return RunOutcome(request, result, retried=retried)

    def _run_batched(
        self,
        items: list[tuple[RunRequest, MemoryImage, Target]],
        derivative: Derivative,
    ) -> list[RunOutcome]:
        """Run whole matrix cells in lock-step on a pooled BatchSession.

        Entries sharing a cell *and* the same built image object (the
        environment build cache deduplicates targets with identical
        build inputs) become lanes of one batch; per-lane accounting
        (executed counts, cache writes, batched/peeled/degraded flags)
        stays per request, not per batch.
        """
        groups: dict[
            tuple, list[tuple[RunRequest, MemoryImage, Target]]
        ] = {}
        for request, image, tgt in items:
            key = (request.environment, request.cell, id(image))
            groups.setdefault(key, []).append((request, image, tgt))
        out: list[RunOutcome] = []
        for group in groups.values():
            target_names = tuple(tgt.name for _r, _i, tgt in group)
            session_key = (derivative.name, target_names)
            batch = self._batch_sessions.get(session_key)
            if batch is None:
                batch = BatchSession(
                    derivative,
                    [tgt.make_platform() for _r, _i, tgt in group],
                    injector=self._injector,
                )
                self._batch_sessions[session_key] = batch
            image = group[0][1]
            try:
                results = batch.run_batch(
                    image, max_instructions=self.max_instructions
                )
            except Exception:
                # run_batch is contractually non-raising (the lane
                # degradation ladder lives inside it); if it still
                # raises, drop the session and fall back to supervised
                # scalar runs for the whole group.
                self._batch_sessions.pop(session_key, None)
                out.extend(self._run_serial(group, derivative))
                continue
            merge_engine_stats(self.engine_stats, batch.stats())
            for (request, _image, _tgt), result, lane in zip(
                group, results, batch.last_lanes
            ):
                out.append(
                    self._emit(
                        RunOutcome(
                            request,
                            result,
                            batched=lane.batched,
                            peeled=lane.peeled,
                            degraded=lane.degraded,
                            quarantined=lane.quarantined,
                        )
                    )
                )
        return out

    # -- supervised pooled execution ---------------------------------------
    def _run_pooled(
        self,
        items: list[tuple[RunRequest, MemoryImage, Target]],
        derivative: Derivative,
        executor: str,
    ) -> list[RunOutcome]:
        """``submit``-per-payload supervision loop (state machine in the
        module docstring): per-payload error attribution, wall-clock
        deadlines, broken-pool rebuild with requeue of unfinished
        payloads only, capped deterministic backoff, and quarantine
        after the attempt budget."""
        batches: dict[str, list[tuple[RunRequest, MemoryImage]]] = {}
        for request, image, tgt in items:
            batches.setdefault(tgt.name, []).append((request, image))
        jobs: list[_PoolJob] = [
            _PoolJob(target=target_name, requests=batch)
            for target_name, batch in batches.items()
        ]
        pool_cls = (
            ThreadPoolExecutor
            if executor == "thread"
            else ProcessPoolExecutor
        )
        workers = min(self.jobs, max(1, len(jobs)))
        out: list[RunOutcome] = []
        pool = pool_cls(max_workers=workers)
        #: future -> (job, wall-clock deadline or None)
        inflight: dict = {}
        #: After a pool breakage payloads run one at a time so the next
        #: breakage is unambiguously attributed (see module docstring).
        cautious = False
        try:
            while jobs or inflight:
                now = self._clock()
                for job in [j for j in jobs if j.not_before <= now]:
                    if cautious and inflight:
                        break
                    try:
                        future = pool.submit(
                            _run_target_batch,
                            (
                                job.target,
                                derivative.name,
                                self.max_instructions,
                                job.requests,
                                job.attempt,
                                self.fault_plan,
                            ),
                        )
                    except BrokenExecutor:
                        pool = self._rebuild_pool(pool, pool_cls, workers)
                        break  # job stays queued; resubmit next pass
                    jobs.remove(job)
                    # The wall-clock deadline starts when the payload
                    # begins *running* (set lazily below), not when it
                    # is queued — a busy pool must not time out jobs
                    # that never got a worker.
                    inflight[future] = (job, None)
                if not inflight:
                    if jobs:
                        wake = min(job.not_before for job in jobs)
                        self._sleep(max(0.0, wake - self._clock()))
                    continue

                done, _ = wait(
                    list(inflight),
                    timeout=_POLL_INTERVAL,
                    return_when=FIRST_COMPLETED,
                )
                broken = False
                for future in done:
                    job, _deadline = inflight.pop(future)
                    try:
                        batch_result = future.result()
                    except BrokenExecutor:
                        broken = True
                        # Only a payload that ran alone (cautious mode)
                        # is unambiguously the one that broke the pool;
                        # in parallel mode every inflight future dies
                        # identically, so nobody is blamed and cautious
                        # mode sorts the poison payload out.
                        self._pool_job_broke(
                            job, jobs, out, derivative, blamed=cautious
                        )
                    except Exception as exc:
                        self._pool_job_failed(job, exc, jobs, out, derivative)
                    else:
                        pairs, totals = batch_result
                        merge_engine_stats(self.engine_stats, totals)
                        out.extend(
                            self._emit(
                                RunOutcome(
                                    request, result, retried=job.retried
                                )
                            )
                            for request, result in pairs
                        )
                if broken:
                    # A broken pool dooms every inflight future: requeue
                    # the collateral victims without burning an attempt
                    # and rebuild.
                    for future, (job, _deadline) in inflight.items():
                        job.retried = True
                        jobs.append(job)
                    inflight.clear()
                    cautious = True
                    pool = self._rebuild_pool(pool, pool_cls, workers)
                    continue
                if cautious and done and not inflight:
                    # A payload completed alone on the rebuilt pool:
                    # the pool is healthy again.
                    cautious = False

                if self.run_timeout is None:
                    continue
                now = self._clock()
                overdue = []
                for future, (job, deadline) in list(inflight.items()):
                    if deadline is None:
                        if future.running():
                            inflight[future] = (
                                job, now + self.run_timeout
                            )
                    elif now > deadline and not future.done():
                        overdue.append(future)
                if not overdue:
                    continue
                for future in overdue:
                    job, _deadline = inflight.pop(future)
                    self._pool_job_failed(
                        job,
                        TimeoutError(
                            f"run exceeded --run-timeout "
                            f"({self.run_timeout}s)"
                        ),
                        jobs,
                        out,
                        derivative,
                    )
                # Deadlines only arm on *running* futures, so every
                # overdue payload means a wedged worker: requeue the
                # healthy inflight payloads untouched and rebuild
                # (process workers are killed to reclaim them;
                # abandoned thread workers finish in the background).
                for future, (job, _deadline) in inflight.items():
                    job.retried = True
                    jobs.append(job)
                inflight.clear()
                pool = self._rebuild_pool(
                    pool, pool_cls, workers, kill=True
                )
        finally:
            self._abandon_pool(pool)
        return out

    def _pool_job_failed(
        self,
        job: _PoolJob,
        exc: BaseException,
        jobs: list[_PoolJob],
        out: list[RunOutcome],
        derivative: Derivative,
    ) -> None:
        """One payload's own failure: retry with backoff, then split a
        multi-cell payload to isolate the poison cell, then
        quarantine."""
        job.attempt += 1
        if job.attempt <= self.retries:
            job.retried = True
            job.not_before = self._clock() + self._backoff(job.attempt)
            jobs.append(job)
            return
        self._split_or_quarantine(job, exc, jobs, out, derivative)

    def _pool_job_broke(
        self,
        job: _PoolJob,
        jobs: list[_PoolJob],
        out: list[RunOutcome],
        derivative: Derivative,
        blamed: bool,
    ) -> None:
        """A payload whose future died with the pool.  Only a *blamed*
        payload (it ran alone, so attribution is unambiguous) burns an
        attempt; parallel-mode victims requeue for free and cautious
        mode sorts the poison payload out."""
        if blamed:
            self._pool_job_failed(
                job,
                RuntimeError("worker process pool broke during this payload"),
                jobs,
                out,
                derivative,
            )
        else:
            job.retried = True
            jobs.append(job)

    def _split_or_quarantine(
        self,
        job: _PoolJob,
        exc: BaseException,
        jobs: list[_PoolJob],
        out: list[RunOutcome],
        derivative: Derivative,
    ) -> None:
        if len(job.requests) > 1:
            # Attempt budget burnt at payload granularity: isolate the
            # poison cell by re-running each cell as its own payload
            # with a fresh budget — healthy cells of a shared-target
            # batch still report real results.
            jobs.extend(
                _PoolJob(
                    target=job.target,
                    requests=[(request, image)],
                    retried=True,
                )
                for request, image in job.requests
            )
            return
        ((request, _image),) = job.requests
        out.append(
            self._emit(
                self._quarantine_outcome(
                    request,
                    derivative,
                    f"{job.attempt} attempt(s) failed, last: {exc}",
                    retried=job.retried,
                )
            )
        )

    def _rebuild_pool(self, pool, pool_cls, workers: int, kill: bool = False):
        self._abandon_pool(pool, kill=kill)
        return pool_cls(max_workers=workers)

    def _abandon_pool(self, pool, kill: bool = False) -> None:
        """Shut a pool down without waiting on wedged workers.

        *kill* reclaims hung process workers with SIGKILL; thread
        workers cannot be killed and are left to finish detached.
        Pending futures are only cancelled on thread pools — a broken
        process pool's manager thread fails its own work items, and
        racing it with ``cancel_futures`` trips ``InvalidStateError``
        in that thread.
        """
        if kill:
            processes = getattr(pool, "_processes", None)
            if processes:
                for process in list(processes.values()):
                    try:
                        process.kill()
                    except Exception:
                        pass
        pool.shutdown(
            wait=False,
            cancel_futures=isinstance(pool, ThreadPoolExecutor),
        )

    # -- reporting ---------------------------------------------------------
    def _assemble_report(
        self,
        work: list[tuple[RunRequest, MemoryImage, Target]],
        outcomes: dict[RunRequest, RunOutcome],
        derivative: Derivative,
    ) -> RegressionReport:
        report = RegressionReport(derivative=derivative.name)
        per_cell: dict[tuple[str, str], dict[str, RunResult]] = {}
        for request, _image, _tgt in work:
            outcome = outcomes[request]
            report.results[
                (request.environment, request.cell, request.target)
            ] = outcome.result
            if not outcome.quarantined:
                # Quarantined cells are infrastructure faults; blaming
                # their platform for a "divergence" would pollute the
                # paper's bug-attribution signal.
                per_cell.setdefault(
                    (request.environment, request.cell), {}
                )[request.target] = outcome.result
            if outcome.cached:
                report.cached_runs += 1
            elif outcome.fetched:
                # Adopted from a fleet peer's publication: nobody here
                # executed it, but it is not a local cache hit either.
                report.fetched_runs += 1
            else:
                report.executed_runs += 1
            if outcome.stolen:
                report.stolen_runs += 1
            if outcome.batched:
                report.batched_runs += 1
            if outcome.peeled:
                report.peeled_runs += 1
            if outcome.retried:
                report.retried_runs += 1
            if outcome.quarantined:
                report.quarantined_runs += 1
            if outcome.degraded:
                report.degraded_runs += 1
        for (env_name, cell_name), per_target in per_cell.items():
            detect_divergences(env_name, cell_name, per_target, report)
        return report
