"""Regression scheduling: explicit work-lists, pluggable executors, and
a persistent result cache for incremental re-regression.

The paper's regression is a (cells × platforms) matrix over one linked
image per build input.  The original runner walked that matrix with
nested loops, rebuilding the platform and the image for every entry.
This module makes the matrix explicit:

1. **work-list** — every matrix entry becomes a :class:`RunRequest`
   carrying its pre-built image (builds are shared through the module
   environment's build cache, so targets with identical build inputs
   share one image);
2. **cache probe** — a :class:`ResultCache` keyed by (image digest,
   target, derivative, platform fingerprint) satisfies entries whose
   inputs have not changed since the last regression — the lab's
   incremental re-run: touch one test cell and only its column of the
   matrix re-executes;
3. **execution** — remaining entries run on a pluggable executor:
   serial (one long-lived :class:`ExecutionSession` per target), or a
   ``concurrent.futures`` thread/process pool batched by target, so
   every worker also amortises device construction;
4. **report** — the familiar :class:`RegressionReport`, with
   executed-vs-cached bookkeeping and the golden-reference divergence
   attribution unchanged.

Targets with injected platform overrides (fault-injection experiments)
always execute serially in-process and bypass the cache: an override's
behaviour is arbitrary Python state that neither pickles reliably nor
fingerprints honestly.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from repro.assembler.linker import MemoryImage
from repro.core.environment import ModuleTestEnvironment
from repro.core.regression import (
    RegressionReport,
    detect_divergences,
)
from repro.core.targets import (
    Target,
    all_targets,
    target as lookup_target,
)
from repro.platforms.base import (
    DEFAULT_MAX_INSTRUCTIONS,
    Platform,
    RunResult,
    RunStatus,
)
from repro.platforms.cpu import TraceEntry
from repro.platforms.session import BatchSession, ExecutionSession
from repro.soc.derivatives import Derivative, derivative as lookup_derivative

#: Bump when run semantics change in a way that invalidates old caches.
CACHE_SCHEMA = 1


@dataclass(frozen=True)
class RunRequest:
    """One (environment, cell, derivative, target) matrix entry."""

    environment: str
    cell: str
    derivative: str
    target: str


@dataclass
class RunOutcome:
    """A request plus how its result was obtained.

    ``batched`` marks results materialised from a lock-step batch
    cohort (see :class:`~repro.platforms.session.BatchSession`);
    ``peeled`` marks lanes that ran (at least partly) on their own
    scalar engine because the lock-step argument could not cover them.
    """

    request: RunRequest
    result: RunResult
    cached: bool = False
    batched: bool = False
    peeled: bool = False


# --------------------------------------------------------------------------
# result (de)serialisation for the persistent cache
# --------------------------------------------------------------------------

def result_to_payload(result: RunResult) -> dict:
    return {
        "platform": result.platform,
        "derivative": result.derivative,
        "status": result.status.value,
        "instructions": result.instructions,
        "cycles": result.cycles,
        "signature": result.signature,
        "result_word": result.result_word,
        "uart_output": result.uart_output,
        "done_pin": result.done_pin,
        "pass_pin": result.pass_pin,
        "fault_reason": result.fault_reason,
        "trace": (
            None
            if result.trace is None
            else [
                [t.pc, t.opcode, t.mnemonic, t.cycles]
                for t in result.trace
            ]
        ),
        "registers": result.registers,
    }


def result_from_payload(payload: dict) -> RunResult:
    trace = payload["trace"]
    return RunResult(
        platform=payload["platform"],
        derivative=payload["derivative"],
        status=RunStatus(payload["status"]),
        instructions=payload["instructions"],
        cycles=payload["cycles"],
        signature=payload["signature"],
        result_word=payload["result_word"],
        uart_output=payload["uart_output"],
        done_pin=payload["done_pin"],
        pass_pin=payload["pass_pin"],
        fault_reason=payload["fault_reason"],
        trace=(
            None
            if trace is None
            else [TraceEntry(pc, op, mn, cy) for pc, op, mn, cy in trace]
        ),
        registers=payload["registers"],
    )


class ResultCache:
    """Persistent (image digest, target, derivative) -> result store.

    One JSON file per key under *directory*.  The key includes a schema
    version and the platform's behavioural fingerprint, so platform
    changes invalidate rather than replay stale verdicts.  Corrupt or
    unreadable entries are treated as misses.
    """

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _platform_fingerprint(tgt: Target) -> str:
        platform_cls = type(tgt.make_platform())
        return "|".join(
            str(part)
            for part in (
                platform_cls.__name__,
                platform_cls.sees_registers,
                platform_cls.sees_memory,
                platform_cls.sees_uart,
                platform_cls.sees_trace,
                platform_cls.cycle_accurate,
            )
        )

    def key_for(
        self,
        image: MemoryImage,
        tgt: Target,
        derivative: Derivative,
        max_instructions: int,
    ) -> str:
        hasher = hashlib.sha256()
        for part in (
            f"schema={CACHE_SCHEMA}",
            image.digest(),
            tgt.name,
            derivative.name,
            self._platform_fingerprint(tgt),
            str(max_instructions),
        ):
            hasher.update(part.encode())
            hasher.update(b"\0")
        return hasher.hexdigest()

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, key: str) -> RunResult | None:
        try:
            payload = json.loads(self._path(key).read_text())
            result = result_from_payload(payload)
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: RunResult) -> None:
        path = self._path(key)
        # Unique tmp name: concurrent regressions may share a cache dir,
        # and a fixed tmp path would let one writer replace another's
        # half-written file (or race os.replace into FileNotFoundError).
        fd, tmp = tempfile.mkstemp(
            prefix=f".{key}.", suffix=".tmp", dir=self.directory
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(json.dumps(result_to_payload(result)))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


# --------------------------------------------------------------------------
# executors
# --------------------------------------------------------------------------

def _run_target_batch(payload):
    """Worker: run one target's batch of images on one shared session.

    Module-level so process pools can pickle it; thread pools use it
    too, giving every worker its own platform/device to mutate.
    """
    target_name, derivative_name, max_instructions, batch = payload
    tgt = lookup_target(target_name)
    derivative = lookup_derivative(derivative_name)
    session = ExecutionSession(tgt.make_platform(), derivative)
    return [
        (request, session.run(image, max_instructions=max_instructions))
        for request, image in batch
    ]


class RegressionScheduler:
    """Runs the regression matrix with sharing, pooling and caching."""

    def __init__(
        self,
        targets: list[Target] | None = None,
        platform_overrides: dict[str, Platform] | None = None,
        jobs: int = 1,
        executor: str = "auto",
        cache: ResultCache | None = None,
        max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    ):
        if executor not in ("auto", "serial", "thread", "process", "batch"):
            raise ValueError(f"unknown executor {executor!r}")
        self.targets = list(targets or all_targets())
        self.platform_overrides = dict(platform_overrides or {})
        self.jobs = max(1, int(jobs))
        self.executor = executor
        self.cache = cache
        self.max_instructions = max_instructions
        #: (derivative, target tuple) -> pooled BatchSession, so the
        #: batch executor amortises device construction across cells
        #: exactly like the serial executor's per-target sessions.
        self._batch_sessions: dict[tuple, BatchSession] = {}

    # -- public API -----------------------------------------------------------
    def run_environment(
        self,
        env: ModuleTestEnvironment,
        derivative: Derivative,
    ) -> RegressionReport:
        return self.run_system({env.name: env}, derivative)

    def run_system(
        self,
        environments: dict[str, ModuleTestEnvironment],
        derivative: Derivative,
    ) -> RegressionReport:
        work = self._work_list(environments, derivative)
        outcomes: dict[RunRequest, RunOutcome] = {}

        pending: list[tuple[RunRequest, MemoryImage, Target]] = []
        cache_keys: dict[RunRequest, str] = {}
        for request, image, tgt in work:
            cached = self._probe_cache(request, image, tgt, derivative,
                                       cache_keys)
            if cached is not None:
                outcomes[request] = cached
            else:
                pending.append((request, image, tgt))

        for outcome in self._execute(pending, derivative):
            outcomes[outcome.request] = outcome
            key = cache_keys.get(outcome.request)
            if key is not None:
                self.cache.put(key, outcome.result)

        return self._assemble_report(work, outcomes, derivative)

    # -- work-list ---------------------------------------------------------
    def _work_list(
        self,
        environments: dict[str, ModuleTestEnvironment],
        derivative: Derivative,
    ) -> list[tuple[RunRequest, MemoryImage, Target]]:
        work: list[tuple[RunRequest, MemoryImage, Target]] = []
        for env in environments.values():
            for cell_name in env.cells:
                for tgt in self.targets:
                    artifacts = env.build_image(cell_name, derivative, tgt)
                    request = RunRequest(
                        environment=env.name,
                        cell=cell_name,
                        derivative=derivative.name,
                        target=tgt.name,
                    )
                    work.append((request, artifacts.image, tgt))
        return work

    # -- caching -----------------------------------------------------------
    def _probe_cache(
        self,
        request: RunRequest,
        image: MemoryImage,
        tgt: Target,
        derivative: Derivative,
        cache_keys: dict[RunRequest, str],
    ) -> RunOutcome | None:
        if self.cache is None or tgt.name in self.platform_overrides:
            return None
        key = self.cache.key_for(
            image, tgt, derivative, self.max_instructions
        )
        cache_keys[request] = key
        result = self.cache.get(key)
        if result is None:
            return None
        return RunOutcome(request, result, cached=True)

    # -- execution ---------------------------------------------------------
    def _execute(
        self,
        pending: list[tuple[RunRequest, MemoryImage, Target]],
        derivative: Derivative,
    ) -> list[RunOutcome]:
        overridden = [
            item
            for item in pending
            if item[2].name in self.platform_overrides
        ]
        normal = [
            item
            for item in pending
            if item[2].name not in self.platform_overrides
        ]

        results: list[RunOutcome] = []
        results.extend(self._run_overridden(overridden, derivative))

        executor = self.executor
        if executor == "auto":
            executor = "serial" if self.jobs <= 1 else "process"
        if executor == "batch":
            results.extend(self._run_batched(normal, derivative))
        elif executor == "serial" or self.jobs <= 1 or len(normal) <= 1:
            results.extend(self._run_serial(normal, derivative))
        else:
            results.extend(self._run_pooled(normal, derivative, executor))
        return results

    def _run_overridden(
        self,
        items: list[tuple[RunRequest, MemoryImage, Target]],
        derivative: Derivative,
    ) -> list[RunOutcome]:
        sessions: dict[str, ExecutionSession] = {}
        out = []
        for request, image, tgt in items:
            session = sessions.get(tgt.name)
            if session is None:
                session = ExecutionSession(
                    self.platform_overrides[tgt.name], derivative
                )
                sessions[tgt.name] = session
            result = session.run(image, max_instructions=self.max_instructions)
            out.append(RunOutcome(request, result))
        return out

    def _run_serial(
        self,
        items: list[tuple[RunRequest, MemoryImage, Target]],
        derivative: Derivative,
    ) -> list[RunOutcome]:
        sessions: dict[str, ExecutionSession] = {}
        out = []
        for request, image, tgt in items:
            session = sessions.get(tgt.name)
            if session is None:
                session = ExecutionSession(tgt.make_platform(), derivative)
                sessions[tgt.name] = session
            result = session.run(image, max_instructions=self.max_instructions)
            out.append(RunOutcome(request, result))
        return out

    def _run_batched(
        self,
        items: list[tuple[RunRequest, MemoryImage, Target]],
        derivative: Derivative,
    ) -> list[RunOutcome]:
        """Run whole matrix cells in lock-step on a pooled BatchSession.

        Entries sharing a cell *and* the same built image object (the
        environment build cache deduplicates targets with identical
        build inputs) become lanes of one batch; per-lane accounting
        (executed counts, cache writes, batched/peeled flags) stays per
        request, not per batch.
        """
        groups: dict[
            tuple, list[tuple[RunRequest, MemoryImage, Target]]
        ] = {}
        for request, image, tgt in items:
            key = (request.environment, request.cell, id(image))
            groups.setdefault(key, []).append((request, image, tgt))
        out: list[RunOutcome] = []
        for group in groups.values():
            target_names = tuple(tgt.name for _r, _i, tgt in group)
            session_key = (derivative.name, target_names)
            batch = self._batch_sessions.get(session_key)
            if batch is None:
                batch = BatchSession(
                    derivative,
                    [tgt.make_platform() for _r, _i, tgt in group],
                )
                self._batch_sessions[session_key] = batch
            image = group[0][1]
            results = batch.run_batch(
                image, max_instructions=self.max_instructions
            )
            for (request, _image, _tgt), result, lane in zip(
                group, results, batch.last_lanes
            ):
                out.append(
                    RunOutcome(
                        request,
                        result,
                        batched=lane.batched,
                        peeled=lane.peeled,
                    )
                )
        return out

    def _run_pooled(
        self,
        items: list[tuple[RunRequest, MemoryImage, Target]],
        derivative: Derivative,
        executor: str,
    ) -> list[RunOutcome]:
        batches: dict[str, list[tuple[RunRequest, MemoryImage]]] = {}
        for request, image, tgt in items:
            batches.setdefault(tgt.name, []).append((request, image))
        payloads = [
            (target_name, derivative.name, self.max_instructions, batch)
            for target_name, batch in batches.items()
        ]
        pool_cls = (
            ThreadPoolExecutor
            if executor == "thread"
            else ProcessPoolExecutor
        )
        workers = min(self.jobs, len(payloads))
        out: list[RunOutcome] = []
        with pool_cls(max_workers=workers) as pool:
            for batch_result in pool.map(_run_target_batch, payloads):
                out.extend(
                    RunOutcome(request, result)
                    for request, result in batch_result
                )
        return out

    # -- reporting ---------------------------------------------------------
    def _assemble_report(
        self,
        work: list[tuple[RunRequest, MemoryImage, Target]],
        outcomes: dict[RunRequest, RunOutcome],
        derivative: Derivative,
    ) -> RegressionReport:
        report = RegressionReport(derivative=derivative.name)
        per_cell: dict[tuple[str, str], dict[str, RunResult]] = {}
        for request, _image, _tgt in work:
            outcome = outcomes[request]
            report.results[
                (request.environment, request.cell, request.target)
            ] = outcome.result
            per_cell.setdefault(
                (request.environment, request.cell), {}
            )[request.target] = outcome.result
            if outcome.cached:
                report.cached_runs += 1
            else:
                report.executed_runs += 1
            if outcome.batched:
                report.batched_runs += 1
            if outcome.peeled:
                report.peeled_runs += 1
        for (env_name, cell_name), per_target in per_cell.items():
            detect_divergences(env_name, cell_name, per_target, report)
        return report
