"""The complete (system-level) test environment — Figures 4 and 5.

A :class:`SystemEnvironment` is multiple module test environments over
one **shared global layer**.  The paper's isolation rule: *"Each test
environment is isolated from any other and the only way for code to be
shared is via the globals layer."*  :meth:`check_isolation` enforces it
mechanically: no module environment's cells or abstraction layer may
reference another module's symbols or defines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.environment import GlobalLayer, ModuleTestEnvironment
from repro.core.targets import Target, all_targets
from repro.platforms.base import RunResult
from repro.soc.derivatives import Derivative, all_derivatives


@dataclass
class IsolationViolation:
    """A module environment reaching into another module environment."""

    offending_env: str
    test_name: str
    referenced_env: str
    symbol: str

    def __str__(self) -> str:
        return (
            f"{self.offending_env}/{self.test_name} references "
            f"{self.symbol!r} owned by environment {self.referenced_env!r}"
        )


class SystemEnvironment:
    """The master environment directory of Figure 5."""

    def __init__(
        self,
        name: str = "ADVM_System_Verification_Environment",
        derivatives: list[Derivative] | None = None,
        targets: list[Target] | None = None,
    ):
        self.name = name
        self.derivatives = list(derivatives or all_derivatives())
        self.targets = list(targets or all_targets())
        self.global_layer = GlobalLayer(self.derivatives)
        self.environments: dict[str, ModuleTestEnvironment] = {}

    def add_environment(self, env: ModuleTestEnvironment) -> None:
        if env.name in self.environments:
            raise ValueError(f"duplicate environment {env.name!r}")
        # Re-home the environment onto the shared global layer, so all
        # modules link the same firmware/trap handlers (Figure 4).
        env.global_layer = self.global_layer
        self.environments[env.name] = env

    def environment(self, name: str) -> ModuleTestEnvironment:
        try:
            return self.environments[name]
        except KeyError:
            raise KeyError(f"no environment {name!r} in {self.name}") from None

    # -- isolation rule (Figure 4) ---------------------------------------
    def check_isolation(self) -> list[IsolationViolation]:
        """Cells may use their own environment's extras/base functions and
        the global layer — never another environment's."""
        violations: list[IsolationViolation] = []
        extras_by_env = {
            name: set(env.defines.extras)
            | {
                extra
                for table in env.defines.derivative_extras.values()
                for extra in table
            }
            for name, env in self.environments.items()
        }
        for name, env in self.environments.items():
            foreign = {
                other: extras
                for other, extras in extras_by_env.items()
                if other != name
            }
            own_extras = extras_by_env[name]
            for cell in env.cells.values():
                for other, extras in foreign.items():
                    for symbol in extras - own_extras:
                        if symbol and symbol in cell.source:
                            violations.append(
                                IsolationViolation(
                                    offending_env=name,
                                    test_name=cell.name,
                                    referenced_env=other,
                                    symbol=symbol,
                                )
                            )
        return violations

    # -- regressions ------------------------------------------------------
    def run_all(
        self,
        derivative: Derivative,
        target_name: str = "golden",
    ) -> dict[str, dict[str, RunResult]]:
        """Run every cell of every environment; env -> cell -> result."""
        results: dict[str, dict[str, RunResult]] = {}
        for name, env in self.environments.items():
            results[name] = env.run_all(derivative, target_name)
        return results

    @property
    def total_tests(self) -> int:
        return sum(len(env.cells) for env in self.environments.values())


def make_default_system(
    derivatives: list[Derivative] | None = None,
    targets: list[Target] | None = None,
    nvm_tests: int = 4,
    uart_tests: int = 3,
) -> SystemEnvironment:
    """The reproduction's default Figure 5 system: NVM + UART + timer +
    register + data-path module environments over one global layer."""
    from repro.core.workloads import (
        make_datapath_environment,
        make_nvm_environment,
        make_register_environment,
        make_reginit_environment,
        make_timer_environment,
        make_uart_environment,
    )

    system = SystemEnvironment(derivatives=derivatives, targets=targets)
    layer = system.global_layer
    system.add_environment(
        make_nvm_environment(
            nvm_tests,
            derivatives=system.derivatives,
            targets=system.targets,
            global_layer=layer,
        )
    )
    system.add_environment(
        make_uart_environment(
            uart_tests,
            derivatives=system.derivatives,
            targets=system.targets,
            global_layer=layer,
        )
    )
    system.add_environment(
        make_timer_environment(
            derivatives=system.derivatives,
            targets=system.targets,
            global_layer=layer,
        )
    )
    system.add_environment(
        make_reginit_environment(
            derivatives=system.derivatives,
            targets=system.targets,
            global_layer=layer,
        )
    )
    system.add_environment(
        make_register_environment(
            derivatives=system.derivatives,
            targets=system.targets,
            global_layer=layer,
        )
    )
    system.add_environment(
        make_datapath_environment(
            derivatives=system.derivatives,
            targets=system.targets,
            global_layer=layer,
        )
    )
    return system
