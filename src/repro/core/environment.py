"""Module test environments — Figure 1's three-layer structure as code.

A :class:`ModuleTestEnvironment` owns:

- the **test layer**: :class:`TestCell` sources that reference only
  ``Globals.inc`` names and ``Base_*`` functions;
- the **abstraction layer**: a generated ``Globals.inc``
  (:class:`~repro.core.defines.GlobalDefines`) and ``Base_Functions.asm``
  (:func:`~repro.core.basefuncs.generate_base_functions`), both carrying
  per-derivative/per-target ``.IFDEF`` blocks;
- a plain-text test plan (:class:`~repro.core.testplan.TestPlan`).

The **global layer** (trap handlers, shared functions, embedded-software
firmware) is injected by :class:`GlobalLayer` — the module environment
never owns it, mirroring the paper's ownership rules.

``build_image`` assembles one test cell for a (derivative, target) pair —
selection happens *only* through assembler predefines, never by editing
test sources — and links it with the abstraction and global layers into
the one image every platform runs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.assembler.assembler import Assembler
from repro.assembler.linker import Linker, MemoryImage
from repro.assembler.objectfile import ObjectFile
from repro.assembler.preprocessor import InMemoryProvider
from repro.core.basefuncs import generate_base_functions
from repro.core.defines import GlobalDefines, target_entries
from repro.core.globals_layer import (
    generate_global_test_functions,
    generate_trap_handlers,
)
from repro.core.targets import Target, all_targets, target as lookup_target
from repro.core.testplan import TestPlan
from repro.platforms.base import RunResult
from repro.soc.derivatives import Derivative, all_derivatives
from repro.soc.embedded import assemble_embedded_software, es_source

GLOBALS_FILENAME = "Globals.inc"
BASE_FUNCTIONS_FILENAME = "Base_Functions.asm"
TRAP_HANDLERS_FILENAME = "Trap_Handlers.asm"
GLOBAL_FUNCTIONS_FILENAME = "Global_Test_Functions.asm"


@dataclass
class TestCell:
    """One directed test (a test cell directory in Figure 3)."""

    # Not a pytest class, despite the Test* name.
    __test__ = False

    name: str
    source: str
    description: str = ""
    testplan_ids: tuple[str, ...] = ()

    @property
    def filename(self) -> str:
        return f"{self.name}.asm"


@dataclass
class BuildArtifacts:
    """Everything produced while building one test cell."""

    image: MemoryImage
    test_object: ObjectFile
    base_functions_object: ObjectFile
    global_objects: list[ObjectFile]


class GlobalLayer:
    """The shared, not-module-owned code: trap handlers, common
    functions, embedded software.  One instance serves many module
    environments (Figure 4)."""

    def __init__(self, derivatives: list[Derivative] | None = None):
        self.derivatives = list(derivatives or all_derivatives())
        self._trap_handlers = generate_trap_handlers(self.derivatives)
        self._global_functions = generate_global_test_functions()

    @property
    def trap_handlers_text(self) -> str:
        return self._trap_handlers

    @property
    def global_functions_text(self) -> str:
        return self._global_functions

    def library_files(self) -> dict[str, str]:
        return {
            TRAP_HANDLERS_FILENAME: self._trap_handlers,
            GLOBAL_FUNCTIONS_FILENAME: self._global_functions,
        }

    def assemble(
        self, assembler: Assembler, derivative: Derivative
    ) -> list[ObjectFile]:
        objects = [
            assembler.assemble_file(TRAP_HANDLERS_FILENAME),
            assembler.assemble_file(GLOBAL_FUNCTIONS_FILENAME),
            assemble_embedded_software(derivative.es_version, assembler),
        ]
        return objects


class ModuleTestEnvironment:
    """One module-level test environment (Figure 1 / Figure 3)."""

    def __init__(
        self,
        name: str,
        derivatives: list[Derivative] | None = None,
        targets: list[Target] | None = None,
        extras: dict[str, int] | None = None,
        derivative_extras: dict[str, dict[str, int]] | None = None,
        extra_base_functions: str = "",
        global_layer: GlobalLayer | None = None,
    ):
        if not name or not name.replace("_", "").isalnum():
            raise ValueError(f"bad environment name {name!r}")
        if name.lower().startswith("sc88"):
            # The paper: "Derivative specific names are not permitted as
            # they will make the environment appear derivative specific."
            raise ValueError(
                f"environment name {name!r} looks derivative-specific"
            )
        self.name = name
        self.derivatives = list(derivatives or all_derivatives())
        self.targets = list(targets or all_targets())
        self.defines = GlobalDefines(
            module_name=name,
            derivatives=self.derivatives,
            targets=self.targets,
            extras=dict(extras or {}),
            derivative_extras={
                k: dict(v) for k, v in (derivative_extras or {}).items()
            },
        )
        self.extra_base_functions = extra_base_functions
        self.global_layer = global_layer or GlobalLayer(self.derivatives)
        self.cells: dict[str, TestCell] = {}
        self.testplan = TestPlan(module=name)
        #: Build caches — keyed by source fingerprint + effective build
        #: inputs, so editing a cell or a define invalidates naturally.
        self._image_cache: dict[tuple, BuildArtifacts] = {}
        self._object_cache: dict[tuple, object] = {}

    # -- test layer management ----------------------------------------------
    def add_test(self, cell: TestCell) -> None:
        if cell.name in self.cells:
            raise ValueError(f"duplicate test cell {cell.name!r}")
        self.cells[cell.name] = cell
        for plan_id in cell.testplan_ids:
            if self.testplan.find(plan_id) is None:
                self.testplan.add(
                    plan_id, cell.description or cell.name, "implemented"
                )
            else:
                self.testplan.mark(plan_id, "implemented")

    def cell(self, name: str) -> TestCell:
        try:
            return self.cells[name]
        except KeyError:
            raise KeyError(
                f"no test cell {name!r} in environment {self.name!r}"
            ) from None

    # -- abstraction layer rendering --------------------------------------
    def globals_text(self) -> str:
        # Rendering is pure in the defines' state; memoise on a cheap
        # state token so a matrix build renders once, while mutations
        # through set_extra / set_derivative_extra still invalidate.
        state = (
            tuple(sorted(self.defines.extras.items())),
            tuple(
                (name, tuple(sorted(extras.items())))
                for name, extras in sorted(
                    self.defines.derivative_extras.items()
                )
            ),
        )
        cached = getattr(self, "_globals_render", None)
        if cached is not None and cached[0] == state:
            return cached[1]
        text = self.defines.render()
        self._globals_render = (state, text)
        return text

    def base_functions_text(self) -> str:
        cached = getattr(self, "_basefuncs_render", None)
        if cached is not None and cached[0] == self.extra_base_functions:
            return cached[1]
        text = generate_base_functions(
            self.derivatives, self.extra_base_functions
        )
        self._basefuncs_render = (self.extra_base_functions, text)
        return text

    def abstraction_files(self) -> dict[str, str]:
        return {
            GLOBALS_FILENAME: self.globals_text(),
            BASE_FUNCTIONS_FILENAME: self.base_functions_text(),
        }

    # -- building ---------------------------------------------------------------
    def _source_files(self) -> dict[str, str]:
        files = dict(self.abstraction_files())
        files.update(self.global_layer.library_files())
        for cell in self.cells.values():
            files[cell.filename] = cell.source
        return files

    def _provider(self) -> InMemoryProvider:
        return InMemoryProvider(self._source_files())

    @staticmethod
    def _files_fingerprint(files: dict[str, str]) -> str:
        hasher = hashlib.sha256()
        for name in sorted(files):
            hasher.update(name.encode())
            hasher.update(b"\0")
            hasher.update(files[name].encode())
            hasher.update(b"\0")
        return hasher.hexdigest()

    def build_signature(
        self, tgt: Target, files: dict[str, str] | None = None
    ) -> tuple:
        """What a build actually takes from *tgt*, as a hashable key.

        A target influences the assembled output only through the
        defines it contributes to ``Globals.inc``
        (:func:`~repro.core.defines.target_entries`: poll budgets,
        delay loops) — unless some source outside ``Globals.inc``
        references the target's ``TARGET_*`` predefine directly, in
        which case the predefine joins the signature.  Two targets with
        equal signatures produce byte-identical builds, so the image
        cache shares one build between them (golden/accelerator and
        bondout/silicon pair up in the default catalogue).
        """
        if files is None:
            files = self._source_files()
        signature = tuple(
            (entry.name, entry.value) for entry in target_entries(tgt)
        )
        for name, text in files.items():
            if name != GLOBALS_FILENAME and tgt.predefine in text:
                return signature + (tgt.predefine,)
        return signature

    def _target_sensitive(
        self,
        files: dict[str, str],
        texts: list[str],
        tgt: Target,
        define_names: tuple[str, ...],
        _seen: set[str] | None = None,
    ) -> bool:
        """Whether assembling *texts* can produce target-dependent output.

        ``Globals.inc`` defines every target's values, but a file is only
        affected if it *uses* one of the target-contributed define names
        (or the ``TARGET_*`` predefine) — directly or through a file it
        includes.  Unknown includes are treated as sensitive.
        """
        seen = _seen if _seen is not None else set()
        for text in texts:
            if tgt.predefine in text:
                return True
            if any(name in text for name in define_names):
                return True
            for line in text.splitlines():
                stripped = line.strip()
                if not stripped.upper().startswith(".INCLUDE"):
                    continue
                parts = stripped.split(None, 1)
                included = parts[1].strip().strip('"') if len(parts) > 1 else ""
                if included == GLOBALS_FILENAME or included in seen:
                    continue  # Globals only matters via used names
                seen.add(included)
                if included not in files:
                    return True
                if self._target_sensitive(
                    files, [files[included]], tgt, define_names, seen
                ):
                    return True
        return False

    def _predefines(
        self, derivative: Derivative, tgt: Target
    ) -> dict[str, int]:
        return {derivative.predefine: 1, tgt.predefine: 1}

    def assemble_cell(
        self,
        cell_name: str,
        derivative: Derivative,
        tgt: Target,
    ) -> ObjectFile:
        """Assemble one test cell without linking (used by the
        violation checker, which must inspect objects that may not even
        link cleanly)."""
        cell = self.cell(cell_name)
        assembler = Assembler(
            provider=self._provider(),
            predefines=self._predefines(derivative, tgt),
        )
        return assembler.assemble_file(cell.filename)

    def build_image(
        self,
        cell_name: str,
        derivative: Derivative,
        tgt: Target,
        use_cache: bool = True,
    ) -> BuildArtifacts:
        """Assemble + link one test cell for (derivative, target).

        Builds are memoised two ways: whole images by (cell, derivative,
        target signature, source fingerprint), and the shared-layer
        object files (base functions, trap handlers, global functions,
        embedded software) by the same key minus the cell — so a
        regression sweeping many cells and targets assembles each layer
        once per distinct build input, not once per matrix entry.
        Editing any source or define changes the fingerprint and
        invalidates both caches.  ``use_cache=False`` forces a cold
        build (ablation baselines).
        """
        cell = self.cell(cell_name)
        files = self._source_files()
        fingerprint = self._files_fingerprint(files)
        signature = self.build_signature(tgt, files=files)
        image_key = (cell_name, derivative.name, signature, fingerprint)
        if use_cache:
            cached = self._image_cache.get(image_key)
            if cached is not None:
                return cached

        assembler = Assembler(
            provider=InMemoryProvider(files),
            predefines=self._predefines(derivative, tgt),
        )
        define_names = tuple(
            entry.name for entry in target_entries(tgt)
        )

        def cached_object(label: str, texts: list[str], build):
            if not use_cache:
                return build()
            # Files that never touch a target-contributed define (or the
            # TARGET_* predefine) assemble identically for every target,
            # so their cache key drops the target signature entirely.
            file_signature = (
                signature
                if self._target_sensitive(files, texts, tgt, define_names)
                else ()
            )
            key = (label, derivative.name, file_signature, fingerprint)
            obj = self._object_cache.get(key)
            if obj is None:
                obj = build()
                self._object_cache[key] = obj
            return obj

        test_object = cached_object(
            cell.filename,
            [cell.source],
            lambda: assembler.assemble_file(cell.filename),
        )
        base_functions_object = cached_object(
            BASE_FUNCTIONS_FILENAME,
            [files[BASE_FUNCTIONS_FILENAME]],
            lambda: assembler.assemble_file(BASE_FUNCTIONS_FILENAME),
        )
        global_objects = cached_object(
            "__global_layer__",
            [
                files[TRAP_HANDLERS_FILENAME],
                files[GLOBAL_FUNCTIONS_FILENAME],
                es_source(derivative.es_version),
            ],
            lambda: self.global_layer.assemble(assembler, derivative),
        )
        memory_map = derivative.memory_map()
        linker = Linker(
            text_base=memory_map.text_base, data_base=memory_map.data_base
        )
        image = linker.link(
            [test_object, base_functions_object] + global_objects
        )
        artifacts = BuildArtifacts(
            image=image,
            test_object=test_object,
            base_functions_object=base_functions_object,
            global_objects=global_objects,
        )
        if use_cache:
            self._image_cache[image_key] = artifacts
        return artifacts

    # -- running -------------------------------------------------------------
    def run_test(
        self,
        cell_name: str,
        derivative: Derivative,
        target_name: str = "golden",
        platform_kwargs: dict | None = None,
        max_instructions: int | None = None,
    ) -> RunResult:
        """Build and execute one test cell on one platform."""
        tgt = lookup_target(target_name)
        artifacts = self.build_image(cell_name, derivative, tgt)
        platform = tgt.make_platform(**(platform_kwargs or {}))
        kwargs = {}
        if max_instructions is not None:
            kwargs["max_instructions"] = max_instructions
        return platform.run(artifacts.image, derivative, **kwargs)

    def run_all(
        self,
        derivative: Derivative,
        target_name: str = "golden",
    ) -> dict[str, RunResult]:
        """Run every test cell; returns name -> result."""
        results = {}
        for name in self.cells:
            results[name] = self.run_test(name, derivative, target_name)
        return results
