"""Release labels and frozen regression environments — the paper's §3.

The paper: *"the test environment is not stable during any development of
the abstraction layer, unless frozen via a release label"*, and system
regressions run against a label *"composed of sub-labels for each
environment"* owned by a single release manager.

A label here is a content-addressed snapshot of everything that affects
a build: abstraction-layer text, test-cell sources, test plan and the
global-layer libraries.  A frozen environment rebuilds **only** from its
snapshot, so later mutations of the live environment cannot leak into a
running regression (experiment C7 demonstrates exactly that).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.core.environment import (
    BASE_FUNCTIONS_FILENAME,
    GLOBALS_FILENAME,
    GlobalLayer,
    ModuleTestEnvironment,
    TestCell,
)
from repro.core.testplan import TestPlan


def _digest(files: dict[str, str]) -> str:
    hasher = hashlib.sha256()
    for name in sorted(files):
        hasher.update(name.encode())
        hasher.update(b"\0")
        hasher.update(files[name].encode())
        hasher.update(b"\0")
    return hasher.hexdigest()[:16]


@dataclass(frozen=True)
class EnvironmentLabel:
    """One released module environment: name + content snapshot."""

    label: str
    environment_name: str
    files: dict[str, str]
    digest: str

    def __str__(self) -> str:
        return f"{self.label} ({self.environment_name}@{self.digest})"


@dataclass(frozen=True)
class SystemLabel:
    """A system release: one sub-label per module environment."""

    label: str
    sublabels: dict[str, str]  # environment name -> label name

    def __str__(self) -> str:
        parts = ", ".join(
            f"{env}={lab}" for env, lab in sorted(self.sublabels.items())
        )
        return f"{self.label}[{parts}]"


class FrozenEnvironment:
    """A read-only environment rebuilt from a label snapshot.

    It bypasses the live generators entirely: ``globals_text`` /
    ``base_functions_text`` return the snapshot verbatim, so the build is
    bit-identical no matter what happened to the live environment since
    the release.
    """

    def __init__(self, label: EnvironmentLabel, live: ModuleTestEnvironment):
        self._label = label
        # Clone structure from the live environment but serve file content
        # from the snapshot.
        self._env = ModuleTestEnvironment(
            live.name,
            derivatives=live.derivatives,
            targets=live.targets,
            global_layer=GlobalLayer(live.derivatives),
        )
        snapshot = label.files
        for name, text in snapshot.items():
            if name.startswith("cell:"):
                cell_name = name[len("cell:"):]
                self._env.cells[cell_name] = TestCell(
                    name=cell_name, source=text
                )
        self._globals_text = snapshot[GLOBALS_FILENAME]
        self._base_functions_text = snapshot[BASE_FUNCTIONS_FILENAME]
        if "TESTPLAN.TXT" in snapshot:
            self._env.testplan = TestPlan.from_text(
                snapshot["TESTPLAN.TXT"], module=live.name
            )
        # Override the generated abstraction layer with the frozen text.
        self._env.globals_text = lambda: self._globals_text  # type: ignore
        self._env.base_functions_text = (  # type: ignore
            lambda: self._base_functions_text
        )

    @property
    def label(self) -> EnvironmentLabel:
        return self._label

    @property
    def environment(self) -> ModuleTestEnvironment:
        return self._env

    def run_all(self, derivative, target_name: str = "golden"):
        return self._env.run_all(derivative, target_name)

    def run_test(self, cell_name, derivative, target_name: str = "golden"):
        return self._env.run_test(cell_name, derivative, target_name)


class ReleaseManager:
    """The single owner of releases (§3: "a single person responsible")."""

    def __init__(self) -> None:
        self.environment_labels: dict[str, EnvironmentLabel] = {}
        self.system_labels: dict[str, SystemLabel] = {}
        self._live: dict[str, ModuleTestEnvironment] = {}

    # -- module-level releases ------------------------------------------------
    def snapshot_files(self, env: ModuleTestEnvironment) -> dict[str, str]:
        files = {
            GLOBALS_FILENAME: env.globals_text(),
            BASE_FUNCTIONS_FILENAME: env.base_functions_text(),
            "TESTPLAN.TXT": env.testplan.to_text(),
        }
        for cell in env.cells.values():
            files[f"cell:{cell.name}"] = cell.source
        return files

    def create_label(
        self, label: str, env: ModuleTestEnvironment
    ) -> EnvironmentLabel:
        if label in self.environment_labels:
            raise ValueError(f"label {label!r} already exists")
        files = self.snapshot_files(env)
        release = EnvironmentLabel(
            label=label,
            environment_name=env.name,
            files=files,
            digest=_digest(files),
        )
        self.environment_labels[label] = release
        self._live[label] = env
        return release

    def frozen(self, label: str) -> FrozenEnvironment:
        try:
            release = self.environment_labels[label]
        except KeyError:
            raise KeyError(f"no label {label!r}") from None
        return FrozenEnvironment(release, self._live[label])

    def is_dirty(self, label: str) -> bool:
        """Has the live environment drifted from the released snapshot?"""
        release = self.environment_labels[label]
        live = self._live[label]
        return _digest(self.snapshot_files(live)) != release.digest

    # -- system-level releases -------------------------------------------------
    def compose_system_label(
        self, label: str, sublabels: dict[str, str]
    ) -> SystemLabel:
        if label in self.system_labels:
            raise ValueError(f"system label {label!r} already exists")
        for env_name, env_label in sublabels.items():
            if env_label not in self.environment_labels:
                raise KeyError(
                    f"system label references unknown label {env_label!r}"
                )
            release = self.environment_labels[env_label]
            if release.environment_name != env_name:
                raise ValueError(
                    f"label {env_label!r} belongs to "
                    f"{release.environment_name!r}, not {env_name!r}"
                )
        system = SystemLabel(label=label, sublabels=dict(sublabels))
        self.system_labels[label] = system
        return system

    def frozen_system(self, label: str) -> dict[str, FrozenEnvironment]:
        system = self.system_labels[label]
        return {
            env_name: self.frozen(env_label)
            for env_name, env_label in system.sublabels.items()
        }
