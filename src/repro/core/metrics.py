"""Effort metrics: the quantitative backbone of the reproduction.

The paper's evaluation is qualitative ("considerable verification
development time and effort was saved").  To make it measurable we use
the proxies a verification manager actually tracks:

- **edit effort** for a change: files touched and lines changed
  (diff-based, added + removed);
- **test development size**: non-comment lines of assembler a new test
  requires, with and without a base-function library.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field


def loc(source: str, count_comments: bool = False) -> int:
    """Lines of code: non-empty, optionally skipping pure comments."""
    total = 0
    for line in source.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        if not count_comments and stripped.startswith(";"):
            continue
        total += 1
    return total


@dataclass(frozen=True)
class FileDiff:
    """Line-level diff between two versions of one file."""

    filename: str
    added: int
    removed: int

    @property
    def changed(self) -> int:
        return self.added + self.removed

    @property
    def touched(self) -> bool:
        return self.changed > 0


def diff_files(filename: str, before: str, after: str) -> FileDiff:
    added = removed = 0
    matcher = difflib.SequenceMatcher(
        a=before.splitlines(), b=after.splitlines(), autojunk=False
    )
    for op, a_start, a_end, b_start, b_end in matcher.get_opcodes():
        if op in ("replace", "delete"):
            removed += a_end - a_start
        if op in ("replace", "insert"):
            added += b_end - b_start
    return FileDiff(filename, added, removed)


@dataclass
class EffortReport:
    """Aggregate edit effort for one change across a file set."""

    label: str
    diffs: list[FileDiff] = field(default_factory=list)

    def add(self, diff: FileDiff) -> None:
        self.diffs.append(diff)

    @property
    def files_touched(self) -> int:
        return sum(1 for d in self.diffs if d.touched)

    @property
    def lines_changed(self) -> int:
        return sum(d.changed for d in self.diffs)

    @property
    def files_total(self) -> int:
        return len(self.diffs)

    def summary(self) -> str:
        return (
            f"{self.label}: {self.files_touched}/{self.files_total} files "
            f"touched, {self.lines_changed} lines changed"
        )


def compare_effort(
    advm: EffortReport, baseline: EffortReport
) -> dict[str, float]:
    """Saving factors (baseline / ADVM); inf-safe."""

    def ratio(base: int, ours: int) -> float:
        if ours == 0:
            return float("inf") if base > 0 else 1.0
        return base / ours

    return {
        "files_factor": ratio(baseline.files_touched, advm.files_touched),
        "lines_factor": ratio(baseline.lines_changed, advm.lines_changed),
    }
