"""Plain-text report rendering for regressions and benchmarks."""

from __future__ import annotations

from repro.core.regression import RegressionReport


def render_table(headers: list[str], rows: list[list[str]]) -> str:
    """Render an aligned plain-text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def render_row(cells: list[str]) -> str:
        return "  ".join(
            cell.ljust(widths[index]) for index, cell in enumerate(cells)
        ).rstrip()
    lines = [render_row(headers)]
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in rows)
    return "\n".join(lines)


def regression_matrix(report: RegressionReport) -> str:
    """Render the (test × platform) verdict matrix of a regression."""
    tests: list[tuple[str, str]] = []
    platforms: list[str] = []
    for env_name, test_name, platform_name in report.results:
        if (env_name, test_name) not in tests:
            tests.append((env_name, test_name))
        if platform_name not in platforms:
            platforms.append(platform_name)
    headers = ["test"] + platforms
    rows = []
    for env_name, test_name in tests:
        row = [f"{env_name}/{test_name}"]
        for platform_name in platforms:
            result = report.results.get((env_name, test_name, platform_name))
            row.append(result.status.value if result else "-")
        rows.append(row)
    return render_table(headers, rows)
