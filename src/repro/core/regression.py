"""Regression running and cross-platform divergence detection.

Two paper claims live here:

- §1: the same assembler suite performs functional verification of every
  development platform — so a regression is a (cells × platforms) matrix;
- §1/§2: when platforms disagree on a test, "a bug or issue has been
  found in that particular simulation domain" — the runner compares every
  platform's verdict against the golden model and attributes divergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.environment import ModuleTestEnvironment
from repro.core.targets import Target, all_targets, target as lookup_target
from repro.platforms.base import Platform, RunResult, RunStatus
from repro.soc.derivatives import Derivative

REFERENCE_TARGET = "golden"


@dataclass
class Divergence:
    """One platform disagreeing with the reference on one test."""

    environment: str
    test_name: str
    platform: str
    reference_status: RunStatus
    observed_status: RunStatus

    def __str__(self) -> str:
        return (
            f"{self.environment}/{self.test_name}: platform "
            f"{self.platform!r} says {self.observed_status.value}, "
            f"golden says {self.reference_status.value}"
        )


@dataclass
class RegressionReport:
    """Everything one regression produced."""

    derivative: str
    #: (environment, test, target) -> result
    results: dict[tuple[str, str, str], RunResult] = field(
        default_factory=dict
    )
    divergences: list[Divergence] = field(default_factory=list)
    #: Platform runs actually executed vs. served from the persistent
    #: result cache (incremental regression bookkeeping).
    executed_runs: int = 0
    cached_runs: int = 0
    #: Runs materialised from a lock-step batch cohort, and runs the
    #: batch engine peeled off to the scalar oracle (a run can be both:
    #: it rode the cohort up to its divergence point).
    batched_runs: int = 0
    peeled_runs: int = 0
    #: Fault-tolerance bookkeeping: runs that needed more than one
    #: attempt, cells quarantined as synthesized FAULT verdicts after
    #: the attempt budget, and batch lanes demoted to a from-reset
    #: scalar run after an execution-layer error.
    retried_runs: int = 0
    quarantined_runs: int = 0
    degraded_runs: int = 0
    #: Fleet bookkeeping: verdicts adopted from a peer worker's
    #: publication in the shared work-list, and runs executed under a
    #: lease stolen from a dead (expired) worker.
    fetched_runs: int = 0
    stolen_runs: int = 0

    @property
    def total_runs(self) -> int:
        return len(self.results)

    @property
    def passing_runs(self) -> int:
        return sum(
            1
            for r in self.results.values()
            if r.status in (RunStatus.PASS, RunStatus.NO_DATA)
        )

    @property
    def clean(self) -> bool:
        return not self.divergences and self.passing_runs == self.total_runs

    def suspect_platforms(self) -> dict[str, int]:
        """Platform -> number of divergent tests (the bug attribution)."""
        counts: dict[str, int] = {}
        for divergence in self.divergences:
            counts[divergence.platform] = (
                counts.get(divergence.platform, 0) + 1
            )
        return counts

    def summary(self) -> str:
        lines = [
            f"regression on {self.derivative}: "
            f"{self.passing_runs}/{self.total_runs} runs ok, "
            f"{len(self.divergences)} divergence(s)"
        ]
        if self.cached_runs:
            lines.append(
                f"  {self.executed_runs} run(s) executed, "
                f"{self.cached_runs} served from cache"
            )
        if self.batched_runs:
            lines.append(
                f"  {self.batched_runs} run(s) batched in lock-step "
                f"({self.peeled_runs} peeled to scalar)"
            )
        if self.fetched_runs or self.stolen_runs:
            lines.append(
                f"  fleet: {self.fetched_runs} verdict(s) adopted from "
                f"peers, {self.stolen_runs} lease(s) stolen from dead "
                "workers"
            )
        if self.retried_runs or self.quarantined_runs or self.degraded_runs:
            lines.append(
                f"  fault tolerance: {self.retried_runs} retried, "
                f"{self.degraded_runs} degraded, "
                f"{self.quarantined_runs} quarantined"
            )
        for platform, count in sorted(self.suspect_platforms().items()):
            lines.append(
                f"  platform {platform!r} diverges on {count} test(s) "
                "-> suspected platform bug"
            )
        return "\n".join(lines)


def detect_divergences(
    env_name: str,
    cell_name: str,
    per_target: dict[str, RunResult],
    report: RegressionReport,
) -> None:
    """Compare one cell's per-target verdicts against the golden model
    and record divergences (the paper's bug-attribution step)."""
    if REFERENCE_TARGET not in per_target:
        return
    reference = per_target[REFERENCE_TARGET]
    for target_name, result in per_target.items():
        if target_name == REFERENCE_TARGET:
            continue
        # NO_DATA platforms (product silicon without pin reporting)
        # cannot diverge — they report nothing.
        if result.status is RunStatus.NO_DATA:
            continue
        if result.status is not reference.status:
            report.divergences.append(
                Divergence(
                    environment=env_name,
                    test_name=cell_name,
                    platform=target_name,
                    reference_status=reference.status,
                    observed_status=result.status,
                )
            )


class RegressionRunner:
    """Runs module environments across targets and compares verdicts.

    Thin compatibility facade over
    :class:`~repro.core.scheduler.RegressionScheduler` running serially
    without a persistent result cache — the verdicts the original
    serial loops produced, minus their per-(cell, target) platform
    construction and build churn.
    """

    def __init__(
        self,
        targets: list[Target] | None = None,
        platform_overrides: dict[str, Platform] | None = None,
        executor: str = "auto",
    ):
        self.targets = list(targets or all_targets())
        #: target name -> pre-built platform (lets experiments inject a
        #: faulty gate-level simulator, C2).
        self.platform_overrides = dict(platform_overrides or {})
        self.executor = executor
        self._scheduler_instance = None

    def _scheduler(self):
        from repro.core.scheduler import RegressionScheduler

        # Keep one scheduler alive so the batch executor's pooled
        # BatchSessions amortise device construction across calls.
        if self._scheduler_instance is None:
            self._scheduler_instance = RegressionScheduler(
                targets=self.targets,
                platform_overrides=self.platform_overrides,
                executor=self.executor,
            )
        return self._scheduler_instance

    def run_environment(
        self,
        env: ModuleTestEnvironment,
        derivative: Derivative,
    ) -> RegressionReport:
        return self._scheduler().run_environment(env, derivative)

    def run_system(
        self,
        environments: dict[str, ModuleTestEnvironment],
        derivative: Derivative,
    ) -> RegressionReport:
        return self._scheduler().run_system(environments, derivative)


def quick_regression(
    env: ModuleTestEnvironment,
    derivative: Derivative,
    target_names: list[str] | None = None,
) -> RegressionReport:
    """Convenience: regression over named targets (default: all six)."""
    targets = (
        [lookup_target(n) for n in target_names]
        if target_names
        else None
    )
    return RegressionRunner(targets=targets).run_environment(env, derivative)
