"""The ``Base_Functions.asm`` generator — the abstraction layer's library.

The paper: *"a library of functions ... common tasks that are required by
multiple tests.  Once this library has been created the development time
of new tests for this environment decreases considerably ... critically,
these functions do not contain hardwired values as they use the same
Global Defines file that is used by the tests."*

Every function below references **only** ``Globals.inc`` names.  The
global-layer entry points (embedded software ``ES_*`` and the shared
``Global_*`` library) are *wrapped*, never called from tests directly —
and the Figure 7 change (firmware renames ``ES_Init_Register`` and swaps
its input registers in derivative D) is absorbed right here in a
``.IFDEF`` block, leaving every test untouched.

Register conventions (documented for test authors):

- arguments in ``d4``/``d5`` and ``a4``/``a5``;
- results in ``d2`` (0 = success unless stated otherwise);
- ``d11``/``d13``/``a11`` are base-function scratch — tests must not
  keep live values there across a ``CALL``.
"""

from __future__ import annotations

from repro.soc.derivatives import Derivative
from repro.soc.embedded import es_abi

HEADER = """\
;; Base_Functions.asm -- ADVM abstraction layer function library.
;; Functions use only Globals.inc names; no hardwired values (Figure 2).
.INCLUDE Globals.inc
"""

REPORTING = """\
;; ---- result reporting -------------------------------------------------
;; Deposits the verdict everywhere any platform can see it: d0 signature,
;; RAM result word, GPIO done/pass pins; then halts.
Base_Report_Pass:
    LOAD d0, PASS_MAGIC
    LOAD a11, RESULT_ADDR
    ST.W [a11], d0
    LOAD a11, GPIO_DIR_ADDR
    LOAD d11, GPIO_REPORT_MASK
    ST.W [a11], d11
    LOAD a11, GPIO_OUT_ADDR
    LOAD d11, GPIO_REPORT_MASK      ;; done=1 pass=1
    ST.W [a11], d11
    HALT

Base_Report_Fail:
    LOAD d0, FAIL_MAGIC
    LOAD a11, RESULT_ADDR
    ST.W [a11], d0
    LOAD a11, GPIO_DIR_ADDR
    LOAD d11, GPIO_REPORT_MASK
    ST.W [a11], d11
    LOAD a11, GPIO_OUT_ADDR
    LOAD d11, GPIO_DONE_MASK        ;; done=1 pass=0
    ST.W [a11], d11
    HALT

;; Compare d4 against d5; report failure and halt on mismatch.
Base_Check_EQ:
    CMP d4, d5
    JNZ Base_Report_Fail
    RETURN
"""


def _init_register_wrapper(derivatives: list[Derivative]) -> str:
    """The Figure 7 wrapper, with per-derivative ``.IFDEF`` adaptation.

    Canonical ABI (what tests see, forever): address in ``a4``, value in
    ``d4``.  Firmware v2 renamed the entry point and moved the inputs to
    ``a5``/``d5``; the wrapper re-maps.
    """
    v2_derivatives = [d for d in derivatives if d.es_version == 2]
    lines = [
        ";; ---- embedded-software wrappers (Figure 7) ----------------------",
        ";; Initialise a register via firmware: a4 = address, d4 = value.",
        "Base_Init_Register:",
    ]
    if v2_derivatives:
        condition = v2_derivatives[0].predefine
        lines += [
            f".IFDEF {condition}",
            "    ;; firmware v2: entry renamed, inputs swapped to a5/d5",
            "    MOV a5, a4",
            "    MOV d5, d4",
            f"    LOAD CallAddr, {es_abi(2).init_register_symbol}",
            "    CALL CallAddr",
            ".ELSE",
            f"    LOAD CallAddr, {es_abi(1).init_register_symbol}",
            "    CALL CallAddr",
            ".ENDIF",
        ]
        # Additional v2 derivatives share the same block via the guard
        # below; generate a chain if more than one exists.
        for extra in v2_derivatives[1:]:
            # Defensive: the simple .IFDEF above keys on the first v2
            # derivative only; emit an .ERROR if others appear unhandled.
            lines += [
                f".IFDEF {extra.predefine}",
                '.ERROR "Base_Init_Register: unhandled v2 derivative"',
                ".ENDIF",
            ]
    else:
        lines += [
            f"    LOAD CallAddr, {es_abi(1).init_register_symbol}",
            "    CALL CallAddr",
        ]
    lines += [
        "    RETURN",
        "",
        ";; Firmware version into d2.",
        "Base_Get_ES_Version:",
        "    LOAD CallAddr, ES_Get_Version",
        "    CALL CallAddr",
        "    RETURN",
        "",
    ]
    return "\n".join(lines)


NVM_FUNCTIONS = """\
;; ---- NVM page programming (Figure 6 machinery) ---------------------------
;; Select a page: read-modify-write the PAGE field. d4 = page number.
Base_Select_Page:
    LOAD a11, NVM_CTRL_ADDR
    LD.W d11, [a11]
    INSERTR d11, d11, d4, PAGE_FIELD_START_POSITION, PAGE_FIELD_SIZE
    ST.W [a11], d11
    RETURN

;; Stage one word of page data: d4 = byte offset, d5 = value.
Base_NVM_Write_Buffer_Word:
    LOAD a11, NVM_ADDRREG_ADDR
    ST.W [a11], d4
    LOAD a11, NVM_DATA_ADDR
    ST.W [a11], d5
    RETURN

;; Execute an NVM command: d4 = page, d5 = command; d2 = 0 ok / 1 fail.
Base_NVM_Execute:
    LOAD d11, 0
    INSERTR d11, d11, d4, PAGE_FIELD_START_POSITION, PAGE_FIELD_SIZE
    INSERTR d11, d11, d5, NVM_CMD_FIELD_POS, NVM_CMD_FIELD_SIZE
    SETB d11, NVM_START_BIT_POS
    LOAD a11, NVM_CTRL_ADDR
    ST.W [a11], d11
    LOAD d13, POLL_LIMIT
    LOAD a11, NVM_STAT_ADDR
Base_NVM_Execute_poll:
    LD.W d2, [a11]
    TSTB d2, NVM_STAT_BUSY_BIT
    JZ Base_NVM_Execute_settle
    DJNZ d13, Base_NVM_Execute_poll
    LOAD d2, 1                      ;; poll budget exhausted
    RETURN
Base_NVM_Execute_settle:
    LD.W d2, [a11]
    TSTB d2, NVM_STAT_ERR_BIT
    JNZ Base_NVM_Execute_fail
    LOAD d2, 0
    RETURN
Base_NVM_Execute_fail:
    LOAD d2, 1
    RETURN

;; Program the staged buffer into page d4; d2 = 0 ok / 1 fail.
Base_NVM_Program_Page:
    LOAD d5, NVM_CMD_PROG
    JMP Base_NVM_Execute

;; Erase page d4 to 0xFF; d2 = 0 ok / 1 fail.
Base_NVM_Erase_Page:
    LOAD d5, NVM_CMD_ERASE
    JMP Base_NVM_Execute
"""

UART_FUNCTIONS = """\
;; ---- UART ------------------------------------------------------------------
Base_UART_Enable_Loopback:
    LOAD a11, UART_CTRL_ADDR
    LOAD d11, UART_CTRL_LOOPBACK_VALUE
    ST.W [a11], d11
    RETURN

Base_UART_Enable:
    LOAD a11, UART_CTRL_ADDR
    LOAD d11, UART_CTRL_PLAIN_VALUE
    ST.W [a11], d11
    RETURN

;; Transmit byte d4.
Base_UART_Send:
    LOAD a11, UART_DATA_ADDR
    ST.W [a11], d4
    RETURN

;; Receive into d2; 0xFFFFFFFF on poll timeout.
Base_UART_Recv:
    LOAD d13, POLL_LIMIT
    LOAD a11, UART_STAT_ADDR
Base_UART_Recv_poll:
    LD.W d2, [a11]
    TSTB d2, UART_STAT_RXAVL_BIT
    JNZ Base_UART_Recv_ready
    DJNZ d13, Base_UART_Recv_poll
    LOAD d2, 0xFFFFFFFF
    RETURN
Base_UART_Recv_ready:
    LOAD a11, UART_DATA_ADDR
    LD.W d2, [a11]
    RETURN

;; Transmit the ASCIIZ string at a4.
Base_UART_Print:
Base_UART_Print_loop:
    LD.B d11, [a4]
    CMPI d11, 0
    JZ Base_UART_Print_done
    LOAD a11, UART_DATA_ADDR
    ST.W [a11], d11
    ADDA a4, a4, 1
    JMP Base_UART_Print_loop
Base_UART_Print_done:
    RETURN
"""

TIMER_WDT_FUNCTIONS = """\
;; ---- timer / watchdog ----------------------------------------------------
;; Burn roughly 2*d4 cycles in a pure register spin: no loads, no
;; stores, no SFR traffic.  The canonical calibrated busy-wait -- and,
;; because the loop body is a bare DJNZ, exactly the shape the
;; emulation core's idle fast-forward elides (d4 = 0 spins nothing).
Base_Spin:
    MOV d11, d4
    CMPI d11, 0
    JZ Base_Spin_done
Base_Spin_loop:
    DJNZ d11, Base_Spin_loop
Base_Spin_done:
    RETURN

;; Block for d4 timer ticks (one-shot), then stop the timer.  Between
;; status polls the function burns DELAY_LOOPS iterations in a pure
;; spin (per-target calibration from Globals.inc): hammering TIM_STAT
;; every few cycles is bus noise a real delay loop avoids, and the
;; spin is idle-loop-shaped so emulation fast-forwards it.
Base_Timer_Delay:
    LOAD a11, TIM_RELOAD_ADDR
    ST.W [a11], d4
    LOAD a11, TIM_STAT_ADDR
    LOAD d11, 1
    ST.W [a11], d11                 ;; clear stale OVF (W1C)
    LOAD a11, TIM_CTRL_ADDR
    LOAD d11, TIMER_CTRL_ONESHOT_VALUE
    ST.W [a11], d11
    LOAD d13, POLL_LIMIT
    LOAD a11, TIM_STAT_ADDR
Base_Timer_Delay_poll:
    LOAD d11, DELAY_LOOPS
Base_Timer_Delay_spin:
    DJNZ d11, Base_Timer_Delay_spin ;; idle superblock: fast-forwarded
    LD.W d11, [a11]
    TSTB d11, 0
    JNZ Base_Timer_Delay_done
    DJNZ d13, Base_Timer_Delay_poll
Base_Timer_Delay_done:
    LOAD d11, 1
    ST.W [a11], d11                 ;; ack OVF
    LOAD a11, TIM_CTRL_ADDR
    LOAD d11, 0
    ST.W [a11], d11
    RETURN

;; Service the watchdog with the derivative's key.
Base_WDT_Service:
    LOAD a11, WDT_SERVICE_ADDR
    LOAD d11, WDT_SERVICE_KEY
    ST.W [a11], d11
    RETURN

;; Enable interrupt lines (mask in d4) and set the global IE bit.
Base_Enable_IRQ:
    LOAD a11, INT_EN_ADDR
    ST.W [a11], d4
    EI
    RETURN
"""

GLOBAL_WRAPPERS = """\
;; ---- wrappers for the shared global function library ---------------------
;; (tests never call Global_* directly -- Figure 2 rule)
;; Fill d5 words at a4 with a pattern seeded by d4.
Base_Fill_Pattern:
    LOAD CallAddr, Global_Fill_Pattern
    CALL CallAddr
    RETURN

;; Compare d4 words at a4 vs a5; d2 = 0 equal / 1 different.
Base_Compare_Block:
    LOAD CallAddr, Global_Compare_Block
    CALL CallAddr
    RETURN

;; XOR checksum of d4 words at a4 into d2 (wraps firmware ES_Checksum).
Base_Checksum:
"""


def _checksum_wrapper(derivatives: list[Derivative]) -> str:
    """ES_Checksum wrapper: v2 firmware moved its inputs to a5/d5."""
    v2 = [d for d in derivatives if d.es_version == 2]
    lines = []
    if v2:
        lines += [
            f".IFDEF {v2[0].predefine}",
            "    MOV a5, a4",
            "    MOV d5, d4",
            ".ENDIF",
        ]
    lines += [
        "    LOAD CallAddr, ES_Checksum",
        "    CALL CallAddr",
        "    RETURN",
    ]
    return "\n".join(lines) + "\n"


def generate_base_functions(
    derivatives: list[Derivative],
    extra_functions: str = "",
) -> str:
    """Render ``Base_Functions.asm`` for a module environment.

    ``extra_functions`` lets a module add its own library entries (the
    abstraction layer grows iteratively, per the paper's Section 2).
    """
    parts = [
        HEADER,
        REPORTING,
        _init_register_wrapper(derivatives),
        NVM_FUNCTIONS,
        UART_FUNCTIONS,
        TIMER_WDT_FUNCTIONS,
        GLOBAL_WRAPPERS.rstrip("\n"),
        _checksum_wrapper(derivatives),
    ]
    if extra_functions:
        parts.append(";; ---- module-specific base functions ----")
        parts.append(extra_functions)
    return "\n".join(parts)
