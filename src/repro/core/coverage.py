"""Functional coverage over ADVM regressions.

Directed-test methodologies still need to answer "what did the suite
actually exercise?"; the paper's test plans track intent, and this module
tracks observation.  Coverage is collected from platforms with
visibility (golden/RTL): SFR bus traffic is decoded through the
derivative's register map into per-register and per-field write coverage;
the NVM controller's operation log yields page coverage; the test plan
maps both back to plan items.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.platforms.base import Platform
from repro.soc.bus import BusAccess, BusTrace
from repro.soc.derivatives import Derivative


@dataclass
class FieldCoverage:
    """Values observed written into one named register field."""

    register: str
    field_name: str
    width: int
    values: set[int] = field(default_factory=set)

    @property
    def bins_hit(self) -> int:
        return len(self.values)

    @property
    def bins_total(self) -> int:
        # Cap at 16 value bins for wide fields (standard covergroup trick).
        return min(1 << self.width, 16)

    @property
    def ratio(self) -> float:
        return min(1.0, self.bins_hit / self.bins_total)


@dataclass
class CoverageReport:
    registers_written: set[str] = field(default_factory=set)
    registers_total: int = 0
    fields: dict[str, FieldCoverage] = field(default_factory=dict)
    nvm_pages_programmed: set[int] = field(default_factory=set)
    nvm_pages_erased: set[int] = field(default_factory=set)
    nvm_pages_total: int = 0
    uart_bytes_sent: int = 0
    timer_underflows: int = 0

    @property
    def register_ratio(self) -> float:
        if not self.registers_total:
            return 0.0
        return len(self.registers_written) / self.registers_total

    @property
    def nvm_page_ratio(self) -> float:
        if not self.nvm_pages_total:
            return 0.0
        return len(self.nvm_pages_programmed) / self.nvm_pages_total

    def summary(self) -> str:
        lines = [
            f"registers written: {len(self.registers_written)}"
            f"/{self.registers_total} ({self.register_ratio:.0%})",
            f"NVM pages programmed: {len(self.nvm_pages_programmed)}"
            f"/{self.nvm_pages_total} ({self.nvm_page_ratio:.0%})",
            f"UART bytes: {self.uart_bytes_sent}, "
            f"timer underflows: {self.timer_underflows}",
        ]
        covered_fields = [f for f in self.fields.values() if f.bins_hit]
        lines.append(f"fields touched: {len(covered_fields)}/{len(self.fields)}")
        return "\n".join(lines)


class CoverageCollector:
    """Accumulates coverage across runs on one derivative."""

    def __init__(self, derivative: Derivative):
        self.derivative = derivative
        self.register_map = derivative.register_map()
        self.report = CoverageReport(
            registers_total=len(self.register_map.all_register_addresses()),
            nvm_pages_total=derivative.nvm_pages,
        )
        # Pre-seed every field so totals are stable.
        for instance in self.register_map.instances.values():
            for register in instance.layout.registers:
                for fld in register.fields:
                    key = f"{instance.name}.{register.name}.{fld.name}"
                    self.report.fields[key] = FieldCoverage(
                        register=f"{instance.name}.{register.name}",
                        field_name=fld.name,
                        width=fld.width,
                    )
        self._address_index = {
            address: name
            for name, address in (
                self.register_map.all_register_addresses().items()
            )
        }
        # Per-register write sinks, precomputed so the trace drain does
        # no register-map lookups per access: name -> ((values_set,
        # extract), ...) over that register's fields.
        self._field_sinks: dict[str, tuple] = {}
        for name in self._address_index.values():
            register = self.register_map.register_def(name)
            self._field_sinks[name] = tuple(
                (self.report.fields[f"{name}.{fld.name}"].values, fld.extract)
                for fld in register.fields
            )

    # -- feeding ----------------------------------------------------------
    def observe_bus_access(self, access: BusAccess) -> None:
        if access.kind != "write":
            return
        self._observe_write(access.address, access.value)

    def _observe_write(self, address: int, value: int) -> None:
        name = self._address_index.get(address)
        if name is None:
            return
        self.report.registers_written.add(name)
        for values, extract in self._field_sinks[name]:
            values.add(extract(value))

    def observe_trace(self, trace: BusTrace) -> None:
        """Drain a flat bus-trace buffer without materialising
        :class:`BusAccess` objects."""
        observe_write = self._observe_write
        for kind, address, _size, value in trace.raw():
            if kind == "write":
                observe_write(address, value)

    def observe_platform(self, platform: Platform) -> None:
        """Harvest the device left behind by ``platform.run``."""
        soc = platform.last_soc
        if soc is None:
            return
        trace = platform.last_bus_trace
        if trace:
            if isinstance(trace, BusTrace):
                self.observe_trace(trace)
            else:
                for access in trace:
                    self.observe_bus_access(access)
        for operation, page in soc.nvm.operation_log:
            if operation == "prog":
                self.report.nvm_pages_programmed.add(page)
            else:
                self.report.nvm_pages_erased.add(page)
        self.report.uart_bytes_sent += len(soc.uart.tx_log)
        self.report.timer_underflows += soc.timer.underflows
