"""The ``Globals.inc`` generator — the heart of the abstraction layer.

The paper's rule: *anywhere in the test code that would have previously
used a hardwired value will now be referenced in this global defines
file*, and the file *contains derivative specific information which can
be controlled using a macro*.  This module generates exactly that file:

- one **canonical define name** per fact (register address, field
  position, field size, magic value, ...) that tests and base functions
  use forever;
- a ``.IFDEF DERIVATIVE_*`` block per derivative carrying that
  derivative's values — including **re-mapped names** where the global
  layer renamed a register (sc88c's ``NVM_CONTROL`` still surfaces as
  ``NVM_CTRL_ADDR``);
- a ``.IFDEF TARGET_*`` block per simulation target (poll budgets etc.);
- module-specific extra defines (the paper's ``TEST1_TARGET_PAGE``) with
  optional per-derivative overrides;
- an ``.ERROR`` guard that fires when a build selects no known
  derivative, so misconfigured regressions die loudly instead of
  silently assembling garbage.

Selection happens purely through assembler predefines
(``DERIVATIVE_SC88B`` / ``TARGET_RTL``), which is the mechanism the paper
describes for adapting "automatically depending on the derivative".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.targets import Target, all_targets
from repro.soc.derivatives import Derivative, all_derivatives
from repro.soc.device import FAIL_MAGIC, PASS_MAGIC
from repro.soc.memorymap import NVM_PAGE_BYTES
from repro.soc.peripherals.intc import (
    LINE_NVM,
    LINE_TIMER,
    LINE_UART,
    LINE_WDT,
)
from repro.soc.peripherals.nvm import CMD_ERASE, CMD_PROG

#: Scratch-register convention: base functions may clobber these freely.
SCRATCH_DATA_REGS = ("d11", "d13")
SCRATCH_ADDR_REG = "a11"
#: The paper's indirect-call register alias (Figure 7).
CALL_ADDR_REGISTER = "A12"

GUARD_DEFINE = "ADVM_GLOBALS_INCLUDED"


@dataclass(frozen=True)
class DefineEntry:
    """One generated define with provenance, for audits and diffing."""

    name: str
    value: int
    comment: str = ""

    def render(self) -> str:
        line = f"{self.name} .EQU {self.value:#x}"
        if self.comment:
            line += f"    ;; {self.comment}"
        return line


def derivative_entries(derivative: Derivative) -> list[DefineEntry]:
    """Canonical defines for one derivative (the per-``.IFDEF`` block)."""
    register_map = derivative.register_map()
    memory_map = derivative.memory_map()
    nvm_instance = register_map.instance("NVM")
    ctrl_name = derivative.nvm_ctrl_name
    ctrl = nvm_instance.layout.register_named(ctrl_name)
    page = ctrl.field_named("PAGE")
    cmd = ctrl.field_named("CMD")
    start = ctrl.field_named("START")
    stat = nvm_instance.layout.register_named("NVM_STAT")
    timer_count = register_map.register_def("TIMER.TIM_CNT").field_named(
        "COUNT"
    )
    uart_stat = register_map.register_def("UART.UART_STAT")
    uart_ctrl = register_map.register_def("UART.UART_CTRL")

    def addr(name: str) -> int:
        return register_map.register_address(name)

    uart_loop_value = 0
    for flag in ("EN", "TXEN", "RXEN", "LOOP"):
        uart_loop_value = uart_ctrl.field_named(flag).insert(
            uart_loop_value, 1
        )
    uart_plain_value = 0
    for flag in ("EN", "TXEN", "RXEN"):
        uart_plain_value = uart_ctrl.field_named(flag).insert(
            uart_plain_value, 1
        )

    entries = [
        # --- NVM controller (the Figure 6 registers) ---------------------
        DefineEntry(
            "NVM_CTRL_ADDR",
            nvm_instance.register_address(ctrl_name),
            f"re-mapped from global-layer register {ctrl_name!r}",
        ),
        DefineEntry("NVM_STAT_ADDR", nvm_instance.register_address("NVM_STAT")),
        DefineEntry("NVM_ADDRREG_ADDR", nvm_instance.register_address("NVM_ADDR")),
        DefineEntry("NVM_DATA_ADDR", nvm_instance.register_address("NVM_DATA")),
        DefineEntry(
            "PAGE_FIELD_START_POSITION", page.pos, "Figure 6 define"
        ),
        DefineEntry("PAGE_FIELD_SIZE", page.width, "Figure 6 define"),
        DefineEntry("NVM_CMD_FIELD_POS", cmd.pos),
        DefineEntry("NVM_CMD_FIELD_SIZE", cmd.width),
        DefineEntry("NVM_START_BIT_POS", start.pos),
        DefineEntry("NVM_STAT_BUSY_BIT", stat.field_named("BUSY").pos),
        DefineEntry("NVM_STAT_DONE_BIT", stat.field_named("DONE").pos),
        DefineEntry("NVM_STAT_ERR_BIT", stat.field_named("ERR").pos),
        DefineEntry("NVM_PAGE_COUNT", derivative.nvm_pages),
        DefineEntry("NVM_ARRAY_BASE", memory_map.nvm.base),
        # --- UART -----------------------------------------------------------
        DefineEntry("UART_CTRL_ADDR", addr("UART.UART_CTRL")),
        DefineEntry("UART_STAT_ADDR", addr("UART.UART_STAT")),
        DefineEntry("UART_DATA_ADDR", addr("UART.UART_DATA")),
        DefineEntry("UART_BAUD_ADDR", addr("UART.UART_BAUD")),
        DefineEntry(
            "UART_STAT_TXRDY_BIT", uart_stat.field_named("TXRDY").pos
        ),
        DefineEntry(
            "UART_STAT_RXAVL_BIT", uart_stat.field_named("RXAVL").pos
        ),
        DefineEntry("UART_STAT_OVR_BIT", uart_stat.field_named("OVR").pos),
        DefineEntry(
            "UART_CTRL_LOOPBACK_VALUE",
            uart_loop_value,
            "EN|TXEN|RXEN|LOOP",
        ),
        DefineEntry(
            "UART_CTRL_PLAIN_VALUE", uart_plain_value, "EN|TXEN|RXEN"
        ),
        # --- timer ------------------------------------------------------------
        DefineEntry("TIM_CTRL_ADDR", addr("TIMER.TIM_CTRL")),
        DefineEntry("TIM_CNT_ADDR", addr("TIMER.TIM_CNT")),
        DefineEntry("TIM_RELOAD_ADDR", addr("TIMER.TIM_RELOAD")),
        DefineEntry("TIM_STAT_ADDR", addr("TIMER.TIM_STAT")),
        DefineEntry("TIMER_COUNTER_WIDTH", timer_count.width),
        DefineEntry("TIMER_MAX_COUNT", timer_count.max_value),
        DefineEntry("TIMER_CTRL_EN_VALUE", 0x1, "EN"),
        DefineEntry("TIMER_CTRL_ONESHOT_VALUE", 0x5, "EN|ONESHOT"),
        DefineEntry("TIMER_CTRL_IRQ_VALUE", 0x3, "EN|IE"),
        # --- interrupt controller ---------------------------------------------
        DefineEntry("INT_EN_ADDR", addr("INTC.INT_EN")),
        DefineEntry("INT_PEND_ADDR", addr("INTC.INT_PEND")),
        DefineEntry("INT_VECT_ADDR", addr("INTC.INT_VECT")),
        # --- GPIO ----------------------------------------------------------------
        DefineEntry("GPIO_OUT_ADDR", addr("GPIO.GPIO_OUT")),
        DefineEntry("GPIO_IN_ADDR", addr("GPIO.GPIO_IN")),
        DefineEntry("GPIO_DIR_ADDR", addr("GPIO.GPIO_DIR")),
        # --- watchdog ---------------------------------------------------------------
        DefineEntry("WDT_CTRL_ADDR", addr("WDT.WDT_CTRL")),
        DefineEntry("WDT_SERVICE_ADDR", addr("WDT.WDT_SERVICE")),
        DefineEntry("WDT_CNT_ADDR", addr("WDT.WDT_CNT")),
        DefineEntry(
            "WDT_SERVICE_KEY",
            derivative.wdt_service_key,
            "derivative-specific service key",
        ),
        # --- embedded software --------------------------------------------------------
        DefineEntry("ES_VERSION", derivative.es_version),
    ]
    return entries


def common_entries(derivative_sample: Derivative) -> list[DefineEntry]:
    """Defines shared by every derivative (architecture constants)."""
    memory_map = derivative_sample.memory_map()
    return [
        DefineEntry("PASS_MAGIC", PASS_MAGIC, "test passed signature"),
        DefineEntry("FAIL_MAGIC", FAIL_MAGIC, "test failed signature"),
        DefineEntry("RESULT_ADDR", memory_map.result_address),
        DefineEntry(
            "IRQ_COUNT_ADDR",
            memory_map.result_address + 4,
            "incremented by the global IRQ handlers",
        ),
        DefineEntry(
            "TRAP_ID_ADDR",
            memory_map.result_address + 8,
            "last trap number taken",
        ),
        DefineEntry(
            "SCRATCH_ADDR", memory_map.result_address + 16, "test scratch"
        ),
        DefineEntry("NVM_PAGE_BYTES", NVM_PAGE_BYTES),
        DefineEntry("NVM_CMD_PROG", CMD_PROG),
        DefineEntry("NVM_CMD_ERASE", CMD_ERASE),
        DefineEntry("GPIO_DONE_MASK", 0x1, "test-done pin"),
        DefineEntry("GPIO_PASS_MASK", 0x2, "test-pass pin"),
        DefineEntry("GPIO_REPORT_MASK", 0x3, "done|pass direction bits"),
        DefineEntry("IRQ_LINE_UART_MASK", 1 << LINE_UART),
        DefineEntry("IRQ_LINE_TIMER_MASK", 1 << LINE_TIMER),
        DefineEntry("IRQ_LINE_NVM_MASK", 1 << LINE_NVM),
        DefineEntry("IRQ_LINE_WDT_MASK", 1 << LINE_WDT),
    ]


def target_entries(target: Target) -> list[DefineEntry]:
    return [
        DefineEntry(
            "POLL_LIMIT", target.poll_limit, "status-poll budget per target"
        ),
        DefineEntry(
            "DELAY_LOOPS",
            target.delay_loops,
            "calibrated pure-spin iterations between status polls",
        ),
    ]


@dataclass
class GlobalDefines:
    """Generator/model of one module environment's ``Globals.inc``.

    ``extras`` are the module-specific defines (Figure 6's
    ``TESTn_TARGET_PAGE``); ``derivative_extras`` lets a value differ per
    derivative, which is "derivative specific information (allowed only
    in the abstraction layer)".
    """

    module_name: str = "MODULE"
    derivatives: list[Derivative] = field(default_factory=all_derivatives)
    targets: list[Target] = field(default_factory=all_targets)
    extras: dict[str, int] = field(default_factory=dict)
    derivative_extras: dict[str, dict[str, int]] = field(default_factory=dict)

    def set_extra(self, name: str, value: int) -> None:
        self.extras[name] = value

    def set_derivative_extra(
        self, derivative_name: str, name: str, value: int
    ) -> None:
        self.derivative_extras.setdefault(derivative_name, {})[name] = value

    # -- rendering -------------------------------------------------------
    def render(self) -> str:
        lines: list[str] = [
            f";; Globals.inc -- abstraction layer defines for "
            f"{self.module_name}",
            ";; Generated by the ADVM tooling. Tests must reference these",
            ";; names and never hardwire the values (see Figure 2).",
            f".IFNDEF {GUARD_DEFINE}",
            f".DEFINE {GUARD_DEFINE}",
            "",
            f";; indirect-call register alias (Figure 7)",
            f".DEFINE CallAddr {CALL_ADDR_REGISTER}",
            "",
            ";; ---- architecture constants (all derivatives) ----",
        ]
        for entry in common_entries(self.derivatives[0]):
            lines.append(entry.render())
        lines.append("")
        lines.append(";; ---- derivative-specific blocks ----")
        for derivative in self.derivatives:
            lines.append(f".IFDEF {derivative.predefine}")
            lines.append(f";; {derivative.title}: {derivative.description}")
            for entry in derivative_entries(derivative):
                lines.append(entry.render())
            for name, value in sorted(
                self.derivative_extras.get(derivative.name, {}).items()
            ):
                lines.append(
                    DefineEntry(name, value, "module derivative extra").render()
                )
            lines.append(".ENDIF")
        lines.append("")
        lines.append(";; ---- simulation-target blocks ----")
        for tgt in self.targets:
            lines.append(f".IFDEF {tgt.predefine}")
            for entry in target_entries(tgt):
                lines.append(entry.render())
            lines.append(".ENDIF")
        lines.append("")
        if self.extras:
            lines.append(";; ---- module-specific defines ----")
            lines.append(";; (derivative blocks above may pre-empt these)")
            for name, value in sorted(self.extras.items()):
                # A derivative block may have overridden the value; the
                # common definition only applies when nothing did.
                lines.append(f".IFNDEF {name}")
                lines.append(DefineEntry(name, value).render())
                lines.append(".ENDIF")
            lines.append("")
        lines.append(";; guard: a build must select a known derivative")
        lines.append(".IFNDEF NVM_CTRL_ADDR")
        lines.append(
            '.ERROR "no DERIVATIVE_* predefine selected a Globals.inc block"'
        )
        lines.append(".ENDIF")
        lines.append(".ENDIF  ;; include guard")
        return "\n".join(lines) + "\n"

    # -- model queries (used by porting metrics and CRG) -------------------
    def resolved_for(
        self, derivative: Derivative, tgt: Target
    ) -> dict[str, int]:
        """The define table a build with this derivative/target sees."""
        table: dict[str, int] = {}
        for entry in common_entries(derivative):
            table[entry.name] = entry.value
        for entry in derivative_entries(derivative):
            table[entry.name] = entry.value
        for entry in target_entries(tgt):
            table[entry.name] = entry.value
        table.update(self.extras)
        table.update(self.derivative_extras.get(derivative.name, {}))
        return table
