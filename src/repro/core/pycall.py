"""Calling assembler base functions from Python — the paper's §2 vision.

"Furthermore, the Base Functions library could be considered as a
library of assembler code functions that can be called or linked into
some higher level language."

:class:`BaseFunctionLibrary` realises that: it links a module
environment's abstraction layer (plus the global layer) with a tiny
generated thunk, places Python-supplied arguments in the architectural
argument registers, executes the named ``Base_*`` (or any exported)
function on a chosen platform, and hands back the result registers and
the device state.  A higher-level testbench — Python here, Specman e or
Perl in the paper's time — can then compose assembler primitives
directly::

    library = BaseFunctionLibrary(env, SC88A)
    outcome = library.call("Base_NVM_Program_Page", d4=9)
    assert outcome.regs["d2"] == 0            # NVM op succeeded
    assert outcome.soc.nvm.operation_log == [("prog", 9)]
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.assembler.assembler import Assembler
from repro.assembler.errors import LinkError
from repro.assembler.linker import Linker
from repro.core.environment import (
    BASE_FUNCTIONS_FILENAME,
    ModuleTestEnvironment,
)
from repro.core.targets import TARGET_GOLDEN, Target
from repro.isa.registers import parse_register
from repro.platforms.cpu import CpuCore
from repro.soc.derivatives import Derivative
from repro.soc.device import SystemOnChip
from repro.soc.embedded import assemble_embedded_software

#: Functions that report-and-halt instead of returning.
_HALTING_FUNCTIONS = frozenset({"Base_Report_Pass", "Base_Report_Fail"})


@dataclass
class CallOutcome:
    """Result of one Python -> assembler function call."""

    function: str
    regs: dict[str, int]
    instructions: int
    cycles: int
    soc: SystemOnChip
    halted: bool

    def __getitem__(self, register: str) -> int:
        return self.regs[register]


class BaseFunctionLibrary:
    """A module environment's function library, callable from Python."""

    def __init__(
        self,
        env: ModuleTestEnvironment,
        derivative: Derivative,
        tgt: Target = TARGET_GOLDEN,
    ):
        self.env = env
        self.derivative = derivative
        self.tgt = tgt
        self._assembler = Assembler(
            provider=env._provider(),
            predefines={derivative.predefine: 1, tgt.predefine: 1},
        )
        self._library_objects = [
            self._assembler.assemble_file(BASE_FUNCTIONS_FILENAME),
            self._assembler.assemble_file("Trap_Handlers.asm"),
            self._assembler.assemble_file("Global_Test_Functions.asm"),
            assemble_embedded_software(
                derivative.es_version, self._assembler
            ),
        ]
        self._memory_map = derivative.memory_map()

    # -- introspection ------------------------------------------------------
    def functions(self) -> list[str]:
        """Exported entry points (Base_* first, then the rest)."""
        names = set()
        for obj in self._library_objects:
            names.update(obj.symbols)
        entries = [n for n in names if n.startswith("Base_")]
        return sorted(entries) + sorted(names - set(entries))

    # -- calling --------------------------------------------------------------
    def call(
        self,
        function: str,
        max_instructions: int = 200_000,
        setup: dict[int, int] | None = None,
        **registers: int,
    ) -> CallOutcome:
        """Invoke *function* with arguments in named registers.

        ``registers`` keys are architectural names (``d4``, ``a4`` ...);
        ``setup`` optionally pre-loads RAM words (address -> value) so
        buffer-consuming functions have data to chew on.
        """
        thunk_source = f"_pycall_thunk:\n    CALL {function}\n    HALT\n"
        thunk = self._assembler.assemble_source(thunk_source, "pycall.asm")
        linker = Linker(
            text_base=self._memory_map.text_base,
            data_base=self._memory_map.data_base,
        )
        try:
            image = linker.link(
                [thunk] + self._library_objects,
                entry_symbol="_pycall_thunk",
            )
        except LinkError as error:
            raise KeyError(
                f"no linkable function {function!r}: {error}"
            ) from None

        soc = SystemOnChip(self.derivative)
        soc.load_image(image)
        for address, value in (setup or {}).items():
            soc.bus.poke_word(address, value)
        cpu = CpuCore(soc.bus, intc=soc.intc)
        cpu.reset(image.entry, self._memory_map.stack_top)
        for name, value in registers.items():
            register = parse_register(name)
            if register is None:
                raise ValueError(f"not a register name: {name!r}")
            cpu.regs.write(register, value)

        while not cpu.halted and cpu.instructions_retired < max_instructions:
            consumed = cpu.step()
            soc.tick(max(consumed, 1))

        expected_halt = True
        if not cpu.halted and function not in _HALTING_FUNCTIONS:
            expected_halt = False
        if not cpu.halted and expected_halt:
            raise RuntimeError(
                f"{function} did not return within "
                f"{max_instructions} instructions"
            )
        return CallOutcome(
            function=function,
            regs=cpu.regs.snapshot(),
            instructions=cpu.instructions_retired,
            cycles=cpu.cycles,
            soc=soc,
            halted=cpu.halted,
        )
