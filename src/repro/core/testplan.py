"""TESTPLAN.TXT — the plain-text module test plan.

The paper: *"Every test environment should contain a plain text file that
contains the test plan for the module ... The principle reason for using
plain text is that it can be searched (grep'ed) easily from the command
line."*

Format, one item per line (comment lines start with ``;;``)::

    ID | STATUS | DESCRIPTION

Statuses track the directed-test lifecycle: ``planned`` (no test yet),
``implemented`` (test exists), ``passing`` (seen green in a regression).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

VALID_STATUSES = ("planned", "implemented", "passing")


@dataclass
class PlanItem:
    item_id: str
    status: str
    description: str

    def __post_init__(self) -> None:
        if self.status not in VALID_STATUSES:
            raise ValueError(
                f"plan item {self.item_id}: bad status {self.status!r} "
                f"(expected one of {VALID_STATUSES})"
            )

    def render(self) -> str:
        return f"{self.item_id} | {self.status} | {self.description}"


@dataclass
class TestPlan:
    """The module test plan: ordered items, grep-able text round-trip."""

    # Not a pytest class, despite the Test* name.
    __test__ = False

    module: str
    items: list[PlanItem] = field(default_factory=list)

    def add(
        self, item_id: str, description: str, status: str = "planned"
    ) -> PlanItem:
        if self.find(item_id) is not None:
            raise ValueError(f"duplicate plan item {item_id!r}")
        item = PlanItem(item_id, status, description)
        self.items.append(item)
        return item

    def find(self, item_id: str) -> PlanItem | None:
        for item in self.items:
            if item.item_id == item_id:
                return item
        return None

    def mark(self, item_id: str, status: str) -> None:
        item = self.find(item_id)
        if item is None:
            raise KeyError(f"no plan item {item_id!r}")
        if status not in VALID_STATUSES:
            raise ValueError(f"bad status {status!r}")
        item.status = status

    def grep(self, pattern: str) -> list[PlanItem]:
        """The paper's reason for plain text: searchable from the shell."""
        regex = re.compile(pattern)
        return [
            item
            for item in self.items
            if regex.search(item.render()) is not None
        ]

    # -- text round trip ------------------------------------------------------
    def to_text(self) -> str:
        lines = [
            f";; TESTPLAN.TXT for {self.module}",
            ";; ID | STATUS | DESCRIPTION",
        ]
        lines += [item.render() for item in self.items]
        return "\n".join(lines) + "\n"

    @classmethod
    def from_text(cls, text: str, module: str = "MODULE") -> "TestPlan":
        plan = cls(module=module)
        for raw in text.splitlines():
            line = raw.strip()
            if not line or line.startswith(";;"):
                match = re.match(r";; TESTPLAN\.TXT for (\S+)", line)
                if match:
                    plan.module = match.group(1)
                continue
            parts = [p.strip() for p in line.split("|", 2)]
            if len(parts) != 3:
                raise ValueError(f"malformed test plan line: {raw!r}")
            plan.items.append(PlanItem(parts[0], parts[1], parts[2]))
        return plan

    # -- coverage view -----------------------------------------------------
    def summary(self) -> dict[str, int]:
        counts = {status: 0 for status in VALID_STATUSES}
        for item in self.items:
            counts[item.status] += 1
        counts["total"] = len(self.items)
        return counts

    def completion_ratio(self) -> float:
        if not self.items:
            return 1.0
        passing = sum(1 for i in self.items if i.status == "passing")
        return passing / len(self.items)
