"""On-disk workspaces — Figures 3 and 5 as real directory trees.

The paper prescribes an exact directory convention; this module writes
it, validates it, loads it back, and — critically — **builds from it**:
the :class:`DiskBuilder` assembles a test cell straight off the tree
using include search paths in place of the per-cell symlinks the paper
mentions, proving the layout is a working build system and not just
documentation.

Module tree (Figure 3)::

    MODULE_NAME/
      Abstraction_Layer/
        Globals.inc
        Base_Functions.asm
      TESTPLAN.TXT
      TEST_ID_NAME/
        test.asm

System tree (Figure 5)::

    ADVM_System_Verification_Environment/
      Global_Libraries/
        Trap_Handlers.asm
        Global_Test_Functions.asm
      <MODULE_NAME>/...      (one Figure 3 tree per module environment)
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.assembler.assembler import Assembler
from repro.assembler.linker import Linker, MemoryImage
from repro.assembler.preprocessor import FilesystemProvider
from repro.core.environment import (
    BASE_FUNCTIONS_FILENAME,
    GLOBALS_FILENAME,
    GLOBAL_FUNCTIONS_FILENAME,
    TRAP_HANDLERS_FILENAME,
    GlobalLayer,
    ModuleTestEnvironment,
    TestCell,
)
from repro.core.system_env import SystemEnvironment
from repro.core.targets import Target
from repro.core.testplan import TestPlan
from repro.soc.derivatives import Derivative
from repro.soc.embedded import assemble_embedded_software

ABSTRACTION_DIR = "Abstraction_Layer"
TESTPLAN_FILE = "TESTPLAN.TXT"
TEST_SOURCE_FILE = "test.asm"
GLOBAL_LIBRARIES_DIR = "Global_Libraries"
SYSTEM_DIR_NAME = "ADVM_System_Verification_Environment"


# --------------------------------------------------------------------------
# writing
# --------------------------------------------------------------------------

def write_module_environment(
    env: ModuleTestEnvironment, root: Path | str
) -> Path:
    """Materialise one module environment as a Figure 3 tree."""
    root = Path(root)
    module_dir = root / env.name
    abstraction_dir = module_dir / ABSTRACTION_DIR
    abstraction_dir.mkdir(parents=True, exist_ok=True)
    (abstraction_dir / GLOBALS_FILENAME).write_text(env.globals_text())
    (abstraction_dir / BASE_FUNCTIONS_FILENAME).write_text(
        env.base_functions_text()
    )
    (module_dir / TESTPLAN_FILE).write_text(env.testplan.to_text())
    for cell in env.cells.values():
        cell_dir = module_dir / cell.name
        cell_dir.mkdir(exist_ok=True)
        (cell_dir / TEST_SOURCE_FILE).write_text(cell.source)
    return module_dir


def write_system_environment(
    system: SystemEnvironment, root: Path | str
) -> Path:
    """Materialise the full Figure 5 tree."""
    root = Path(root)
    system_dir = root / SYSTEM_DIR_NAME
    libraries_dir = system_dir / GLOBAL_LIBRARIES_DIR
    libraries_dir.mkdir(parents=True, exist_ok=True)
    for filename, text in system.global_layer.library_files().items():
        (libraries_dir / filename).write_text(text)
    for env in system.environments.values():
        write_module_environment(env, system_dir)
    return system_dir


# --------------------------------------------------------------------------
# validation
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class StructureIssue:
    path: str
    problem: str

    def __str__(self) -> str:
        return f"{self.path}: {self.problem}"


def validate_module_tree(module_dir: Path | str) -> list[StructureIssue]:
    """Check one Figure 3 tree for structural conformance."""
    module_dir = Path(module_dir)
    issues: list[StructureIssue] = []
    if not module_dir.is_dir():
        return [StructureIssue(str(module_dir), "not a directory")]
    if module_dir.name.lower().startswith("sc88"):
        issues.append(
            StructureIssue(
                str(module_dir),
                "derivative-specific environment names are not permitted",
            )
        )
    abstraction = module_dir / ABSTRACTION_DIR
    if not abstraction.is_dir():
        issues.append(
            StructureIssue(str(abstraction), "missing Abstraction_Layer/")
        )
    else:
        for required in (GLOBALS_FILENAME, BASE_FUNCTIONS_FILENAME):
            if not (abstraction / required).is_file():
                issues.append(
                    StructureIssue(
                        str(abstraction / required), "missing file"
                    )
                )
    testplan_path = module_dir / TESTPLAN_FILE
    if not testplan_path.is_file():
        issues.append(
            StructureIssue(str(testplan_path), "missing TESTPLAN.TXT")
        )
    test_dirs = [
        entry
        for entry in module_dir.iterdir()
        if entry.is_dir() and entry.name != ABSTRACTION_DIR
    ]
    if not test_dirs:
        issues.append(
            StructureIssue(str(module_dir), "no test cell directories")
        )
    for cell_dir in test_dirs:
        if not (cell_dir / TEST_SOURCE_FILE).is_file():
            issues.append(
                StructureIssue(
                    str(cell_dir / TEST_SOURCE_FILE), "missing test source"
                )
            )
    return issues


def validate_system_tree(system_dir: Path | str) -> list[StructureIssue]:
    system_dir = Path(system_dir)
    issues: list[StructureIssue] = []
    if not system_dir.is_dir():
        return [StructureIssue(str(system_dir), "not a directory")]
    libraries = system_dir / GLOBAL_LIBRARIES_DIR
    if not libraries.is_dir():
        issues.append(
            StructureIssue(str(libraries), "missing Global_Libraries/")
        )
    else:
        for required in (TRAP_HANDLERS_FILENAME, GLOBAL_FUNCTIONS_FILENAME):
            if not (libraries / required).is_file():
                issues.append(
                    StructureIssue(str(libraries / required), "missing file")
                )
    module_dirs = [
        entry
        for entry in system_dir.iterdir()
        if entry.is_dir() and entry.name != GLOBAL_LIBRARIES_DIR
    ]
    if not module_dirs:
        issues.append(
            StructureIssue(str(system_dir), "no module environments")
        )
    for module_dir in module_dirs:
        issues.extend(validate_module_tree(module_dir))
    return issues


# --------------------------------------------------------------------------
# loading
# --------------------------------------------------------------------------

def load_module_environment(
    module_dir: Path | str,
    derivatives: list[Derivative] | None = None,
    targets: list[Target] | None = None,
) -> ModuleTestEnvironment:
    """Reconstruct a module environment from a Figure 3 tree.

    The loaded environment serves the **on-disk** abstraction-layer text
    (like a release snapshot), not regenerated text — the tree is the
    source of truth.
    """
    module_dir = Path(module_dir)
    issues = validate_module_tree(module_dir)
    if issues:
        raise ValueError(
            "invalid module tree:\n" + "\n".join(str(i) for i in issues)
        )
    env = ModuleTestEnvironment(
        module_dir.name, derivatives=derivatives, targets=targets
    )
    globals_text = (
        module_dir / ABSTRACTION_DIR / GLOBALS_FILENAME
    ).read_text()
    base_functions_text = (
        module_dir / ABSTRACTION_DIR / BASE_FUNCTIONS_FILENAME
    ).read_text()
    env.globals_text = lambda: globals_text  # type: ignore[method-assign]
    env.base_functions_text = (  # type: ignore[method-assign]
        lambda: base_functions_text
    )
    env.testplan = TestPlan.from_text(
        (module_dir / TESTPLAN_FILE).read_text(), module=module_dir.name
    )
    for cell_dir in sorted(module_dir.iterdir()):
        if not cell_dir.is_dir() or cell_dir.name == ABSTRACTION_DIR:
            continue
        env.cells[cell_dir.name] = TestCell(
            name=cell_dir.name,
            source=(cell_dir / TEST_SOURCE_FILE).read_text(),
        )
    return env


# --------------------------------------------------------------------------
# building straight from disk
# --------------------------------------------------------------------------

class DiskBuilder:
    """Assemble and link test cells directly from a Figure 5 tree."""

    def __init__(self, system_dir: Path | str):
        self.system_dir = Path(system_dir)
        issues = validate_system_tree(self.system_dir)
        if issues:
            raise ValueError(
                "invalid system tree:\n" + "\n".join(str(i) for i in issues)
            )

    def build(
        self,
        module_name: str,
        cell_name: str,
        derivative: Derivative,
        tgt: Target,
    ) -> MemoryImage:
        module_dir = self.system_dir / module_name
        abstraction_dir = module_dir / ABSTRACTION_DIR
        libraries_dir = self.system_dir / GLOBAL_LIBRARIES_DIR
        provider = FilesystemProvider(
            include_paths=[str(abstraction_dir), str(libraries_dir)]
        )
        assembler = Assembler(
            provider=provider,
            predefines={derivative.predefine: 1, tgt.predefine: 1},
        )
        objects = [
            assembler.assemble_file(
                str(module_dir / cell_name / TEST_SOURCE_FILE)
            ),
            assembler.assemble_file(
                str(abstraction_dir / BASE_FUNCTIONS_FILENAME)
            ),
            assembler.assemble_file(
                str(libraries_dir / TRAP_HANDLERS_FILENAME)
            ),
            assembler.assemble_file(
                str(libraries_dir / GLOBAL_FUNCTIONS_FILENAME)
            ),
            assemble_embedded_software(derivative.es_version, assembler),
        ]
        memory_map = derivative.memory_map()
        return Linker(
            text_base=memory_map.text_base, data_base=memory_map.data_base
        ).link(objects)

    def run(
        self,
        module_name: str,
        cell_name: str,
        derivative: Derivative,
        tgt: Target,
    ):
        image = self.build(module_name, cell_name, derivative, tgt)
        return tgt.make_platform().run(image, derivative)
